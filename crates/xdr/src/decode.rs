//! XDR decoder: reads RFC 4506 primitives from a borrowed byte slice.

use crate::error::{XdrError, XdrResult};

/// A zero-copy XDR decoder over a borrowed buffer.
///
/// Reads advance an internal cursor; variable-length reads validate their
/// length prefixes against caller-supplied or default bounds so untrusted
/// input cannot trigger unbounded allocation.
#[derive(Debug)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Default bound for variable-length items when the caller does not supply
/// one. Large enough for NFS READ/WRITE payloads (up to 1 MB) plus framing.
const DEFAULT_MAX_LEN: u32 = 4 * 1024 * 1024;

impl<'a> XdrDecoder<'a> {
    /// Create a decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> XdrResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(XdrError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read an unsigned 32-bit integer.
    pub fn get_u32(&mut self) -> XdrResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a signed 32-bit integer.
    pub fn get_i32(&mut self) -> XdrResult<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Read an unsigned 64-bit integer.
    pub fn get_u64(&mut self) -> XdrResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a signed 64-bit integer.
    pub fn get_i64(&mut self) -> XdrResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a boolean, rejecting values other than 0 and 1.
    pub fn get_bool(&mut self) -> XdrResult<bool> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::InvalidBool(v)),
        }
    }

    /// Read variable-length opaque data with the default length bound.
    pub fn get_opaque(&mut self) -> XdrResult<Vec<u8>> {
        self.get_opaque_max(DEFAULT_MAX_LEN)
    }

    /// Read variable-length opaque data whose length must not exceed `max`.
    pub fn get_opaque_max(&mut self, max: u32) -> XdrResult<Vec<u8>> {
        Ok(self.get_opaque_ref_max(max)?.to_vec())
    }

    /// Zero-copy variant of [`get_opaque_max`](Self::get_opaque_max): the
    /// returned slice borrows from the decoder's buffer.
    pub fn get_opaque_ref_max(&mut self, max: u32) -> XdrResult<&'a [u8]> {
        let len = self.get_u32()?;
        if len > max {
            return Err(XdrError::LengthTooLarge { len, max });
        }
        let data = self.take(len as usize)?;
        let pad = (4 - len as usize % 4) % 4;
        let padding = self.take(pad)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(data)
    }

    /// Read fixed-length opaque data of exactly `len` bytes (plus padding).
    pub fn get_fixed_opaque(&mut self, len: usize) -> XdrResult<Vec<u8>> {
        let data = self.take(len)?.to_vec();
        let pad = (4 - len % 4) % 4;
        let padding = self.take(pad)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(data)
    }

    /// Read a UTF-8 string with the default length bound.
    pub fn get_string(&mut self) -> XdrResult<String> {
        self.get_string_max(DEFAULT_MAX_LEN)
    }

    /// Read a UTF-8 string whose byte length must not exceed `max`.
    pub fn get_string_max(&mut self, max: u32) -> XdrResult<String> {
        let bytes = self.get_opaque_ref_max(max)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| XdrError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::XdrEncoder;

    #[test]
    fn roundtrip_all_primitives() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(u32::MAX);
        enc.put_i32(i32::MIN);
        enc.put_u64(u64::MAX);
        enc.put_i64(i64::MIN);
        enc.put_bool(true);
        enc.put_opaque(b"hello");
        enc.put_string("world!!");
        let bytes = enc.into_bytes();

        let mut dec = XdrDecoder::new(&bytes);
        assert_eq!(dec.get_u32().unwrap(), u32::MAX);
        assert_eq!(dec.get_i32().unwrap(), i32::MIN);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_i64().unwrap(), i64::MIN);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_opaque().unwrap(), b"hello");
        assert_eq!(dec.get_string().unwrap(), "world!!");
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn eof_detected() {
        let mut dec = XdrDecoder::new(&[0, 0]);
        assert!(matches!(
            dec.get_u32().unwrap_err(),
            XdrError::UnexpectedEof { needed: 4, remaining: 2 }
        ));
    }

    #[test]
    fn oversize_length_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(1_000_000); // claimed length far beyond the buffer
        let bytes = enc.into_bytes();
        let mut dec = XdrDecoder::new(&bytes);
        assert!(matches!(
            dec.get_opaque_max(16).unwrap_err(),
            XdrError::LengthTooLarge { len: 1_000_000, max: 16 }
        ));
    }

    #[test]
    fn nonzero_padding_rejected() {
        // length 1, data 'a', padding deliberately corrupted
        let bytes = [0, 0, 0, 1, b'a', 1, 0, 0];
        let mut dec = XdrDecoder::new(&bytes);
        assert_eq!(dec.get_opaque().unwrap_err(), XdrError::NonZeroPadding);
    }

    #[test]
    fn invalid_bool_rejected() {
        let bytes = [0, 0, 0, 2];
        let mut dec = XdrDecoder::new(&bytes);
        assert_eq!(dec.get_bool().unwrap_err(), XdrError::InvalidBool(2));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&[0xff, 0xfe]);
        let bytes = enc.into_bytes();
        let mut dec = XdrDecoder::new(&bytes);
        assert_eq!(dec.get_string().unwrap_err(), XdrError::InvalidUtf8);
    }
}
