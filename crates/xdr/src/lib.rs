//! External Data Representation (XDR, RFC 4506) encoding and decoding.
//!
//! XDR is the wire format underlying ONC RPC and NFS. Every quantity is
//! encoded big-endian and padded to a 4-byte boundary. This crate provides
//! a small, allocation-conscious encoder/decoder pair plus the [`XdrEncode`]
//! and [`XdrDecode`] traits that the protocol crates implement for their
//! message types.
//!
//! # Example
//!
//! ```
//! use sgfs_xdr::{XdrEncoder, XdrDecoder, XdrEncode, XdrDecode};
//!
//! let mut enc = XdrEncoder::new();
//! enc.put_u32(7);
//! enc.put_string("grid");
//! let buf = enc.into_bytes();
//!
//! let mut dec = XdrDecoder::new(&buf);
//! assert_eq!(dec.get_u32().unwrap(), 7);
//! assert_eq!(dec.get_string().unwrap(), "grid");
//! ```

mod decode;
mod encode;
mod error;

pub use decode::XdrDecoder;
pub use encode::XdrEncoder;
pub use error::{XdrError, XdrResult};

/// Types that can serialize themselves into an XDR stream.
pub trait XdrEncode {
    /// Append this value's XDR representation to `enc`.
    fn encode(&self, enc: &mut XdrEncoder);

    /// Convenience: encode into a fresh byte vector.
    fn to_xdr_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }
}

/// Types that can deserialize themselves from an XDR stream.
pub trait XdrDecode: Sized {
    /// Consume this value's XDR representation from `dec`.
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self>;

    /// Convenience: decode from a complete byte slice, requiring that the
    /// whole slice is consumed.
    fn from_xdr_bytes(bytes: &[u8]) -> XdrResult<Self> {
        let mut dec = XdrDecoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        if dec.remaining() != 0 {
            return Err(XdrError::TrailingBytes(dec.remaining()));
        }
        Ok(v)
    }
}

impl XdrEncode for u32 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(*self);
    }
}

impl XdrDecode for u32 {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        dec.get_u32()
    }
}

impl XdrEncode for u64 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(*self);
    }
}

impl XdrDecode for u64 {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        dec.get_u64()
    }
}

impl XdrEncode for i32 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_i32(*self);
    }
}

impl XdrDecode for i32 {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        dec.get_i32()
    }
}

impl XdrEncode for bool {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_bool(*self);
    }
}

impl XdrDecode for bool {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        dec.get_bool()
    }
}

impl XdrEncode for String {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(self);
    }
}

impl XdrDecode for String {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        dec.get_string()
    }
}

impl XdrEncode for Vec<u8> {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(self);
    }
}

impl XdrDecode for Vec<u8> {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        dec.get_opaque()
    }
}

impl<T: XdrEncode> XdrEncode for Option<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
            None => enc.put_bool(false),
        }
    }
}

impl<T: XdrDecode> XdrDecode for Option<T> {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

/// Encode a variable-length array (`u32` count prefix then each element).
///
/// A free function rather than a blanket `Vec<T>` impl because `Vec<u8>`
/// must encode as opaque data, not as 4-byte-per-element array.
pub fn encode_array<T: XdrEncode>(items: &[T], enc: &mut XdrEncoder) {
    enc.put_u32(items.len() as u32);
    for item in items {
        item.encode(enc);
    }
}

/// Decode a variable-length array written by [`encode_array`].
///
/// `max` bounds the element count so a malicious length prefix cannot force
/// a huge allocation.
pub fn decode_array<T: XdrDecode>(dec: &mut XdrDecoder<'_>, max: u32) -> XdrResult<Vec<T>> {
    let n = dec.get_u32()?;
    if n > max {
        return Err(XdrError::LengthTooLarge { len: n, max });
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(T::decode(dec)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(42);
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::from_xdr_bytes(&some.to_xdr_bytes()).unwrap(),
            Some(42)
        );
        assert_eq!(Option::<u32>::from_xdr_bytes(&none.to_xdr_bytes()).unwrap(), None);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(1);
        enc.put_u32(2);
        let err = u32::from_xdr_bytes(&enc.into_bytes()).unwrap_err();
        assert!(matches!(err, XdrError::TrailingBytes(4)));
    }
}
