//! XDR encoder: appends RFC 4506 primitives to a growable buffer.

/// An append-only XDR encoder.
///
/// All primitives are written big-endian; opaque and string data are padded
/// with zero bytes to the next 4-byte boundary, as the spec requires.
#[derive(Debug, Default)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Create an encoder whose buffer has at least `cap` bytes reserved.
    ///
    /// Useful on the data path where message sizes (32 KB NFS blocks) are
    /// known up front and reallocation would show up in profiles.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded bytes without consuming the encoder.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an unsigned 64-bit integer ("unsigned hyper").
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a signed 64-bit integer ("hyper").
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a boolean (encoded as a u32 of value 0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(v as u32);
    }

    /// Append variable-length opaque data (u32 length, bytes, zero padding).
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.put_fixed_opaque(data);
    }

    /// Append fixed-length opaque data (bytes plus zero padding, no length).
    pub fn put_fixed_opaque(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        let pad = (4 - data.len() % 4) % 4;
        self.buf.extend_from_slice(&[0u8; 3][..pad]);
    }

    /// Append a UTF-8 string (same wire form as variable opaque).
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_big_endian() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(0x0102_0304);
        enc.put_i32(-1);
        enc.put_u64(0x0102_0304_0506_0708);
        assert_eq!(
            enc.as_bytes(),
            &[1, 2, 3, 4, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn opaque_padding() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(b"abcde");
        // 4 length bytes + 5 data bytes + 3 padding bytes
        assert_eq!(enc.len(), 12);
        assert_eq!(&enc.as_bytes()[..4], &[0, 0, 0, 5]);
        assert_eq!(&enc.as_bytes()[9..], &[0, 0, 0]);
    }

    #[test]
    fn exact_multiple_needs_no_padding() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(b"abcd");
        assert_eq!(enc.len(), 8);
    }

    #[test]
    fn bool_encoding() {
        let mut enc = XdrEncoder::new();
        enc.put_bool(true);
        enc.put_bool(false);
        assert_eq!(enc.as_bytes(), &[0, 0, 0, 1, 0, 0, 0, 0]);
    }
}
