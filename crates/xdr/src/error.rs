//! Error type shared by the XDR encoder and decoder.

use std::fmt;

/// Result alias used throughout the XDR crate.
pub type XdrResult<T> = Result<T, XdrError>;

/// Failures that can occur while decoding an XDR stream.
///
/// Encoding is infallible (it only appends to a growable buffer), so this
/// type only covers the decode direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The stream ended before a complete item could be read.
    UnexpectedEof {
        /// Bytes required by the item being decoded.
        needed: usize,
        /// Bytes actually remaining in the stream.
        remaining: usize,
    },
    /// A length prefix exceeded the caller-supplied bound.
    LengthTooLarge {
        /// The length found on the wire.
        len: u32,
        /// The maximum the caller allowed.
        max: u32,
    },
    /// A boolean field held a value other than 0 or 1.
    InvalidBool(u32),
    /// A string field contained invalid UTF-8.
    InvalidUtf8,
    /// Padding bytes were non-zero (RFC 4506 requires residual bytes be 0).
    NonZeroPadding,
    /// An enum discriminant did not match any known variant.
    InvalidEnum {
        /// Name of the enum type being decoded.
        what: &'static str,
        /// The unrecognized discriminant.
        value: u32,
    },
    /// The full-message decode left unconsumed bytes.
    TrailingBytes(usize),
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of XDR stream: need {needed} bytes, {remaining} left")
            }
            XdrError::LengthTooLarge { len, max } => {
                write!(f, "XDR length {len} exceeds allowed maximum {max}")
            }
            XdrError::InvalidBool(v) => write!(f, "invalid XDR boolean value {v}"),
            XdrError::InvalidUtf8 => write!(f, "XDR string is not valid UTF-8"),
            XdrError::NonZeroPadding => write!(f, "XDR padding bytes are not zero"),
            XdrError::InvalidEnum { what, value } => {
                write!(f, "invalid discriminant {value} for XDR enum {what}")
            }
            XdrError::TrailingBytes(n) => write!(f, "{n} trailing bytes after XDR message"),
        }
    }
}

impl std::error::Error for XdrError {}
