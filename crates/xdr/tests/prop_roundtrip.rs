//! Property tests: XDR decode is the inverse of encode for arbitrary data.

use proptest::prelude::*;
use sgfs_xdr::{XdrDecoder, XdrEncoder};

proptest! {
    #[test]
    fn u32_roundtrip(v: u32) {
        let mut enc = XdrEncoder::new();
        enc.put_u32(v);
        let b = enc.into_bytes();
        prop_assert_eq!(XdrDecoder::new(&b).get_u32().unwrap(), v);
    }

    #[test]
    fn i64_roundtrip(v: i64) {
        let mut enc = XdrEncoder::new();
        enc.put_i64(v);
        let b = enc.into_bytes();
        prop_assert_eq!(XdrDecoder::new(&b).get_i64().unwrap(), v);
    }

    #[test]
    fn opaque_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&data);
        let b = enc.into_bytes();
        prop_assert_eq!(b.len() % 4, 0, "encoding always 4-byte aligned");
        let mut dec = XdrDecoder::new(&b);
        prop_assert_eq!(dec.get_opaque().unwrap(), data);
        prop_assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn string_roundtrip(s in "\\PC{0,256}") {
        let mut enc = XdrEncoder::new();
        enc.put_string(&s);
        let b = enc.into_bytes();
        prop_assert_eq!(XdrDecoder::new(&b).get_string().unwrap(), s);
    }

    #[test]
    fn mixed_sequence_roundtrip(
        a: u32, b: bool, c in proptest::collection::vec(any::<u8>(), 0..128), d: u64
    ) {
        let mut enc = XdrEncoder::new();
        enc.put_u32(a);
        enc.put_bool(b);
        enc.put_opaque(&c);
        enc.put_u64(d);
        let bytes = enc.into_bytes();
        let mut dec = XdrDecoder::new(&bytes);
        prop_assert_eq!(dec.get_u32().unwrap(), a);
        prop_assert_eq!(dec.get_bool().unwrap(), b);
        prop_assert_eq!(dec.get_opaque().unwrap(), c);
        prop_assert_eq!(dec.get_u64().unwrap(), d);
    }

    /// Decoding arbitrary garbage never panics — it either yields a value
    /// or a structured error.
    #[test]
    fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = XdrDecoder::new(&data);
        let _ = dec.get_u32();
        let _ = dec.get_opaque();
        let _ = dec.get_string();
        let _ = dec.get_bool();
    }

    /// Truncating a *valid* encoding at any byte boundary yields a
    /// structured error (or a legal shorter parse), never a panic. This
    /// reaches deeper decoder states than pure garbage: the length
    /// prefixes are real, only the payload is cut short.
    #[test]
    fn truncated_valid_encodings_never_panic(
        a: u32,
        b: bool,
        c in proptest::collection::vec(any::<u8>(), 0..256),
        s in "\\PC{0,64}",
        d: u64,
        cut_pct in 0usize..100,
    ) {
        let mut enc = XdrEncoder::new();
        enc.put_u32(a);
        enc.put_bool(b);
        enc.put_opaque(&c);
        enc.put_string(&s);
        enc.put_u64(d);
        let bytes = enc.into_bytes();
        let cut = bytes.len() * cut_pct / 100;
        let mut dec = XdrDecoder::new(&bytes[..cut]);
        let _ = dec.get_u32();
        let _ = dec.get_bool();
        let _ = dec.get_opaque();
        let _ = dec.get_string();
        let _ = dec.get_u64();
        // A decoder can never report more bytes than it was given.
        prop_assert!(dec.remaining() <= cut);
    }
}
