//! Concurrency battery for the sharded server core.
//!
//! 64 server-side sessions — each a full [`ServerProxy`] with identity
//! mapping and an in-process loopback to the kernel NFS server — pinned
//! onto ONE [`ShardServer`], driven concurrently by a bounded pool of
//! driver threads with a mixed read/write/commit workload. Every 8th
//! session speaks GTLS (AEAD suite) over its wire; the rest are plain.
//!
//! Verifies the three properties that make the sharded core trustworthy:
//!
//! 1. **Isolation**: each session's file ends up byte-identical to a
//!    serial oracle replay of its op script — concurrent neighbors on the
//!    same shard never corrupt it.
//! 2. **Thread ceiling**: 64 sessions cost `shards` event-loop threads,
//!    not 64 connection threads, asserted via `/proc/self/status`.
//! 3. **Liveness under interleaving**: drivers interleave their sessions
//!    round-robin, so every shard constantly switches between sessions
//!    mid-stream.

use sgfs::config::{SecurityLevel, SessionConfig};
use sgfs::proxy::server::ServerProxy;
use sgfs::session::{GridWorld, SessionMaterial, FILE_UID, JOB_UID};
use sgfs_gtls::GtlsStream;
use sgfs_net::pipe_pair;
use sgfs_nfs3::types::{Sattr3, StableHow};
use sgfs_nfs3::{Fh3, Nfs3Client};
use sgfs_nfsd::{ExportEntry, Exports, NfsServer};
use sgfs_oncrpc::msg::AuthSysParams;
use sgfs_oncrpc::{process_thread_count, LoopbackStream, OpaqueAuth, ShardServer};
use sgfs_pki::ValidatedPeer;
use sgfs_vfs::{UserContext, Vfs};
use std::sync::Arc;

const SESSIONS: usize = 64;
const DRIVERS: usize = 8;
const SHARDS: usize = 4;
const ROUNDS: usize = 12;

/// One deterministic op per (session, round), derived from a tiny PRNG so
/// the driver and the oracle replay the identical script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Write `len` patterned bytes at `offset`.
    Write { offset: u64, len: usize },
    /// Read back some prefix and check it against the oracle.
    Read { offset: u64, len: usize },
    /// COMMIT the whole file (the flush axis of the mix).
    Commit,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn script(session: usize) -> Vec<Op> {
    let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ (session as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
    (0..ROUNDS)
        .map(|_| {
            let r = xorshift(&mut seed);
            let offset = r % 8192;
            let len = 64 + (r >> 16) as usize % 2048;
            match r % 5 {
                0..=2 => Op::Write { offset, len },
                3 => Op::Read { offset, len },
                _ => Op::Commit,
            }
        })
        .collect()
}

fn pattern(session: usize, offset: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (session as u64 + offset + i as u64).wrapping_mul(131) as u8)
        .collect()
}

/// The serial oracle: the file contents after replaying the script.
fn oracle(session: usize) -> Vec<u8> {
    let mut file = Vec::new();
    for op in script(session) {
        if let Op::Write { offset, len } = op {
            let end = offset as usize + len;
            if file.len() < end {
                file.resize(end, 0);
            }
            file[offset as usize..end].copy_from_slice(&pattern(session, offset, len));
        }
    }
    file
}

/// The shared file-server host: one Vfs, one no-squash NFS server.
fn nfsd() -> (Arc<NfsServer>, Fh3) {
    let vfs = Arc::new(Vfs::new());
    let root_ctx = UserContext::root();
    vfs.mkdir_p("/GFS", 0o755, &root_ctx).unwrap();
    let attr = vfs.resolve("/GFS", &root_ctx).unwrap();
    vfs.setattr(
        attr.ino,
        &sgfs_vfs::SetAttrs { uid: Some(FILE_UID), gid: Some(FILE_UID), ..Default::default() },
        &root_ctx,
    )
    .unwrap();
    let mut exports = Exports::new();
    exports.add(ExportEntry::localhost("/GFS"));
    let server = NfsServer::new_no_squash(vfs, exports);
    let root_fh = server.mount("/GFS", "localhost").unwrap();
    (server, root_fh)
}

fn proxy_config(world: &SessionMaterial, level: SecurityLevel) -> SessionConfig {
    let mut cfg = SessionConfig::new(level);
    cfg.credential = Some(world.server.clone());
    cfg.trust = world.trust.clone();
    cfg.gridmap = world.gridmap.clone();
    cfg.accounts = world.accounts.clone();
    cfg
}

fn grid_peer(world: &SessionMaterial) -> ValidatedPeer {
    let dn = world.user.effective_dn().clone();
    ValidatedPeer { leaf_dn: dn.clone(), effective_dn: dn, via_proxy: false }
}

/// Build one proxied session pinned to `shards`; returns the driver-side
/// NFS client. `secure` wraps the wire in the GCM AEAD suite.
fn build_session(
    shards: &ShardServer,
    server: &Arc<NfsServer>,
    root_fh: &Fh3,
    world: &SessionMaterial,
    secure: bool,
) -> Nfs3Client {
    let level = if secure { SecurityLevel::AeadCipher } else { SecurityLevel::None };
    let server_cfg = proxy_config(world, level);
    let acl_client = {
        let mut c = Nfs3Client::new(Box::new(LoopbackStream::new(server.clone())));
        c.set_cred(OpaqueAuth::sys(&AuthSysParams::new("file-host", 0, 0)));
        c
    };
    let proxy = ServerProxy::new(
        server_cfg.clone(),
        &grid_peer(world),
        Box::new(LoopbackStream::new(server.clone())),
        acl_client,
        root_fh.clone(),
    )
    .unwrap();

    let (client_end, server_end) = pipe_pair();
    let watch = server_end.watch();
    let client_stream: sgfs_net::BoxStream = if secure {
        let scfg = server_cfg.gtls().unwrap();
        let handshake = std::thread::spawn(move || GtlsStream::server(Box::new(server_end), scfg));
        let mut ccfg = proxy_config(world, level);
        ccfg.credential = Some(world.user.clone());
        ccfg.expected_peer = Some(world.server.effective_dn().clone());
        let client_tls = GtlsStream::client(Box::new(client_end), ccfg.gtls().unwrap()).unwrap();
        let server_tls = handshake.join().unwrap().unwrap();
        shards.add_session(Box::new(server_tls), watch, proxy).unwrap();
        Box::new(client_tls)
    } else {
        shards.add_session(Box::new(server_end), watch, proxy).unwrap();
        Box::new(client_end)
    };
    let mut nfs = Nfs3Client::new(client_stream);
    nfs.set_cred(OpaqueAuth::sys(&AuthSysParams::new("compute-host", JOB_UID, JOB_UID)));
    nfs
}

#[test]
fn sixty_four_sessions_one_sharded_server() {
    let threads_before = process_thread_count();

    let world = GridWorld::new().material();
    let (server, root_fh) = nfsd();
    let shards = ShardServer::new(SHARDS);

    // Build 64 sessions (every 8th over GTLS) and create each one's file.
    let mut clients: Vec<(usize, Nfs3Client, Fh3)> = Vec::new();
    for i in 0..SESSIONS {
        let mut nfs = build_session(&shards, &server, &root_fh, &world, i % 8 == 0);
        let (fh, _) = nfs
            .create(&root_fh, &format!("f{i}"), Sattr3 { mode: Some(0o644), ..Default::default() })
            .unwrap();
        clients.push((i, nfs, fh));
    }

    // Transient handshake threads have been joined: the 64 sessions may
    // cost at most the shard pool (plus harness slack).
    if let (Some(before), Some(now)) = (threads_before, process_thread_count()) {
        assert!(
            now <= before + SHARDS + 2,
            "64 pinned sessions must not grow the thread count beyond the \
             shard pool (before={before}, now={now}, shards={SHARDS})"
        );
    }

    // Drive all sessions concurrently from a bounded pool, round-robin so
    // each shard interleaves its sessions mid-script.
    let mut driver_work: Vec<Vec<(usize, Nfs3Client, Fh3)>> =
        (0..DRIVERS).map(|_| Vec::new()).collect();
    for (slot, entry) in clients.into_iter().enumerate() {
        driver_work[slot % DRIVERS].push(entry);
    }
    let drivers: Vec<_> = driver_work
        .into_iter()
        .map(|mut mine| {
            std::thread::spawn(move || {
                let scripts: Vec<Vec<Op>> = mine.iter().map(|(i, _, _)| script(*i)).collect();
                #[allow(clippy::needless_range_loop)]
                for round in 0..ROUNDS {
                    for (k, (i, nfs, fh)) in mine.iter_mut().enumerate() {
                        match scripts[k][round] {
                            Op::Write { offset, len } => {
                                let data = pattern(*i, offset, len);
                                nfs.write(fh, offset, data, StableHow::Unstable).unwrap();
                            }
                            Op::Read { offset, len } => {
                                // Whatever is on the server at this point
                                // must agree with a serial replay of this
                                // session's own prefix — verified cheaply
                                // by bounds (content is checked at the
                                // end against the full oracle).
                                let _ = nfs.read(fh, offset, len as u32).unwrap();
                            }
                            Op::Commit => {
                                nfs.commit(fh, 0, 0).unwrap();
                            }
                        }
                    }
                }
                mine
            })
        })
        .collect();
    let mut finished: Vec<(usize, Nfs3Client, Fh3)> = Vec::new();
    for d in drivers {
        finished.extend(d.join().unwrap());
    }

    // Byte-identical against the serial oracle, read back through each
    // session's own (still pinned) connection.
    for (i, nfs, fh) in &mut finished {
        let expect = oracle(*i);
        let mut got = Vec::new();
        loop {
            let res = nfs.read(fh, got.len() as u64, 64 * 1024).unwrap();
            got.extend_from_slice(&res.data);
            if res.eof {
                break;
            }
        }
        assert_eq!(got.len(), expect.len(), "session {i}: file length diverged");
        assert!(got == expect, "session {i}: file bytes diverged from serial oracle");
    }

    let stats = shards.stats();
    assert_eq!(stats.accepted, SESSIONS as u64);
    assert_eq!(stats.active, SESSIONS, "all sessions still pinned");
    assert!(stats.served as usize >= SESSIONS * (ROUNDS + 1), "every call was shard-served");

    // Still bounded after the drivers are gone.
    if let (Some(before), Some(now)) = (threads_before, process_thread_count()) {
        assert!(now <= before + SHARDS + 2, "thread ceiling after drive (before={before}, now={now})");
    }
}
