//! Concurrency battery for the sharded server core.
//!
//! 64 server-side sessions — each a full [`ServerProxy`] with identity
//! mapping and an in-process loopback to the kernel NFS server — pinned
//! onto ONE [`ShardServer`], driven concurrently by a bounded pool of
//! driver threads with a mixed read/write/commit workload. Every 8th
//! session speaks GTLS (AEAD suite) over its wire; the rest are plain.
//!
//! Verifies the three properties that make the sharded core trustworthy:
//!
//! 1. **Isolation**: each session's file ends up byte-identical to a
//!    serial oracle replay of its op script — concurrent neighbors on the
//!    same shard never corrupt it.
//! 2. **Thread ceiling**: 64 sessions cost `shards` event-loop threads,
//!    not 64 connection threads, asserted via `/proc/self/status`.
//! 3. **Liveness under interleaving**: drivers interleave their sessions
//!    round-robin, so every shard constantly switches between sessions
//!    mid-stream.

use sgfs::config::{RetryPolicy, SecurityLevel, SessionConfig};
use sgfs::proxy::client::Upstream;
use sgfs::proxy::pipeline::Pipeline;
use sgfs::proxy::server::ServerProxy;
use sgfs::session::{GridWorld, SessionMaterial, FILE_UID, JOB_UID};
use sgfs::stats::ProxyStats;
use sgfs_gtls::{handshake_pair, GtlsHandshake};
use sgfs_net::pipe_pair;
use sgfs_nfs3::types::{Sattr3, StableHow};
use sgfs_nfs3::{Fh3, Nfs3Client};
use sgfs_nfsd::{ExportEntry, Exports, NfsServer};
use sgfs_oncrpc::msg::AuthSysParams;
use sgfs_oncrpc::{process_thread_count, ClientIoPool, LoopbackStream, OpaqueAuth, ShardServer};
use sgfs_pki::ValidatedPeer;
use sgfs_vfs::{UserContext, Vfs};
use std::sync::{Arc, Mutex};

const SESSIONS: usize = 64;
const DRIVERS: usize = 8;
const SHARDS: usize = 4;
const ROUNDS: usize = 12;

/// Thread-ceiling tests measure `/proc/self/status` for the whole
/// process, so they must not overlap; everything else in this binary is
/// free to run in parallel with them.
static SERIAL: Mutex<()> = Mutex::new(());

/// Poll until `cond` holds or ~2 s elapse (thread exits and pool
/// retirements are asynchronous but fast).
fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
    for _ in 0..2000 {
        if cond() {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    cond()
}

/// One deterministic op per (session, round), derived from a tiny PRNG so
/// the driver and the oracle replay the identical script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Write `len` patterned bytes at `offset`.
    Write { offset: u64, len: usize },
    /// Read back some prefix and check it against the oracle.
    Read { offset: u64, len: usize },
    /// COMMIT the whole file (the flush axis of the mix).
    Commit,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn script(session: usize) -> Vec<Op> {
    let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ (session as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
    (0..ROUNDS)
        .map(|_| {
            let r = xorshift(&mut seed);
            let offset = r % 8192;
            let len = 64 + (r >> 16) as usize % 2048;
            match r % 5 {
                0..=2 => Op::Write { offset, len },
                3 => Op::Read { offset, len },
                _ => Op::Commit,
            }
        })
        .collect()
}

fn pattern(session: usize, offset: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (session as u64 + offset + i as u64).wrapping_mul(131) as u8)
        .collect()
}

/// The serial oracle: the file contents after replaying the script.
fn oracle(session: usize) -> Vec<u8> {
    let mut file = Vec::new();
    for op in script(session) {
        if let Op::Write { offset, len } = op {
            let end = offset as usize + len;
            if file.len() < end {
                file.resize(end, 0);
            }
            file[offset as usize..end].copy_from_slice(&pattern(session, offset, len));
        }
    }
    file
}

/// The shared file-server host: one Vfs, one no-squash NFS server.
fn nfsd() -> (Arc<NfsServer>, Fh3) {
    let vfs = Arc::new(Vfs::new());
    let root_ctx = UserContext::root();
    vfs.mkdir_p("/GFS", 0o755, &root_ctx).unwrap();
    let attr = vfs.resolve("/GFS", &root_ctx).unwrap();
    vfs.setattr(
        attr.ino,
        &sgfs_vfs::SetAttrs { uid: Some(FILE_UID), gid: Some(FILE_UID), ..Default::default() },
        &root_ctx,
    )
    .unwrap();
    let mut exports = Exports::new();
    exports.add(ExportEntry::localhost("/GFS"));
    let server = NfsServer::new_no_squash(vfs, exports);
    let root_fh = server.mount("/GFS", "localhost").unwrap();
    (server, root_fh)
}

fn proxy_config(world: &SessionMaterial, level: SecurityLevel) -> SessionConfig {
    let mut cfg = SessionConfig::new(level);
    cfg.credential = Some(world.server.clone());
    cfg.trust = world.trust.clone();
    cfg.gridmap = world.gridmap.clone();
    cfg.accounts = world.accounts.clone();
    cfg
}

fn grid_peer(world: &SessionMaterial) -> ValidatedPeer {
    let dn = world.user.effective_dn().clone();
    ValidatedPeer { leaf_dn: dn.clone(), effective_dn: dn, via_proxy: false }
}

/// Build one proxied session pinned to `shards`; returns the driver-side
/// NFS client. `secure` wraps the wire in the GCM AEAD suite.
fn build_session(
    shards: &ShardServer,
    server: &Arc<NfsServer>,
    root_fh: &Fh3,
    world: &SessionMaterial,
    secure: bool,
) -> Nfs3Client {
    let level = if secure { SecurityLevel::AeadCipher } else { SecurityLevel::None };
    let server_cfg = proxy_config(world, level);
    let acl_client = {
        let mut c = Nfs3Client::new(Box::new(LoopbackStream::new(server.clone())));
        c.set_cred(OpaqueAuth::sys(&AuthSysParams::new("file-host", 0, 0)));
        c
    };
    let proxy = ServerProxy::new(
        server_cfg.clone(),
        &grid_peer(world),
        Box::new(LoopbackStream::new(server.clone())),
        acl_client,
        root_fh.clone(),
    )
    .unwrap();

    let (client_end, server_end) = pipe_pair();
    let watch = server_end.watch();
    let client_stream: sgfs_net::BoxStream = if secure {
        let scfg = server_cfg.gtls().unwrap();
        let mut ccfg = proxy_config(world, level);
        ccfg.credential = Some(world.user.clone());
        ccfg.expected_peer = Some(world.server.effective_dn().clone());
        // Both resumable machines alternate on this thread: session setup
        // spawns no handshake thread at all.
        let client_watch = client_end.watch();
        let (client_tls, server_tls) = handshake_pair(
            GtlsHandshake::client(Box::new(client_end), Some(client_watch), ccfg.gtls().unwrap()),
            GtlsHandshake::server(Box::new(server_end), Some(watch.clone()), scfg),
        )
        .unwrap();
        shards.add_session(Box::new(server_tls), watch, proxy).unwrap();
        Box::new(client_tls)
    } else {
        shards.add_session(Box::new(server_end), watch, proxy).unwrap();
        Box::new(client_end)
    };
    let mut nfs = Nfs3Client::new(client_stream);
    nfs.set_cred(OpaqueAuth::sys(&AuthSysParams::new("compute-host", JOB_UID, JOB_UID)));
    nfs
}

#[test]
fn sixty_four_sessions_one_sharded_server() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let threads_before = process_thread_count();

    let world = GridWorld::new().material();
    let (server, root_fh) = nfsd();
    let shards = ShardServer::new(SHARDS);

    // Build 64 sessions (every 8th over GTLS) and create each one's file.
    let mut clients: Vec<(usize, Nfs3Client, Fh3)> = Vec::new();
    for i in 0..SESSIONS {
        let mut nfs = build_session(&shards, &server, &root_fh, &world, i % 8 == 0);
        let (fh, _) = nfs
            .create(&root_fh, &format!("f{i}"), Sattr3 { mode: Some(0o644), ..Default::default() })
            .unwrap();
        clients.push((i, nfs, fh));
    }

    // Transient handshake threads have been joined: the 64 sessions may
    // cost at most the shard pool (plus harness slack).
    if let (Some(before), Some(now)) = (threads_before, process_thread_count()) {
        assert!(
            now <= before + SHARDS + 2,
            "64 pinned sessions must not grow the thread count beyond the \
             shard pool (before={before}, now={now}, shards={SHARDS})"
        );
    }

    // Drive all sessions concurrently from a bounded pool, round-robin so
    // each shard interleaves its sessions mid-script.
    let mut driver_work: Vec<Vec<(usize, Nfs3Client, Fh3)>> =
        (0..DRIVERS).map(|_| Vec::new()).collect();
    for (slot, entry) in clients.into_iter().enumerate() {
        driver_work[slot % DRIVERS].push(entry);
    }
    let drivers: Vec<_> = driver_work
        .into_iter()
        .map(|mut mine| {
            std::thread::spawn(move || {
                let scripts: Vec<Vec<Op>> = mine.iter().map(|(i, _, _)| script(*i)).collect();
                #[allow(clippy::needless_range_loop)]
                for round in 0..ROUNDS {
                    for (k, (i, nfs, fh)) in mine.iter_mut().enumerate() {
                        match scripts[k][round] {
                            Op::Write { offset, len } => {
                                let data = pattern(*i, offset, len);
                                nfs.write(fh, offset, data, StableHow::Unstable).unwrap();
                            }
                            Op::Read { offset, len } => {
                                // Whatever is on the server at this point
                                // must agree with a serial replay of this
                                // session's own prefix — verified cheaply
                                // by bounds (content is checked at the
                                // end against the full oracle).
                                let _ = nfs.read(fh, offset, len as u32).unwrap();
                            }
                            Op::Commit => {
                                nfs.commit(fh, 0, 0).unwrap();
                            }
                        }
                    }
                }
                mine
            })
        })
        .collect();
    let mut finished: Vec<(usize, Nfs3Client, Fh3)> = Vec::new();
    for d in drivers {
        finished.extend(d.join().unwrap());
    }

    // Byte-identical against the serial oracle, read back through each
    // session's own (still pinned) connection.
    for (i, nfs, fh) in &mut finished {
        let expect = oracle(*i);
        let mut got = Vec::new();
        loop {
            let res = nfs.read(fh, got.len() as u64, 64 * 1024).unwrap();
            got.extend_from_slice(&res.data);
            if res.eof {
                break;
            }
        }
        assert_eq!(got.len(), expect.len(), "session {i}: file length diverged");
        assert!(got == expect, "session {i}: file bytes diverged from serial oracle");
    }

    let stats = shards.stats();
    assert_eq!(stats.accepted, SESSIONS as u64);
    assert_eq!(stats.active, SESSIONS, "all sessions still pinned");
    assert!(stats.served as usize >= SESSIONS * (ROUNDS + 1), "every call was shard-served");

    // Still bounded after the drivers are gone.
    if let (Some(before), Some(now)) = (threads_before, process_thread_count()) {
        assert!(now <= before + SHARDS + 2, "thread ceiling after drive (before={before}, now={now})");
    }
}

// ---------------------------------------------------------------------
// The client-plane axis: 256 pipelines on one fixed client I/O pool.
// ---------------------------------------------------------------------

const PIPELINES: usize = 256;
const CLIENT_POOL: usize = 2;

/// Record echo with a marker suffix, served from the shard event loops.
struct PooledEcho;

impl sgfs_oncrpc::RecordService for PooledEcho {
    fn process_record(&self, record: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut r = record.to_vec();
        r.extend_from_slice(b":pooled");
        Ok(r)
    }
}

/// 256 concurrent client pipelines multiplexed onto a 2-worker
/// [`ClientIoPool`] against a sharded echo server: the client side of the
/// paper's scaling story. Asserts the client mirror of the server-side
/// thread ceiling — pipelines cost pool workers, not a reader thread
/// each — and that teardown returns the process to its exact thread
/// baseline (the reader-thread leak this PR fixes would strand 256).
#[test]
fn two_hundred_fifty_six_pipelines_one_client_pool() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let t0 = process_thread_count();

    let shards = ShardServer::new(SHARDS);
    let pool = ClientIoPool::new(CLIENT_POOL);

    let mut pipelines: Vec<(usize, Pipeline)> = Vec::new();
    for i in 0..PIPELINES {
        let (client_end, server_end) = pipe_pair();
        let watch = server_end.watch();
        shards.add_session(Box::new(server_end), watch, Arc::new(PooledEcho)).unwrap();
        let client_watch = client_end.watch();
        let p = Pipeline::with_recovery_on(
            &pool,
            Upstream::Plain(Box::new(client_end)),
            client_watch,
            8,
            None,
            ProxyStats::new(),
            None,
            RetryPolicy::default(),
        )
        .unwrap();
        pipelines.push((i, p));
    }
    assert!(
        wait_for(|| pool.active_conns() == PIPELINES),
        "every pipeline pinned to the pool (got {})",
        pool.active_conns()
    );

    // Ceiling while everything is live: the shard pool plus the client
    // pool, never a thread per pipeline.
    if let (Some(before), Some(now)) = (t0, process_thread_count()) {
        assert!(
            now <= before + SHARDS + CLIENT_POOL + 2,
            "256 pipelines must cost pool workers, not reader threads \
             (before={before}, now={now}, shards={SHARDS}, pool={CLIENT_POOL})"
        );
    }

    // Drive all pipelines concurrently from a bounded driver pool.
    let mut driver_work: Vec<Vec<(usize, Pipeline)>> = (0..DRIVERS).map(|_| Vec::new()).collect();
    for (slot, entry) in pipelines.into_iter().enumerate() {
        driver_work[slot % DRIVERS].push(entry);
    }
    let drivers: Vec<_> = driver_work
        .into_iter()
        .map(|mine| {
            std::thread::spawn(move || {
                for round in 0..4u32 {
                    // Submit one call per pipeline, then collect: keeps
                    // DRIVERS × (PIPELINES / DRIVERS) calls in flight
                    // across the pool at once.
                    let pending: Vec<_> = mine
                        .iter()
                        .map(|(i, p)| {
                            let mut record = (*i as u32).to_be_bytes().to_vec();
                            record.extend_from_slice(&round.to_be_bytes());
                            record.extend_from_slice(b"payload");
                            (record.clone(), p.submit(record))
                        })
                        .collect();
                    for (record, reply) in pending {
                        let got = reply.wait().expect("pooled echo reply");
                        assert_eq!(got.len(), record.len() + 7, "echo shape");
                        assert!(got.ends_with(b":pooled"), "served by the shard echo");
                        assert_eq!(&got[..record.len()], &record[..], "xid restored");
                    }
                }
                mine
            })
        })
        .collect();
    let mut finished = Vec::new();
    for d in drivers {
        finished.extend(d.join().unwrap());
    }

    // Teardown: dropping every handle retires each pipeline's pool slot
    // (stats flushed, no join leaks) and the thread count returns to the
    // exact pre-test baseline once the pools themselves are gone.
    drop(finished);
    assert!(
        wait_for(|| pool.active_conns() == 0),
        "all pipeline slots retired after the last handle dropped"
    );
    drop(shards);
    drop(pool);
    if let Some(before) = t0 {
        assert!(
            wait_for(|| process_thread_count().is_some_and(|now| now <= before)),
            "thread count must return to baseline after teardown \
             (before={before}, now={:?})",
            process_thread_count()
        );
    }
}
