//! Fault-matrix tests for the fail-safe upstream channel.
//!
//! A seed-driven [`FaultInjector`] subjects the pipelined channel to
//! mid-record EOFs, partial writes, connect refusals and latency spikes;
//! the properties checked are the recovery contract of DESIGN.md:
//!
//! 1. Every `PendingReply::wait` terminates (success, clean error, or
//!    deadline) — no fault schedule may hang a caller.
//! 2. For idempotent calls the replies a faulted run produces are
//!    byte-identical to the fault-free run.
//! 3. A COMMIT never reaches the server before every WRITE it covers,
//!    even when the WRITEs were replayed across a reconnection.
//! 4. A changed write verifier forces re-transmission of unstable WRITEs
//!    (the NFSv3 crash-recovery contract).
//! 5. The ACCESS cache answers only for bits it has actually checked.
//! 6. On a GTLS channel, byte corruption is detected by the record MAC
//!    and cured by a reconnect + handshake (plain transports cannot see
//!    corruption — TCP checksums are the only line of defense there, so
//!    the plain-transport matrix excludes the corruption fault).
//! 7. In a striped session, any seeded fault schedule on one upstream
//!    member leaves traffic on the other members unperturbed: every read
//!    still returns fault-free bytes (recovered in place or failed over
//!    to the block's surviving replica), and no healthy member is ever
//!    re-dialed or marked down.
//! 8. A mid-handshake fault surfaces as a value-level dial error and the
//!    next dial recovers the channel.
//! 9. (See 7 — the striped axis, run as a property over seeds.)
//! 10. Under sustained JUKEBOX pushback (server-side admission control)
//!     the client retries the same call verbatim with capped backoff,
//!     never duplicates a non-idempotent call, and completes the moment
//!     admission reopens.

use proptest::prelude::*;
use sgfs::config::{CacheMode, RetryPolicy, SecurityLevel, SessionConfig, StripePolicy};
use sgfs::proxy::client::{ClientProxy, Upstream};
use sgfs::proxy::pipeline::Pipeline;
use sgfs::session::GridWorld;
use sgfs::stats::ProxyStats;
use sgfs_gtls::{handshake_pair, GtlsHandshake, GtlsStream, HsStatus};
use sgfs_net::{pipe_pair, BoxStream, FaultInjector, FaultPlan, FaultStream, PipeEnd};
use sgfs_nfs3::proc::{
    procnum, AccessArgs, AccessRes, CommitRes, GetAttrRes, ReadArgs, ReadRes, WriteArgs,
    WriteRes,
};
use sgfs_nfs3::types::*;
use sgfs_nfs3::{NFS_PROGRAM, NFS_VERSION};
use sgfs_oncrpc::msg::AuthSysParams;
use sgfs_oncrpc::record::{read_record, write_record};
use sgfs_oncrpc::{CallHeader, OpaqueAuth, ReplyHeader};
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder};
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// An encoded NFSv3 call record (valid `CallHeader` + body).
fn nfs_call(xid: u32, proc: u32, body: impl FnOnce(&mut XdrEncoder)) -> Vec<u8> {
    let header = CallHeader {
        xid,
        prog: NFS_PROGRAM,
        vers: NFS_VERSION,
        proc,
        cred: OpaqueAuth::sys(&AuthSysParams::new("test-host", 1001, 1001)),
        verf: OpaqueAuth::none(),
    };
    let mut enc = XdrEncoder::with_capacity(256);
    header.encode(&mut enc);
    body(&mut enc);
    enc.into_bytes()
}

/// The echo servers' deterministic request → reply transformation.
fn transform(request: &[u8]) -> Vec<u8> {
    let mut reply = request[0..4].to_vec();
    reply.extend_from_slice(b"ok:");
    reply.extend(request[4..].iter().rev());
    reply
}

fn base_attr(size: u64) -> Fattr3 {
    Fattr3 {
        ftype: FType3::Reg,
        mode: 0o644,
        nlink: 1,
        uid: 1001,
        gid: 1001,
        size,
        used: size,
        fsid: 1,
        fileid: 42,
        atime: NfsTime3 { seconds: 1, nseconds: 0 },
        mtime: NfsTime3 { seconds: 1, nseconds: 0 },
        ctime: NfsTime3 { seconds: 1, nseconds: 0 },
    }
}

fn reply_bytes<T: XdrEncode>(xid: u32, res: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(256);
    ReplyHeader::success(xid).encode(&mut enc);
    res.encode(&mut enc);
    enc.into_bytes()
}

fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        max_reconnects: 32,
        dial_attempts: 8,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        call_deadline: Some(Duration::from_secs(20)),
        ..RetryPolicy::default()
    }
}

// ---------------------------------------------------------------------
// 1+2. The plain-transport fault matrix: replies survive any schedule.
// ---------------------------------------------------------------------

fn echo_server(mut end: PipeEnd) {
    std::thread::spawn(move || loop {
        match read_record(&mut end) {
            Ok(Some(r)) => {
                if write_record(&mut end, &transform(&r)).is_err() {
                    return;
                }
            }
            _ => return,
        }
    });
}

/// A plan from the injector minus corruption: a plaintext pipe has no
/// MAC, so a flipped byte would be silently *delivered*, not recovered.
/// Corruption is exercised on the GTLS channel below.
fn plain_plan(inj: &FaultInjector) -> FaultPlan {
    let mut plan = inj.next_plan();
    plan.corrupt_read_at = None;
    plan
}

fn faulted_case(seed: u64, n: usize) {
    let inj = FaultInjector::new(seed, 4);

    let (first_end, first_srv) = pipe_pair();
    echo_server(first_srv);
    // Readiness watches the raw wire beneath the fault layer: arrivals
    // are arrivals whether or not the injector mangles the read.
    let first_watch = first_end.watch();
    let first = FaultStream::new(Box::new(first_end), plain_plan(&inj));

    let dialer = inj.clone();
    let reconnect = move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
        if dialer.refuse_connect() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "injected connect refusal",
            ));
        }
        let (end, srv) = pipe_pair();
        echo_server(srv);
        let watch = end.watch();
        Ok((
            Upstream::Plain(Box::new(FaultStream::new(Box::new(end), plain_plan(&dialer)))),
            watch,
        ))
    };

    let stats = ProxyStats::new();
    let pipeline = Pipeline::with_recovery(
        Upstream::Plain(Box::new(first)),
        first_watch,
        8,
        None,
        stats.clone(),
        Some(Box::new(reconnect)),
        quick_retry(),
    );

    // All-idempotent workload: GETATTRs with distinct handles.
    let records: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            nfs_call(0x100 + i as u32, procnum::GETATTR, |enc| {
                Fh3::from_ino(1, i as u64).encode(enc)
            })
        })
        .collect();
    let expected: Vec<Vec<u8>> = records.iter().map(|r| transform(r)).collect();

    let pending = pipeline.submit_batch(records);
    for (i, (reply, want)) in pending.into_iter().zip(&expected).enumerate() {
        // Property 1: wait() terminates (the 20 s deadline converts any
        // residual hang into a loud failure). Property 2: with a finite
        // fault budget and an idempotent workload, recovery must deliver
        // every reply, byte-identical to the fault-free run.
        let got = reply.wait().unwrap_or_else(|e| {
            panic!(
                "call {i} failed under fault schedule: {e} (reconnects={}, replays={})",
                stats.reconnects(),
                stats.replays()
            )
        });
        prop_assert_eq!(&got, want, "call {} diverged from fault-free run", i);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn faulted_channel_yields_fault_free_replies(seed: u64, n in 1usize..8) {
        faulted_case(seed, n);
    }
}

// ---------------------------------------------------------------------
// 3. COMMIT never precedes a WRITE replayed across a reconnection.
// ---------------------------------------------------------------------

/// Serves the full mock-NFS surface, logging `(proc, offset)` into a log
/// shared across connection generations.
fn logging_nfs_server(mut end: PipeEnd, log: Arc<Mutex<Vec<(u32, u64)>>>) {
    std::thread::spawn(move || loop {
        let record = match read_record(&mut end) {
            Ok(Some(r)) => r,
            _ => return,
        };
        let mut dec = XdrDecoder::new(&record);
        let header = CallHeader::decode(&mut dec).expect("call header");
        let reply = match header.proc {
            procnum::GETATTR => {
                log.lock().unwrap().push((header.proc, 0));
                reply_bytes(
                    header.xid,
                    &GetAttrRes { status: NfsStat3::Ok, attr: Some(base_attr(0)) },
                )
            }
            procnum::WRITE => {
                let args =
                    WriteArgs::from_xdr_bytes(&record[dec.position()..]).expect("write args");
                log.lock().unwrap().push((header.proc, args.offset));
                reply_bytes(
                    header.xid,
                    &WriteRes {
                        status: NfsStat3::Ok,
                        wcc: WccData { before: None, after: Some(base_attr(args.offset)) },
                        count: args.data.len() as u32,
                        committed: StableHow::Unstable,
                        verf: 7,
                    },
                )
            }
            procnum::COMMIT => {
                log.lock().unwrap().push((header.proc, 0));
                reply_bytes(
                    header.xid,
                    &CommitRes {
                        status: NfsStat3::Ok,
                        wcc: WccData { before: None, after: Some(base_attr(0)) },
                        verf: 7,
                    },
                )
            }
            other => panic!("unexpected proc {other}"),
        };
        if write_record(&mut end, &reply).is_err() {
            return;
        }
    });
}

/// Absorb `blocks` unstable WRITEs into the proxy's write-back cache via
/// its downstream interface, then shut the downstream and hand the proxy
/// back for flushing.
fn ingest_writes(proxy: ClientProxy, blocks: usize, block_len: usize) -> ClientProxy {
    let (mut down, proxy_down) = pipe_pair();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(proxy.run(Box::new(proxy_down)));
    });
    let fh = Fh3::from_ino(1, 42);
    for i in 0..blocks {
        let record = nfs_call(0x200 + i as u32, procnum::WRITE, |enc| {
            WriteArgs {
                file: fh.clone(),
                offset: (i * block_len) as u64,
                stable: StableHow::Unstable,
                data: vec![i as u8; block_len],
            }
            .encode(enc)
        });
        write_record(&mut down, &record).unwrap();
        let reply = read_record(&mut down).unwrap().expect("local WRITE ack");
        let mut dec = XdrDecoder::new(&reply);
        let _ = ReplyHeader::decode(&mut dec).expect("reply header");
        let res = WriteRes::from_xdr_bytes(&reply[dec.position()..]).expect("write res");
        assert_eq!(res.status, NfsStat3::Ok, "block {i} not absorbed");
    }
    drop(down);
    let (proxy, run_result) = rx.recv().expect("proxy thread");
    run_result.expect("proxy loop");
    proxy
}

#[test]
fn commit_follows_writes_replayed_across_reconnect() {
    const BLOCKS: usize = 3;
    const BLOCK_LEN: usize = 512;
    let log: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));

    // Connection #1 swallows one record and dies without replying: the
    // flush's WRITEs are all in flight when the channel collapses.
    let (upstream_end, dead_srv) = pipe_pair();
    {
        let log = log.clone();
        std::thread::spawn(move || {
            let mut end = dead_srv;
            if let Ok(Some(record)) = read_record(&mut end) {
                let mut dec = XdrDecoder::new(&record);
                let header = CallHeader::decode(&mut dec).expect("call header");
                if header.proc == procnum::WRITE {
                    let args = WriteArgs::from_xdr_bytes(&record[dec.position()..])
                        .expect("write args");
                    log.lock().unwrap().push((header.proc, args.offset));
                }
            }
            // Drop: both pipe directions close, the pipeline recovers.
        });
    }

    let relog = log.clone();
    let reconnect = move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
        let (end, srv) = pipe_pair();
        logging_nfs_server(srv, relog.clone());
        let watch = end.watch();
        Ok((Upstream::Plain(Box::new(end)), watch))
    };

    let mut config = SessionConfig::new(SecurityLevel::None);
    config.cache = CacheMode::MemoryMeta;
    config.window = 8;
    config.retry = quick_retry();
    let up_watch = upstream_end.watch();
    let proxy = ClientProxy::with_reconnector(
        Upstream::Plain(Box::new(upstream_end)),
        up_watch,
        &config,
        Some(Box::new(reconnect)),
    )
    .expect("proxy");
    let stats = proxy.stats().clone();

    let mut proxy = ingest_writes(proxy, BLOCKS, BLOCK_LEN);
    proxy.flush_all().expect("flush survives the reconnect");

    assert_eq!(stats.reconnects(), 1, "exactly one recovery episode");
    assert!(stats.replays() >= 1, "the in-flight WRITEs were replayed");

    let log = log.lock().unwrap().clone();
    let commits: Vec<usize> =
        (0..log.len()).filter(|&i| log[i].0 == procnum::COMMIT).collect();
    let writes: Vec<usize> =
        (0..log.len()).filter(|&i| log[i].0 == procnum::WRITE).collect();
    assert_eq!(commits.len(), 1, "exactly one COMMIT: {log:?}");
    assert!(
        writes.iter().all(|&w| w < commits[0]),
        "COMMIT preceded a (replayed) WRITE: {log:?}"
    );
    // Every block reached the server despite the dead first connection.
    let mut offsets: Vec<u64> = writes.iter().map(|&w| log[w].1).collect();
    offsets.sort_unstable();
    offsets.dedup();
    assert_eq!(
        offsets,
        (0..BLOCKS as u64).map(|i| i * BLOCK_LEN as u64).collect::<Vec<_>>(),
        "all blocks written back: {log:?}"
    );
}

// ---------------------------------------------------------------------
// 4. A changed write verifier forces re-transmission of unstable WRITEs.
// ---------------------------------------------------------------------

#[test]
fn verifier_change_forces_unstable_write_resend() {
    const BLOCKS: usize = 3;
    const BLOCK_LEN: usize = 512;
    let log: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));

    // A server that "reboots" after the first WRITE: later replies carry
    // a different verifier, so round one's unstable data must be treated
    // as lost and re-sent.
    let (upstream_end, srv) = pipe_pair();
    {
        let log = log.clone();
        std::thread::spawn(move || {
            let mut end = srv;
            let mut writes_served = 0u32;
            loop {
                let record = match read_record(&mut end) {
                    Ok(Some(r)) => r,
                    _ => return,
                };
                let mut dec = XdrDecoder::new(&record);
                let header = CallHeader::decode(&mut dec).expect("call header");
                let verf = if writes_served < 1 { 7 } else { 9 };
                let reply = match header.proc {
                    procnum::WRITE => {
                        let args = WriteArgs::from_xdr_bytes(&record[dec.position()..])
                            .expect("write args");
                        log.lock().unwrap().push((header.proc, args.offset));
                        writes_served += 1;
                        reply_bytes(
                            header.xid,
                            &WriteRes {
                                status: NfsStat3::Ok,
                                wcc: WccData {
                                    before: None,
                                    after: Some(base_attr(args.offset)),
                                },
                                count: args.data.len() as u32,
                                committed: StableHow::Unstable,
                                verf,
                            },
                        )
                    }
                    procnum::COMMIT => {
                        log.lock().unwrap().push((header.proc, 0));
                        reply_bytes(
                            header.xid,
                            &CommitRes {
                                status: NfsStat3::Ok,
                                wcc: WccData { before: None, after: Some(base_attr(0)) },
                                verf: 9,
                            },
                        )
                    }
                    procnum::GETATTR => reply_bytes(
                        header.xid,
                        &GetAttrRes { status: NfsStat3::Ok, attr: Some(base_attr(0)) },
                    ),
                    other => panic!("unexpected proc {other}"),
                };
                if write_record(&mut end, &reply).is_err() {
                    return;
                }
            }
        });
    }

    let mut config = SessionConfig::new(SecurityLevel::None);
    config.cache = CacheMode::MemoryMeta;
    config.window = 8;
    let up_watch = upstream_end.watch();
    let proxy = ClientProxy::new(Upstream::Plain(Box::new(upstream_end)), up_watch, &config)
        .expect("proxy");
    let mut proxy = ingest_writes(proxy, BLOCKS, BLOCK_LEN);
    proxy.flush_all().expect("flush converges once the verifier settles");

    let log = log.lock().unwrap().clone();
    let writes = log.iter().filter(|(p, _)| *p == procnum::WRITE).count();
    let commits = log.iter().filter(|(p, _)| *p == procnum::COMMIT).count();
    // Round one saw verifiers 7 then 9 → every block re-sent in round
    // two, which COMMITs consistently at 9.
    assert_eq!(writes, 2 * BLOCKS, "verifier change re-sends every unstable WRITE: {log:?}");
    assert_eq!(commits, 2, "one COMMIT per flush round: {log:?}");
    assert_eq!(log.last().map(|(p, _)| *p), Some(procnum::COMMIT));
}

// ---------------------------------------------------------------------
// 5. ACCESS cache answers only for bits it has actually checked.
// ---------------------------------------------------------------------

#[test]
fn access_cache_consults_server_for_unchecked_bits() {
    let access_calls = Arc::new(AtomicU32::new(0));
    let (upstream_end, srv) = pipe_pair();
    {
        let access_calls = access_calls.clone();
        std::thread::spawn(move || {
            let mut end = srv;
            loop {
                let record = match read_record(&mut end) {
                    Ok(Some(r)) => r,
                    _ => return,
                };
                let mut dec = XdrDecoder::new(&record);
                let header = CallHeader::decode(&mut dec).expect("call header");
                let reply = match header.proc {
                    procnum::ACCESS => {
                        access_calls.fetch_add(1, Ordering::SeqCst);
                        let args = AccessArgs::from_xdr_bytes(&record[dec.position()..])
                            .expect("access args");
                        // Grant exactly what was asked: the cache must
                        // remember *which* bits were asked, not assume
                        // its stored mask answers every query.
                        reply_bytes(
                            header.xid,
                            &AccessRes {
                                status: NfsStat3::Ok,
                                obj_attr: Some(base_attr(0)),
                                access: args.access,
                            },
                        )
                    }
                    procnum::GETATTR => reply_bytes(
                        header.xid,
                        &GetAttrRes { status: NfsStat3::Ok, attr: Some(base_attr(0)) },
                    ),
                    other => panic!("unexpected proc {other}"),
                };
                if write_record(&mut end, &reply).is_err() {
                    return;
                }
            }
        });
    }

    let mut config = SessionConfig::new(SecurityLevel::None);
    config.cache = CacheMode::MemoryMeta;
    let up_watch = upstream_end.watch();
    let proxy = ClientProxy::new(Upstream::Plain(Box::new(upstream_end)), up_watch, &config)
        .expect("proxy");

    let (mut down, proxy_down) = pipe_pair();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(proxy.run(Box::new(proxy_down)));
    });

    let fh = Fh3::from_ino(1, 42);
    let mut ask = |xid: u32, mask: u32| -> u32 {
        let record = nfs_call(xid, procnum::ACCESS, |enc| {
            AccessArgs { object: fh.clone(), access: mask }.encode(enc)
        });
        write_record(&mut down, &record).unwrap();
        let reply = read_record(&mut down).unwrap().expect("ACCESS reply");
        let mut dec = XdrDecoder::new(&reply);
        let _ = ReplyHeader::decode(&mut dec).expect("reply header");
        let res = AccessRes::from_xdr_bytes(&reply[dec.position()..]).expect("access res");
        assert_eq!(res.status, NfsStat3::Ok);
        res.access
    };

    assert_eq!(ask(1, 0x1), 0x1);
    assert_eq!(access_calls.load(Ordering::SeqCst), 1, "first mask goes upstream");
    // The regression: 0x2 was never checked — a mask-blind cache would
    // answer "granted: 0" (or worse) from the 0x1 entry.
    assert_eq!(ask(2, 0x2), 0x2);
    assert_eq!(access_calls.load(Ordering::SeqCst), 2, "unchecked bit must go upstream");
    // Both bits now checked: the union is served from cache.
    assert_eq!(ask(3, 0x3), 0x3);
    assert_eq!(access_calls.load(Ordering::SeqCst), 2, "checked union served from cache");
    // A genuinely new bit still punches through.
    assert_eq!(ask(4, 0x4), 0x4);
    assert_eq!(access_calls.load(Ordering::SeqCst), 3);

    drop(down);
    let (_proxy, run_result) = rx.recv().expect("proxy thread");
    run_result.expect("proxy loop");
}

// ---------------------------------------------------------------------
// 6. GTLS detects corruption; a reconnect (fresh handshake) cures it.
// ---------------------------------------------------------------------

/// Flips one ciphertext byte of the first GTLS data record after being
/// armed. The first armed read delivers the 5-byte record header
/// untouched; the second read's first byte is ciphertext/MAC material.
struct CorruptOnce {
    inner: PipeEnd,
    armed: Arc<AtomicBool>,
    armed_reads: u32,
    done: bool,
}

impl Read for CorruptOnce {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if self.armed.load(Ordering::SeqCst) && !self.done && n > 0 {
            self.armed_reads += 1;
            if self.armed_reads >= 2 {
                buf[0] ^= 0x55;
                self.done = true;
            }
        }
        Ok(n)
    }
}

impl std::io::Write for CorruptOnce {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[test]
fn gtls_mac_detects_corruption_and_reconnect_cures_it() {
    let world = GridWorld::new();
    let material = world.material();

    let mut server_side = SessionConfig::new(SecurityLevel::IntegrityOnly);
    server_side.credential = Some(material.server.clone());
    server_side.trust = material.trust.clone();
    let mut client_side = SessionConfig::new(SecurityLevel::IntegrityOnly);
    client_side.credential = Some(material.user.clone());
    client_side.trust = material.trust.clone();
    let server_gtls = server_side.gtls().expect("suite");
    let client_gtls = client_side.gtls().expect("suite");

    // Acceptor: every dialed connection gets a full server handshake and
    // a GTLS-side echo loop.
    let (accept_tx, accept_rx) = mpsc::channel::<BoxStream>();
    std::thread::spawn(move || {
        while let Ok(end) = accept_rx.recv() {
            let cfg = server_gtls.clone();
            std::thread::spawn(move || {
                let mut tls = match GtlsStream::server(end, cfg) {
                    Ok(t) => t,
                    Err(_) => return,
                };
                loop {
                    match read_record(&mut tls) {
                        Ok(Some(r)) => {
                            if write_record(&mut tls, &transform(&r)).is_err() {
                                return;
                            }
                        }
                        _ => return,
                    }
                }
            });
        }
    });

    // Connection #1 through the corrupting tap (armed after handshake).
    let armed = Arc::new(AtomicBool::new(false));
    let (client_end, server_end) = pipe_pair();
    accept_tx.send(Box::new(server_end)).unwrap();
    // Watch the raw pipe beneath both the tap and the GTLS layer.
    let first_watch = client_end.watch();
    let tap = CorruptOnce {
        inner: client_end,
        armed: armed.clone(),
        armed_reads: 0,
        done: false,
    };
    let first =
        GtlsStream::client(Box::new(tap), client_gtls.clone()).expect("initial handshake");
    armed.store(true, Ordering::SeqCst);

    let redial_tx = accept_tx.clone();
    let reconnect = move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
        let (c, s) = pipe_pair();
        redial_tx.send(Box::new(s)).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "acceptor gone")
        })?;
        let watch = c.watch();
        let tls = GtlsStream::client(Box::new(c), client_gtls.clone())
            .map_err(std::io::Error::from)?;
        Ok((Upstream::Tls(Box::new(tls)), watch))
    };

    let stats = ProxyStats::new();
    let pipeline = Pipeline::with_recovery(
        Upstream::Tls(Box::new(first)),
        first_watch,
        4,
        None,
        stats.clone(),
        Some(Box::new(reconnect)),
        quick_retry(),
    );

    let record = nfs_call(0x1, procnum::GETATTR, |enc| Fh3::from_ino(1, 1).encode(enc));
    let want = transform(&record);
    let got = pipeline.call(record).expect("reply survives the corrupted record");
    assert_eq!(got, want, "reply identical to the fault-free run");
    assert_eq!(stats.reconnects(), 1, "the MAC failure forced one reconnect");
    assert_eq!(
        pipeline.handshake_count(),
        Some(2),
        "the replacement channel ran a fresh full handshake"
    );
}

// ---------------------------------------------------------------------
// 7. The sharded-mode axis: faults on the readiness path still recover,
//    and a faulted session never disturbs its shard neighbors.
// ---------------------------------------------------------------------

/// Echo service driven by the shard event loop (no RPC decoding: the
/// transform makes reply/request correspondence byte-checkable).
struct ShardEcho;

impl sgfs_oncrpc::RecordService for ShardEcho {
    fn process_record(&self, record: &[u8]) -> std::io::Result<Vec<u8>> {
        Ok(transform(record))
    }
}

/// Pin a fresh faulted connection (seeded plan: mid-record EOF, partial
/// write, latency spike — everything but corruption, this is plaintext)
/// onto `shards` and return the client end.
fn add_faulted_session(
    shards: &Arc<sgfs_oncrpc::ShardServer>,
    inj: &Arc<FaultInjector>,
) -> PipeEnd {
    let (client_end, server_end) = pipe_pair();
    // Watch the raw wire, then wrap: readiness must see arrivals whether
    // or not the fault layer later mangles them.
    let watch = server_end.watch();
    let faulted = FaultStream::new(Box::new(server_end), plain_plan(inj));
    shards
        .add_session(Box::new(faulted), watch, Arc::new(ShardEcho))
        .expect("shard accepts the session");
    client_end
}

fn sharded_faulted_case(seed: u64, n: usize) {
    // ONE shard: the faulted session and its neighbors share an event
    // loop, so any interference would be on-thread and deterministic.
    let shards = sgfs_oncrpc::ShardServer::new(1);
    let inj = FaultInjector::new(seed, 4);

    // Three healthy neighbors, pinned before and driven concurrently.
    let neighbors: Vec<_> = (0..3u32)
        .map(|k| {
            let (client_end, server_end) = pipe_pair();
            let watch = server_end.watch();
            shards
                .add_session(Box::new(server_end), watch, Arc::new(ShardEcho))
                .expect("neighbor pinned");
            std::thread::spawn(move || {
                let mut end = client_end;
                for i in 0..24u32 {
                    let record = nfs_call(0x9000 + k * 64 + i, procnum::GETATTR, |enc| {
                        Fh3::from_ino(2, u64::from(i)).encode(enc)
                    });
                    write_record(&mut end, &record).expect("neighbor write");
                    let reply =
                        read_record(&mut end).expect("neighbor read").expect("neighbor reply");
                    assert_eq!(reply, transform(&record), "neighbor {k} reply diverged");
                }
            })
        })
        .collect();

    // The faulted session recovers through the same accept → pin path.
    let first = add_faulted_session(&shards, &inj);
    let first_watch = first.watch();
    let dial_shards = shards.clone();
    let dialer = inj.clone();
    let reconnect = move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
        if dialer.refuse_connect() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "injected connect refusal",
            ));
        }
        let end = add_faulted_session(&dial_shards, &dialer);
        let watch = end.watch();
        Ok((Upstream::Plain(Box::new(end)), watch))
    };
    let stats = ProxyStats::new();
    let pipeline = Pipeline::with_recovery(
        Upstream::Plain(Box::new(first)),
        first_watch,
        8,
        None,
        stats.clone(),
        Some(Box::new(reconnect)),
        quick_retry(),
    );

    let records: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            nfs_call(0x700 + i as u32, procnum::GETATTR, |enc| {
                Fh3::from_ino(1, i as u64).encode(enc)
            })
        })
        .collect();
    let expected: Vec<Vec<u8>> = records.iter().map(|r| transform(r)).collect();
    let pending = pipeline.submit_batch(records);
    for (i, (reply, want)) in pending.into_iter().zip(&expected).enumerate() {
        let got = reply.wait().unwrap_or_else(|e| {
            panic!(
                "sharded call {i} failed under fault schedule: {e} (reconnects={})",
                stats.reconnects()
            )
        });
        prop_assert_eq!(&got, want, "sharded call {} diverged from fault-free run", i);
    }

    // The neighbors finished every round regardless of the fault storm.
    for (k, t) in neighbors.into_iter().enumerate() {
        t.join().unwrap_or_else(|_| panic!("neighbor {k} died"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn sharded_faulted_channel_recovers_without_neighbor_interference(
        seed: u64, n in 1usize..8,
    ) {
        sharded_faulted_case(seed, n);
    }
}

// ---------------------------------------------------------------------
// 8. A mid-handshake fault is a value-level dial error on the calling
//    thread — the resumable machine is simply dropped — and the next
//    dial recovers the channel.
// ---------------------------------------------------------------------

#[test]
fn mid_handshake_fault_fails_dial_cleanly_and_next_dial_recovers() {
    let world = GridWorld::new();
    let material = world.material();
    let mut server_side = SessionConfig::new(SecurityLevel::IntegrityOnly);
    server_side.credential = Some(material.server.clone());
    server_side.trust = material.trust.clone();
    let mut client_side = SessionConfig::new(SecurityLevel::IntegrityOnly);
    client_side.credential = Some(material.user.clone());
    client_side.trust = material.trust.clone();
    let server_gtls = server_side.gtls().expect("suite");
    let client_gtls = client_side.gtls().expect("suite");

    let shards = sgfs_oncrpc::ShardServer::new(1);
    let attempts = Arc::new(AtomicU32::new(0));
    // Server ends of stalled dials, kept alive and silent: the half-open
    // peer that would wedge a blocking handshake (and whatever thread ran
    // it) forever.
    let stalled: Arc<Mutex<Vec<PipeEnd>>> = Arc::new(Mutex::new(Vec::new()));

    let dial_attempts = attempts.clone();
    let dial_stalled = stalled.clone();
    let dial_shards = shards.clone();
    let sg = server_gtls.clone();
    let cg = client_gtls;
    let reconnect = move |_a: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
        let n = dial_attempts.fetch_add(1, Ordering::SeqCst);
        let (c, s) = pipe_pair();
        let c_watch = c.watch();
        if n < 2 {
            let mut hs = GtlsHandshake::client(Box::new(c), Some(c_watch), cg.clone());
            if n == 0 {
                // Fault axis A: the peer dies mid-handshake. The machine
                // reports it as a plain error on this very thread.
                drop(s);
                let err = hs.advance().expect_err("dead peer must fail the handshake");
                return Err(std::io::Error::new(std::io::ErrorKind::ConnectionRefused, err));
            }
            // Fault axis B: the peer stays half-open but silent. The
            // machine parks at Pending; abandoning the dial is dropping a
            // value — no thread is left blocked on the dead handshake.
            dial_stalled.lock().unwrap().push(s);
            for _ in 0..3 {
                match hs.advance() {
                    Ok(HsStatus::Pending) => {}
                    other => panic!("silent peer must leave the machine pending: {other:?}"),
                }
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "mid-handshake stall abandoned",
            ));
        }
        // Healthy dial: both machines alternate inline, the fresh server
        // side pins straight onto the shard core.
        let s_watch = s.watch();
        let (client_tls, server_tls) = handshake_pair(
            GtlsHandshake::client(Box::new(c), Some(c_watch.clone()), cg.clone()),
            GtlsHandshake::server(Box::new(s), Some(s_watch.clone()), sg.clone()),
        )
        .map_err(std::io::Error::from)?;
        dial_shards
            .add_session(Box::new(server_tls), s_watch, Arc::new(ShardEcho))
            .expect("shard accepts the recovered session");
        Ok((Upstream::Tls(Box::new(client_tls)), c_watch))
    };

    // The first channel is born dead, so the first call triggers recovery
    // immediately and walks the dial sequence above.
    let (dead, gone) = pipe_pair();
    let dead_watch = dead.watch();
    drop(gone);
    let stats = ProxyStats::new();
    let pipeline = Pipeline::with_recovery(
        Upstream::Plain(Box::new(dead)),
        dead_watch,
        4,
        None,
        stats.clone(),
        Some(Box::new(reconnect)),
        quick_retry(),
    );

    let record = nfs_call(0x1, procnum::GETATTR, |enc| Fh3::from_ino(1, 9).encode(enc));
    let want = transform(&record);
    let got = pipeline.call(record).expect("reply after two faulted dials");
    assert_eq!(got, want, "reply identical to the fault-free run");
    assert_eq!(attempts.load(Ordering::SeqCst), 3, "two faulted dials, then one good one");
    assert_eq!(stats.reconnects(), 1, "one recovery episode despite the handshake faults");
}

// ---------------------------------------------------------------------
// 9. The multi-upstream axis: a fault schedule on one stripe member is
//    that member's problem alone.
// ---------------------------------------------------------------------

/// Byte-checkable content replica for the striped axis: READ returns a
/// deterministic function of the offset, so a reply is verifiable no
/// matter which replica (or which connection generation) served it.
/// `dials` counts connection generations onto this member's content.
fn stripe_content_server(mut end: PipeEnd, dials: Arc<AtomicU32>) {
    dials.fetch_add(1, Ordering::SeqCst);
    std::thread::spawn(move || loop {
        let record = match read_record(&mut end) {
            Ok(Some(r)) => r,
            _ => return,
        };
        let mut dec = XdrDecoder::new(&record);
        let header = CallHeader::decode(&mut dec).expect("call header");
        let reply = match header.proc {
            procnum::READ => {
                let args =
                    ReadArgs::from_xdr_bytes(&record[dec.position()..]).expect("read args");
                let data = stripe_block_content(args.offset, args.count as usize);
                reply_bytes(
                    header.xid,
                    &ReadRes {
                        status: NfsStat3::Ok,
                        attr: Some(base_attr(1 << 20)),
                        count: data.len() as u32,
                        eof: false,
                        data,
                    },
                )
            }
            other => panic!("unexpected proc {other} at a stripe member"),
        };
        if write_record(&mut end, &reply).is_err() {
            return;
        }
    });
}

/// The deterministic block content every replica agrees on.
fn stripe_block_content(offset: u64, count: usize) -> Vec<u8> {
    vec![(offset / 512) as u8 ^ 0x5A; count]
}

/// One striped case: width 3, 2 replicas per block, one member under a
/// seeded fault schedule (mid-record EOFs, partial writes, refusals,
/// latency — every plaintext fault), the other two clean and, pointedly,
/// with **no reconnector**: if the victim's faults perturbed a neighbor
/// in any way that tore its connection, that neighbor would die
/// terminally and the case would fail loudly.
fn striped_faulted_case(seed: u64, victim: usize, blocks: u64) {
    let inj = FaultInjector::new(seed, 4);
    let dials: Vec<Arc<AtomicU32>> = (0..3).map(|_| Arc::new(AtomicU32::new(0))).collect();

    let mut config = SessionConfig::new(SecurityLevel::None);
    config.cache = CacheMode::None; // forward everything: each READ hits the stripe
    config.window = 8;
    config.retry = quick_retry();
    config.stripe = Some(StripePolicy { width: 3, replicas: 2, block_size: 512 });

    let mut upstreams = Vec::new();
    for (m, dial) in dials.iter().enumerate() {
        let (end, srv) = pipe_pair();
        stripe_content_server(srv, dial.clone());
        let watch = end.watch();
        if m == victim {
            let first = FaultStream::new(Box::new(end), plain_plan(&inj));
            let dialer = inj.clone();
            let redial_count = dial.clone();
            let reconnect =
                move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
                    if dialer.refuse_connect() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionRefused,
                            "injected connect refusal",
                        ));
                    }
                    let (end, srv) = pipe_pair();
                    stripe_content_server(srv, redial_count.clone());
                    let watch = end.watch();
                    Ok((
                        Upstream::Plain(Box::new(FaultStream::new(
                            Box::new(end),
                            plain_plan(&dialer),
                        ))),
                        watch,
                    ))
                };
            upstreams.push((
                Upstream::Plain(Box::new(first)) as Upstream,
                watch,
                Some(Box::new(reconnect) as Box<dyn sgfs::proxy::retry::Reconnector>),
            ));
        } else {
            upstreams.push((Upstream::Plain(Box::new(end)) as Upstream, watch, None));
        }
    }
    let proxy = ClientProxy::with_stripe(upstreams, &config).expect("striped proxy");
    let stats = proxy.stats().clone();
    let set = proxy.stripe().expect("stripe set").clone();

    // Drive one READ per block through the proxy's downstream interface.
    let (mut down, proxy_down) = pipe_pair();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(proxy.run(Box::new(proxy_down)));
    });
    let fh = Fh3::from_ino(1, 42);
    for b in 0..blocks {
        let record = nfs_call(0x500 + b as u32, procnum::READ, |enc| {
            ReadArgs { file: fh.clone(), offset: b * 512, count: 512 }.encode(enc)
        });
        write_record(&mut down, &record).unwrap();
        let reply = read_record(&mut down).unwrap().expect("reply record");
        let mut dec = XdrDecoder::new(&reply);
        let _ = ReplyHeader::decode(&mut dec).expect("reply header");
        let res = ReadRes::from_xdr_bytes(&reply[dec.position()..]).expect("read res");
        // Property 2 of the striped axis: every reply carries fault-free
        // bytes, whether the victim recovered in place or the read failed
        // over to the block's surviving replica.
        prop_assert_eq!(res.status, NfsStat3::Ok, "block {} read failed", b);
        prop_assert_eq!(
            &res.data,
            &stripe_block_content(b * 512, 512),
            "block {} diverged from the fault-free content",
            b
        );
    }
    drop(down);
    let (_proxy, run_result) = rx.recv().expect("proxy thread");
    run_result.expect("proxy loop");

    // The healthy members were never perturbed: still in the set, never
    // re-dialed (their dial count is the initial connection only).
    for (m, dial) in dials.iter().enumerate() {
        if m == victim {
            continue;
        }
        prop_assert!(set.is_up(m), "healthy member {} left the set (seed {})", m, seed);
        prop_assert_eq!(dial.load(Ordering::SeqCst), 1, "healthy member {} was re-dialed", m);
    }
    // The victim either recovered in place or failed over — never more
    // than one member down, and a failover is counted exactly once.
    prop_assert!(stats.degraded() <= 1, "more than the victim went down");
    prop_assert!(stats.failovers() <= 1, "failover counted more than once");
    if !set.is_up(victim) {
        prop_assert_eq!(stats.failovers(), 1, "down victim without a counted failover");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn striped_member_faults_leave_neighbors_unperturbed(
        seed: u64,
        victim in 0usize..3,
        blocks in 4u64..16,
    ) {
        striped_faulted_case(seed, victim, blocks);
    }
}

// ---------------------------------------------------------------------
// 10. The overload axis: a client facing sustained JUKEBOX pushback
//     retries the exact same call under capped backoff, never
//     duplicates it, and completes once admission reopens.
// ---------------------------------------------------------------------

/// An upstream that sheds the first `sheds` arrivals of every call with
/// the production JUKEBOX reply (via [`sgfs::proxy::server::jukebox_nfs`],
/// the same bytes a real overloaded shard emits), then executes. Every
/// arriving record is logged verbatim; CREATE executions are counted.
fn pushback_nfs_server(
    mut end: PipeEnd,
    sheds: u32,
    log: Arc<Mutex<Vec<Vec<u8>>>>,
    executed: Arc<AtomicU32>,
) {
    std::thread::spawn(move || {
        let mut seen = 0u32;
        loop {
            let record = match read_record(&mut end) {
                Ok(Some(r)) => r,
                _ => return,
            };
            let mut dec = XdrDecoder::new(&record);
            let header = CallHeader::decode(&mut dec).expect("call header");
            log.lock().unwrap().push(record.clone());
            seen += 1;
            let reply = if seen <= sheds {
                sgfs::proxy::server::jukebox_nfs(header.xid, header.proc)
                    .expect("CREATE is shed-able")
            } else {
                match header.proc {
                    procnum::CREATE => {
                        executed.fetch_add(1, Ordering::SeqCst);
                        reply_bytes(
                            header.xid,
                            &sgfs_nfs3::proc::CreateRes {
                                status: NfsStat3::Ok,
                                obj: Some(Fh3::from_ino(1, 4242)),
                                obj_attr: Some(base_attr(0)),
                                dir_wcc: WccData { before: None, after: None },
                            },
                        )
                    }
                    other => panic!("unexpected proc {other} at the pushback server"),
                }
            };
            if write_record(&mut end, &reply).is_err() {
                return;
            }
        }
    });
}

#[test]
fn sustained_jukebox_retries_capped_backoff_without_duplicating_creates() {
    const SHEDS: u32 = 10;
    let log: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let executed = Arc::new(AtomicU32::new(0));

    let (upstream_end, srv) = pipe_pair();
    pushback_nfs_server(srv, SHEDS, log.clone(), executed.clone());

    let mut config = SessionConfig::new(SecurityLevel::None);
    config.cache = CacheMode::None; // forward verbatim: the wire shows the app's call
    config.retry = RetryPolicy {
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        jukebox_retries: 32,
        ..RetryPolicy::default()
    };
    let up_watch = upstream_end.watch();
    let proxy = ClientProxy::new(Upstream::Plain(Box::new(upstream_end)), up_watch, &config)
        .expect("proxy");
    let stats = proxy.stats().clone();

    let (mut down, proxy_down) = pipe_pair();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(proxy.run(Box::new(proxy_down)));
    });

    // One non-idempotent call; the server answers JUKEBOX ten times.
    let record = nfs_call(0x9000_0001, procnum::CREATE, |enc| {
        sgfs_nfs3::proc::CreateArgs {
            where_: DirOpArgs3 { dir: Fh3::from_ino(1, 2), name: "pushback".into() },
            how: sgfs_nfs3::proc::CreateMode::Unchecked(Sattr3::default()),
        }
        .encode(enc)
    });
    let t0 = std::time::Instant::now();
    write_record(&mut down, &record).expect("downstream write");
    let reply = read_record(&mut down).expect("downstream read").expect("reply");
    let elapsed = t0.elapsed();
    drop(down);
    let (_proxy, run_result) = rx.recv().expect("proxy thread");
    run_result.expect("proxy loop");

    // Completion: the reply is the executed CREATE, not a passed-through
    // JUKEBOX.
    let mut dec = XdrDecoder::new(&reply);
    let _ = ReplyHeader::decode(&mut dec).expect("reply header");
    let res = sgfs_nfs3::proc::CreateRes::from_xdr_bytes(&reply[dec.position()..])
        .expect("create res");
    assert_eq!(res.status, NfsStat3::Ok, "the call completed once admission reopened");
    assert_eq!(res.obj, Some(Fh3::from_ino(1, 4242)));

    // Never duplicated: the server saw exactly sheds + 1 arrivals, every
    // one byte-identical to the original call past the xid (the pipeline
    // rewrites xids to private wire xids by design — pipeline.rs module
    // docs — but header, cred, and args pass through untouched). JUKEBOX
    // means the server never executed the shed arrivals, which is what
    // makes the verbatim re-send safe for a non-idempotent CREATE.
    let log = log.lock().unwrap();
    assert_eq!(log.len() as u32, SHEDS + 1, "one arrival per shed plus the admitted one");
    for (i, arrival) in log.iter().enumerate() {
        assert_eq!(&arrival[4..], &record[4..], "arrival {i} is the verbatim original call");
    }
    assert_eq!(executed.load(Ordering::SeqCst), 1, "CREATE executed exactly once");
    assert_eq!(stats.jukebox_retries(), SHEDS as u64, "every shed counted as a retry");

    // Capped backoff: ten retries at base 1 ms doubling to a 4 ms cap
    // sleep at least 1+2+4+4+... = 39 ms; uncapped doubling would sleep
    // over a second. The window between proves the cap held.
    assert!(elapsed >= Duration::from_millis(39), "backoff was real: {elapsed:?}");
    assert!(elapsed < Duration::from_millis(500), "backoff was capped: {elapsed:?}");
}
