//! Replica-failover matrix for the multi-server data plane.
//!
//! Each case places one `ClientProxy` across a stripe set of mock NFS
//! servers (width 3, 2 replicas per block), kills exactly one member at a
//! seeded point — during read-ahead fan-out, in the middle of a
//! replicated flush, or while its reconnect handshake is in flight — and
//! proves the session degrades instead of failing:
//!
//! * reads re-route to the block's surviving replica,
//! * writes keep flowing at reduced redundancy (the `degraded` gauge
//!   rises, missed blocks are recorded for re-sync),
//! * and at the end the **file state reconstructed from the survivors is
//!   byte-identical** to a single-server oracle run of the same script.
//!
//! A separate case re-syncs the dead member from the write-back store and
//! checks it rejoins with byte-identical state; a thread-ceiling case
//! proves a wider stripe adds zero client reader threads (the PR 8 pool
//! budget covers every member).

use sgfs::config::{CacheMode, RetryPolicy, SecurityLevel, SessionConfig, StripePolicy};
use sgfs::proxy::blockstore::BlockKey;
use sgfs::proxy::client::{ClientProxy, Upstream};
use sgfs::proxy::stripe::StripeMap;
use sgfs_net::{pipe_pair, PipeEnd};
use sgfs_nfs3::proc::{
    procnum, CommitRes, GetAttrRes, ReadArgs, ReadRes, WccRes, WriteArgs, WriteRes,
};
use sgfs_nfs3::types::*;
use sgfs_nfs3::{NFS_PROGRAM, NFS_VERSION};
use sgfs_oncrpc::msg::AuthSysParams;
use sgfs_oncrpc::record::{read_record, write_record};
use sgfs_oncrpc::{CallHeader, ClientIoPool, OpaqueAuth, ReplyHeader};
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

const BLOCK: usize = 512;
const WIDTH: u32 = 3;
const REPLICAS: u32 = 2;
const FILE_SIZE: u64 = 1 << 20;

/// What one mock replica durably holds: block content per (file, offset).
type ServerState = Arc<Mutex<BTreeMap<BlockKey, Vec<u8>>>>;

fn fh1() -> Fh3 {
    Fh3::from_ino(1, 42)
}

fn fh2() -> Fh3 {
    Fh3::from_ino(1, 43)
}

fn policy() -> StripePolicy {
    StripePolicy { width: WIDTH, replicas: REPLICAS, block_size: BLOCK as u32 }
}

fn base_attr(size: u64) -> Fattr3 {
    Fattr3 {
        ftype: FType3::Reg,
        mode: 0o644,
        nlink: 1,
        uid: 1001,
        gid: 1001,
        size,
        used: size,
        fsid: 1,
        fileid: 42,
        atime: NfsTime3 { seconds: 1, nseconds: 0 },
        mtime: NfsTime3 { seconds: 1, nseconds: 0 },
        ctime: NfsTime3 { seconds: 1, nseconds: 0 },
    }
}

fn reply_bytes<T: XdrEncode>(xid: u32, res: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(256);
    ReplyHeader::success(xid).encode(&mut enc);
    res.encode(&mut enc);
    enc.into_bytes()
}

/// A seeded kill switch: the server dies (drops its pipe without
/// replying) when the countdown of matching requests reaches zero.
#[derive(Clone)]
struct Kill {
    /// Which procedure arms the countdown (None = every request).
    proc: Option<u32>,
    countdown: Arc<AtomicU64>,
}

impl Kill {
    fn never() -> Self {
        Self { proc: None, countdown: Arc::new(AtomicU64::new(u64::MAX)) }
    }

    fn after(proc: Option<u32>, n: u64) -> Self {
        assert!(n >= 1);
        Self { proc, countdown: Arc::new(AtomicU64::new(n)) }
    }

    /// True when this request is the one the server dies on.
    fn fires(&self, proc: u32) -> bool {
        if self.proc.is_some_and(|p| p != proc) {
            return false;
        }
        self.countdown.fetch_sub(1, Ordering::AcqRel) == 1
    }
}

/// Deterministic threshold in `1..=max` drawn from the seed.
fn seeded(seed: u64, max: u64) -> u64 {
    (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % max + 1
}

/// Mock replica applying WRITEs/READs to `state`; verifier fixed at 7.
/// When the kill switch fires the request is *dropped* (never applied,
/// never answered) and the server thread exits, closing the wire.
fn byte_server(mut end: PipeEnd, state: ServerState, kill: Kill) {
    std::thread::spawn(move || loop {
        let record = match read_record(&mut end) {
            Ok(Some(r)) => r,
            _ => return,
        };
        let mut dec = XdrDecoder::new(&record);
        let header = CallHeader::decode(&mut dec).expect("call header");
        if kill.fires(header.proc) {
            return;
        }
        let reply = match header.proc {
            procnum::GETATTR => reply_bytes(
                header.xid,
                &GetAttrRes { status: NfsStat3::Ok, attr: Some(base_attr(FILE_SIZE)) },
            ),
            procnum::WRITE => {
                let args =
                    WriteArgs::from_xdr_bytes(&record[dec.position()..]).expect("write args");
                let count = args.data.len() as u32;
                state.lock().unwrap().insert((args.file.clone(), args.offset), args.data);
                reply_bytes(
                    header.xid,
                    &WriteRes {
                        status: NfsStat3::Ok,
                        wcc: WccData { before: None, after: Some(base_attr(FILE_SIZE)) },
                        count,
                        committed: StableHow::Unstable,
                        verf: 7,
                    },
                )
            }
            procnum::READ => {
                let args =
                    ReadArgs::from_xdr_bytes(&record[dec.position()..]).expect("read args");
                let data = state
                    .lock()
                    .unwrap()
                    .get(&(args.file.clone(), args.offset))
                    .cloned()
                    .unwrap_or_default();
                reply_bytes(
                    header.xid,
                    &ReadRes {
                        status: NfsStat3::Ok,
                        attr: Some(base_attr(FILE_SIZE)),
                        count: data.len() as u32,
                        eof: false,
                        data,
                    },
                )
            }
            procnum::COMMIT => reply_bytes(
                header.xid,
                &CommitRes {
                    status: NfsStat3::Ok,
                    wcc: WccData { before: None, after: Some(base_attr(FILE_SIZE)) },
                    verf: 7,
                },
            ),
            // Post-COMMIT size mirror from the striped flush.
            procnum::SETATTR => reply_bytes(
                header.xid,
                &WccRes {
                    status: NfsStat3::Ok,
                    wcc: WccData { before: None, after: Some(base_attr(FILE_SIZE)) },
                },
            ),
            other => panic!("unexpected proc {other} at a mock replica"),
        };
        if write_record(&mut end, &reply).is_err() {
            return;
        }
    });
}

fn striped_config() -> SessionConfig {
    let mut config = SessionConfig::new(SecurityLevel::None);
    config.cache = CacheMode::MemoryMeta;
    config.window = 8;
    config.stripe = Some(policy());
    config.retry = RetryPolicy {
        max_reconnects: 32,
        dial_attempts: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(2),
        call_deadline: Some(Duration::from_secs(20)),
        ..RetryPolicy::default()
    };
    config
}

type Reconnector = Option<Box<dyn sgfs::proxy::retry::Reconnector>>;

/// One proxy striped across `WIDTH` mock replicas.
fn striped_proxy(
    states: &[ServerState],
    kills: &[Kill],
    reconnectors: Vec<Reconnector>,
    config: &SessionConfig,
) -> ClientProxy {
    let mut upstreams = Vec::new();
    for (i, reconnector) in reconnectors.into_iter().enumerate() {
        let (end, srv) = pipe_pair();
        byte_server(srv, states[i].clone(), kills[i].clone());
        let watch = end.watch();
        upstreams.push((Upstream::Plain(Box::new(end)) as Upstream, watch, reconnector));
    }
    ClientProxy::with_stripe(upstreams, config).expect("striped proxy")
}

/// Drives NFS records through a running proxy's downstream interface.
struct Driver {
    down: PipeEnd,
    rx: mpsc::Receiver<(ClientProxy, std::io::Result<()>)>,
    xid: u32,
}

impl Driver {
    fn start(proxy: ClientProxy) -> Self {
        let (down, proxy_down) = pipe_pair();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(proxy.run(Box::new(proxy_down)));
        });
        Self { down, rx, xid: 0x300 }
    }

    fn call<T: XdrEncode>(&mut self, proc: u32, args: &T) -> Vec<u8> {
        self.xid += 1;
        let header = CallHeader {
            xid: self.xid,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc,
            cred: OpaqueAuth::sys(&AuthSysParams::new("test-host", 1001, 1001)),
            verf: OpaqueAuth::none(),
        };
        let mut enc = XdrEncoder::with_capacity(256);
        header.encode(&mut enc);
        args.encode(&mut enc);
        write_record(&mut self.down, &enc.into_bytes()).expect("downstream write");
        let reply = read_record(&mut self.down).expect("downstream read").expect("reply");
        let mut dec = XdrDecoder::new(&reply);
        let _ = ReplyHeader::decode(&mut dec).expect("reply header");
        reply[dec.position()..].to_vec()
    }

    /// Write one block; the write-back cache must always acknowledge.
    fn write(&mut self, fh: &Fh3, offset: u64, data: Vec<u8>) {
        let body = self.call(
            procnum::WRITE,
            &WriteArgs { file: fh.clone(), offset, stable: StableHow::Unstable, data },
        );
        let res = WriteRes::from_xdr_bytes(&body).expect("write res");
        assert_eq!(res.status, NfsStat3::Ok, "write-back ack");
    }

    /// Read one block back through the proxy.
    fn read(&mut self, fh: &Fh3, offset: u64) -> Vec<u8> {
        let body = self.call(
            procnum::READ,
            &ReadArgs { file: fh.clone(), offset, count: BLOCK as u32 },
        );
        let res = ReadRes::from_xdr_bytes(&body).expect("read res");
        assert_eq!(res.status, NfsStat3::Ok, "read through the stripe set");
        res.data
    }

    fn finish(self) -> ClientProxy {
        drop(self.down);
        let (proxy, _result) = self.rx.recv().expect("proxy thread");
        proxy
    }
}

/// The workload script: two write phases with a flush between them, one
/// overwrite, and a second file — enough flush rounds and distinct blocks
/// that every member serves several WRITEs per flush.
fn script_phase1() -> Vec<(Fh3, u64, Vec<u8>)> {
    (0..6u64).map(|i| (fh1(), i * BLOCK as u64, vec![0x10 + i as u8; BLOCK])).collect()
}

fn script_phase2() -> Vec<(Fh3, u64, Vec<u8>)> {
    vec![
        (fh1(), 0, vec![0xA0; BLOCK]), // overwrite a committed block
        (fh1(), 6 * BLOCK as u64, vec![0xA6; BLOCK]),
        (fh1(), 7 * BLOCK as u64, vec![0xA7; BLOCK]),
        (fh2(), 0, vec![0xB0; BLOCK]),
        (fh2(), BLOCK as u64, vec![0xB1; BLOCK]),
    ]
}

/// The single-server oracle: the same script through a classic
/// one-upstream proxy; its server state is the expected file content.
fn oracle() -> BTreeMap<BlockKey, Vec<u8>> {
    let state: ServerState = Arc::new(Mutex::new(BTreeMap::new()));
    let (end, srv) = pipe_pair();
    byte_server(srv, state.clone(), Kill::never());
    let watch = end.watch();
    let mut config = striped_config();
    config.stripe = None;
    let proxy =
        ClientProxy::new(Upstream::Plain(Box::new(end)), watch, &config).expect("oracle proxy");
    let mut driver = Driver::start(proxy);
    for (fh, offset, data) in script_phase1() {
        driver.write(&fh, offset, data);
    }
    let mut proxy = driver.finish();
    proxy.flush_file(&fh1()).expect("oracle mid-script flush");
    let mut driver = Driver::start(proxy);
    for (fh, offset, data) in script_phase2() {
        driver.write(&fh, offset, data);
    }
    let mut proxy = driver.finish();
    proxy.flush_all().expect("oracle final flush");
    drop(proxy);
    let server = state.lock().unwrap().clone();
    assert_eq!(server.len(), 10, "oracle holds every distinct block");
    server
}

/// Assert the file is byte-identical when reconstructed from the
/// survivors: every surviving replica of every block holds exactly the
/// oracle content, and every block has at least one surviving replica.
fn assert_survivors_reconstruct(
    label: &str,
    oracle: &BTreeMap<BlockKey, Vec<u8>>,
    states: &[ServerState],
    victim: usize,
) {
    let map = StripeMap::new(policy());
    for (key, expected) in oracle {
        let members = map.members_of_block(map.block_of(key.1));
        let survivors: Vec<usize> = members.into_iter().filter(|&m| m != victim).collect();
        assert!(
            !survivors.is_empty(),
            "{label}: block at offset {} has no surviving replica",
            key.1
        );
        for m in survivors {
            let held = states[m].lock().unwrap().get(key).cloned();
            assert_eq!(
                held.as_deref(),
                Some(&expected[..]),
                "{label}: member {m} diverges from the oracle at offset {} of {:?}",
                key.1,
                key.0,
            );
        }
    }
}

/// Kill one replica mid-flush (its k-th WRITE of a replicated flush round
/// is dropped and the wire dies): the flush degrades to the survivors,
/// the missed blocks are recorded, and the final state reconstructs.
fn mid_flush_case(label: &str, victim: usize, seed: u64, oracle: &BTreeMap<BlockKey, Vec<u8>>) {
    let states: Vec<ServerState> = (0..WIDTH).map(|_| Arc::default()).collect();
    let mut kills = vec![Kill::never(); WIDTH as usize];
    kills[victim] = Kill::after(Some(procnum::WRITE), seeded(seed, 3));
    let config = striped_config();
    let proxy = striped_proxy(&states, &kills, (0..WIDTH).map(|_| None).collect(), &config);

    let mut driver = Driver::start(proxy);
    for (fh, offset, data) in script_phase1() {
        driver.write(&fh, offset, data);
    }
    let mut proxy = driver.finish();
    proxy.flush_file(&fh1()).unwrap_or_else(|e| panic!("{label}: degraded flush failed: {e}"));
    let stats = proxy.stats().clone();
    assert_eq!(stats.failovers(), 1, "{label}: exactly one member failed over");
    assert_eq!(stats.degraded(), 1, "{label}: degraded gauge tracks the down member");
    assert!(
        proxy.missed_blocks(victim) > 0,
        "{label}: the dead member's missed blocks are recorded for re-sync"
    );

    // The session keeps writing at reduced redundancy.
    let mut driver = Driver::start(proxy);
    for (fh, offset, data) in script_phase2() {
        driver.write(&fh, offset, data);
    }
    let mut proxy = driver.finish();
    proxy.flush_all().unwrap_or_else(|e| panic!("{label}: final flush failed: {e}"));
    assert_eq!(stats.failovers(), 1, "{label}: no second failover");
    drop(proxy);

    assert_survivors_reconstruct(label, oracle, &states, victim);
}

/// Kill one replica while the client is re-dialing it: the wire dies at a
/// seeded request, and every reconnect attempt fails in the handshake.
/// The member must go down after the handshake budget, not wedge the
/// session.
fn mid_handshake_case(
    label: &str,
    victim: usize,
    seed: u64,
    oracle: &BTreeMap<BlockKey, Vec<u8>>,
) {
    let states: Vec<ServerState> = (0..WIDTH).map(|_| Arc::default()).collect();
    let mut kills = vec![Kill::never(); WIDTH as usize];
    kills[victim] = Kill::after(None, seeded(seed, 4));
    let handshakes = Arc::new(AtomicU64::new(0));
    let counter = handshakes.clone();
    let mut reconnectors: Vec<Reconnector> = (0..WIDTH).map(|_| None).collect();
    reconnectors[victim] = Some(Box::new(
        move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
            counter.fetch_add(1, Ordering::AcqRel);
            Err(std::io::Error::other("replica died mid-handshake"))
        },
    ));
    let mut config = striped_config();
    config.retry.max_reconnects = 2; // tight handshake budget
    let proxy = striped_proxy(&states, &kills, reconnectors, &config);

    let mut driver = Driver::start(proxy);
    for (fh, offset, data) in script_phase1() {
        driver.write(&fh, offset, data);
    }
    let mut proxy = driver.finish();
    proxy.flush_file(&fh1()).unwrap_or_else(|e| panic!("{label}: degraded flush failed: {e}"));
    let mut driver = Driver::start(proxy);
    for (fh, offset, data) in script_phase2() {
        driver.write(&fh, offset, data);
    }
    let mut proxy = driver.finish();
    proxy.flush_all().unwrap_or_else(|e| panic!("{label}: final flush failed: {e}"));

    let stats = proxy.stats().clone();
    assert_eq!(stats.failovers(), 1, "{label}: the victim failed over exactly once");
    assert_eq!(stats.degraded(), 1, "{label}: degraded gauge");
    assert!(
        handshakes.load(Ordering::Acquire) > 0,
        "{label}: the kill landed during a reconnect handshake"
    );
    drop(proxy);

    assert_survivors_reconstruct(label, oracle, &states, victim);
}

/// Kill one replica during read-ahead fan-out: prefetches and foreground
/// reads re-route to each block's surviving replica, and every byte read
/// through the proxy still matches the pre-seeded file.
fn readahead_case(label: &str, victim: usize, seed: u64) {
    const BLOCKS: u64 = 12;
    let map = StripeMap::new(policy());
    // Pre-seed each replica with exactly the blocks the map assigns it.
    let states: Vec<ServerState> = (0..WIDTH).map(|_| Arc::default()).collect();
    let mut expected = Vec::new();
    for b in 0..BLOCKS {
        let data = vec![0xC0 + b as u8; BLOCK];
        for m in map.members_of_block(b) {
            states[m].lock().unwrap().insert((fh1(), b * BLOCK as u64), data.clone());
        }
        expected.push(data);
    }
    let mut kills = vec![Kill::never(); WIDTH as usize];
    kills[victim] = Kill::after(Some(procnum::READ), seeded(seed, 3));
    let mut config = striped_config();
    config.readahead = 4;
    let mut proxy =
        striped_proxy(&states, &kills, (0..WIDTH).map(|_| None).collect(), &config);
    proxy.start_readahead();

    let mut driver = Driver::start(proxy);
    for b in 0..BLOCKS {
        let data = driver.read(&fh1(), b * BLOCK as u64);
        assert_eq!(
            data, expected[b as usize],
            "{label}: block {b} read through the degraded stripe set"
        );
    }
    let proxy = driver.finish();
    let stats = proxy.stats();
    assert_eq!(stats.failovers(), 1, "{label}: the victim failed over exactly once");
    assert_eq!(stats.degraded(), 1, "{label}: degraded gauge");
    assert!(
        stats.prefetch_hits() > 0,
        "{label}: read-ahead kept landing hits across the surviving members"
    );
}

/// The seeded grid: every member killed at every phase on three seeds.
#[test]
fn killing_any_single_replica_never_loses_bytes() {
    let oracle = oracle();
    for victim in 0..WIDTH as usize {
        for seed in [1u64, 2, 3] {
            mid_flush_case(&format!("flush-v{victim}-s{seed}"), victim, seed, &oracle);
            mid_handshake_case(
                &format!("handshake-v{victim}-s{seed}"),
                victim,
                seed,
                &oracle,
            );
            readahead_case(&format!("readahead-v{victim}-s{seed}"), victim, seed);
        }
    }
}

/// A rejoining replica is re-synced from the write-back store before it
/// re-enters the write set: after `resync_member` it holds byte-identical
/// state for every block it missed, and the degraded gauge drops to zero.
#[test]
fn rejoining_replica_is_resynced_from_the_journal() {
    let oracle = oracle();
    let victim = 1usize;
    let states: Vec<ServerState> = (0..WIDTH).map(|_| Arc::default()).collect();
    let mut kills = vec![Kill::never(); WIDTH as usize];
    kills[victim] = Kill::after(Some(procnum::WRITE), 2);
    // While the host is down every re-dial fails in the handshake; once
    // it is back, a re-dial reaches a fresh wire onto the old state.
    let host_up = Arc::new(AtomicBool::new(false));
    let dial_up = host_up.clone();
    let dial_state = states[victim].clone();
    let mut reconnectors: Vec<Reconnector> = (0..WIDTH).map(|_| None).collect();
    reconnectors[victim] = Some(Box::new(
        move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
            if !dial_up.load(Ordering::Acquire) {
                return Err(std::io::Error::other("host still down"));
            }
            let (end, srv) = pipe_pair();
            byte_server(srv, dial_state.clone(), Kill::never());
            let watch = end.watch();
            Ok((Upstream::Plain(Box::new(end)), watch))
        },
    ));
    let mut config = striped_config();
    config.retry.max_reconnects = 8;
    let proxy = striped_proxy(&states, &kills, reconnectors, &config);

    let mut driver = Driver::start(proxy);
    for (fh, offset, data) in script_phase1() {
        driver.write(&fh, offset, data);
    }
    let mut proxy = driver.finish();
    proxy.flush_file(&fh1()).expect("degraded flush");
    let mut driver = Driver::start(proxy);
    for (fh, offset, data) in script_phase2() {
        driver.write(&fh, offset, data);
    }
    let mut proxy = driver.finish();
    proxy.flush_all().expect("degraded final flush");
    assert!(proxy.missed_blocks(victim) > 0, "missed blocks queued for re-sync");
    assert_eq!(proxy.stats().degraded(), 1);

    // The host comes back; re-sync replays the missed blocks from the
    // local store and returns the member to the write set.
    host_up.store(true, Ordering::Release);
    proxy.resync_member(victim).expect("re-sync");
    assert_eq!(proxy.missed_blocks(victim), 0, "re-sync drained the missed set");
    assert_eq!(proxy.stats().degraded(), 0, "member is back in the write set");
    assert!(proxy.stripe().unwrap().is_up(victim));
    drop(proxy);

    // The rejoined member now holds the oracle content for every block
    // the map assigns to it.
    let map = StripeMap::new(policy());
    for (key, expected) in &oracle {
        if !map.members_of_block(map.block_of(key.1)).contains(&victim) {
            continue;
        }
        let held = states[victim].lock().unwrap().get(key).cloned();
        assert_eq!(
            held.as_deref(),
            Some(&expected[..]),
            "rejoined member diverges at offset {} of {:?}",
            key.1,
            key.0,
        );
    }
}

fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// A wider stripe must not widen the client thread budget: every member
/// pipeline multiplexes onto the one shared I/O pool, so building a
/// width-4 striped proxy adds exactly the 4 mock server threads — zero
/// client-side reader threads — and read-ahead adds its single worker.
#[test]
fn stripe_width_adds_zero_client_reader_threads() {
    let pool = ClientIoPool::new(2);
    let mut config = striped_config();
    config.client_pool = Some(pool.clone());
    config.stripe = Some(StripePolicy { width: 4, replicas: 2, block_size: BLOCK as u32 });
    config.readahead = 4;
    let states: Vec<ServerState> = (0..4).map(|_| Arc::default()).collect();
    let kills = vec![Kill::never(); 4];

    let before = thread_count();
    let mut proxy =
        striped_proxy(&states, &kills, (0..4).map(|_| None).collect(), &config);
    let after_build = thread_count();
    assert_eq!(
        after_build - before,
        4,
        "building a width-4 stripe set must only add the 4 mock servers \
         (a per-member reader thread would show up here)"
    );
    proxy.start_readahead();
    let after_readahead = thread_count();
    assert_eq!(
        after_readahead - after_build,
        1,
        "striped read-ahead uses one worker, never one per member"
    );
    drop(proxy);
}

/// Regression for the rejoin/degraded-gauge contract. A member marked
/// down by a READ failover has an *empty* missed set — there is nothing
/// to replay, so no re-sync traffic would prove the revived channel on
/// its own. `resync_member` must probe the transport before returning
/// the member to the set and resetting `degraded`:
///
/// * while the host refuses dials, re-sync fails and `degraded` stays 1;
/// * when a dial "succeeds" onto a dead wire (the bug this pins down:
///   the old reset path marked the member up and zeroed the gauge on
///   pure faith in the fresh channel), the probe fails, re-sync errors,
///   and `degraded` stays 1;
/// * once the host is truly back, re-sync succeeds and `degraded` drops
///   to 0 with the member in the read/write set.
#[test]
fn empty_missed_set_rejoin_probes_the_channel_before_resetting_degraded() {
    const BLOCKS: u64 = 8;
    let victim = 1usize;
    let map = StripeMap::new(policy());
    let states: Vec<ServerState> = (0..WIDTH).map(|_| Arc::default()).collect();
    for b in 0..BLOCKS {
        let data = vec![0xD0 + b as u8; BLOCK];
        for m in map.members_of_block(b) {
            states[m].lock().unwrap().insert((fh1(), b * BLOCK as u64), data.clone());
        }
    }
    let mut kills = vec![Kill::never(); WIDTH as usize];
    kills[victim] = Kill::after(Some(procnum::READ), 1);

    // Dial behavior ladder: 0 = refuse, 1 = dead wire, 2 = healthy.
    let host_mode = Arc::new(AtomicU64::new(0));
    let dial_mode = host_mode.clone();
    let dial_state = states[victim].clone();
    let mut reconnectors: Vec<Reconnector> = (0..WIDTH).map(|_| None).collect();
    reconnectors[victim] = Some(Box::new(
        move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
            match dial_mode.load(Ordering::Acquire) {
                0 => Err(std::io::Error::other("host refuses")),
                1 => {
                    // The dial layer connects but nothing is listening:
                    // the server end drops straight away.
                    let (end, srv) = pipe_pair();
                    drop(srv);
                    let watch = end.watch();
                    Ok((Upstream::Plain(Box::new(end)), watch))
                }
                _ => {
                    let (end, srv) = pipe_pair();
                    byte_server(srv, dial_state.clone(), Kill::never());
                    let watch = end.watch();
                    Ok((Upstream::Plain(Box::new(end)), watch))
                }
            }
        },
    ));
    let mut config = striped_config();
    config.retry.max_reconnects = 4;
    let proxy = striped_proxy(&states, &kills, reconnectors, &config);

    // The victim dies on its first READ; the block fails over to its
    // replica and the member is marked down — with nothing to replay.
    let mut driver = Driver::start(proxy);
    for b in 0..BLOCKS {
        let data = driver.read(&fh1(), b * BLOCK as u64);
        assert_eq!(data, vec![0xD0 + b as u8; BLOCK], "block {b} via the survivors");
    }
    let mut proxy = driver.finish();
    assert_eq!(proxy.stats().degraded(), 1, "victim marked down");
    assert_eq!(proxy.missed_blocks(victim), 0, "a read-only outage misses no writes");

    // Rung 0: the host refuses dials — re-sync must fail closed.
    assert!(proxy.resync_member(victim).is_err(), "re-sync with the host down");
    assert_eq!(proxy.stats().degraded(), 1, "degraded survives a refused dial");
    assert!(!proxy.stripe().unwrap().is_up(victim));

    // Rung 1: the dial connects to a dead wire. Nothing is replayed
    // (empty missed set), so only the probe stands between this zombie
    // channel and a false rejoin.
    host_mode.store(1, Ordering::Release);
    assert!(proxy.resync_member(victim).is_err(), "probe must fail on a dead wire");
    assert_eq!(proxy.stats().degraded(), 1, "degraded survives a dead-wire dial");
    assert!(!proxy.stripe().unwrap().is_up(victim));

    // Rung 2: the host is really back; the probe proves the channel and
    // the gauge resets.
    host_mode.store(2, Ordering::Release);
    proxy.resync_member(victim).expect("re-sync over the healthy channel");
    assert_eq!(proxy.stats().degraded(), 0, "fully re-synced stripe reports degraded == 0");
    assert!(proxy.stripe().unwrap().is_up(victim));

    // And the rejoined member serves its share of reads again.
    let mut driver = Driver::start(proxy);
    for b in 0..BLOCKS {
        let data = driver.read(&fh1(), b * BLOCK as u64);
        assert_eq!(data, vec![0xD0 + b as u8; BLOCK], "block {b} after the rejoin");
    }
    drop(driver.finish());
}
