//! Steady-state allocation behaviour of the pipelined upstream channel.
//!
//! A counting global allocator watches the whole process while calls flow
//! through the pipeline against a buffer-reusing echo server. At steady
//! state the I/O thread recycles its buffers: the reply is handed to the
//! waiter by swapping the reply buffer with the (spent) request buffer,
//! so the only per-call allocations left are the caller's own record and
//! the reply-channel plumbing. A per-reply `clone()` of the record —
//! the regression this test pins down — would add a full record's worth
//! of bytes to every call and trip the budget immediately.

use sgfs::proxy::client::Upstream;
use sgfs::proxy::pipeline::Pipeline;
use sgfs::stats::ProxyStats;
use sgfs_net::pipe_pair;
use sgfs_oncrpc::record::{read_record_into, write_record_with};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::SeqCst)
}

/// Echoes records verbatim with reused buffers: the server side settles
/// to zero allocations, so the measurement isolates the client stack.
fn frugal_echo_server(mut end: sgfs_net::PipeEnd) {
    std::thread::spawn(move || {
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        loop {
            match read_record_into(&mut end, &mut buf) {
                Ok(true) => {
                    if write_record_with(&mut end, &buf, &mut scratch).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
    });
}

const RECORD_LEN: usize = 8 * 1024;

fn call_record(xid: u32) -> Vec<u8> {
    let mut r = Vec::with_capacity(RECORD_LEN);
    r.extend_from_slice(&xid.to_be_bytes());
    r.resize(RECORD_LEN, 0x42);
    r
}

fn pump(p: &Pipeline, n: u32) {
    for i in 0..n {
        let reply = p.call(call_record(i)).expect("echo reply");
        assert_eq!(reply.len(), RECORD_LEN);
        assert_eq!(&reply[0..4], &i.to_be_bytes(), "xid restored");
    }
}

#[test]
fn reply_handoff_is_clone_free_at_steady_state() {
    let (client_end, server_end) = pipe_pair();
    frugal_echo_server(server_end);
    let p = Pipeline::new(Upstream::Plain(Box::new(client_end)), 4, None, ProxyStats::new());

    // Warm-up: settle the I/O thread's reply/scratch high-water marks and
    // the recycled-buffer pool that the reply swap feeds.
    pump(&p, 32);

    const CALLS: u64 = 64;
    let before = alloc_bytes();
    pump(&p, CALLS as u32);
    let per_call = (alloc_bytes() - before) / CALLS;

    // Budget: the caller's own record allocation, the two in-memory-pipe
    // message copies (`PipeEnd::write` clones each write — the emulated
    // transport, not the pipeline), and channel plumbing. A per-reply
    // buffer clone in the I/O thread would add a further ~RECORD_LEN per
    // call and fail.
    let budget = (3 * RECORD_LEN + 4096) as u64;
    assert!(
        per_call < budget,
        "steady-state allocations {per_call} B/call exceed budget {budget} B/call \
         (a reply-path copy has crept back in?)"
    );
}
