//! Steady-state allocation behaviour of the pipelined upstream channel.
//!
//! A counting global allocator watches the whole process while calls flow
//! through the pipeline against a buffer-reusing echo server. At steady
//! state the I/O thread recycles its buffers: the reply is handed to the
//! waiter by swapping the reply buffer with the (spent) request buffer,
//! so the only per-call allocations left are the caller's own record and
//! the reply-channel plumbing. A per-reply `clone()` of the record —
//! the regression this test pins down — would add a full record's worth
//! of bytes to every call and trip the budget immediately.

use sgfs::proxy::client::Upstream;
use sgfs::proxy::pipeline::Pipeline;
use sgfs::stats::ProxyStats;
use sgfs_net::pipe_pair;
use sgfs_oncrpc::record::{read_record_into, write_record_with};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::SeqCst)
}

/// Echoes records verbatim with reused buffers: the server side settles
/// to zero allocations, so the measurement isolates the client stack.
fn frugal_echo_server(mut end: sgfs_net::PipeEnd) {
    std::thread::spawn(move || {
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        loop {
            match read_record_into(&mut end, &mut buf) {
                Ok(true) => {
                    if write_record_with(&mut end, &buf, &mut scratch).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
    });
}

const RECORD_LEN: usize = 8 * 1024;

fn call_record(xid: u32) -> Vec<u8> {
    let mut r = Vec::with_capacity(RECORD_LEN);
    r.extend_from_slice(&xid.to_be_bytes());
    r.resize(RECORD_LEN, 0x42);
    r
}

fn pump(p: &Pipeline, n: u32) {
    for i in 0..n {
        let reply = p.call(call_record(i)).expect("echo reply");
        assert_eq!(reply.len(), RECORD_LEN);
        assert_eq!(&reply[0..4], &i.to_be_bytes(), "xid restored");
    }
}

/// Echo service for the shard-side contract: the shard's own read path
/// uses the per-shard shared record buffer, so the only service-side
/// allocation is the reply `Vec` this returns.
struct ShardEcho;

impl sgfs_oncrpc::RecordService for ShardEcho {
    fn process_record(&self, record: &[u8]) -> std::io::Result<Vec<u8>> {
        Ok(record.to_vec())
    }
}

#[test]
fn reply_handoff_is_clone_free_at_steady_state() {
    let (client_end, server_end) = pipe_pair();
    frugal_echo_server(server_end);
    let watch = client_end.watch();
    let p =
        Pipeline::new(Upstream::Plain(Box::new(client_end)), watch, 4, None, ProxyStats::new());

    // Warm-up: settle the I/O thread's reply/scratch high-water marks and
    // the recycled-buffer pool that the reply swap feeds.
    pump(&p, 32);

    const CALLS: u64 = 64;
    let before = alloc_bytes();
    pump(&p, CALLS as u32);
    let per_call = (alloc_bytes() - before) / CALLS;

    // Budget: the caller's own record allocation, the two in-memory-pipe
    // message copies (`PipeEnd::write` clones each write — the emulated
    // transport, not the pipeline), and channel plumbing. A per-reply
    // buffer clone in the I/O thread would add a further ~RECORD_LEN per
    // call and fail.
    let budget = (3 * RECORD_LEN + 4096) as u64;
    assert!(
        per_call < budget,
        "steady-state allocations {per_call} B/call exceed budget {budget} B/call \
         (a reply-path copy has crept back in?)"
    );
}

/// The sharded core must hold the same discipline with many sessions
/// multiplexed onto one event loop: the shard's record and scratch
/// buffers are shared across *all* pinned sessions, so interleaving
/// eight sessions round-robin — the worst case for any per-session
/// buffer scheme — must still cost only the unavoidable per-call
/// pieces: the emulated pipe's two message copies and the service's
/// reply `Vec`. A per-session read buffer (or a per-wake re-allocation
/// of the scratch) would multiply the budget and fail.
#[test]
fn shard_buffers_hold_high_water_across_interleaved_sessions() {
    const SESSIONS: usize = 8;
    let shards = sgfs_oncrpc::ShardServer::new(1);
    let mut ends = Vec::new();
    for _ in 0..SESSIONS {
        let (client_end, server_end) = pipe_pair();
        let watch = server_end.watch();
        shards
            .add_session(Box::new(server_end), watch, std::sync::Arc::new(ShardEcho))
            .unwrap();
        ends.push(client_end);
    }

    // Reused client-side buffers: at steady state the client contributes
    // nothing, so the measurement isolates the shard loop + transport.
    let mut req = call_record(0);
    let mut reply = Vec::new();
    let mut scratch = Vec::new();
    let mut drive = |rounds: u32, ends: &mut [sgfs_net::PipeEnd]| {
        for r in 0..rounds {
            for (s, end) in ends.iter_mut().enumerate() {
                let xid = r * SESSIONS as u32 + s as u32;
                req[0..4].copy_from_slice(&xid.to_be_bytes());
                write_record_with(end, &req, &mut scratch).unwrap();
                assert!(read_record_into(end, &mut reply).unwrap());
                assert_eq!(reply.len(), RECORD_LEN);
                assert_eq!(&reply[0..4], &xid.to_be_bytes(), "xid restored by shard");
            }
        }
    };

    // Warm-up: every session visits the shard at least four times, so the
    // shared record/scratch buffers and the poller queues reach their
    // high-water capacity with session switching already in play.
    drive(4, &mut ends);

    const ROUNDS: u64 = 16;
    let before = alloc_bytes();
    drive(ROUNDS as u32, &mut ends);
    let per_call = (alloc_bytes() - before) / (ROUNDS * SESSIONS as u64);

    // Budget: two pipe message copies (request in, reply out — the
    // emulated transport clones each write) plus the echo's reply `Vec`,
    // with slack for poller/channel plumbing. A per-session or per-wake
    // shard buffer would add ≥ RECORD_LEN per call and trip this.
    let budget = (4 * RECORD_LEN + 4096) as u64;
    assert!(
        per_call < budget,
        "sharded steady-state allocations {per_call} B/call exceed budget {budget} B/call \
         (per-session buffers or a shard-side copy have crept in?)"
    );

    let stats = shards.stats();
    assert_eq!(stats.served, (ROUNDS + 4) * SESSIONS as u64, "every call shard-served");
}
