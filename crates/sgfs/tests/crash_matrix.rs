//! Kill-point crash matrix for the journaled write-back cache.
//!
//! Each case arms one [`CrashPoint`] in the durability protocol, drives a
//! write-back workload through a real `ClientProxy` over a mock NFS
//! server, lets the kill fire (freezing the spool directory exactly as a
//! dead process would leave it), then "restarts": a fresh proxy recovers
//! the journal from the same directory, the driver re-sends the writes
//! the dead proxy never acknowledged, and one flush must leave the server
//! byte-identical to a crash-free run of the same script.
//!
//! The invariant checked at every kill point × schedule:
//!
//! > Every **acknowledged** unstable write either already reached the
//! > server or survives the restart as a **dirty** block (never clean) —
//! > and a torn or corrupted journal tail is detected and discarded,
//! > never replayed and never fatal.

use sgfs::config::{CacheMode, DurabilityPolicy, RetryPolicy, SecurityLevel, SessionConfig};
use sgfs::proxy::blockstore::{BlockKey, BlockStore, DiskStore};
use sgfs::proxy::client::{ClientProxy, Upstream};
use sgfs::proxy::journal::JOURNAL_FILE;
use sgfs_net::crash::is_crash;
use sgfs_net::{pipe_pair, CrashInjector, PipeEnd, ALL_CRASH_POINTS};
use sgfs_nfs3::proc::{procnum, CommitRes, GetAttrRes, WriteArgs, WriteRes};
use sgfs_nfs3::types::*;
use sgfs_nfs3::{NFS_PROGRAM, NFS_VERSION};
use sgfs_oncrpc::msg::AuthSysParams;
use sgfs_oncrpc::record::{read_record, write_record};
use sgfs_oncrpc::{CallHeader, OpaqueAuth, ReplyHeader};
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

const BLOCK: usize = 512;

/// What the mock server durably holds: block content per (file, offset).
/// The server's write verifier never changes, so every WRITE it has
/// replied to counts as stable — the strictest reading of "reached the
/// server".
type ServerState = Arc<Mutex<BTreeMap<BlockKey, Vec<u8>>>>;

fn fh1() -> Fh3 {
    Fh3::from_ino(1, 42)
}

fn fh2() -> Fh3 {
    Fh3::from_ino(1, 43)
}

fn base_attr(size: u64) -> Fattr3 {
    Fattr3 {
        ftype: FType3::Reg,
        mode: 0o644,
        nlink: 1,
        uid: 1001,
        gid: 1001,
        size,
        used: size,
        fsid: 1,
        fileid: 42,
        atime: NfsTime3 { seconds: 1, nseconds: 0 },
        mtime: NfsTime3 { seconds: 1, nseconds: 0 },
        ctime: NfsTime3 { seconds: 1, nseconds: 0 },
    }
}

fn nfs_call(xid: u32, proc: u32, body: impl FnOnce(&mut XdrEncoder)) -> Vec<u8> {
    let header = CallHeader {
        xid,
        prog: NFS_PROGRAM,
        vers: NFS_VERSION,
        proc,
        cred: OpaqueAuth::sys(&AuthSysParams::new("test-host", 1001, 1001)),
        verf: OpaqueAuth::none(),
    };
    let mut enc = XdrEncoder::with_capacity(256);
    header.encode(&mut enc);
    body(&mut enc);
    enc.into_bytes()
}

fn reply_bytes<T: XdrEncode>(xid: u32, res: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(256);
    ReplyHeader::success(xid).encode(&mut enc);
    res.encode(&mut enc);
    enc.into_bytes()
}

/// Mock NFS server applying WRITEs to `state`; verifier fixed at 7.
fn byte_server(mut end: PipeEnd, state: ServerState) {
    std::thread::spawn(move || loop {
        let record = match read_record(&mut end) {
            Ok(Some(r)) => r,
            _ => return,
        };
        let mut dec = XdrDecoder::new(&record);
        let header = CallHeader::decode(&mut dec).expect("call header");
        let reply = match header.proc {
            procnum::GETATTR => reply_bytes(
                header.xid,
                &GetAttrRes { status: NfsStat3::Ok, attr: Some(base_attr(0)) },
            ),
            procnum::WRITE => {
                let args =
                    WriteArgs::from_xdr_bytes(&record[dec.position()..]).expect("write args");
                let count = args.data.len() as u32;
                state.lock().unwrap().insert((args.file.clone(), args.offset), args.data);
                reply_bytes(
                    header.xid,
                    &WriteRes {
                        status: NfsStat3::Ok,
                        wcc: WccData { before: None, after: Some(base_attr(0)) },
                        count,
                        committed: StableHow::Unstable,
                        verf: 7,
                    },
                )
            }
            procnum::COMMIT => reply_bytes(
                header.xid,
                &CommitRes {
                    status: NfsStat3::Ok,
                    wcc: WccData { before: None, after: Some(base_attr(0)) },
                    verf: 7,
                },
            ),
            other => panic!("unexpected proc {other}"),
        };
        if write_record(&mut end, &reply).is_err() {
            return;
        }
    });
}

fn durability() -> DurabilityPolicy {
    // Aggressive cadence so every kill point is actually reachable in a
    // short workload: fsync each append, compact early.
    DurabilityPolicy { journal: true, fsync_every: 1, compact_min_records: 4 }
}

fn config_for(dir: PathBuf, crash: Option<Arc<CrashInjector>>) -> SessionConfig {
    let mut config = SessionConfig::new(SecurityLevel::None);
    config.cache = CacheMode::Disk { dir };
    config.window = 8;
    config.durability = durability();
    config.crash = crash;
    config.retry = RetryPolicy {
        call_deadline: Some(Duration::from_secs(20)),
        ..RetryPolicy::default()
    };
    config
}

fn proxy_to(state: &ServerState, config: &SessionConfig) -> ClientProxy {
    let (end, srv) = pipe_pair();
    byte_server(srv, state.clone());
    let watch = end.watch();
    ClientProxy::new(Upstream::Plain(Box::new(end)), watch, config).expect("proxy construction")
}

/// One WRITE of the workload script: (file, offset, payload).
type Write3 = (Fh3, u64, Vec<u8>);

/// Feed `writes` through the proxy's downstream interface. Acknowledged
/// writes land in `acked` (latest content per block — an overwritten
/// block's obligation transfers to the new bytes); once the proxy dies,
/// this and every remaining write goes to `unacked` for the post-restart
/// re-send, exactly as a real client would retry unanswered calls.
/// Returns the proxy and whether it is still alive.
fn drive_session(
    proxy: ClientProxy,
    writes: &[Write3],
    acked: &mut BTreeMap<BlockKey, Vec<u8>>,
    unacked: &mut Vec<Write3>,
) -> (ClientProxy, bool) {
    let (mut down, proxy_down) = pipe_pair();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(proxy.run(Box::new(proxy_down)));
    });
    let mut alive = true;
    let mut xid = 0x300u32;
    let mut it = writes.iter();
    for (fh, offset, data) in it.by_ref() {
        xid += 1;
        let record = nfs_call(xid, procnum::WRITE, |enc| {
            WriteArgs {
                file: fh.clone(),
                offset: *offset,
                stable: StableHow::Unstable,
                data: data.clone(),
            }
            .encode(enc)
        });
        if write_record(&mut down, &record).is_err() {
            alive = false;
            unacked.push((fh.clone(), *offset, data.clone()));
            break;
        }
        match read_record(&mut down) {
            Ok(Some(reply)) => {
                let mut dec = XdrDecoder::new(&reply);
                let _ = ReplyHeader::decode(&mut dec).expect("reply header");
                let res =
                    WriteRes::from_xdr_bytes(&reply[dec.position()..]).expect("write res");
                assert_eq!(res.status, NfsStat3::Ok, "local write-back ack");
                acked.insert((fh.clone(), *offset), data.clone());
            }
            _ => {
                // The proxy died mid-call: the write was never acked.
                alive = false;
                unacked.push((fh.clone(), *offset, data.clone()));
                break;
            }
        }
    }
    for (fh, offset, data) in it {
        unacked.push((fh.clone(), *offset, data.clone()));
    }
    drop(down);
    let (proxy, _run_result) = rx.recv().expect("proxy thread");
    (proxy, alive)
}

struct Script {
    phase1: Vec<Write3>,
    phase2: Vec<Write3>,
}

/// Two write phases with a mid-script flush: phase 1 fills one file and
/// flushes it (COMMIT + journal compaction fire), phase 2 overwrites one
/// committed block and spreads new blocks over two files, and the final
/// flush_all covers both — visiting every kill point enough times for any
/// seeded countdown to land.
fn script() -> Script {
    let block = |tag: u8| vec![tag; BLOCK];
    let phase1 = (0..5u64)
        .map(|i| (fh1(), i * BLOCK as u64, block(0x10 + i as u8)))
        .collect();
    let phase2 = vec![
        (fh1(), 0, block(0xA0)), // overwrite a committed block
        (fh1(), 5 * BLOCK as u64, block(0xA5)),
        (fh1(), 6 * BLOCK as u64, block(0xA6)),
        (fh2(), 0, block(0xB0)),
        (fh2(), BLOCK as u64, block(0xB1)),
    ];
    Script { phase1, phase2 }
}

/// Run the full script. Any error must be the injected crash; on crash
/// every not-yet-submitted write is queued for the restart re-send.
fn execute(
    proxy: ClientProxy,
    script: &Script,
    acked: &mut BTreeMap<BlockKey, Vec<u8>>,
    unacked: &mut Vec<Write3>,
) -> (ClientProxy, bool) {
    let (mut proxy, alive) = drive_session(proxy, &script.phase1, acked, unacked);
    if !alive {
        unacked.extend(script.phase2.iter().cloned());
        return (proxy, true);
    }
    if let Err(e) = proxy.flush_file(&fh1()) {
        assert!(is_crash(&e), "only injected crashes expected in flush: {e}");
        unacked.extend(script.phase2.iter().cloned());
        return (proxy, true);
    }
    let (mut proxy, alive) = drive_session(proxy, &script.phase2, acked, unacked);
    if !alive {
        return (proxy, true);
    }
    match proxy.flush_all() {
        Ok(_) => (proxy, false),
        Err(e) => {
            assert!(is_crash(&e), "only injected crashes expected in flush_all: {e}");
            (proxy, true)
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sgfs-crash-matrix-{tag}-{}", std::process::id()))
}

/// The crash-free run the matrix compares against.
fn oracle() -> BTreeMap<BlockKey, Vec<u8>> {
    let dir = temp_dir("oracle");
    let _ = std::fs::remove_dir_all(&dir);
    let state: ServerState = Arc::new(Mutex::new(BTreeMap::new()));
    let proxy = proxy_to(&state, &config_for(dir.clone(), None));
    let mut acked = BTreeMap::new();
    let mut unacked = Vec::new();
    let (proxy, crashed) = execute(proxy, &script(), &mut acked, &mut unacked);
    assert!(!crashed && unacked.is_empty(), "oracle run is crash-free");
    drop(proxy);
    let _ = std::fs::remove_dir_all(&dir);
    let server = state.lock().unwrap().clone();
    assert_eq!(server, acked, "crash-free: the server holds exactly the acked blocks");
    server
}

fn crash_case(
    label: &str,
    inj: Arc<CrashInjector>,
    oracle: &BTreeMap<BlockKey, Vec<u8>>,
) {
    let point = inj.point();
    let dir = temp_dir(label);
    let _ = std::fs::remove_dir_all(&dir);
    let state: ServerState = Arc::new(Mutex::new(BTreeMap::new()));

    // --- Victim run: the kill may fire at any step. -------------------
    let proxy = proxy_to(&state, &config_for(dir.clone(), Some(inj.clone())));
    let mut acked = BTreeMap::new();
    let mut unacked = Vec::new();
    let (proxy, crashed) = execute(proxy, &script(), &mut acked, &mut unacked);
    assert_eq!(
        crashed,
        inj.tripped(),
        "{label}: a tripped kill at {point:?} must surface as an error, never be swallowed"
    );
    drop(proxy); // abandon the "dead" proxy; the spool dir stays frozen

    // --- Invariant probe: recover the frozen directory directly. ------
    let (mut probe, report) =
        DiskStore::with_durability(dir.clone(), durability(), None, None, None)
            .expect("recovery never fails on a torn journal");
    for s in &report.survivors {
        assert!(
            probe.meta(&s.key).expect("survivor resident").dirty,
            "{label}: survivor at offset {} recovered clean — a torn block must \
             re-flush, never pose as stable",
            s.key.1
        );
    }
    for (key, data) in &acked {
        let on_server = state.lock().unwrap().get(key) == Some(data);
        let survived = probe.get(key).as_deref() == Some(&data[..]);
        assert!(
            on_server || survived,
            "{label}: acked write at offset {} neither reached the server nor \
             survived restart as a dirty block",
            key.1
        );
    }
    drop(probe);

    // --- Restart: recover, re-send unacked writes, flush once. --------
    let proxy2 = proxy_to(&state, &config_for(dir.clone(), None));
    let recovered_bytes: u64 = report.survivors.iter().map(|s| s.len as u64).sum();
    assert_eq!(
        proxy2.stats().recovered(),
        (report.survivors.len() as u64, recovered_bytes),
        "{label}: recovery counters"
    );
    assert_eq!(
        proxy2.dirty_bytes(),
        recovered_bytes,
        "{label}: every recovered block is dirty"
    );
    let mut acked2 = BTreeMap::new();
    let mut resend_unacked = Vec::new();
    let (mut proxy2, alive) =
        drive_session(proxy2, &unacked, &mut acked2, &mut resend_unacked);
    assert!(alive && resend_unacked.is_empty(), "{label}: re-send is crash-free");
    proxy2.flush_all().unwrap_or_else(|e| panic!("{label}: post-recovery flush: {e}"));
    drop(proxy2);

    let server = state.lock().unwrap().clone();
    assert_eq!(
        &server, oracle,
        "{label}: server state after recovery + one flush diverges from the \
         crash-free run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The matrix: every kill point, firing on its first visit and on three
/// seeded schedules (visit countdown and tear positions drawn from the
/// seed, as in the fault matrix).
#[test]
fn every_kill_point_recovers_to_oracle_state() {
    let oracle = oracle();
    for (p, point) in ALL_CRASH_POINTS.into_iter().enumerate() {
        crash_case(&format!("p{p}-first"), CrashInjector::at(point, 1), &oracle);
        for seed in [1u64, 2, 3] {
            crash_case(
                &format!("p{p}-s{seed}"),
                CrashInjector::seeded(point, seed),
                &oracle,
            );
        }
    }
}

/// A journal whose tail was torn by the host (not our injector): replay
/// stops at the tear, recovery never panics, and the committed block does
/// not come back — in any state.
#[test]
fn torn_tail_is_detected_and_never_resurrects_committed_blocks() {
    let dir = temp_dir("torn-tail");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let (mut store, _) =
            DiskStore::with_durability(dir.clone(), durability(), None, None, None).unwrap();
        store.put((fh1(), 0), &[1; BLOCK], true).unwrap();
        store.set_clean(&(fh1(), 0)).unwrap();
        store.commit_file(&fh1()).unwrap(); // stable: must not recover
        store.put((fh1(), BLOCK as u64), &[2; BLOCK], true).unwrap();
        store.put((fh2(), 0), &[3; BLOCK], true).unwrap();
    }
    // Tear the journal mid-record, then smear garbage after it.
    let path = dir.join(JOURNAL_FILE);
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(b"\xde\xad\xbe\xef");
    std::fs::write(&path, &bytes).unwrap();

    let (mut store, report) =
        DiskStore::with_durability(dir.clone(), durability(), None, None, None).unwrap();
    assert!(report.torn_bytes > 0, "tear detected and measured");
    let keys: Vec<_> = report.survivors.iter().map(|s| s.key.clone()).collect();
    assert_eq!(keys, vec![(fh1(), BLOCK as u64)], "the torn tail record is discarded");
    assert!(
        store.meta(&(fh1(), 0)).is_none(),
        "the committed block is not resurrected"
    );
    assert!(store.meta(&(fh1(), BLOCK as u64)).unwrap().dirty, "survivor is dirty");
    // The truncated journal accepts appends at a record boundary again.
    store.put((fh2(), BLOCK as u64), &[4; BLOCK], true).unwrap();
    drop(store);
    let (_store, report) =
        DiskStore::with_durability(dir.clone(), durability(), None, None, None).unwrap();
    assert_eq!(report.torn_bytes, 0, "tail repaired by the previous recovery");
    assert_eq!(report.survivors.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption in the middle of the journal (bit rot, not a tear): replay
/// trusts the prefix, discards the rest, and the store stays functional.
#[test]
fn corrupted_record_stops_replay_and_store_stays_usable() {
    let dir = temp_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let (mut store, _) =
            DiskStore::with_durability(dir.clone(), durability(), None, None, None).unwrap();
        store.put((fh1(), 0), &[1; BLOCK], true).unwrap();
        store.put((fh1(), BLOCK as u64), &[2; BLOCK], true).unwrap();
        store.put((fh1(), 2 * BLOCK as u64), &[3; BLOCK], true).unwrap();
    }
    let path = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let (mut store, report) =
        DiskStore::with_durability(dir.clone(), durability(), None, None, None).unwrap();
    assert!(report.torn_bytes > 0);
    assert!(
        report.survivors.len() < 3,
        "records at and after the corruption are discarded"
    );
    for s in &report.survivors {
        assert!(store.meta(&s.key).unwrap().dirty, "prefix survivors recover dirty");
        assert!(store.get(&s.key).is_some(), "spool payload intact");
    }
    store.put((fh2(), 0), &[9; BLOCK], true).unwrap();
    drop(store);
    let (_store, report2) =
        DiskStore::with_durability(dir.clone(), durability(), None, None, None).unwrap();
    assert_eq!(report2.torn_bytes, 0);
    assert_eq!(report2.survivors.len(), report.survivors.len() + 1);
    let _ = std::fs::remove_dir_all(&dir);
}
