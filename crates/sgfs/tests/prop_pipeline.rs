//! Properties of the pipelined upstream channel.
//!
//! 1. Reply *order* is irrelevant: whatever permutation the wire delivers,
//!    the xid demultiplexer hands every caller a reply byte-identical to
//!    what the serial (window = 1, FIFO) protocol produces.
//! 2. Write-back ordering: a flush submits its WRITEs split-phase, waits
//!    for every reply, and only then sends COMMIT — so the server always
//!    observes all of a file's data before the commit point, no matter
//!    how deep the window.

use proptest::prelude::*;
use sgfs::config::{CacheMode, SecurityLevel, SessionConfig};
use sgfs::proxy::client::{ClientProxy, Upstream};
use sgfs::proxy::pipeline::Pipeline;
use sgfs::stats::ProxyStats;
use sgfs_net::pipe_pair;
use sgfs_nfs3::proc::{procnum, CommitRes, GetAttrRes, WriteArgs, WriteRes};
use sgfs_nfs3::types::*;
use sgfs_nfs3::{NFS_PROGRAM, NFS_VERSION};
use sgfs_oncrpc::record::{read_record, write_record};
use sgfs_oncrpc::{CallHeader, OpaqueAuth, ReplyHeader};
use sgfs_oncrpc::msg::AuthSysParams;
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder};
use std::sync::{mpsc, Arc, Mutex};

/// Deterministic Fisher–Yates from a SplitMix64 stream.
fn permute<T>(items: &mut [T], seed: u64) {
    let mut s = seed;
    for i in (1..items.len()).rev() {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        items.swap(i, (z % (i as u64 + 1)) as usize);
    }
}

/// The mock server's deterministic request → reply transformation:
/// same xid, then `ok:` and the payload reversed.
fn transform(request: &[u8]) -> Vec<u8> {
    let mut reply = request[0..4].to_vec();
    reply.extend_from_slice(b"ok:");
    reply.extend(request[4..].iter().rev());
    reply
}

/// Serve `total` records in batches of `batch`, replying to each batch in
/// an order drawn from `seed` (batch = 1 ⇒ FIFO, i.e. the serial server).
fn permuting_server(mut end: sgfs_net::PipeEnd, total: usize, batch: usize, seed: u64) {
    std::thread::spawn(move || {
        let mut served = 0;
        while served < total {
            let take = batch.min(total - served);
            let mut held = Vec::with_capacity(take);
            for _ in 0..take {
                match read_record(&mut end) {
                    Ok(Some(r)) => held.push(r),
                    _ => return,
                }
            }
            permute(&mut held, seed.wrapping_add(served as u64));
            for r in &held {
                if write_record(&mut end, &transform(r)).is_err() {
                    return;
                }
            }
            served += take;
        }
    });
}

fn run_calls(p: &Pipeline, payloads: &[Vec<u8>]) -> Vec<std::io::Result<Vec<u8>>> {
    let records = payloads
        .iter()
        .enumerate()
        .map(|(i, payload)| {
            let mut record = (0x4000_0000u32 + i as u32).to_be_bytes().to_vec();
            record.extend_from_slice(payload);
            record
        })
        .collect();
    // Atomic batch: all admitted before any reply is awaited, so the
    // batching permuting server can hold a whole window's replies back.
    p.submit_batch(records).into_iter().map(|r| r.wait()).collect()
}

proptest! {
    #[test]
    fn permuted_replies_are_byte_identical_to_serial(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256),
            1..10,
        ),
        seed: u64,
    ) {
        let n = payloads.len();

        // Serial reference: window 1 against a FIFO server.
        let (c1, s1) = pipe_pair();
        permuting_server(s1, n, 1, 0);
        let w1 = c1.watch();
        let serial =
            Pipeline::new(Upstream::Plain(Box::new(c1)), w1, 1, None, ProxyStats::new());
        let serial_replies = run_calls(&serial, &payloads);

        // Pipelined: the whole batch in flight, replies permuted by seed.
        let (c2, s2) = pipe_pair();
        permuting_server(s2, n, n, seed);
        let w2 = c2.watch();
        let piped = Pipeline::new(
            Upstream::Plain(Box::new(c2)),
            w2,
            n as u32,
            None,
            ProxyStats::new(),
        );
        let piped_replies = run_calls(&piped, &payloads);

        for (i, (a, b)) in serial_replies.iter().zip(&piped_replies).enumerate() {
            let a = a.as_ref().expect("serial reply");
            let b = b.as_ref().expect("pipelined reply");
            prop_assert_eq!(a, b, "call {} diverged from the serial protocol", i);
        }
    }
}

// ---------------------------------------------------------------------
// COMMIT ordering under split-phase write-back.
// ---------------------------------------------------------------------

fn base_attr(size: u64) -> Fattr3 {
    Fattr3 {
        ftype: FType3::Reg,
        mode: 0o644,
        nlink: 1,
        uid: 1001,
        gid: 1001,
        size,
        used: size,
        fsid: 1,
        fileid: 42,
        atime: NfsTime3 { seconds: 1, nseconds: 0 },
        mtime: NfsTime3 { seconds: 1, nseconds: 0 },
        ctime: NfsTime3 { seconds: 1, nseconds: 0 },
    }
}

fn reply_bytes<T: XdrEncode>(xid: u32, res: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(256);
    ReplyHeader::success(xid).encode(&mut enc);
    res.encode(&mut enc);
    enc.into_bytes()
}

/// A mock NFS server that logs arriving procedure numbers. During the
/// flush phase it *holds* up to `hold` WRITE replies back, so the test
/// deadlocks unless the proxy really submits its WRITEs split-phase
/// (all in flight before the first reply is consumed).
fn ordering_server(
    mut end: sgfs_net::PipeEnd,
    hold: usize,
    log: Arc<Mutex<Vec<u32>>>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut held: Vec<(u32, Vec<u8>)> = Vec::new();
        loop {
            let record = match read_record(&mut end) {
                Ok(Some(r)) => r,
                _ => return,
            };
            let mut dec = XdrDecoder::new(&record);
            let header = CallHeader::decode(&mut dec).expect("mock server: call header");
            log.lock().unwrap().push(header.proc);
            let reply = match header.proc {
                procnum::GETATTR => reply_bytes(
                    header.xid,
                    &GetAttrRes { status: NfsStat3::Ok, attr: Some(base_attr(0)) },
                ),
                procnum::WRITE => {
                    let args =
                        WriteArgs::from_xdr_bytes(&record[dec.position()..]).expect("write args");
                    let res = WriteRes {
                        status: NfsStat3::Ok,
                        wcc: WccData { before: None, after: Some(base_attr(args.offset)) },
                        count: args.data.len() as u32,
                        committed: StableHow::FileSync,
                        verf: 7,
                    };
                    held.push((header.xid, res.to_xdr_bytes()));
                    // Release the held batch only once `hold` WRITEs are
                    // all in flight: a serial flusher would deadlock here.
                    if held.len() >= hold {
                        for (xid, body) in held.drain(..) {
                            let mut enc = XdrEncoder::with_capacity(body.len() + 32);
                            ReplyHeader::success(xid).encode(&mut enc);
                            let mut out = enc.into_bytes();
                            out.extend_from_slice(&body);
                            if write_record(&mut end, &out).is_err() {
                                return;
                            }
                        }
                    }
                    continue;
                }
                procnum::COMMIT => {
                    assert!(
                        held.is_empty(),
                        "COMMIT arrived while WRITE replies were still outstanding"
                    );
                    reply_bytes(
                        header.xid,
                        &CommitRes {
                            status: NfsStat3::Ok,
                            wcc: WccData { before: None, after: Some(base_attr(0)) },
                            verf: 7,
                        },
                    )
                }
                other => panic!("mock server: unexpected proc {other}"),
            };
            if write_record(&mut end, &reply).is_err() {
                return;
            }
        }
    })
}

fn commit_ordering_case(blocks: usize, block_len: usize) {
    let (upstream_end, server_end) = pipe_pair();
    let log = Arc::new(Mutex::new(Vec::new()));
    let _server = ordering_server(server_end, blocks, log.clone());

    let mut config = SessionConfig::new(SecurityLevel::None);
    config.cache = CacheMode::MemoryMeta;
    config.window = 8;
    let watch = upstream_end.watch();
    let proxy = ClientProxy::new(Upstream::Plain(Box::new(upstream_end)), watch, &config)
        .expect("proxy");
    let stats = proxy.stats().clone();

    // Drive WRITEs through the downstream interface (absorbed into the
    // write-back cache, acknowledged locally).
    let (mut down, proxy_down) = pipe_pair();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(proxy.run(Box::new(proxy_down)));
    });
    let fh = Fh3::from_ino(1, 42);
    let cred = OpaqueAuth::sys(&AuthSysParams::new("test-host", 1001, 1001));
    for i in 0..blocks {
        let args = WriteArgs {
            file: fh.clone(),
            offset: (i * block_len) as u64,
            stable: StableHow::Unstable,
            data: vec![i as u8; block_len],
        };
        let header = CallHeader {
            xid: 0x100 + i as u32,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc: procnum::WRITE,
            cred: cred.clone(),
            verf: OpaqueAuth::none(),
        };
        let mut enc = XdrEncoder::with_capacity(block_len + 128);
        header.encode(&mut enc);
        args.encode(&mut enc);
        write_record(&mut down, enc.as_bytes()).unwrap();
        let reply = read_record(&mut down).unwrap().expect("local WRITE ack");
        let mut dec = XdrDecoder::new(&reply);
        let _ = ReplyHeader::decode(&mut dec).expect("reply header");
        let res = WriteRes::from_xdr_bytes(&reply[dec.position()..]).expect("write res");
        assert_eq!(res.status, NfsStat3::Ok, "block {i} not absorbed");
    }
    drop(down);
    let (mut proxy, run_result) = rx.recv().expect("proxy thread");
    run_result.expect("proxy loop");

    // The flush: WRITE × blocks split-phase, then COMMIT.
    proxy.flush_all().expect("flush");

    let log = log.lock().unwrap().clone();
    let writes: Vec<usize> =
        (0..log.len()).filter(|&i| log[i] == procnum::WRITE).collect();
    let commits: Vec<usize> =
        (0..log.len()).filter(|&i| log[i] == procnum::COMMIT).collect();
    assert_eq!(writes.len(), blocks, "every dirty block written back: {log:?}");
    assert_eq!(commits.len(), 1, "exactly one COMMIT: {log:?}");
    assert!(
        writes.iter().all(|&w| w < commits[0]),
        "COMMIT must come after every WRITE: {log:?}"
    );
    if blocks > 1 {
        assert!(
            stats.pipeline_peak() >= blocks as u64,
            "all {} WRITEs should have been in flight together, peak {}",
            blocks,
            stats.pipeline_peak()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn commit_waits_for_all_inflight_writes(
        blocks in 1usize..=8,
        block_len in prop_oneof![Just(512usize), Just(1024), Just(4096)],
    ) {
        commit_ordering_case(blocks, block_len);
    }
}
