//! Property test: every [`BlockStore`] implementation exposes identical
//! visible semantics under arbitrary operation sequences.
//!
//! One seed draws one op sequence (SplitMix64, the same generator idiom
//! as the fault and crash injectors); the sequence is applied in lockstep
//! to the in-memory store, the ephemeral disk store, and the journaled
//! disk store, and after every single op the three must agree on every
//! observable: `get` payloads, `meta`, per-file block lists, the dirty
//! set, and the byte totals. The journal is pure crash-recovery state —
//! it must never change what a live store answers.

use proptest::prelude::*;
use sgfs::config::DurabilityPolicy;
use sgfs::proxy::blockstore::{BlockKey, BlockStore, DiskStore, MemStore};
use sgfs_nfs3::Fh3;
use std::path::PathBuf;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone)]
enum Op {
    Put { key: BlockKey, data: Vec<u8>, dirty: bool },
    Get(BlockKey),
    SetClean(BlockKey),
    SetDirty(BlockKey),
    DropFile(Fh3),
    CommitFile(Fh3),
}

fn gen_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = seed;
    let fhs: Vec<Fh3> = (0..3).map(|i| Fh3::from_ino(1, 100 + i)).collect();
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let r = splitmix(&mut rng);
        let fh = fhs[(r >> 8) as usize % fhs.len()].clone();
        let offset = ((r >> 16) % 4) * 512;
        let key = (fh.clone(), offset);
        ops.push(match r % 10 {
            // Puts dominate so sequences build real state to disagree on.
            0..=3 => {
                let len = 1 + (splitmix(&mut rng) % 64) as usize;
                let fill = (r >> 24) as u8;
                Op::Put { key, data: vec![fill; len], dirty: r & 1 == 0 }
            }
            4 | 5 => Op::Get(key),
            6 => Op::SetClean(key),
            7 => Op::SetDirty(key),
            8 => Op::DropFile(fh),
            _ => Op::CommitFile(fh),
        });
    }
    ops
}

/// Apply one op; the return value is the op's visible result.
fn apply(store: &mut dyn BlockStore, op: &Op) -> Option<Vec<u8>> {
    match op {
        Op::Put { key, data, dirty } => {
            store.put(key.clone(), data, *dirty).expect("put");
            None
        }
        Op::Get(key) => store.get(key),
        Op::SetClean(key) => {
            store.set_clean(key).expect("set_clean");
            None
        }
        Op::SetDirty(key) => {
            store.set_dirty(key).expect("set_dirty");
            None
        }
        Op::DropFile(fh) => {
            store.drop_file(fh);
            None
        }
        Op::CommitFile(fh) => {
            store.commit_file(fh).expect("commit_file");
            None
        }
    }
}

/// Everything a caller can observe about a store, for equality checks.
#[derive(Debug, PartialEq, Eq)]
struct Snapshot {
    blocks: Vec<(u64, Vec<u64>)>,
    dirty_blocks: Vec<(u64, Vec<u64>)>,
    dirty_files: Vec<Fh3>,
    total_bytes: u64,
    dirty_bytes: u64,
    metas: Vec<Option<(u32, bool)>>,
}

fn snapshot(store: &dyn BlockStore) -> Snapshot {
    let fhs: Vec<Fh3> = (0..3).map(|i| Fh3::from_ino(1, 100 + i)).collect();
    Snapshot {
        blocks: fhs.iter().enumerate().map(|(i, f)| (i as u64, store.blocks_of(f))).collect(),
        dirty_blocks: fhs
            .iter()
            .enumerate()
            .map(|(i, f)| (i as u64, store.dirty_blocks_of(f)))
            .collect(),
        dirty_files: store.dirty_files(),
        total_bytes: store.total_bytes(),
        dirty_bytes: store.dirty_bytes(),
        metas: fhs
            .iter()
            .flat_map(|f| (0..4).map(|b| store.meta(&(f.clone(), b * 512))))
            .map(|m| m.map(|m| (m.len, m.dirty)))
            .collect(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sgfs-store-parity-{tag}-{}", std::process::id()))
}

fn parity_case(seed: u64, n: usize) {
    let ops = gen_ops(seed, n);
    let mut mem = MemStore::new(u64::MAX); // unbounded: no eviction
    let eph_dir = temp_dir(&format!("eph-{seed:x}"));
    let _ = std::fs::remove_dir_all(&eph_dir);
    let mut eph = DiskStore::new(eph_dir).expect("ephemeral store");
    let jour_dir = temp_dir(&format!("wal-{seed:x}"));
    let _ = std::fs::remove_dir_all(&jour_dir);
    let policy = DurabilityPolicy { journal: true, fsync_every: 1, compact_min_records: 4 };
    let (mut jour, _) = DiskStore::with_durability(jour_dir.clone(), policy, None, None, None)
        .expect("journaled store");

    for (i, op) in ops.iter().enumerate() {
        let r_mem = apply(&mut mem, op);
        let r_eph = apply(&mut eph, op);
        let r_jour = apply(&mut jour, op);
        prop_assert_eq!(&r_mem, &r_eph, "op {} {:?}: mem vs ephemeral-disk result", i, op);
        prop_assert_eq!(&r_mem, &r_jour, "op {} {:?}: mem vs journaled-disk result", i, op);
        let s_mem = snapshot(&mem);
        prop_assert_eq!(&s_mem, &snapshot(&eph), "op {} {:?}: mem vs ephemeral-disk", i, op);
        prop_assert_eq!(&s_mem, &snapshot(&jour), "op {} {:?}: mem vs journaled-disk", i, op);
    }
    drop(jour);
    let _ = std::fs::remove_dir_all(&jour_dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn all_stores_agree_on_any_op_sequence(seed: u64, n in 1usize..48) {
        parity_case(seed, n);
    }
}
