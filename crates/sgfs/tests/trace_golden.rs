//! Golden-trace tests: scripted workloads whose observability event
//! sequences are pinned exactly. Any silent behavior change — an extra
//! round trip, a lost cache hit, a COMMIT overtaking a WRITE, a replay
//! that stops happening — shows up as a diff against the golden
//! projection.
//!
//! Projections only keep hops emitted from a single thread per scenario
//! (cache decisions, upstream sends, flush rounds, replays), so the
//! sequences are deterministic; cross-thread hops (`upstream_reply`,
//! `backoff`) are asserted by count/structure instead. Each scenario runs
//! three times and the three projections must be identical.

use sgfs::config::{CacheMode, DurabilityPolicy, RetryPolicy, SecurityLevel, SessionConfig};
use sgfs::proxy::client::{ClientProxy, Upstream};
use sgfs::proxy::journal::JOURNAL_FILE;
use sgfs_net::{pipe_pair, PipeEnd};
use sgfs_nfs3::proc::{
    procnum, CommitRes, GetAttrRes, ReadArgs, ReadRes, WccRes, WriteArgs, WriteRes,
};
use sgfs_nfs3::types::*;
use sgfs_nfs3::{NFS_PROGRAM, NFS_VERSION};
use sgfs_obs::{Hop, Obs, TraceEvent};
use sgfs_oncrpc::msg::AuthSysParams;
use sgfs_oncrpc::record::{read_record, write_record};
use sgfs_oncrpc::{CallHeader, OpaqueAuth, ReplyHeader};
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

fn nfs_call(xid: u32, proc: u32, body: impl FnOnce(&mut XdrEncoder)) -> Vec<u8> {
    let header = CallHeader {
        xid,
        prog: NFS_PROGRAM,
        vers: NFS_VERSION,
        proc,
        cred: OpaqueAuth::sys(&AuthSysParams::new("golden-host", 1001, 1001)),
        verf: OpaqueAuth::none(),
    };
    let mut enc = XdrEncoder::with_capacity(256);
    header.encode(&mut enc);
    body(&mut enc);
    enc.into_bytes()
}

fn base_attr(size: u64) -> Fattr3 {
    Fattr3 {
        ftype: FType3::Reg,
        mode: 0o644,
        nlink: 1,
        uid: 1001,
        gid: 1001,
        size,
        used: size,
        fsid: 1,
        fileid: 42,
        atime: NfsTime3 { seconds: 1, nseconds: 0 },
        mtime: NfsTime3 { seconds: 1, nseconds: 0 },
        ctime: NfsTime3 { seconds: 1, nseconds: 0 },
    }
}

fn reply_bytes<T: XdrEncode>(xid: u32, res: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(256);
    ReplyHeader::success(xid).encode(&mut enc);
    res.encode(&mut enc);
    enc.into_bytes()
}

fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        max_reconnects: 8,
        dial_attempts: 4,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        call_deadline: Some(Duration::from_secs(20)),
        ..RetryPolicy::default()
    }
}

/// A full mock-NFS responder with a stable write verifier.
fn nfs_server(mut end: PipeEnd) {
    std::thread::spawn(move || loop {
        let record = match read_record(&mut end) {
            Ok(Some(r)) => r,
            _ => return,
        };
        let mut dec = XdrDecoder::new(&record);
        let header = CallHeader::decode(&mut dec).expect("call header");
        let reply = match header.proc {
            procnum::GETATTR => reply_bytes(
                header.xid,
                &GetAttrRes { status: NfsStat3::Ok, attr: Some(base_attr(0)) },
            ),
            procnum::WRITE => {
                let args =
                    WriteArgs::from_xdr_bytes(&record[dec.position()..]).expect("write args");
                reply_bytes(
                    header.xid,
                    &WriteRes {
                        status: NfsStat3::Ok,
                        wcc: WccData { before: None, after: Some(base_attr(args.offset)) },
                        count: args.data.len() as u32,
                        committed: StableHow::Unstable,
                        verf: 7,
                    },
                )
            }
            procnum::COMMIT => reply_bytes(
                header.xid,
                &CommitRes {
                    status: NfsStat3::Ok,
                    wcc: WccData { before: None, after: Some(base_attr(0)) },
                    verf: 7,
                },
            ),
            other => panic!("unexpected proc {other}"),
        };
        if write_record(&mut end, &reply).is_err() {
            return;
        }
    });
}

fn traced_config() -> (SessionConfig, Arc<Obs>) {
    let obs = Obs::new();
    let mut config = SessionConfig::new(SecurityLevel::None);
    config.cache = CacheMode::MemoryMeta;
    config.window = 8;
    config.retry = quick_retry();
    config.obs = Some(obs.clone());
    (config, obs)
}

/// Run `records` through the proxy's downstream interface one at a time
/// (request, await reply), then return the proxy for further driving.
fn drive(proxy: ClientProxy, records: &[Vec<u8>]) -> ClientProxy {
    let (mut down, proxy_down) = pipe_pair();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(proxy.run(Box::new(proxy_down)));
    });
    for record in records {
        write_record(&mut down, record).unwrap();
        let reply = read_record(&mut down).unwrap().expect("downstream reply");
        let mut dec = XdrDecoder::new(&reply);
        ReplyHeader::decode(&mut dec).expect("reply header");
    }
    drop(down);
    let (proxy, run_result) = rx.recv().expect("proxy thread");
    run_result.expect("proxy loop");
    proxy
}

/// The deterministic projection of a trace: hop names (tagged with the
/// procedure where meaningful), restricted to single-threaded hops.
fn golden(events: &[TraceEvent], keep: &[Hop]) -> Vec<String> {
    events
        .iter()
        .filter(|e| keep.contains(&e.hop))
        .map(|e| {
            if e.proc < sgfs_obs::NUM_PROCS as u32 {
                format!("{}:{}", e.hop.as_str(), sgfs_obs::proc_name(e.proc))
            } else {
                e.hop.as_str().to_string()
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// 1. Metadata cache: miss populates, hit short-circuits.
// ---------------------------------------------------------------------

fn cache_scenario() -> Vec<String> {
    let (config, obs) = traced_config();
    let (upstream_end, srv) = pipe_pair();
    nfs_server(srv);
    let watch = upstream_end.watch();
    let proxy = ClientProxy::new(Upstream::Plain(Box::new(upstream_end)), watch, &config)
        .expect("proxy");

    let fh = Fh3::from_ino(1, 42);
    let getattr =
        |xid: u32| nfs_call(xid, procnum::GETATTR, |enc| fh.clone().encode(enc));
    let proxy = drive(proxy, &[getattr(0x10), getattr(0x11), getattr(0x12)]);
    drop(proxy);

    let (events, dropped) = obs.events();
    assert_eq!(dropped, 0);
    // Exactly one call crossed the wire; the repeats were served locally.
    let sends: Vec<&TraceEvent> =
        events.iter().filter(|e| e.hop == Hop::UpstreamSend).collect();
    assert_eq!(sends.len(), 1, "repeat GETATTRs must not go upstream");
    assert_eq!(sends[0].proc, procnum::GETATTR);
    // The sole round trip was measured.
    assert_eq!(obs.hop_hist(Hop::UpstreamReply).count(), 1);
    assert_eq!(obs.proc_hist(procnum::GETATTR).unwrap().count(), 3);

    let g = golden(
        &events,
        &[Hop::CacheHit, Hop::CacheMiss, Hop::UpstreamSend],
    );
    assert_eq!(
        g,
        [
            "cache_miss:getattr",
            "upstream_send:getattr",
            "cache_hit:getattr",
            "cache_hit:getattr",
        ],
        "golden cache sequence changed"
    );
    g
}

#[test]
fn golden_cache_hit_miss_sequence() {
    let runs: Vec<Vec<String>> = (0..3).map(|_| cache_scenario()).collect();
    assert_eq!(runs[0], runs[1], "run 2 diverged from run 1");
    assert_eq!(runs[1], runs[2], "run 3 diverged from run 2");
}

// ---------------------------------------------------------------------
// 2. Split-phase flush: every WRITE is sent before the COMMIT.
// ---------------------------------------------------------------------

fn flush_scenario() -> Vec<String> {
    const BLOCKS: usize = 3;
    const BLOCK_LEN: usize = 512;
    let (config, obs) = traced_config();
    let (upstream_end, srv) = pipe_pair();
    nfs_server(srv);
    let watch = upstream_end.watch();
    let proxy = ClientProxy::new(Upstream::Plain(Box::new(upstream_end)), watch, &config)
        .expect("proxy");

    let fh = Fh3::from_ino(1, 42);
    let writes: Vec<Vec<u8>> = (0..BLOCKS)
        .map(|i| {
            nfs_call(0x20 + i as u32, procnum::WRITE, |enc| {
                WriteArgs {
                    file: fh.clone(),
                    offset: (i * BLOCK_LEN) as u64,
                    stable: StableHow::Unstable,
                    data: vec![i as u8; BLOCK_LEN],
                }
                .encode(enc)
            })
        })
        .collect();
    let mut proxy = drive(proxy, &writes);
    proxy.flush_all().expect("flush");
    drop(proxy);

    let (events, dropped) = obs.events();
    assert_eq!(dropped, 0);
    // The downstream WRITEs were absorbed locally (block store), not
    // forwarded: the only upstream WRITE traffic is the flush.
    assert_eq!(
        events.iter().filter(|e| e.hop == Hop::BlockWrite).count(),
        BLOCKS,
        "each absorbed WRITE hits the block store once"
    );
    let g = golden(&events, &[Hop::FlushRound, Hop::UpstreamSend]);
    // Split-phase contract, pinned exactly: the first absorbed WRITE
    // fetches base attributes upstream, then one flush round announcing
    // the dirty block count, all WRITEs, then the COMMIT.
    assert_eq!(
        g,
        [
            "upstream_send:getattr",
            "flush_round:commit",
            "upstream_send:write",
            "upstream_send:write",
            "upstream_send:write",
            "upstream_send:commit",
        ],
        "golden flush sequence changed"
    );
    let round = events.iter().find(|e| e.hop == Hop::FlushRound).unwrap();
    assert_eq!(round.aux, BLOCKS as u64, "flush round carries the dirty count");
    g
}

#[test]
fn golden_split_phase_flush_sequence() {
    let runs: Vec<Vec<String>> = (0..3).map(|_| flush_scenario()).collect();
    assert_eq!(runs[0], runs[1], "run 2 diverged from run 1");
    assert_eq!(runs[1], runs[2], "run 3 diverged from run 2");
}

// ---------------------------------------------------------------------
// 3. Replay after reconnect: in-flight WRITEs are replayed on the fresh
//    channel and the COMMIT still waits for all of them.
// ---------------------------------------------------------------------

fn replay_scenario() -> Vec<String> {
    const BLOCKS: usize = 3;
    const BLOCK_LEN: usize = 512;
    let (config, obs) = traced_config();

    // Connection #1 answers metadata calls but swallows WRITEs until it
    // has seen every one, then dies without replying: the whole flush
    // window is in flight when the channel collapses, so the replay set
    // is exactly the three WRITEs.
    let (upstream_end, dead_srv) = pipe_pair();
    std::thread::spawn(move || {
        let mut end = dead_srv;
        let mut writes_seen = 0;
        while writes_seen < BLOCKS {
            match read_record(&mut end) {
                Ok(Some(record)) => match sgfs_obs::peek_proc(&record) {
                    p if p == procnum::WRITE => writes_seen += 1,
                    p if p == procnum::GETATTR => {
                        let reply = reply_bytes(
                            sgfs_obs::peek_xid(&record),
                            &GetAttrRes { status: NfsStat3::Ok, attr: Some(base_attr(0)) },
                        );
                        if write_record(&mut end, &reply).is_err() {
                            return;
                        }
                    }
                    other => panic!("unexpected proc {other} on dying channel"),
                },
                _ => return,
            }
        }
        // Drop: both pipe directions close, the pipeline recovers.
    });

    let dials = Arc::new(AtomicU32::new(0));
    let dialed = dials.clone();
    let reconnect = move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
        dialed.fetch_add(1, Ordering::SeqCst);
        let (end, srv) = pipe_pair();
        nfs_server(srv);
        let watch = end.watch();
        Ok((Upstream::Plain(Box::new(end)), watch))
    };
    let up_watch = upstream_end.watch();
    let proxy = ClientProxy::with_reconnector(
        Upstream::Plain(Box::new(upstream_end)),
        up_watch,
        &config,
        Some(Box::new(reconnect)),
    )
    .expect("proxy");

    let fh = Fh3::from_ino(1, 42);
    let writes: Vec<Vec<u8>> = (0..BLOCKS)
        .map(|i| {
            nfs_call(0x30 + i as u32, procnum::WRITE, |enc| {
                WriteArgs {
                    file: fh.clone(),
                    offset: (i * BLOCK_LEN) as u64,
                    stable: StableHow::Unstable,
                    data: vec![i as u8; BLOCK_LEN],
                }
                .encode(enc)
            })
        })
        .collect();
    let mut proxy = drive(proxy, &writes);
    proxy.flush_all().expect("flush survives the reconnect");
    drop(proxy);
    assert_eq!(dials.load(Ordering::SeqCst), 1, "one successful re-dial");

    let (events, dropped) = obs.events();
    assert_eq!(dropped, 0);

    // Structure: exactly one recovery episode replaying all three WRITEs.
    let replays: Vec<&TraceEvent> =
        events.iter().filter(|e| e.hop == Hop::Replay).collect();
    assert_eq!(replays.len(), BLOCKS, "every in-flight WRITE was replayed");
    assert!(replays.iter().all(|e| e.proc == procnum::WRITE));
    assert_eq!(events.iter().filter(|e| e.hop == Hop::Reconnect).count(), 1);
    // Each replayed xid got its reply on the fresh channel, afterwards.
    for r in &replays {
        assert!(
            events
                .iter()
                .any(|e| e.hop == Hop::UpstreamReply && e.xid == r.xid && e.seq > r.seq),
            "replayed xid {:#x} never answered",
            r.xid
        );
    }
    // The COMMIT was sent only after every replay (split-phase across
    // the reconnect).
    let commit_send = events
        .iter()
        .find(|e| e.hop == Hop::UpstreamSend && e.proc == procnum::COMMIT)
        .expect("flush commits");
    assert!(
        replays.iter().all(|r| r.seq < commit_send.seq),
        "COMMIT overtook a replayed WRITE"
    );

    // Replays and the reconnect marker happen on one recovery thread
    // while the flusher is blocked, so they project deterministically.
    let g = golden(&events, &[Hop::FlushRound, Hop::Replay, Hop::Reconnect]);
    assert_eq!(
        g,
        [
            "flush_round:commit",
            "replay:write",
            "replay:write",
            "replay:write",
            "reconnect",
        ],
        "golden recovery sequence changed"
    );
    g
}

#[test]
fn golden_replay_after_reconnect_sequence() {
    let runs: Vec<Vec<String>> = (0..3).map(|_| replay_scenario()).collect();
    assert_eq!(runs[0], runs[1], "run 2 diverged from run 1");
    assert_eq!(runs[1], runs[2], "run 3 diverged from run 2");
}

// ---------------------------------------------------------------------
// 4. Crash recovery: journal replay, torn-tail detection, and the
//    re-flush of the surviving dirty block — pinned exactly.
// ---------------------------------------------------------------------

fn recovery_scenario() -> Vec<String> {
    const BLOCK_LEN: usize = 512;
    let dir =
        std::env::temp_dir().join(format!("sgfs-golden-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durability =
        DurabilityPolicy { journal: true, fsync_every: 1, compact_min_records: 0 };
    let disk_config = |obs: &Arc<Obs>| {
        let mut config = SessionConfig::new(SecurityLevel::None);
        config.cache = CacheMode::Disk { dir: dir.clone() };
        config.window = 8;
        config.retry = quick_retry();
        config.durability = durability;
        config.obs = Some(obs.clone());
        config
    };
    let fh = Fh3::from_ino(1, 42);

    // Incarnation #1 absorbs two unstable WRITEs and dies without a
    // flush: the journal is the only thing standing between those acks
    // and data loss.
    {
        let obs = Obs::new();
        let (upstream_end, srv) = pipe_pair();
        nfs_server(srv);
        let watch = upstream_end.watch();
        let proxy =
            ClientProxy::new(Upstream::Plain(Box::new(upstream_end)), watch, &disk_config(&obs))
                .expect("proxy");
        let writes: Vec<Vec<u8>> = (0..2)
            .map(|i| {
                nfs_call(0x40 + i as u32, procnum::WRITE, |enc| {
                    WriteArgs {
                        file: fh.clone(),
                        offset: (i * BLOCK_LEN) as u64,
                        stable: StableHow::Unstable,
                        data: vec![i as u8; BLOCK_LEN],
                    }
                    .encode(enc)
                })
            })
            .collect();
        let proxy = drive(proxy, &writes);
        drop(proxy);
        let (events, dropped) = obs.events();
        assert_eq!(dropped, 0);
        assert_eq!(
            events.iter().filter(|e| e.hop == Hop::JournalAppend).count(),
            2,
            "each absorbed WRITE journals exactly once"
        );
    }
    // A host crash mid-append: the second record's tail is torn off.
    let wal = dir.join(JOURNAL_FILE);
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    // Incarnation #2: recovery replays the intact prefix, reports the
    // tear, and the next flush re-sends the surviving block.
    let obs = Obs::new();
    let (upstream_end, srv) = pipe_pair();
    nfs_server(srv);
    let watch = upstream_end.watch();
    let mut proxy =
        ClientProxy::new(Upstream::Plain(Box::new(upstream_end)), watch, &disk_config(&obs))
            .expect("proxy");
    assert_eq!(proxy.stats().recovered(), (1, BLOCK_LEN as u64), "one block survives the tear");
    proxy.flush_all().expect("post-recovery flush");
    drop(proxy);
    let _ = std::fs::remove_dir_all(&dir);

    let (events, dropped) = obs.events();
    assert_eq!(dropped, 0);
    // Recovery latency landed in its histogram.
    assert_eq!(obs.hop_hist(Hop::RecoveryComplete).count(), 1);
    let replayed = events.iter().find(|e| e.hop == Hop::RecoveryReplay).unwrap();
    assert_eq!(replayed.aux, 1, "one journal record replayed before the tear");
    let torn = events.iter().find(|e| e.hop == Hop::RecoveryTorn).unwrap();
    assert!(torn.aux > 0, "torn bytes measured");
    let complete = events.iter().find(|e| e.hop == Hop::RecoveryComplete).unwrap();
    assert_eq!(complete.aux, 1, "one survivor re-marked dirty");

    let g = golden(
        &events,
        &[
            Hop::RecoveryReplay,
            Hop::RecoveryTorn,
            Hop::RecoveryComplete,
            Hop::FlushRound,
            Hop::UpstreamSend,
        ],
    );
    assert_eq!(
        g,
        [
            "recovery_replay",
            "recovery_torn",
            "recovery_complete",
            "flush_round:commit",
            "upstream_send:write",
            "upstream_send:commit",
        ],
        "golden recovery sequence changed"
    );
    g
}

#[test]
fn golden_recovery_sequence() {
    let runs: Vec<Vec<String>> = (0..3).map(|_| recovery_scenario()).collect();
    assert_eq!(runs[0], runs[1], "run 2 diverged from run 1");
    assert_eq!(runs[1], runs[2], "run 3 diverged from run 2");
}

// ---------------------------------------------------------------------
// 5. AEAD record plane: a GTLS session under AES-256-GCM emits one
//    suite-tagged record_seal/record_open pair per record, with the
//    exact payload byte counts — no hidden fragmentation or padding.
// ---------------------------------------------------------------------

fn aead_trace_scenario() -> Vec<String> {
    use sgfs_gtls::{CipherSuite, GtlsConfig, GtlsStream};
    use sgfs_pki::{CertificateAuthority, Credential, DistinguishedName, TrustStore};
    use std::io::{Read, Write};

    let mut rng = rand::thread_rng();
    let ca = CertificateAuthority::new(
        &DistinguishedName::parse("/O=Grid/CN=CA").unwrap(),
        512,
        &mut rng,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let mut cred = |cn: &str| {
        let key = sgfs_crypto::rsa::RsaKeyPair::generate(512, &mut rng);
        let cert = ca.issue(&DistinguishedName::parse(cn).unwrap(), &key.public);
        Credential::new(cert, key)
    };
    let client_cfg = GtlsConfig::new(cred("/O=Grid/CN=alice"), trust.clone())
        .with_suite(CipherSuite::Aes256Gcm);
    let server_cfg = GtlsConfig::new(cred("/O=Grid/CN=fileserver"), trust)
        .with_suite(CipherSuite::Aes256Gcm);

    let (a, b) = pipe_pair();
    let h = std::thread::spawn(move || GtlsStream::server(Box::new(b), server_cfg).unwrap());
    let mut c = GtlsStream::client(Box::new(a), client_cfg).unwrap();
    let mut s = h.join().unwrap();
    assert!(c.suite().is_aead());

    // One shared domain, attached after the handshake; the scripted
    // ping-pong below then drives both ends from this single thread, so
    // the event interleaving is fully deterministic.
    let obs = Obs::new();
    c.obs = Some(obs.clone());
    s.obs = Some(obs.clone());

    let mut buf = vec![0u8; 4096];
    for &(c_to_s, len) in &[(true, 1024usize), (false, 2048), (true, 333), (false, 1)] {
        let (tx, rx) = if c_to_s { (&mut c, &mut s) } else { (&mut s, &mut c) };
        tx.write_all(&vec![0x5au8; len]).unwrap();
        rx.read_exact(&mut buf[..len]).unwrap();
    }

    let (events, dropped) = obs.events();
    assert_eq!(dropped, 0);
    let g: Vec<String> = events
        .iter()
        .filter(|e| matches!(e.hop, Hop::RecordSeal | Hop::RecordOpen))
        .map(|e| format!("{}:{}:{}", e.hop.as_str(), e.xid, e.aux))
        .collect();
    // suite wire id 6 = AES-256-GCM; aux = plaintext payload bytes.
    assert_eq!(
        g,
        [
            "record_seal:6:1024",
            "record_open:6:1024",
            "record_seal:6:2048",
            "record_open:6:2048",
            "record_seal:6:333",
            "record_open:6:333",
            "record_seal:6:1",
            "record_open:6:1",
        ],
        "golden AEAD record sequence changed"
    );
    g
}

#[test]
fn golden_aead_record_sequence() {
    let runs: Vec<Vec<String>> = (0..3).map(|_| aead_trace_scenario()).collect();
    assert_eq!(runs[0], runs[1], "run 2 diverged from run 1");
    assert_eq!(runs[1], runs[2], "run 3 diverged from run 2");
}

// ---------------------------------------------------------------------
// 6. Sharded accept plane: each accepted session emits exactly one
//    shard_accept (on the accepting thread) followed by one
//    shard_handoff (on its event loop), and the round-robin placement
//    `id % shards` is pinned in the aux field.
// ---------------------------------------------------------------------

fn shard_scenario() -> Vec<String> {
    use sgfs_oncrpc::{RecordService, ShardServer};

    struct Echo;
    impl RecordService for Echo {
        fn process_record(&self, record: &[u8]) -> std::io::Result<Vec<u8>> {
            Ok(record.to_vec())
        }
    }

    let obs = Obs::new();
    let shards = ShardServer::with_obs(2, obs.clone());
    let mut clients = Vec::new();
    for _ in 0..4 {
        let (mut client, server_end) = pipe_pair();
        let watch = server_end.watch();
        shards.add_session(Box::new(server_end), watch, Arc::new(Echo)).unwrap();
        // One round trip serializes the interleaving: the echoed reply
        // proves this session's handoff completed before the next accept,
        // so the projection is deterministic despite the shard threads.
        write_record(&mut client, b"ping").unwrap();
        assert_eq!(read_record(&mut client).unwrap().expect("echo"), b"ping");
        clients.push(client);
    }
    let stats = shards.stats();
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.served, 4);

    let (events, dropped) = obs.events();
    assert_eq!(dropped, 0);
    // xid carries the session id, aux the shard index (id % 2).
    let g: Vec<String> = events
        .iter()
        .filter(|e| matches!(e.hop, Hop::ShardAccept | Hop::ShardHandoff))
        .map(|e| format!("{}:{}:{}", e.hop.as_str(), e.xid, e.aux))
        .collect();
    assert_eq!(
        g,
        [
            "shard_accept:1:1",
            "shard_handoff:1:1",
            "shard_accept:2:0",
            "shard_handoff:2:0",
            "shard_accept:3:1",
            "shard_handoff:3:1",
            "shard_accept:4:0",
            "shard_handoff:4:0",
        ],
        "golden shard accept/handoff sequence changed"
    );
    g
}

#[test]
fn golden_shard_accept_handoff_sequence() {
    let runs: Vec<Vec<String>> = (0..3).map(|_| shard_scenario()).collect();
    assert_eq!(runs[0], runs[1], "run 2 diverged from run 1");
    assert_eq!(runs[1], runs[2], "run 3 diverged from run 2");
}

// ---------------------------------------------------------------------
// 7. Striped session: replicated flush, striped reads, failover — every
//    hop tagged with the upstream member that served it.
// ---------------------------------------------------------------------

/// A striped member's responder: the full mock-NFS surface plus READ
/// with deterministic content, dying (no reply, wire closed) on its
/// `die_on_read`-th READ when set.
fn striped_member_server(mut end: PipeEnd, mut die_on_read: Option<u32>) {
    std::thread::spawn(move || loop {
        let record = match read_record(&mut end) {
            Ok(Some(r)) => r,
            _ => return,
        };
        let mut dec = XdrDecoder::new(&record);
        let header = CallHeader::decode(&mut dec).expect("call header");
        let reply = match header.proc {
            procnum::GETATTR => reply_bytes(
                header.xid,
                &GetAttrRes { status: NfsStat3::Ok, attr: Some(base_attr(1 << 20)) },
            ),
            procnum::WRITE => {
                let args =
                    WriteArgs::from_xdr_bytes(&record[dec.position()..]).expect("write args");
                reply_bytes(
                    header.xid,
                    &WriteRes {
                        status: NfsStat3::Ok,
                        wcc: WccData { before: None, after: Some(base_attr(args.offset)) },
                        count: args.data.len() as u32,
                        committed: StableHow::Unstable,
                        verf: 7,
                    },
                )
            }
            procnum::COMMIT => reply_bytes(
                header.xid,
                &CommitRes {
                    status: NfsStat3::Ok,
                    wcc: WccData { before: None, after: Some(base_attr(0)) },
                    verf: 7,
                },
            ),
            // Post-COMMIT size mirror from the striped flush.
            procnum::SETATTR => reply_bytes(
                header.xid,
                &WccRes {
                    status: NfsStat3::Ok,
                    wcc: WccData { before: None, after: Some(base_attr(0)) },
                },
            ),
            procnum::READ => {
                if let Some(n) = &mut die_on_read {
                    *n -= 1;
                    if *n == 0 {
                        return; // the seeded death: request dropped, wire closed
                    }
                }
                let args =
                    ReadArgs::from_xdr_bytes(&record[dec.position()..]).expect("read args");
                reply_bytes(
                    header.xid,
                    &ReadRes {
                        status: NfsStat3::Ok,
                        attr: Some(base_attr(1 << 20)),
                        count: args.count,
                        eof: false,
                        data: vec![(args.offset / 512) as u8; args.count as usize],
                    },
                )
            }
            other => panic!("unexpected proc {other}"),
        };
        if write_record(&mut end, &reply).is_err() {
            return;
        }
    });
}

/// The per-member projection of the striped hops: which member served
/// each striped read, which members confirmed each replicated flush,
/// which member failed over.
fn striped_golden(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .filter(|e| {
            matches!(e.hop, Hop::StripeRead | Hop::ReplicaWrite | Hop::ReplicaFailover)
        })
        .map(|e| format!("{}:m{}", e.hop.as_str(), e.aux))
        .collect()
}

fn striped_scenario() -> Vec<String> {
    let (mut config, obs) = traced_config();
    config.stripe =
        Some(sgfs::config::StripePolicy { width: 3, replicas: 2, block_size: 512 });
    // Member 2's death is scripted below; reads fail over to survivors.
    let mut upstreams = Vec::new();
    for m in 0..3u32 {
        let (end, srv) = pipe_pair();
        // Member 1 dies on its second READ (its first serves the striped
        // read of block 5; the second — block 8 — is dropped mid-air).
        striped_member_server(srv, if m == 1 { Some(2) } else { None });
        let watch = end.watch();
        upstreams.push((Upstream::Plain(Box::new(end)) as Upstream, watch, None));
    }
    let proxy = ClientProxy::with_stripe(upstreams, &config).expect("striped proxy");

    let fh = Fh3::from_ino(1, 42);
    // Replicated flush: three dirty blocks fan out to their mapped
    // member pairs; each member's batch is confirmed by its own COMMIT.
    let writes: Vec<Vec<u8>> = (0..3u64)
        .map(|b| {
            nfs_call(0x20 + b as u32, procnum::WRITE, |enc| {
                WriteArgs {
                    file: fh.clone(),
                    offset: b * 512,
                    stable: StableHow::Unstable,
                    data: vec![b as u8; 512],
                }
                .encode(enc)
            })
        })
        .collect();
    let mut proxy = drive(proxy, &writes);
    proxy.flush_file(&fh).expect("replicated flush");

    // Striped reads of uncached blocks: each lands on its block's
    // primary (blocks 3, 4, 5 → members 0, 2, 1), then block 8's primary
    // (member 1) dies mid-read and the block fails over to member 2.
    let reads: Vec<Vec<u8>> = [3u64, 4, 5, 8]
        .iter()
        .map(|&b| {
            nfs_call(0x40 + b as u32, procnum::READ, |enc| {
                ReadArgs { file: fh.clone(), offset: b * 512, count: 512 }.encode(enc)
            })
        })
        .collect();
    let proxy = drive(proxy, &reads);
    drop(proxy);

    let (events, dropped) = obs.events();
    assert_eq!(dropped, 0);
    let g = striped_golden(&events);
    assert_eq!(
        g,
        [
            "replica_write:m0",
            "replica_write:m1",
            "replica_write:m2",
            "stripe_read:m0",
            "stripe_read:m2",
            "stripe_read:m1",
            "replica_failover:m1",
            "stripe_read:m2",
        ],
        "golden striped sequence changed"
    );
    g
}

#[test]
fn golden_striped_failover_sequence() {
    let runs: Vec<Vec<String>> = (0..3).map(|_| striped_scenario()).collect();
    assert_eq!(runs[0], runs[1], "run 2 diverged from run 1");
    assert_eq!(runs[1], runs[2], "run 3 diverged from run 2");
}
