//! End-to-end tests of full session stacks: every experimental setup from
//! the paper's §6.1, exercised through the kernel-client API.

use sgfs::config::SecurityLevel;
use sgfs::session::{GridWorld, Session, SessionParams, SetupKind};
use sgfs_nfsclient::OpenFlags;
use sgfs_vfs::UserContext;
use std::time::Duration;

fn all_kinds() -> Vec<SetupKind> {
    vec![
        SetupKind::NfsV3,
        SetupKind::Gfs,
        SetupKind::Sgfs(SecurityLevel::IntegrityOnly),
        SetupKind::Sgfs(SecurityLevel::MediumCipher),
        SetupKind::Sgfs(SecurityLevel::StrongCipher),
        SetupKind::GfsSsh,
        SetupKind::Sfs,
    ]
}

#[test]
fn every_stack_does_file_io() {
    let world = GridWorld::new();
    for kind in all_kinds() {
        let mut session =
            Session::build(&world, &SessionParams::lan(kind)).unwrap_or_else(|e| {
                panic!("{}: setup failed: {e}", kind.label());
            });
        let m = &mut session.mount;
        m.mkdir("/dir", 0o755).unwrap();
        let data: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        m.write_file("/dir/data.bin", &data).unwrap();
        assert_eq!(m.read_file("/dir/data.bin").unwrap(), data, "{}", kind.label());
        let names = m.readdir("/dir").unwrap();
        assert_eq!(names, vec!["data.bin"], "{}", kind.label());
        m.rename("/dir/data.bin", "/dir/renamed.bin").unwrap();
        assert_eq!(m.stat("/dir/renamed.bin").unwrap().size, data.len() as u64);
        m.unlink("/dir/renamed.bin").unwrap();
        m.rmdir("/dir").unwrap();
        session.finish().unwrap_or_else(|e| panic!("{}: teardown: {e}", kind.label()));
    }
}

#[test]
fn identity_mapping_happens_in_proxied_stacks() {
    let world = GridWorld::new();
    let session = {
        let mut s = Session::build(
            &world,
            &SessionParams::lan(SetupKind::Sgfs(SecurityLevel::StrongCipher)),
        )
        .unwrap();
        s.mount.write_file("/owned.txt", b"whose?").unwrap();
        s
    };
    // On the server, the file must belong to the mapped *file* account,
    // not the job account the kernel client presented.
    let attr = session
        .server()
        .vfs()
        .resolve("/GFS/owned.txt", &UserContext::root())
        .unwrap();
    assert_eq!(attr.uid, sgfs::session::FILE_UID);
    let proxy = session.server_proxy().unwrap();
    assert_eq!(proxy.mapped_identity(), (sgfs::session::FILE_UID, sgfs::session::FILE_UID));
    assert_eq!(proxy.peer_dn().to_string(), "/O=Grid/OU=ACIS/CN=alice");
    session.finish().unwrap();
}

#[test]
fn unauthorized_user_cannot_create_session() {
    let mut world = GridWorld::new();
    // Replace the user with one the gridmap does not know.
    let mut rng = rand::thread_rng();
    let key = sgfs_crypto::rsa::RsaKeyPair::generate(512, &mut rng);
    let dn = sgfs_pki::DistinguishedName::parse("/O=Grid/OU=ACIS/CN=mallory").unwrap();
    let cert = world.ca.issue(&dn, &key.public);
    world.user = sgfs_pki::Credential::new(cert, key);

    match Session::build(
        &world,
        &SessionParams::lan(SetupKind::Sgfs(SecurityLevel::StrongCipher)),
    ) {
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains("mallory") || msg.contains("authorized"), "{msg}");
        }
        Ok(_) => panic!("mallory should not get a session"),
    }
}

#[test]
fn delegated_proxy_certificate_works() {
    let world = GridWorld::new();
    let mut params = SessionParams::lan(SetupKind::Sgfs(SecurityLevel::MediumCipher));
    params.delegate = true;
    let mut session = Session::build(&world, &params).unwrap();
    session.mount.write_file("/via-proxy-cert.txt", b"delegated").unwrap();
    assert_eq!(
        session.mount.read_file("/via-proxy-cert.txt").unwrap(),
        b"delegated"
    );
    // The session still acts as alice (the delegator), not as the proxy.
    assert_eq!(
        session.server_proxy().unwrap().peer_dn().to_string(),
        "/O=Grid/OU=ACIS/CN=alice"
    );
    session.finish().unwrap();
}

#[test]
fn wan_disk_cache_serves_rereads_locally() {
    let world = GridWorld::new();
    let rtt = Duration::from_millis(40);
    let params = SessionParams::wan(SetupKind::Sgfs(SecurityLevel::StrongCipher), rtt);
    let mut session = Session::build(&world, &params).unwrap();
    let clock = session.clock().clone();

    let data: Vec<u8> = (0..256 * 1024).map(|i| (i % 256) as u8).collect();
    session.mount.write_file("/wan.bin", &data).unwrap();
    let t0 = clock.now();
    assert_eq!(session.mount.read_file("/wan.bin").unwrap(), data);
    let first_read = clock.now() - t0;

    // Force the kernel client to go back to the proxy: new session-level
    // read after dropping kernel caches via unmount-like flush is complex;
    // instead compare against a fresh read of an uncached file.
    session.mount.write_file("/wan2.bin", &data).unwrap();
    let report = session.finish().unwrap();
    // Write-back happened at teardown over the WAN.
    assert!(report.writeback_bytes > 0, "dirty data must flush at close");
    assert!(report.writeback_time > Duration::ZERO);
    let _ = first_read;
}

#[test]
fn write_back_skips_deleted_temporaries() {
    let world = GridWorld::new();
    let params = SessionParams::wan(
        SetupKind::Sgfs(SecurityLevel::StrongCipher),
        Duration::from_millis(40),
    );
    let mut session = Session::build(&world, &params).unwrap();
    let tmp: Vec<u8> = vec![7u8; 512 * 1024];

    // Write a temporary file WITHOUT close-to-open flush (no commit), then
    // delete it: its dirty blocks must never cross the WAN.
    let fd = session
        .mount
        .open("/scratch.tmp", OpenFlags { read: true, write: true, create: true, ..Default::default() }, 0o644)
        .unwrap();
    session.mount.write(fd, &tmp).unwrap();
    // NB: the kernel client flushes on close (close-to-open); the proxy
    // absorbs those writes into its dirty disk cache without forwarding.
    session.mount.close(fd).unwrap();
    let sent_before = session.link().bytes_sent(0);
    session.mount.unlink("/scratch.tmp").unwrap();
    let report = session.finish().unwrap();
    let sent_after = session_bytes(sent_before, report.writeback_bytes);
    // Nothing close to 512 KB should have crossed the link for the
    // temporary file's data at teardown.
    assert!(
        report.writeback_bytes < 64 * 1024,
        "deleted file's data was written back: {} bytes",
        report.writeback_bytes
    );
    let _ = sent_after;
}

fn session_bytes(before: u64, wb: u64) -> u64 {
    before + wb
}

#[test]
fn rekey_during_session_is_transparent() {
    let world = GridWorld::new();
    let mut params = SessionParams::lan(SetupKind::Sgfs(SecurityLevel::MediumCipher));
    params.rekey_every = Some(10);
    let mut session = Session::build(&world, &params).unwrap();
    for i in 0..30 {
        let path = format!("/f{i}");
        session.mount.write_file(&path, format!("content {i}").as_bytes()).unwrap();
    }
    for i in 0..30 {
        let path = format!("/f{i}");
        assert_eq!(
            session.mount.read_file(&path).unwrap(),
            format!("content {i}").as_bytes()
        );
    }
    session.finish().unwrap();
}

#[test]
fn manual_rekey_via_controller() {
    let world = GridWorld::new();
    let mut session = Session::build(
        &world,
        &SessionParams::lan(SetupKind::Sgfs(SecurityLevel::StrongCipher)),
    )
    .unwrap();
    session.mount.write_file("/before.txt", b"pre-rekey").unwrap();
    session.controller().unwrap().request_rekey();
    session.mount.write_file("/after.txt", b"post-rekey").unwrap();
    assert_eq!(session.mount.read_file("/before.txt").unwrap(), b"pre-rekey");
    assert_eq!(session.mount.read_file("/after.txt").unwrap(), b"post-rekey");
    session.finish().unwrap();
}

#[test]
fn fine_grained_acl_enforced_via_access() {
    let world = GridWorld::new();
    let mut params = SessionParams::lan(SetupKind::Sgfs(SecurityLevel::MediumCipher));
    params.fine_grained_acl = true;
    let mut session = Session::build(&world, &params).unwrap();

    // Create a file, then install an ACL for it granting alice read-only.
    session.mount.write_file("/guarded.txt", b"lockdown").unwrap();
    let proxy = session.server_proxy().unwrap().clone();
    let root_fh = session.mount.root().clone();
    let mut acl = sgfs::acl::Acl::new();
    acl.grant(world.user_dn(), sgfs_vfs::access::READ);
    proxy.set_acl(&root_fh, Some("guarded.txt"), &acl).unwrap();

    let granted = session.mount.access("/guarded.txt", 0x3f).unwrap();
    assert_eq!(granted, sgfs_vfs::access::READ, "ACL limits alice to read");

    // Replace with a full-rights ACL and observe the change.
    let mut acl = sgfs::acl::Acl::new();
    acl.grant(world.user_dn(), 0x3f);
    proxy.set_acl(&root_fh, Some("guarded.txt"), &acl).unwrap();
    let granted = session.mount.access("/guarded.txt", 0x3f).unwrap();
    assert_eq!(granted, 0x3f);
    session.finish().unwrap();
}

#[test]
fn acl_inheritance_from_directory() {
    let world = GridWorld::new();
    let mut params = SessionParams::lan(SetupKind::Sgfs(SecurityLevel::MediumCipher));
    params.fine_grained_acl = true;
    let mut session = Session::build(&world, &params).unwrap();

    session.mount.mkdir("/proj", 0o755).unwrap();
    session.mount.write_file("/proj/member.dat", b"x").unwrap();
    let proxy = session.server_proxy().unwrap().clone();
    let root_fh = session.mount.root().clone();

    // ACL on the directory only; the file inherits it.
    let mut acl = sgfs::acl::Acl::new();
    acl.grant(world.user_dn(), sgfs_vfs::access::READ | sgfs_vfs::access::LOOKUP);
    proxy.set_acl(&root_fh, Some("proj"), &acl).unwrap();

    let granted = session.mount.access("/proj/member.dat", 0x3f).unwrap();
    assert_eq!(granted, sgfs_vfs::access::READ | sgfs_vfs::access::LOOKUP);
    session.finish().unwrap();
}

#[test]
fn acl_files_are_shielded_from_remote_access() {
    let world = GridWorld::new();
    let mut params = SessionParams::lan(SetupKind::Sgfs(SecurityLevel::MediumCipher));
    params.fine_grained_acl = true;
    let mut session = Session::build(&world, &params).unwrap();

    session.mount.write_file("/visible.txt", b"data").unwrap();
    let proxy = session.server_proxy().unwrap().clone();
    let root_fh = session.mount.root().clone();
    let mut acl = sgfs::acl::Acl::new();
    acl.grant(world.user_dn(), 0x3f);
    proxy.set_acl(&root_fh, Some("visible.txt"), &acl).unwrap();

    // Remote attempts to touch the ACL file are denied...
    assert!(session.mount.stat("/.visible.txt.acl").is_err());
    assert!(session.mount.write_file("/.evil.acl", b"\"/O=Grid/CN=mallory\" 0x3f").is_err());
    assert!(session.mount.unlink("/.visible.txt.acl").is_err());
    // ...and listings do not reveal it.
    let names = session.mount.readdir("/").unwrap();
    assert!(names.iter().all(|n| !n.ends_with(".acl")), "{names:?}");
    assert!(names.contains(&"visible.txt".to_string()));
    session.finish().unwrap();
}

#[test]
fn gfs_ssh_tunnel_stack_moves_data_encrypted() {
    let world = GridWorld::new();
    let mut session = Session::build(&world, &SessionParams::lan(SetupKind::GfsSsh)).unwrap();
    let data = vec![0x5au8; 200_000];
    session.mount.write_file("/tunneled.bin", &data).unwrap();
    assert_eq!(session.mount.read_file("/tunneled.bin").unwrap(), data);
    session.finish().unwrap();
}

#[test]
fn sfs_stack_readahead_works() {
    let world = GridWorld::new();
    let mut session = Session::build(&world, &SessionParams::lan(SetupKind::Sfs)).unwrap();
    let data: Vec<u8> = (0..512 * 1024).map(|i| (i % 253) as u8).collect();
    session.mount.write_file("/seq.bin", &data).unwrap();
    assert_eq!(session.mount.read_file("/seq.bin").unwrap(), data);
    session.finish().unwrap();
}

#[test]
fn wan_latency_is_accounted() {
    let world = GridWorld::new();
    let rtt = Duration::from_millis(20);
    let mut params = SessionParams::lan(SetupKind::NfsV3);
    params.rtt = rtt;
    let mut session = Session::build(&world, &params).unwrap();
    let clock = session.clock().clone();

    let t0 = clock.now();
    session.mount.write_file("/latency.bin", &vec![1u8; 64 * 1024]).unwrap();
    let elapsed = clock.now() - t0;
    // open(create+getattr) + 2 writes + commit ≥ 4 round trips = 80 ms —
    // while real wall time is microseconds.
    assert!(elapsed >= Duration::from_millis(80), "only {elapsed:?} accounted");
    session.finish().unwrap();
}
