//! Per-session configuration — the proxy configuration file of §4.2.
//!
//! A SGFS session is created per user/application and customized through
//! this structure: the security mechanisms and policies, the disk-caching
//! parameters, and the access-control setup. Reloading a changed
//! configuration into a live proxy (and renegotiating) is the paper's
//! dynamic-reconfiguration feature.

use sgfs_gtls::{CipherSuite, GtlsConfig};
use sgfs_pki::{Credential, DistinguishedName, GridMap, TrustStore};

/// The three security strengths the paper benchmarks, plus none (gfs)
/// and the post-paper AEAD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityLevel {
    /// No protection at all — the `gfs` baseline.
    None,
    /// SHA1-HMAC integrity only — `sgfs-sha`.
    IntegrityOnly,
    /// RC4-128 + SHA1-HMAC — `sgfs-rc`.
    MediumCipher,
    /// AES-256-CBC + SHA1-HMAC — `sgfs-aes`.
    StrongCipher,
    /// AES-256-GCM single-pass AEAD — `sgfs-gcm`.
    AeadCipher,
}

impl SecurityLevel {
    /// The GTLS suite realizing this level (None ⇒ no GTLS at all).
    pub fn suite(self) -> Option<CipherSuite> {
        match self {
            SecurityLevel::None => None,
            SecurityLevel::IntegrityOnly => Some(CipherSuite::NullSha1),
            SecurityLevel::MediumCipher => Some(CipherSuite::Rc4_128Sha1),
            SecurityLevel::StrongCipher => Some(CipherSuite::Aes256CbcSha1),
            SecurityLevel::AeadCipher => Some(CipherSuite::Aes256Gcm),
        }
    }
}

/// Client-proxy caching configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMode {
    /// No proxy caching (the paper's LAN runs).
    None,
    /// Aggressive in-memory caching of attributes/access/lookups only —
    /// the SFS-style daemon behaviour.
    MemoryMeta,
    /// Full disk caching of attributes, access rights and data blocks
    /// with write-back — the paper's WAN configuration. The path is the
    /// cache spool directory on the client host's local disk.
    Disk {
        /// Spool directory for cached blocks.
        dir: std::path::PathBuf,
    },
}

/// The calibrated cost of one user-level forwarding hop.
///
/// The paper's proxies pay two extra network-stack traversals and
/// kernel↔user switches per message; in-process pipes pay neither, so
/// each proxy (and each SSH-tunnel endpoint in `gfs-ssh`) charges this
/// virtual cost per message it forwards, in each direction. The defaults
/// are calibrated so that the `gfs`/`nfs-v3` IOzone ratio lands in the
/// paper's >2× band (see DESIGN.md §3/§4 and EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopCost {
    /// Fixed cost per forwarded message (syscalls + context switch).
    pub per_msg: std::time::Duration,
    /// Per-byte cost in nanoseconds (stack traversal + extra copies).
    pub per_byte_ns: u64,
}

impl Default for HopCost {
    fn default() -> Self {
        Self { per_msg: std::time::Duration::from_micros(15), per_byte_ns: 12 }
    }
}

impl HopCost {
    /// No charging (pure in-process measurement).
    pub fn free() -> Self {
        Self { per_msg: std::time::Duration::ZERO, per_byte_ns: 0 }
    }

    /// The virtual time one `len`-byte message costs at this hop.
    pub fn of(&self, len: usize) -> std::time::Duration {
        self.per_msg + std::time::Duration::from_nanos(self.per_byte_ns * len as u64)
    }
}

/// Crash-consistency policy for the client proxy's write-back disk cache.
///
/// With the journal enabled, every dirty-block state change (`put(dirty)`,
/// `set_clean`, `set_dirty`, `drop_file`, commit) appends a checksummed,
/// length-prefixed record to a write-ahead journal in the spool directory,
/// and the spool persists across restarts: recovery replays the journal,
/// stops at the first torn/corrupt record, and re-marks every surviving
/// block dirty so the next flush re-sends it under the write-verifier
/// contract. See DESIGN.md §12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Journal dirty-block state to disk (off = the pre-journal behavior:
    /// a crash discards every dirty block silently).
    pub journal: bool,
    /// fsync the journal every N appends (0 = rely on the OS to flush;
    /// in-process crash recovery still works, host power loss does not).
    pub fsync_every: u32,
    /// Compact once the journal holds at least this many records *and*
    /// dead records (clean transitions, dropped files) outnumber live
    /// dirty-block entries.
    pub compact_min_records: u64,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        Self { journal: true, fsync_every: 64, compact_min_records: 1024 }
    }
}

impl DurabilityPolicy {
    /// The pre-journal behavior: nothing survives a restart.
    pub fn none() -> Self {
        Self { journal: false, fsync_every: 0, compact_min_records: 0 }
    }
}

/// Multi-server placement of one session's data plane.
///
/// The DSS hands the client a placement across `width` FSS upstreams:
/// file blocks (of `block_size` bytes) are striped across the members by
/// block index, and each block is written to `replicas` distinct members
/// before it may be marked clean. `width == 1` degenerates to the
/// single-server session. See DESIGN.md §16 for the stripe map and the
/// replica write/failover protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePolicy {
    /// Number of upstream members the session spans.
    pub width: u32,
    /// Distinct members each block is replicated to (clamped to `width`;
    /// 1 = striping without redundancy).
    pub replicas: u32,
    /// Stripe unit: the file-block size the map distributes.
    pub block_size: u32,
}

impl StripePolicy {
    /// Striping across `width` members without redundancy.
    pub fn striped(width: u32) -> Self {
        Self { width, replicas: 1, block_size: 32 * 1024 }
    }

    /// Striping with `replicas`-way block replication.
    pub fn replicated(width: u32, replicas: u32) -> Self {
        Self { width, replicas, block_size: 32 * 1024 }
    }
}

/// Upstream fault-recovery policy for the client proxy's pipeline.
///
/// When the secure channel to the server proxy fails with a transient
/// transport error, the pipeline re-dials through its `Reconnector`,
/// backing off exponentially between attempts, and replays the idempotent
/// calls that were in flight. These knobs bound that behaviour; see
/// DESIGN.md §"Fault model and upstream recovery".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total reconnections allowed over the session's lifetime before the
    /// pipeline gives up and fails outstanding calls.
    pub max_reconnects: u32,
    /// Dial attempts per reconnection (covers connect-refusal streaks).
    pub dial_attempts: u32,
    /// Backoff before the second dial attempt; doubles per attempt.
    pub backoff_base: std::time::Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: std::time::Duration,
    /// Per-call reply deadline: `PendingReply::wait` fails with `TimedOut`
    /// rather than blocking forever on a silent server. `None` = wait
    /// indefinitely.
    pub call_deadline: Option<std::time::Duration>,
    /// JUKEBOX retries allowed per call before the reply is passed
    /// through to the caller as-is. A JUKEBOX reply means the server did
    /// *not* execute the call, so the retry re-sends the identical
    /// record — safe even for non-idempotent procedures. Backoff between
    /// attempts is `backoff_base` doubled per attempt, capped at
    /// `backoff_cap`.
    pub jukebox_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_reconnects: 8,
            dial_attempts: 6,
            backoff_base: std::time::Duration::from_millis(10),
            backoff_cap: std::time::Duration::from_millis(640),
            call_deadline: Some(std::time::Duration::from_secs(30)),
            jukebox_retries: 32,
        }
    }
}

/// Everything needed to set up one side of a session.
#[derive(Clone)]
pub struct SessionConfig {
    /// Security level for the inter-proxy channel.
    pub security: SecurityLevel,
    /// This endpoint's credential (user cert for the client proxy, host
    /// cert for the server proxy). Unused when `security` is `None`.
    pub credential: Option<Credential>,
    /// Trusted CA roots.
    pub trust: TrustStore,
    /// Client side: the expected file-server identity (mutual auth).
    pub expected_peer: Option<DistinguishedName>,
    /// Server side: the session gridmap (DN → local account).
    pub gridmap: GridMap,
    /// Server side: account name → (uid, gid) for identity mapping.
    pub accounts: std::collections::HashMap<String, (u32, u32)>,
    /// Server side: enforce per-file `.name.acl` files on ACCESS.
    pub fine_grained_acl: bool,
    /// Client side: caching mode.
    pub cache: CacheMode,
    /// Client side: read-ahead depth in blocks (SFS-style pipelining);
    /// 0 disables.
    pub readahead: u32,
    /// Renegotiate session keys after this many records (None = never) —
    /// the automatic periodic rekey of §4.2.
    pub rekey_every_records: Option<u64>,
    /// Client side: upstream RPC pipelining window — how many calls may
    /// be in flight before a reply is required. 1 degenerates to the
    /// serial protocol.
    pub window: u32,
    /// Client side: upstream fault-recovery policy (reconnect, backoff,
    /// replay, per-call deadline).
    pub retry: RetryPolicy,
    /// Client side: crash-consistency policy for the disk cache (journal,
    /// fsync cadence, compaction threshold).
    pub durability: DurabilityPolicy,
    /// Kill-point injector for the crash harness (`None` in production:
    /// every durability hook is a no-op).
    pub crash: Option<std::sync::Arc<sgfs_net::CrashInjector>>,
    /// The observability domain the proxy emits trace events and latency
    /// histograms into (None = untraced).
    pub obs: Option<std::sync::Arc<sgfs_obs::Obs>>,
    /// Shared client I/O pool the session's upstream pipeline is pinned
    /// to; `None` gives the pipeline a private single-worker pool.
    pub client_pool: Option<std::sync::Arc<sgfs_oncrpc::ClientIoPool>>,
    /// Client side: multi-server placement (stripe width, replica count,
    /// stripe unit). `None` = the classic single-upstream session.
    pub stripe: Option<StripePolicy>,
}

impl SessionConfig {
    /// A minimal configuration at the given security level.
    pub fn new(security: SecurityLevel) -> Self {
        Self {
            security,
            credential: None,
            trust: TrustStore::new(),
            expected_peer: None,
            gridmap: GridMap::new(),
            accounts: std::collections::HashMap::new(),
            fine_grained_acl: false,
            cache: CacheMode::None,
            readahead: 0,
            rekey_every_records: None,
            window: crate::proxy::pipeline::DEFAULT_WINDOW,
            retry: RetryPolicy::default(),
            durability: DurabilityPolicy::default(),
            crash: None,
            obs: None,
            client_pool: None,
            stripe: None,
        }
    }

    /// The GTLS config for this endpoint, if security is enabled.
    pub fn gtls(&self) -> Option<GtlsConfig> {
        let suite = self.security.suite()?;
        let cred = self.credential.clone().expect("secure session requires a credential");
        let mut cfg = GtlsConfig::new(cred, self.trust.clone()).with_suite(suite);
        if let Some(peer) = &self.expected_peer {
            cfg = cfg.clone().with_expected_peer(peer.clone());
        }
        Some(cfg)
    }

    /// Resolve a gridmap account name to its uid/gid.
    pub fn account_ids(&self, account: &str) -> Option<(u32, u32)> {
        self.accounts.get(account).copied()
    }
}

impl std::fmt::Debug for SessionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionConfig")
            .field("security", &self.security)
            .field("cache", &self.cache)
            .field("readahead", &self.readahead)
            .field("fine_grained_acl", &self.fine_grained_acl)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_match_paper_configurations() {
        assert_eq!(SecurityLevel::None.suite(), None);
        assert_eq!(SecurityLevel::IntegrityOnly.suite(), Some(CipherSuite::NullSha1));
        assert_eq!(SecurityLevel::MediumCipher.suite(), Some(CipherSuite::Rc4_128Sha1));
        assert_eq!(SecurityLevel::StrongCipher.suite(), Some(CipherSuite::Aes256CbcSha1));
        assert_eq!(SecurityLevel::AeadCipher.suite(), Some(CipherSuite::Aes256Gcm));
    }

    #[test]
    fn gtls_absent_without_security() {
        let cfg = SessionConfig::new(SecurityLevel::None);
        assert!(cfg.gtls().is_none());
    }

    #[test]
    fn account_lookup() {
        let mut cfg = SessionConfig::new(SecurityLevel::None);
        cfg.accounts.insert("alice".into(), (1000, 1000));
        assert_eq!(cfg.account_ids("alice"), Some((1000, 1000)));
        assert_eq!(cfg.account_ids("bob"), None);
    }
}
