//! Grid file access control lists (§4.3).
//!
//! Each file or directory may have an ACL file next to it, named
//! `.<name>.acl`, listing grid distinguished names and the NFSv3 ACCESS
//! bits they are granted. Objects without a dedicated ACL inherit their
//! parent directory's; a user absent from the effective ACL gets zero
//! permissions. ACL files themselves are shielded from remote access by
//! the server-side proxy and are managed locally or through the
//! authorized management services.

use sgfs_pki::DistinguishedName;

/// One parsed ACL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Acl {
    entries: Vec<(DistinguishedName, u32)>,
}

impl Acl {
    /// Empty ACL (denies everyone).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse the text format:
    ///
    /// ```text
    /// # members of the seismic project
    /// "/O=Grid/CN=alice" 0x3f
    /// "/O=Grid/CN=bob" 0x03
    /// ```
    ///
    /// Masks are hex (`0x..`) or decimal.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut acl = Self::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line
                .strip_prefix('"')
                .ok_or_else(|| format!("line {}: DN must be quoted", lineno + 1))?;
            let (dn_str, mask_str) = rest
                .split_once('"')
                .ok_or_else(|| format!("line {}: unterminated quote", lineno + 1))?;
            let dn = DistinguishedName::parse(dn_str)
                .ok_or_else(|| format!("line {}: invalid DN", lineno + 1))?;
            let mask_str = mask_str.trim();
            let mask = if let Some(hex) = mask_str.strip_prefix("0x") {
                u32::from_str_radix(hex, 16)
            } else {
                mask_str.parse()
            }
            .map_err(|_| format!("line {}: invalid mask {mask_str:?}", lineno + 1))?;
            acl.grant(dn, mask);
        }
        Ok(acl)
    }

    /// Serialize back to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (dn, mask) in &self.entries {
            out.push_str(&format!("\"{dn}\" 0x{mask:02x}\n"));
        }
        out
    }

    /// Grant (or replace) `mask` for `dn`.
    pub fn grant(&mut self, dn: DistinguishedName, mask: u32) {
        match self.entries.iter_mut().find(|(d, _)| *d == dn) {
            Some((_, m)) => *m = mask,
            None => self.entries.push((dn, mask)),
        }
    }

    /// Remove `dn`'s entry; returns whether it existed.
    pub fn deny(&mut self, dn: &DistinguishedName) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(d, _)| d != dn);
        self.entries.len() != before
    }

    /// The mask granted to `dn` (zero when absent — the paper's default).
    pub fn mask_for(&self, dn: &DistinguishedName) -> u32 {
        self.entries
            .iter()
            .find(|(d, _)| d == dn)
            .map(|(_, m)| *m)
            .unwrap_or(0)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The ACL file name for an object called `name` (`.name.acl`).
pub fn acl_file_name(name: &str) -> String {
    format!(".{name}.acl")
}

/// True when `name` looks like an ACL file — such names are shielded from
/// remote access by the server-side proxy.
pub fn is_acl_file_name(name: &str) -> bool {
    name.starts_with('.') && name.ends_with(".acl") && name.len() > 5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    #[test]
    fn parse_grant_lookup() {
        let acl = Acl::parse("# team\n\"/O=Grid/CN=alice\" 0x3f\n\"/O=Grid/CN=bob\" 3\n").unwrap();
        assert_eq!(acl.mask_for(&dn("/O=Grid/CN=alice")), 0x3f);
        assert_eq!(acl.mask_for(&dn("/O=Grid/CN=bob")), 3);
        assert_eq!(acl.mask_for(&dn("/O=Grid/CN=eve")), 0, "absent user denied");
    }

    #[test]
    fn text_roundtrip() {
        let mut acl = Acl::new();
        acl.grant(dn("/O=Grid/CN=alice"), 0x3f);
        acl.grant(dn("/O=Grid/OU=X/CN=bob"), 0x01);
        let back = Acl::parse(&acl.to_text()).unwrap();
        assert_eq!(back, acl);
    }

    #[test]
    fn grant_replaces_and_deny_removes() {
        let mut acl = Acl::new();
        acl.grant(dn("/O=Grid/CN=a"), 1);
        acl.grant(dn("/O=Grid/CN=a"), 2);
        assert_eq!(acl.len(), 1);
        assert_eq!(acl.mask_for(&dn("/O=Grid/CN=a")), 2);
        assert!(acl.deny(&dn("/O=Grid/CN=a")));
        assert!(!acl.deny(&dn("/O=Grid/CN=a")));
        assert!(acl.is_empty());
    }

    #[test]
    fn malformed_rejected() {
        for bad in ["/O=G/CN=x 1", "\"/O=G/CN=x\" banana", "\"notadn\" 1", "\"/O=G/CN=x\""] {
            assert!(Acl::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn acl_file_naming() {
        assert_eq!(acl_file_name("data.bin"), ".data.bin.acl");
        assert!(is_acl_file_name(".data.bin.acl"));
        assert!(is_acl_file_name(".x.acl"));
        assert!(!is_acl_file_name("data.bin"));
        assert!(!is_acl_file_name(".acl"));
        assert!(!is_acl_file_name(".hidden"));
    }
}
