//! SGFS — the user-level Secure Grid File System (the paper's contribution).
//!
//! SGFS virtualizes NFS with a pair of user-level proxies:
//!
//! ```text
//!  compute host                              file-server host
//!  ┌────────────┐   plain RPC   ┌──────────┐  GTLS-protected RPC  ┌──────────┐  plain RPC  ┌────────┐
//!  │ kernel NFS ├──────────────►│ client   ├─────────────────────►│ server   ├────────────►│ kernel │
//!  │ client     │   (loopback)  │ proxy    │   (LAN/WAN link)     │ proxy    │ (loopback)  │ nfsd   │
//!  └────────────┘               │ + disk $ │                      │ + authz  │             └────────┘
//!                               └──────────┘                      └──────────┘
//! ```
//!
//! * [`proxy::ServerProxy`] authenticates the peer with GSI certificates,
//!   authorizes the grid identity against a per-session **gridmap**, maps
//!   UNIX credentials on every RPC, intercepts **ACCESS** to enforce
//!   per-file grid ACLs (`.name.acl` files with inheritance and an
//!   in-memory cache), shields the ACL files themselves from remote
//!   access, and forwards everything else to the kernel NFS server.
//! * [`proxy::ClientProxy`] exposes plain NFS to the local kernel client
//!   and adds per-session **disk caching** of attributes, access rights
//!   and 32 KB data blocks, with **write-back** (dirty blocks flushed on
//!   COMMIT or session close; blocks of deleted files are never flushed —
//!   the behaviour that makes Seismic fast in the paper). A read-ahead
//!   pipeline models SFS's asynchronous-RPC advantage when enabled.
//! * [`session`] assembles the pieces per configuration — `nfs-v3`, `gfs`,
//!   `sgfs-sha/rc/aes`, `gfs-ssh`, `sfs` — exactly the setups §6 measures.
//! * [`tunnel`] is the `gfs-ssh` baseline's SSH-like encrypted tunnel with
//!   session-key inter-proxy authentication and real double user-level
//!   forwarding.
//! * [`acl`] implements the grid ACL model; [`stats`] the CPU-utilization
//!   instrumentation behind the paper's Figures 5 and 6.

pub mod acl;
pub mod config;
pub mod proxy;
pub mod session;
pub mod stats;
pub mod tunnel;

pub use config::{CacheMode, SecurityLevel, SessionConfig};
pub use proxy::{ClientProxy, ServerProxy};
pub use session::{GridWorld, Session, SessionError, SessionMaterial, SessionParams, SetupKind};
pub use sgfs_obs as obs;
pub use stats::ProxyStats;
