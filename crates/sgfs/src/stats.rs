//! Proxy instrumentation: busy-time accounting behind Figures 5 and 6.
//!
//! The paper samples the user CPU time of each proxy/daemon every five
//! seconds during IOzone. Here each proxy wraps its per-message processing
//! in [`ProxyStats::track`]; the harness reads cumulative busy time and
//! derives utilization per interval of simulated time.
//!
//! # Memory-ordering contract
//!
//! Every counter in [`ProxyStats`] — and every histogram bucket in the
//! attached [`Obs`] domain — uses **relaxed** atomics, deliberately. The
//! counters are independent monotone event counts: no reader derives a
//! decision from the *relationship* between two counters, so no
//! acquire/release pairing is needed and none is provided. Concretely:
//!
//! * Increments may be observed out of order across counters. A snapshot
//!   taken mid-workload can see `messages = 10` but `bytes_up` still
//!   missing the tenth message's bytes. Consumers must treat a live
//!   snapshot as approximate, and quiesce (join worker threads) before
//!   asserting exact totals — every test in this workspace does.
//! * `busy_nanos` is shared with the GTLS layer via
//!   [`busy_counter`](ProxyStats::busy_counter); `fetch_add`/`fetch_update`
//!   are atomic read-modify-writes, so no increment is ever lost even
//!   though ordering between the two writers is unspecified.
//! * `pipeline_depth`/`pipeline_peak` are written with plain stores (the
//!   new depth is computed by the pipeline under its own synchronization,
//!   so the gauge needs no RMW on the depth itself); `fetch_max` keeps the
//!   peak monotone under races.
//! * The one structure with a cross-field invariant — the utilization
//!   sample series — is behind a `Mutex`, not atomics.
//!
//! The trace-event rings in [`Obs`] are the exception with a real
//! ordering need, and they handle it internally (release publish of the
//! shard head, acquire on read); see `sgfs_obs`'s module docs.

use parking_lot::Mutex;
use sgfs_obs::Obs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Shared counters for one proxy.
#[derive(Default)]
pub struct ProxyStats {
    /// Nanoseconds spent processing messages (real CPU time). Shared so
    /// the GTLS layer can charge its crypto time into the same account.
    busy_nanos: Arc<AtomicU64>,
    /// Messages processed.
    messages: AtomicU64,
    /// Bytes forwarded upstream.
    bytes_up: AtomicU64,
    /// Bytes forwarded downstream.
    bytes_down: AtomicU64,
    /// Upstream calls currently in the pipelined window.
    pipeline_depth: AtomicU64,
    /// High-water mark of the pipelined window.
    pipeline_peak: AtomicU64,
    /// READs served from the pipelined read-ahead landing zone.
    prefetch_hits: AtomicU64,
    /// Heap capacity growth (bytes) of the upstream record scratch
    /// buffers — zero at steady state once they reach their high-water
    /// size.
    record_alloc_bytes: AtomicU64,
    /// Successful upstream reconnections after a transient failure.
    reconnects: AtomicU64,
    /// In-flight idempotent calls replayed across reconnections.
    replays: AtomicU64,
    /// Nanoseconds slept in reconnect backoff.
    backoff_nanos: AtomicU64,
    /// Cache I/O errors absorbed by degrading to write-through (spool
    /// write failures, spool-file removal failures). Non-zero means the
    /// disk cache lost residency, never that data was lost.
    cache_io_errors: AtomicU64,
    /// Records appended to the write-ahead journal.
    journal_appends: AtomicU64,
    /// Journal compactions (dead records rewritten away).
    journal_compactions: AtomicU64,
    /// Blocks re-marked dirty by crash recovery.
    recovered_blocks: AtomicU64,
    /// Bytes re-marked dirty by crash recovery.
    recovered_bytes: AtomicU64,
    /// Gauge: dirty bytes still cached when the session tore down
    /// (after the teardown flush — non-zero means the flush failed and
    /// the journal is the only copy).
    dirty_at_shutdown: AtomicU64,
    /// Gauge: stripe-set members currently marked down (0 = full
    /// redundancy; writes proceed at reduced redundancy while non-zero).
    degraded: AtomicU64,
    /// Replica WRITE batches confirmed under a write verifier (one per
    /// member per replicated flush round).
    replica_writes: AtomicU64,
    /// Stripe-set members failed over (marked down, traffic re-routed).
    failovers: AtomicU64,
    /// Records shed by admission control (replied JUKEBOX, not executed).
    shed: AtomicU64,
    /// Gauge: 1 while this proxy's shard is inside the overload
    /// hysteresis band (sheds newest work), 0 once it drains below the
    /// exit threshold.
    overloaded: AtomicU64,
    /// JUKEBOX replies the client side absorbed by backing off and
    /// retrying the identical record.
    jukebox_retries: AtomicU64,
    /// (sample_time, cumulative_busy) pairs for utilization series.
    samples: Mutex<Vec<(Duration, Duration)>>,
    /// The observability domain this proxy emits trace events and latency
    /// samples into, when one is attached (set once at session build).
    obs: OnceLock<Arc<Obs>>,
}

impl ProxyStats {
    /// Fresh counters.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The shared busy counter, for layers (GTLS records) that charge
    /// their processing time into this proxy's account.
    pub fn busy_counter(&self) -> Arc<AtomicU64> {
        self.busy_nanos.clone()
    }

    /// Attach an observability domain. First attachment wins; later calls
    /// are ignored (the session wires this exactly once, before the proxy
    /// threads start).
    pub fn set_obs(&self, obs: Arc<Obs>) {
        let _ = self.obs.set(obs);
    }

    /// The attached observability domain, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.get()
    }

    /// Subtract blocked-I/O wall time that [`track`](Self::track)
    /// over-counted (waits on upstream replies are not CPU time).
    pub fn exclude(&self, d: Duration) {
        let sub = d.as_nanos() as u64;
        let _ = self
            .busy_nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(sub))
            });
    }

    /// Run `f`, charging its wall time as busy time.
    pub fn track<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.busy_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// Add bytes forwarded toward the server.
    pub fn add_up(&self, n: usize) {
        self.bytes_up.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Add bytes forwarded toward the client.
    pub fn add_down(&self, n: usize) {
        self.bytes_down.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// One call entered the pipelined upstream window (the new depth is
    /// passed so the peak gauge needs no read-modify cycle on the depth).
    pub fn pipeline_admitted(&self, depth: u64) {
        self.pipeline_depth.store(depth, Ordering::Relaxed);
        self.pipeline_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// One call left the pipelined upstream window.
    pub fn pipeline_completed(&self, depth: u64) {
        self.pipeline_depth.store(depth, Ordering::Relaxed);
    }

    /// Calls currently in flight upstream.
    pub fn pipeline_depth(&self) -> u64 {
        self.pipeline_depth.load(Ordering::Relaxed)
    }

    /// Deepest the in-flight window has been.
    pub fn pipeline_peak(&self) -> u64 {
        self.pipeline_peak.load(Ordering::Relaxed)
    }

    /// A READ was served from the pipelined read-ahead landing zone.
    pub fn add_prefetch_hit(&self) {
        self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// READs served from prefetched blocks.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits.load(Ordering::Relaxed)
    }

    /// Record scratch buffers grew by `n` bytes of heap capacity.
    pub fn add_record_alloc(&self, n: u64) {
        if n > 0 {
            self.record_alloc_bytes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total heap capacity growth of the upstream record buffers; divide
    /// by [`messages`](Self::messages) for the per-record figure, which
    /// converges to zero at steady state.
    pub fn record_alloc_bytes(&self) -> u64 {
        self.record_alloc_bytes.load(Ordering::Relaxed)
    }

    /// One upstream reconnection completed (handshake done, channel live).
    pub fn add_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` in-flight calls were replayed on a fresh channel.
    pub fn add_replays(&self, n: u64) {
        if n > 0 {
            self.replays.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Slept `d` in reconnect backoff.
    pub fn add_backoff(&self, d: Duration) {
        self.backoff_nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Successful upstream reconnections.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Idempotent calls replayed across reconnections.
    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// Total time spent in reconnect backoff.
    pub fn backoff(&self) -> Duration {
        Duration::from_nanos(self.backoff_nanos.load(Ordering::Relaxed))
    }

    /// One cache I/O error was absorbed (the block degraded to
    /// write-through instead of silently pretending to be cached).
    pub fn add_cache_io_error(&self) {
        self.cache_io_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache I/O errors absorbed so far.
    pub fn cache_io_errors(&self) -> u64 {
        self.cache_io_errors.load(Ordering::Relaxed)
    }

    /// One record reached the write-ahead journal.
    pub fn add_journal_append(&self) {
        self.journal_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Records appended to the journal.
    pub fn journal_appends(&self) -> u64 {
        self.journal_appends.load(Ordering::Relaxed)
    }

    /// The journal was compacted.
    pub fn add_journal_compaction(&self) {
        self.journal_compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Journal compactions performed.
    pub fn journal_compactions(&self) -> u64 {
        self.journal_compactions.load(Ordering::Relaxed)
    }

    /// Crash recovery re-marked `blocks` blocks (`bytes` bytes) dirty.
    pub fn add_recovered(&self, blocks: u64, bytes: u64) {
        self.recovered_blocks.fetch_add(blocks, Ordering::Relaxed);
        self.recovered_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// (blocks, bytes) re-marked dirty by crash recovery.
    pub fn recovered(&self) -> (u64, u64) {
        (
            self.recovered_blocks.load(Ordering::Relaxed),
            self.recovered_bytes.load(Ordering::Relaxed),
        )
    }

    /// Record the dirty-byte gauge at session teardown.
    pub fn set_dirty_at_shutdown(&self, bytes: u64) {
        self.dirty_at_shutdown.store(bytes, Ordering::Relaxed);
    }

    /// Dirty bytes still cached when the session tore down.
    pub fn dirty_at_shutdown(&self) -> u64 {
        self.dirty_at_shutdown.load(Ordering::Relaxed)
    }

    /// Record the number of stripe-set members currently down.
    pub fn set_degraded(&self, members_down: u64) {
        self.degraded.store(members_down, Ordering::Relaxed);
    }

    /// Stripe-set members currently marked down (gauge).
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// One replica's WRITE batch was confirmed under its write verifier.
    pub fn add_replica_write(&self) {
        self.replica_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Replica WRITE batches confirmed.
    pub fn replica_writes(&self) -> u64 {
        self.replica_writes.load(Ordering::Relaxed)
    }

    /// One stripe-set member was failed over to the survivors.
    pub fn add_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Stripe-set members failed over so far.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// One record was shed: the server replied JUKEBOX without
    /// executing the call.
    pub fn add_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records shed by admission control so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Set the overload gauge (1 = inside the hysteresis band).
    pub fn set_overloaded(&self, on: bool) {
        self.overloaded.store(on as u64, Ordering::Relaxed);
    }

    /// Current overload gauge.
    pub fn overloaded(&self) -> u64 {
        self.overloaded.load(Ordering::Relaxed)
    }

    /// One JUKEBOX reply absorbed client-side (backoff + verbatim retry).
    pub fn add_jukebox_retry(&self) {
        self.jukebox_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// JUKEBOX retries performed by the client side so far.
    pub fn jukebox_retries(&self) -> u64 {
        self.jukebox_retries.load(Ordering::Relaxed)
    }

    /// Cumulative busy time.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed))
    }

    /// Messages processed.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Bytes (up, down).
    pub fn bytes(&self) -> (u64, u64) {
        (self.bytes_up.load(Ordering::Relaxed), self.bytes_down.load(Ordering::Relaxed))
    }

    /// Record a utilization sample at simulated time `now`.
    pub fn sample(&self, now: Duration) {
        self.samples.lock().push((now, self.busy()));
    }

    /// Utilization percentage per sample interval:
    /// `(t, 100 * Δbusy / Δt)` for each consecutive sample pair.
    pub fn utilization_series(&self) -> Vec<(Duration, f64)> {
        let samples = self.samples.lock();
        samples
            .windows(2)
            .map(|w| {
                let dt = w[1].0.saturating_sub(w[0].0);
                let db = w[1].1.saturating_sub(w[0].1);
                let pct = if dt.is_zero() {
                    0.0
                } else {
                    100.0 * db.as_secs_f64() / dt.as_secs_f64()
                };
                (w[1].0, pct)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_accumulates_busy_time() {
        let s = ProxyStats::new();
        s.track(|| std::thread::sleep(Duration::from_millis(10)));
        s.track(|| std::thread::sleep(Duration::from_millis(10)));
        assert!(s.busy() >= Duration::from_millis(20));
        assert_eq!(s.messages(), 2);
    }

    #[test]
    fn utilization_series_from_samples() {
        let s = ProxyStats::new();
        s.sample(Duration::from_secs(0));
        s.track(|| std::thread::sleep(Duration::from_millis(50)));
        s.sample(Duration::from_secs(1));
        s.sample(Duration::from_secs(2));
        let series = s.utilization_series();
        assert_eq!(series.len(), 2);
        assert!(series[0].1 >= 4.0, "≈5% busy in first interval, got {}", series[0].1);
        assert!(series[1].1 < 1.0, "idle second interval");
    }

    #[test]
    fn pipeline_gauges() {
        let s = ProxyStats::new();
        s.pipeline_admitted(1);
        s.pipeline_admitted(2);
        s.pipeline_completed(1);
        assert_eq!(s.pipeline_depth(), 1);
        assert_eq!(s.pipeline_peak(), 2);
        s.add_prefetch_hit();
        assert_eq!(s.prefetch_hits(), 1);
        s.add_record_alloc(128);
        s.add_record_alloc(0);
        assert_eq!(s.record_alloc_bytes(), 128);
    }

    #[test]
    fn recovery_counters() {
        let s = ProxyStats::new();
        s.add_reconnect();
        s.add_replays(3);
        s.add_replays(0);
        s.add_backoff(Duration::from_millis(10));
        s.add_backoff(Duration::from_millis(20));
        assert_eq!(s.reconnects(), 1);
        assert_eq!(s.replays(), 3);
        assert_eq!(s.backoff(), Duration::from_millis(30));
    }

    #[test]
    fn durability_counters() {
        let s = ProxyStats::new();
        s.add_cache_io_error();
        s.add_journal_append();
        s.add_journal_append();
        s.add_journal_compaction();
        s.add_recovered(3, 96);
        s.set_dirty_at_shutdown(64);
        assert_eq!(s.cache_io_errors(), 1);
        assert_eq!(s.journal_appends(), 2);
        assert_eq!(s.journal_compactions(), 1);
        assert_eq!(s.recovered(), (3, 96));
        assert_eq!(s.dirty_at_shutdown(), 64);
        s.set_dirty_at_shutdown(0);
        assert_eq!(s.dirty_at_shutdown(), 0, "gauge, not counter");
    }

    #[test]
    fn replica_counters() {
        let s = ProxyStats::new();
        s.add_replica_write();
        s.add_replica_write();
        s.add_failover();
        s.set_degraded(1);
        assert_eq!(s.replica_writes(), 2);
        assert_eq!(s.failovers(), 1);
        assert_eq!(s.degraded(), 1);
        s.set_degraded(0);
        assert_eq!(s.degraded(), 0, "gauge, not counter");
    }

    #[test]
    fn byte_counters() {
        let s = ProxyStats::new();
        s.add_up(100);
        s.add_up(50);
        s.add_down(7);
        assert_eq!(s.bytes(), (150, 7));
    }
}
