//! Session assembly: stand up a complete testbed for one configuration.
//!
//! A [`Session`] is one mounted grid filesystem: the emulated WAN link,
//! the kernel NFS server with its exported `/GFS`, the proxy stack for
//! the chosen [`SetupKind`], and the kernel-client stand-in the workloads
//! drive. This mirrors §6.1's experimental setups exactly:
//!
//! | kind      | stack |
//! |-----------|-------|
//! | `NfsV3`   | kernel client → WAN → kernel server |
//! | `NfsV4`   | same wiring (the paper saw no v4 advantage; see EXPERIMENTS.md) |
//! | `Gfs`     | + client/server proxies, no security |
//! | `Sgfs(_)` | proxies over GTLS at the chosen strength |
//! | `GfsSsh`  | plain proxies through the session-key SSH tunnel |
//! | `Sfs`     | RC4 proxies, aggressive memory metadata cache + read-ahead |

use crate::config::{CacheMode, DurabilityPolicy, HopCost, RetryPolicy, SecurityLevel, SessionConfig};
use crate::proxy::client::{ClientProxy, ClientProxyController, Upstream};
use crate::proxy::server::ServerProxy;
use crate::proxy::ProxyError;
use crate::tunnel::{tunnel_start, TunnelGuard};
use sgfs_crypto::rsa::RsaKeyPair;
use sgfs_gtls::{handshake_pair, GtlsError, GtlsHandshake, GtlsStream};
use sgfs_net::{pipe_pair, pipe_pair_over_link, Link, LinkSpec, SimClock};
use sgfs_nfs3::{Fh3, Nfs3Client};
use sgfs_nfsclient::{MountOptions, NfsMount};
use sgfs_nfsd::{ExportEntry, Exports, NfsServer};
use sgfs_oncrpc::msg::AuthSysParams;
use sgfs_oncrpc::{LoopbackStream, OpaqueAuth, RpcRecordService, ShardServer};
use sgfs_pki::{
    CertificateAuthority, Credential, DistinguishedName, TrustStore, ValidatedPeer,
};
use sgfs_vfs::{UserContext, Vfs};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// uid/gid of the job account on the compute host.
pub const JOB_UID: u32 = 1001;
/// uid/gid of the file account on the server host (what the proxy maps to).
pub const FILE_UID: u32 = 2001;

/// Which experimental stack to assemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupKind {
    /// Native NFSv3 baseline.
    NfsV3,
    /// NFSv4 baseline (same wiring; the paper found it performance-
    /// equivalent to v3 in its testbed and reports only v3 numbers).
    NfsV4,
    /// User-level proxies, no security.
    Gfs,
    /// The paper's system at a given security strength.
    Sgfs(SecurityLevel),
    /// Proxies + session-key authenticated SSH-like tunnel.
    GfsSsh,
    /// The SFS-analog: RC4+SHA1, aggressive metadata caching, read-ahead.
    Sfs,
}

impl SetupKind {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SetupKind::NfsV3 => "nfs-v3",
            SetupKind::NfsV4 => "nfs-v4",
            SetupKind::Gfs => "gfs",
            SetupKind::Sgfs(SecurityLevel::None) => "sgfs-none",
            SetupKind::Sgfs(SecurityLevel::IntegrityOnly) => "sgfs-sha",
            SetupKind::Sgfs(SecurityLevel::MediumCipher) => "sgfs-rc",
            SetupKind::Sgfs(SecurityLevel::StrongCipher) => "sgfs-aes",
            SetupKind::Sgfs(SecurityLevel::AeadCipher) => "sgfs-gcm",
            SetupKind::GfsSsh => "gfs-ssh",
            SetupKind::Sfs => "sfs",
        }
    }
}

/// Session construction failures.
#[derive(Debug)]
pub enum SessionError {
    /// Secure-channel establishment failed.
    Gtls(GtlsError),
    /// Proxy setup failed (authorization, tunnel, cache spool, ...).
    Proxy(ProxyError),
    /// I/O failure.
    Io(std::io::Error),
    /// The export was not mountable.
    Mount(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Gtls(e) => write!(f, "session security setup failed: {e}"),
            SessionError::Proxy(e) => write!(f, "session proxy setup failed: {e}"),
            SessionError::Io(e) => write!(f, "session I/O failure: {e}"),
            SessionError::Mount(s) => write!(f, "mount failed: {s}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<GtlsError> for SessionError {
    fn from(e: GtlsError) -> Self {
        SessionError::Gtls(e)
    }
}

impl From<ProxyError> for SessionError {
    fn from(e: ProxyError) -> Self {
        SessionError::Proxy(e)
    }
}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> Self {
        SessionError::Io(e)
    }
}

/// The PKI world a grid deployment needs: a CA, a user, a file server.
pub struct GridWorld {
    /// The certificate authority.
    pub ca: CertificateAuthority,
    /// The grid user's credential.
    pub user: Credential,
    /// The file server host's credential.
    pub server: Credential,
    /// Trust store holding the CA root.
    pub trust: TrustStore,
    /// The DN the deployment's gridmap authorizes (alice). Swapping
    /// `user` for another credential does *not* authorize that identity.
    pub authorized_dn: DistinguishedName,
}

impl GridWorld {
    /// Create a CA and issue user + server certificates.
    ///
    /// 512-bit keys keep setup fast; the code paths are size-independent.
    pub fn new() -> Self {
        let mut rng = rand::thread_rng();
        let dn = |s: &str| DistinguishedName::parse(s).expect("static DN");
        let ca = CertificateAuthority::new(&dn("/O=Grid/OU=ACIS/CN=CA"), 512, &mut rng);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        let ukey = RsaKeyPair::generate(512, &mut rng);
        let ucert = ca.issue(&dn("/O=Grid/OU=ACIS/CN=alice"), &ukey.public);
        let skey = RsaKeyPair::generate(512, &mut rng);
        let scert = ca.issue(&dn("/O=Grid/OU=ACIS/CN=fileserver"), &skey.public);
        Self {
            ca,
            user: Credential::new(ucert, ukey),
            server: Credential::new(scert, skey),
            trust,
            authorized_dn: dn("/O=Grid/OU=ACIS/CN=alice"),
        }
    }

    /// The user's DN.
    pub fn user_dn(&self) -> DistinguishedName {
        self.user.effective_dn().clone()
    }

    /// The server's DN.
    pub fn server_dn(&self) -> DistinguishedName {
        self.server.effective_dn().clone()
    }
}

impl Default for GridWorld {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything a File System Service needs to establish one session:
/// credentials, trust anchors, and the session's access-control setup.
/// [`GridWorld::material`] produces the single-user default; the DSS
/// generates richer gridmaps from its per-filesystem ACL database.
#[derive(Clone)]
pub struct SessionMaterial {
    /// The grid user's (possibly delegated) credential.
    pub user: Credential,
    /// The file-server host credential.
    pub server: Credential,
    /// Trusted CA roots.
    pub trust: TrustStore,
    /// The session gridmap (DN → local account name).
    pub gridmap: sgfs_pki::GridMap,
    /// Local account name → (uid, gid).
    pub accounts: std::collections::HashMap<String, (u32, u32)>,
}

impl GridWorld {
    /// The default single-user session material: the world's authorized
    /// DN mapped to the `griduser` file account.
    pub fn material(&self) -> SessionMaterial {
        let mut gridmap = sgfs_pki::GridMap::new();
        gridmap.insert(self.authorized_dn.clone(), "griduser");
        let mut accounts = std::collections::HashMap::new();
        accounts.insert("griduser".to_string(), (FILE_UID, FILE_UID));
        SessionMaterial {
            user: self.user.clone(),
            server: self.server.clone(),
            trust: self.trust.clone(),
            gridmap,
            accounts,
        }
    }
}

/// Parameters of one session build.
pub struct SessionParams {
    /// Which stack.
    pub kind: SetupKind,
    /// WAN round-trip time (the paper's LAN measures ~0.3 ms).
    pub rtt: Duration,
    /// Link bandwidth (None = the paper's Gigabit LAN, effectively ∞).
    pub bandwidth: Option<u64>,
    /// Kernel client memory cache bytes.
    pub mem_cache_bytes: usize,
    /// Client proxy disk cache spool (None = no proxy data caching —
    /// the paper's LAN configurations).
    pub disk_cache_dir: Option<std::path::PathBuf>,
    /// Fine-grained per-file ACL enforcement at the server proxy.
    pub fine_grained_acl: bool,
    /// Automatic session rekey after this many records.
    pub rekey_every: Option<u64>,
    /// Use a delegated proxy certificate instead of the user certificate.
    pub delegate: bool,
    /// Virtual cost of each user-level forwarding hop (see [`HopCost`]).
    pub hop_cost: HopCost,
    /// Override the client proxy's read-ahead depth (None = the kind's
    /// default: 4 for the SFS stack, 0 otherwise).
    pub readahead: Option<u32>,
    /// Server-side filesystem to export. `None` creates a fresh one;
    /// passing the same `Arc<Vfs>` to several sessions makes them share
    /// data (how the FSS realizes multiple sessions to one filesystem).
    pub vfs: Option<std::sync::Arc<Vfs>>,
    /// Upstream fault-recovery policy for the client proxy's pipeline
    /// (reconnect budget, dial backoff, per-call reply deadline).
    pub retry: RetryPolicy,
    /// Crash-consistency policy for the disk cache. The benchmark
    /// defaults disable the journal (the paper's methodology starts each
    /// session with a cold, ephemeral cache); a production session sets a
    /// journaling policy and its spool + journal survive restarts —
    /// session assembly replays the journal before serving the first
    /// call.
    pub durability: DurabilityPolicy,
    /// Observability domain for the session's data plane (trace events,
    /// latency histograms). `None` = untraced; share one domain across
    /// sessions to interleave their events on one logical clock.
    pub obs: Option<Arc<sgfs_obs::Obs>>,
    /// The sharded server core this session's server-side connections pin
    /// to. `None` = the session starts a private [`ShardServer`] with
    /// [`DEFAULT_SHARDS`] event loops; pass a shared one to multiplex many
    /// sessions over the same fixed thread pool (the 10k-session path).
    pub shard_server: Option<Arc<ShardServer>>,
    /// The client-side I/O pool this session's upstream pipeline pins to.
    /// `None` = the pipeline gets a private single-worker pool; pass a
    /// shared pool to multiplex many sessions' upstream channels over a
    /// fixed client thread budget (the client mirror of `shard_server`).
    pub client_pool: Option<Arc<sgfs_oncrpc::ClientIoPool>>,
    /// Multi-server placement: stripe the session's file blocks across
    /// `width` FSS upstreams and replicate each block to `replicas` of
    /// them. `None` or width 1 = the classic single-upstream session.
    /// Striping requires a proxied stack (gfs / sgfs / sfs): the kernel
    /// baselines and the ssh tunnel have a single wire by construction.
    pub stripe: Option<crate::config::StripePolicy>,
}

/// Shard count of a session's private server core. Two loops exercise the
/// cross-shard paths even in single-session tests while costing only two
/// threads.
pub const DEFAULT_SHARDS: usize = 2;

impl SessionParams {
    /// LAN defaults for the given kind.
    pub fn lan(kind: SetupKind) -> Self {
        Self {
            kind,
            rtt: Duration::from_micros(300),
            bandwidth: None,
            mem_cache_bytes: 256 * 1024 * 1024,
            disk_cache_dir: None,
            fine_grained_acl: false,
            rekey_every: None,
            delegate: false,
            hop_cost: HopCost::default(),
            readahead: None,
            vfs: None,
            retry: RetryPolicy::default(),
            durability: DurabilityPolicy::none(),
            obs: None,
            shard_server: None,
            client_pool: None,
            stripe: None,
        }
    }

    /// WAN defaults: the given RTT plus proxy disk caching (for SGFS).
    pub fn wan(kind: SetupKind, rtt: Duration) -> Self {
        let mut p = Self::lan(kind);
        p.rtt = rtt;
        if matches!(kind, SetupKind::Sgfs(_)) {
            p.disk_cache_dir = Some(std::env::temp_dir().join(format!(
                "sgfs-cache-{}-{}",
                std::process::id(),
                rand::random::<u64>()
            )));
        }
        p
    }
}

/// End-of-session accounting.
#[derive(Debug)]
pub struct SessionReport {
    /// Bytes written back from the proxy cache at teardown.
    pub writeback_bytes: u64,
    /// Simulated time the final write-back took.
    pub writeback_time: Duration,
    /// Client proxy metadata cache (hits, misses), when a proxy ran.
    pub proxy_cache: Option<(u64, u64)>,
}

/// One live session: the mounted filesystem plus everything beneath it.
pub struct Session {
    /// The mounted filesystem the workload drives.
    pub mount: NfsMount,
    clock: Arc<SimClock>,
    link: Arc<Link>,
    server: Arc<NfsServer>,
    replica_servers: Vec<Arc<NfsServer>>,
    client_proxy_rx: Option<mpsc::Receiver<(ClientProxy, std::io::Result<()>)>>,
    client_stats: Option<Arc<crate::stats::ProxyStats>>,
    server_proxy: Option<Arc<ServerProxy>>,
    controller: Option<ClientProxyController>,
    obs: Option<Arc<sgfs_obs::Obs>>,
    shards: Arc<ShardServer>,
    // Last field on purpose: the guards' drop-join runs after everything
    // above has been torn down, by which point the proxy/pipeline drops
    // have closed the tunnel's local pipes and both forwarders exit.
    tunnel_guards: Vec<TunnelGuard>,
}

impl Session {
    /// Assemble the full stack for `params` in `world`.
    pub fn build(world: &GridWorld, params: &SessionParams) -> Result<Session, SessionError> {
        Self::build_from(&world.material(), params, SimClock::new())
    }

    /// Assemble on a caller-provided clock (benchmarks share one).
    pub fn build_on(
        world: &GridWorld,
        params: &SessionParams,
        clock: Arc<SimClock>,
    ) -> Result<Session, SessionError> {
        Self::build_from(&world.material(), params, clock)
    }

    /// Assemble from explicit session material (the FSS entry point).
    pub fn build_from(
        world: &SessionMaterial,
        params: &SessionParams,
        clock: Arc<SimClock>,
    ) -> Result<Session, SessionError> {
        // --- the file server host ---
        let vfs = params.vfs.clone().unwrap_or_else(|| Arc::new(Vfs::new()));
        let root_ctx = UserContext::root();
        vfs.mkdir_p("/GFS", 0o755, &root_ctx).expect("export tree");
        // The export is owned by the file account so mapped users can work in it.
        let gfs_attr = vfs.resolve("/GFS", &root_ctx).expect("just created");
        vfs.setattr(
            gfs_attr.ino,
            &sgfs_vfs::SetAttrs {
                uid: Some(FILE_UID),
                gid: Some(FILE_UID),
                ..Default::default()
            },
            &root_ctx,
        )
        .expect("chown export");
        let mut exports = Exports::new();
        exports.add(ExportEntry::localhost("/GFS"));
        // The trusted proxy presents mapped credentials; no squashing.
        let server = NfsServer::new_no_squash(vfs, exports);
        let root_fh = server
            .mount("/GFS", "localhost")
            .ok_or_else(|| SessionError::Mount("/GFS not exported to localhost".into()))?;

        // --- the WAN link between the hosts ---
        let link = Link::new(
            LinkSpec { latency: params.rtt / 2, bandwidth: params.bandwidth },
            clock.clone(),
        );

        // --- the sharded server core: every server-side connection in
        // this session (kernel baseline or proxy downstream) pins to one
        // of its event loops instead of getting its own thread ---
        let shards = params
            .shard_server
            .clone()
            .unwrap_or_else(|| ShardServer::new(DEFAULT_SHARDS));

        let mut session = Session {
            mount: Self::placeholder_mount(&clock, &root_fh),
            clock: clock.clone(),
            link: link.clone(),
            server: server.clone(),
            replica_servers: Vec::new(),
            client_proxy_rx: None,
            client_stats: None,
            server_proxy: None,
            controller: None,
            obs: params.obs.clone(),
            shards: shards.clone(),
            tunnel_guards: Vec::new(),
        };

        let mount_opts =
            MountOptions::new(clock.clone()).with_mem_cache(params.mem_cache_bytes);
        let job_cred = OpaqueAuth::sys(&AuthSysParams::new("compute-host", JOB_UID, JOB_UID));

        match params.kind {
            SetupKind::NfsV3 | SetupKind::NfsV4 => {
                // Direct: kernel client over the link to the kernel server.
                // (Real deployments would not export across hosts like
                // this; it is the paper's baseline.)
                let mut exports = Exports::new();
                exports.add(ExportEntry {
                    path: "/GFS".into(),
                    hosts: vec!["*".into()],
                    root_squash: false,
                    read_only: false,
                });
                let server = NfsServer::new_no_squash(server.vfs().clone(), exports);
                let root_fh = server.mount("/GFS", "compute-host").expect("wildcard export");
                let (client_end, server_end) = pipe_pair_over_link(link.clone());
                let watch = server_end.watch();
                shards.add_session(
                    Box::new(server_end),
                    watch,
                    Arc::new(RpcRecordService(server.clone())),
                )?;
                let mut nfs = Nfs3Client::new(Box::new(client_end));
                // The kernel client presents the *file* account directly:
                // the baseline has no identity mapping.
                nfs.set_cred(OpaqueAuth::sys(&AuthSysParams::new(
                    "compute-host",
                    FILE_UID,
                    FILE_UID,
                )));
                session.server = server.clone();
                session.mount = NfsMount::new(nfs, root_fh, mount_opts);
                return Ok(session);
            }
            _ => {}
        }

        // --- proxied stacks: wire across the link ---
        let (wire_client, wire_server) = pipe_pair_over_link(link.clone());
        // Readiness must observe the raw wire, before fault injectors or
        // GTLS wrap the stream: arrivals are arrivals regardless of what
        // decrypts them. Both directions get a watch — the server side
        // feeds a shard loop, the client side feeds the client I/O pool.
        let wire_watch = wire_server.watch();
        let client_wire_watch = wire_client.watch();

        // Server-proxy-side plumbing: two in-process loopbacks to nfsd.
        // Synchronous dispatch (no pipe, no thread) keeps the proxy free
        // to run on a shard — it can never block on another thread's
        // progress to reach its own backend.
        let make_forward = || Box::new(LoopbackStream::new(server.clone())) as sgfs_net::BoxStream;
        let make_acl_client = || {
            let mut c = Nfs3Client::new(Box::new(LoopbackStream::new(server.clone())));
            // The proxy's own service identity ("user gfs" in §5).
            c.set_cred(OpaqueAuth::sys(&AuthSysParams::new("file-host", 0, 0)));
            c
        };

        let mut server_cfg = SessionConfig::new(match params.kind {
            SetupKind::Sgfs(level) => level,
            SetupKind::Sfs => SecurityLevel::MediumCipher,
            _ => SecurityLevel::None,
        });
        server_cfg.credential = Some(world.server.clone());
        server_cfg.trust = world.trust.clone();
        server_cfg.gridmap = world.gridmap.clone();
        server_cfg.accounts = world.accounts.clone();
        server_cfg.fine_grained_acl = params.fine_grained_acl;

        let mut client_cfg = server_cfg.clone();
        client_cfg.credential = Some(if params.delegate {
            world.user.issue_proxy(3600, 1, &mut rand::thread_rng())
        } else {
            world.user.clone()
        });
        client_cfg.expected_peer = Some(world.server.effective_dn().clone());
        client_cfg.rekey_every_records = params.rekey_every;
        let striped = params.stripe.is_some_and(|p| p.width > 1);
        client_cfg.cache = match (&params.kind, &params.disk_cache_dir) {
            (SetupKind::Sfs, _) => CacheMode::MemoryMeta,
            (_, Some(dir)) => CacheMode::Disk { dir: dir.clone() },
            // A striped member holds only its mapped blocks, so no single
            // upstream can answer a whole-file GETATTR: the session-local
            // write-back cache is the size authority for striped
            // placements.
            (_, None) if striped => CacheMode::MemoryMeta,
            (_, None) => CacheMode::None,
        };
        client_cfg.readahead = params
            .readahead
            .unwrap_or(if params.kind == SetupKind::Sfs { 4 } else { 0 });
        client_cfg.retry = params.retry;
        client_cfg.durability = params.durability;
        client_cfg.obs = params.obs.clone();
        client_cfg.client_pool = params.client_pool.clone();

        // --- striped placement: one full server stack per member, one
        // client proxy across all of them. Each member is its own file
        // host: a fresh backing store that receives the identical
        // mirrored metadata op sequence, so handles and directory
        // structure stay byte-identical across the stripe set and any
        // member can serve any metadata call.
        let stripe_width = params.stripe.map(|p| p.width.max(1)).unwrap_or(1) as usize;
        if stripe_width > 1 {
            if !matches!(params.kind, SetupKind::Gfs | SetupKind::Sgfs(_) | SetupKind::Sfs) {
                return Err(SessionError::Proxy(ProxyError::Protocol(
                    "striping requires a proxied gfs/sgfs/sfs stack".into(),
                )));
            }
            if params.vfs.is_some() {
                // A caller-provided (already populated) vfs would make
                // member 0 structurally different from the fresh members.
                return Err(SessionError::Proxy(ProxyError::Protocol(
                    "a striped session cannot share a caller-provided vfs".into(),
                )));
            }
            client_cfg.stripe = params.stripe;
            let server_accept_gtls = server_cfg.gtls();
            let client_gtls = client_cfg.gtls();
            let mut upstreams: Vec<crate::proxy::client::StripeUpstream> =
                Vec::with_capacity(stripe_width);
            for m in 0..stripe_width {
                // Member 0 reuses the host assembled at the top of this
                // function; the others get fresh, structurally identical
                // hosts of their own.
                let (m_server, m_root) = if m == 0 {
                    (server.clone(), root_fh.clone())
                } else {
                    let vfs = Arc::new(Vfs::new());
                    vfs.mkdir_p("/GFS", 0o755, &root_ctx).expect("export tree");
                    let attr = vfs.resolve("/GFS", &root_ctx).expect("just created");
                    vfs.setattr(
                        attr.ino,
                        &sgfs_vfs::SetAttrs {
                            uid: Some(FILE_UID),
                            gid: Some(FILE_UID),
                            ..Default::default()
                        },
                        &root_ctx,
                    )
                    .expect("chown export");
                    let mut exports = Exports::new();
                    exports.add(ExportEntry::localhost("/GFS"));
                    let s = NfsServer::new_no_squash(vfs, exports);
                    let r = s.mount("/GFS", "localhost").ok_or_else(|| {
                        SessionError::Mount("/GFS not exported to localhost".into())
                    })?;
                    (s, r)
                };
                if m_root != root_fh {
                    return Err(SessionError::Mount(
                        "replica export handles diverge across the stripe set".into(),
                    ));
                }
                let (wire_c, wire_s) = pipe_pair_over_link(link.clone());
                let s_watch = wire_s.watch();
                let c_watch = wire_c.watch();
                let forward =
                    Box::new(LoopbackStream::new(m_server.clone())) as sgfs_net::BoxStream;
                let mut acl = Nfs3Client::new(Box::new(LoopbackStream::new(m_server.clone())));
                acl.set_cred(OpaqueAuth::sys(&AuthSysParams::new("file-host", 0, 0)));
                let (m_upstream, m_proxy): (Upstream, Arc<ServerProxy>) =
                    match (client_gtls.clone(), server_accept_gtls.clone()) {
                        (Some(ccfg), Some(scfg)) => {
                            let (client_tls, mut server_tls) = handshake_pair(
                                GtlsHandshake::client(
                                    Box::new(wire_c),
                                    Some(c_watch.clone()),
                                    ccfg,
                                ),
                                GtlsHandshake::server(
                                    Box::new(wire_s),
                                    Some(s_watch.clone()),
                                    scfg,
                                ),
                            )?;
                            let peer = server_tls.peer().clone();
                            let proxy = ServerProxy::new(
                                server_cfg.clone(),
                                &peer,
                                forward,
                                acl,
                                m_root,
                            )?;
                            server_tls.busy_counter = Some(proxy.stats().busy_counter());
                            shards.add_session(
                                Box::new(server_tls),
                                s_watch.clone(),
                                proxy.clone(),
                            )?;
                            (Upstream::Tls(Box::new(client_tls)), proxy)
                        }
                        _ => {
                            let proxy = ServerProxy::new(
                                server_cfg.clone(),
                                &synthetic_peer(world),
                                forward,
                                acl,
                                m_root,
                            )?;
                            shards.add_session(
                                Box::new(wire_s),
                                s_watch.clone(),
                                proxy.clone(),
                            )?;
                            (Upstream::Plain(Box::new(wire_c)), proxy)
                        }
                    };
                m_proxy.set_hop_cost(clock.clone(), params.hop_cost);
                // Per-member fault recovery: the member re-dials its own
                // host through its own reconnector (PR 2 machinery, one
                // instance per upstream).
                let sp = m_proxy.clone();
                let ccfg_r = client_gtls.clone();
                let scfg_r = server_accept_gtls.clone();
                let dial_link = link.clone();
                let dial_shards = shards.clone();
                let reconnector: Option<Box<dyn crate::proxy::retry::Reconnector>> =
                    Some(Box::new(
                        move |_attempt: u32| -> std::io::Result<(
                            Upstream,
                            sgfs_net::PipeWatch,
                        )> {
                            let (c, s) = pipe_pair_over_link(dial_link.clone());
                            let c_watch = c.watch();
                            let s_watch = s.watch();
                            let sp = sp.clone();
                            match (ccfg_r.clone(), scfg_r.clone()) {
                                (Some(ccfg), Some(scfg)) => {
                                    let (client_tls, mut server_tls) = handshake_pair(
                                        GtlsHandshake::client(
                                            Box::new(c),
                                            Some(c_watch.clone()),
                                            ccfg,
                                        ),
                                        GtlsHandshake::server(
                                            Box::new(s),
                                            Some(s_watch.clone()),
                                            scfg,
                                        ),
                                    )
                                    .map_err(std::io::Error::from)?;
                                    server_tls.busy_counter =
                                        Some(sp.stats().busy_counter());
                                    dial_shards.add_session(
                                        Box::new(server_tls),
                                        s_watch,
                                        sp,
                                    )?;
                                    Ok((Upstream::Tls(Box::new(client_tls)), c_watch))
                                }
                                _ => {
                                    dial_shards.add_session(Box::new(s), s_watch, sp)?;
                                    Ok((Upstream::Plain(Box::new(c)), c_watch))
                                }
                            }
                        },
                    ));
                if m == 0 {
                    session.server_proxy = Some(m_proxy);
                }
                session.replica_servers.push(m_server);
                upstreams.push((m_upstream, c_watch, reconnector));
            }

            let mut client_proxy = ClientProxy::with_stripe(upstreams, &client_cfg)?;
            client_proxy.set_hop_cost(clock.clone(), params.hop_cost);
            client_proxy.start_readahead();
            session.controller = Some(client_proxy.controller());
            session.client_stats = Some(client_proxy.stats().clone());
            let (mount_end, proxy_end) = pipe_pair();
            let (tx, rx) = mpsc::channel();
            std::thread::spawn(move || {
                let result = client_proxy.run(Box::new(proxy_end));
                let _ = tx.send(result);
            });
            session.client_proxy_rx = Some(rx);
            let mut nfs = Nfs3Client::new(Box::new(mount_end));
            nfs.set_cred(job_cred);
            session.mount = NfsMount::new(nfs, root_fh, mount_opts);
            return Ok(session);
        }

        // Establish the inter-proxy channel per configuration.
        enum Downstream {
            Plain(sgfs_net::BoxStream),
            Tls(Box<GtlsStream>),
        }
        let (client_upstream, server_peer, server_downstream, server_watch, client_watch): (
            Upstream,
            ValidatedPeer,
            Downstream,
            sgfs_net::PipeWatch,
            sgfs_net::PipeWatch,
        ) = match params.kind {
            SetupKind::GfsSsh => {
                let key: [u8; 32] = rand::random();
                let hop_s = Some((clock.clone(), params.hop_cost));
                let hop_c = hop_s.clone();
                // Two-phase establishment on this thread: both hellos are
                // written before either side reads, so no concurrent peer
                // (and no transient thread) is needed.
                let client_pend = tunnel_start(wire_client, &key, true, hop_c)?;
                let server_pend = tunnel_start(wire_server, &key, false, hop_s)?;
                let (client_stream, client_tunnel_watch, client_guard) = client_pend.finish()?;
                // The tunnel's forwarder threads drain the wire; the event
                // loops must watch the local plaintext pipes they feed.
                let (server_stream, tunnel_watch, server_guard) = server_pend.finish()?;
                session.tunnel_guards.push(client_guard);
                session.tunnel_guards.push(server_guard);
                (
                    Upstream::Plain(client_stream),
                    synthetic_peer(world),
                    Downstream::Plain(server_stream),
                    tunnel_watch,
                    client_tunnel_watch,
                )
            }
            SetupKind::Gfs => (
                Upstream::Plain(Box::new(wire_client)),
                synthetic_peer(world),
                Downstream::Plain(Box::new(wire_server)),
                wire_watch,
                client_wire_watch,
            ),
            _ => {
                // GTLS mutual authentication between the proxies: the two
                // resumable handshake machines are alternated on this
                // thread until both complete — no handshake thread.
                let scfg = server_cfg.gtls().expect("secure kinds have a suite");
                let ccfg = client_cfg.gtls().expect("secure kinds have a suite");
                let (client_tls, server_tls) = handshake_pair(
                    GtlsHandshake::client(
                        Box::new(wire_client),
                        Some(client_wire_watch.clone()),
                        ccfg,
                    ),
                    GtlsHandshake::server(Box::new(wire_server), Some(wire_watch.clone()), scfg),
                )?;
                let peer = server_tls.peer().clone();

                (
                    Upstream::Tls(Box::new(client_tls)),
                    peer,
                    Downstream::Tls(Box::new(server_tls)),
                    wire_watch,
                    client_wire_watch,
                )
            }
        };

        // Server proxy: authorize and serve.
        let server_accept_gtls = server_cfg.gtls();
        let server_proxy = ServerProxy::new(
            server_cfg,
            &server_peer,
            make_forward(),
            make_acl_client(),
            root_fh.clone(),
        )?;
        server_proxy.set_hop_cost(clock.clone(), params.hop_cost);
        let server_downstream: sgfs_net::BoxStream = match server_downstream {
            Downstream::Plain(s) => s,
            Downstream::Tls(mut t) => {
                // Attribute record crypto to the server proxy's CPU account.
                t.busy_counter = Some(server_proxy.stats().busy_counter());
                t
            }
        };
        shards.add_session(server_downstream, server_watch, server_proxy.clone())?;

        // Reconnector: when the inter-proxy channel dies with a transient
        // fault, the pipeline re-dials through this closure. A dial lays a
        // fresh pipe over the same emulated link, alternates the two
        // resumable GTLS handshake machines inline on the calling pool
        // worker (for secure kinds), and pins the fresh connection onto
        // the shard core — no transient thread, no persistent acceptor.
        // GfsSsh keeps its single tunnel (no re-keying path), and the
        // kernel baselines have no proxy to recover.
        let reconnector: Option<Box<dyn crate::proxy::retry::Reconnector>> = match params.kind
        {
            SetupKind::Gfs | SetupKind::Sgfs(_) | SetupKind::Sfs => {
                let sp = server_proxy.clone();
                let client_gtls = client_cfg.gtls();
                let link = link.clone();
                let dial_shards = shards.clone();
                Some(Box::new(
                    move |_attempt: u32| -> std::io::Result<(Upstream, sgfs_net::PipeWatch)> {
                        let (c, s) = pipe_pair_over_link(link.clone());
                        let c_watch = c.watch();
                        let s_watch = s.watch();
                        let sp = sp.clone();
                        match (client_gtls.clone(), server_accept_gtls.clone()) {
                            (Some(ccfg), Some(scfg)) => {
                                // A handshake failure kills this dial only;
                                // the client backs off and retries.
                                let (client_tls, mut server_tls) = handshake_pair(
                                    GtlsHandshake::client(
                                        Box::new(c),
                                        Some(c_watch.clone()),
                                        ccfg,
                                    ),
                                    GtlsHandshake::server(
                                        Box::new(s),
                                        Some(s_watch.clone()),
                                        scfg,
                                    ),
                                )
                                .map_err(std::io::Error::from)?;
                                server_tls.busy_counter = Some(sp.stats().busy_counter());
                                dial_shards.add_session(Box::new(server_tls), s_watch, sp)?;
                                Ok((Upstream::Tls(Box::new(client_tls)), c_watch))
                            }
                            _ => {
                                dial_shards.add_session(Box::new(s), s_watch, sp)?;
                                Ok((Upstream::Plain(Box::new(c)), c_watch))
                            }
                        }
                    },
                ))
            }
            _ => None,
        };

        // Client proxy. Its upstream is pipelined (xid-demultiplexed), so
        // the read-ahead worker rides the same channel — no second
        // connection, no second handshake.
        let mut client_proxy =
            ClientProxy::with_reconnector(client_upstream, client_watch, &client_cfg, reconnector)?;
        client_proxy.set_hop_cost(clock.clone(), params.hop_cost);
        client_proxy.start_readahead();

        session.controller = Some(client_proxy.controller());
        session.client_stats = Some(client_proxy.stats().clone());
        session.server_proxy = Some(server_proxy);

        // Downstream pipe: kernel client ↔ client proxy (same host).
        let (mount_end, proxy_end) = pipe_pair();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let result = client_proxy.run(Box::new(proxy_end));
            let _ = tx.send(result);
        });
        session.client_proxy_rx = Some(rx);

        let mut nfs = Nfs3Client::new(Box::new(mount_end));
        nfs.set_cred(job_cred);
        session.mount = NfsMount::new(nfs, root_fh, mount_opts);
        Ok(session)
    }

    fn placeholder_mount(clock: &Arc<SimClock>, root: &Fh3) -> NfsMount {
        // A dead-end mount, replaced before `build` returns.
        let (a, _b) = pipe_pair();
        NfsMount::new(Nfs3Client::new(Box::new(a)), root.clone(), MountOptions::new(clock.clone()))
    }

    /// The testbed clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The emulated WAN link.
    pub fn link(&self) -> &Arc<Link> {
        &self.link
    }

    /// The kernel NFS server (e.g. to inspect server-side state in tests).
    pub fn server(&self) -> &Arc<NfsServer> {
        &self.server
    }

    /// The server-side proxy, when this configuration has one. For a
    /// striped session this is member 0's proxy.
    pub fn server_proxy(&self) -> Option<&Arc<ServerProxy>> {
        self.server_proxy.as_ref()
    }

    /// The per-member kernel servers of a striped session, in member
    /// order (empty when the session has a single upstream).
    pub fn replica_servers(&self) -> &[Arc<NfsServer>] {
        &self.replica_servers
    }

    /// The sharded server core this session's server-side connections run
    /// on (private to the session unless one was passed in via
    /// [`SessionParams::shard_server`]).
    pub fn shard_server(&self) -> &Arc<ShardServer> {
        &self.shards
    }

    /// The client proxy's instrumentation, when one is running.
    pub fn client_proxy_stats(&self) -> Option<&Arc<crate::stats::ProxyStats>> {
        self.client_stats.as_ref()
    }

    /// The session's observability domain, when one was configured.
    pub fn obs(&self) -> Option<&Arc<sgfs_obs::Obs>> {
        self.obs.as_ref()
    }

    /// Dynamic-reconfiguration controller for the client proxy.
    pub fn controller(&self) -> Option<&ClientProxyController> {
        self.controller.as_ref()
    }

    /// Like [`finish`](Self::finish) but also returns a human-readable
    /// dump of the client proxy's forwarded-procedure counters
    /// (diagnostics for the evaluation harness).
    pub fn finish_with_debug(mut self) -> Result<String, SessionError> {
        self.mount
            .unmount()
            .map_err(|e| SessionError::Io(std::io::Error::other(e.to_string())))?;
        let old = std::mem::replace(
            &mut self.mount,
            Self::placeholder_mount(&self.clock, &Fh3::from_ino(0, 0)),
        );
        drop(old);
        match self.client_proxy_rx.take() {
            Some(rx) => {
                let (mut proxy, _) = rx
                    .recv()
                    .map_err(|_| SessionError::Mount("client proxy vanished".into()))?;
                let _ = proxy.flush_all()?;
                let mut counts: Vec<(u32, u64)> =
                    proxy.forwarded_by_proc().iter().map(|(k, v)| (*k, *v)).collect();
                counts.sort_by_key(|(_, v)| std::cmp::Reverse(*v));
                Ok(format!("forwarded by proc: {counts:?}"))
            }
            None => Ok("no client proxy".into()),
        }
    }

    /// Tear the session down: unmount the kernel client, stop the client
    /// proxy, and write back everything still dirty in the proxy cache
    /// (timed — the paper reports this separately).
    pub fn finish(mut self) -> Result<SessionReport, SessionError> {
        self.mount
            .unmount()
            .map_err(|e| SessionError::Io(std::io::Error::other(e.to_string())))?;
        // Closing the downstream pipe ends the proxy loop.
        let (dead, _) = pipe_pair();
        let old = std::mem::replace(
            &mut self.mount,
            Self::placeholder_mount(&self.clock, &Fh3::from_ino(0, 0)),
        );
        drop(old);
        drop(dead);
        let mut report = SessionReport {
            writeback_bytes: 0,
            writeback_time: Duration::ZERO,
            proxy_cache: None,
        };
        if let Some(rx) = self.client_proxy_rx.take() {
            let (mut proxy, _result) = rx
                .recv()
                .map_err(|_| SessionError::Mount("client proxy vanished".into()))?;
            let t0 = self.clock.now();
            let flushed = proxy.flush_all();
            // Gauge what (if anything) the flush left behind before
            // propagating its error: non-zero means the journal (when
            // enabled) is now the only copy of those bytes.
            proxy.stats().set_dirty_at_shutdown(proxy.dirty_bytes());
            report.writeback_bytes = flushed?;
            report.writeback_time = self.clock.now() - t0;
            report.proxy_cache = Some(proxy.cache_stats());
        }
        Ok(report)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // `finish`/`finish_with_debug` take the receiver; reaching here
        // with it still in place means the session was dropped without
        // orderly teardown. Stop the proxy and write its dirty blocks
        // back rather than silently discarding them.
        let Some(rx) = self.client_proxy_rx.take() else { return };
        let old = std::mem::replace(
            &mut self.mount,
            Self::placeholder_mount(&self.clock, &Fh3::from_ino(0, 0)),
        );
        drop(old);
        if let Ok((mut proxy, _)) = rx.recv() {
            let _ = proxy.flush_all();
            proxy.stats().set_dirty_at_shutdown(proxy.dirty_bytes());
        }
    }
}

/// The identity a non-authenticating (gfs / gfs-ssh) session runs as: the
/// session key stands in for authentication, so the middleware simply
/// asserts the user's DN.
fn synthetic_peer(world: &SessionMaterial) -> ValidatedPeer {
    ValidatedPeer {
        leaf_dn: world.user.effective_dn().clone(),
        effective_dn: world.user.effective_dn().clone(),
        via_proxy: false,
    }
}
