//! Upstream reconnection and NFSv3 replay classification.
//!
//! When the secure channel between the proxies dies with a transient
//! transport error, the pipeline obtains a fresh [`Upstream`] from a
//! [`Reconnector`] and replays the calls that were in flight — but only
//! those the NFSv3 retransmission rules make safe. The classification
//! below is the paper's cache-consistency stance applied to recovery:
//! retransmission safety *is* idempotency, and a WRITE is only idempotent
//! when it is `UNSTABLE` (the write-back layer re-sends and COMMITs it
//! under the write-verifier protocol anyway).

use crate::proxy::client::Upstream;
use sgfs_net::PipeWatch;
use sgfs_nfs3::proc::{procnum, WriteArgs};
use sgfs_nfs3::types::{NfsStat3, StableHow};
use sgfs_nfs3::{NFS_PROGRAM, NFS_VERSION};
use sgfs_oncrpc::{AcceptStat, CallHeader, ReplyHeader};
use sgfs_xdr::{XdrDecode, XdrDecoder};
use std::io;

/// Factory for replacement upstream channels.
///
/// `attempt` counts dials within one recovery episode (0-based), letting
/// an implementation vary behaviour per attempt (a test injector refusing
/// the first N connects, for instance). For `Upstream::Tls` the
/// implementation must re-run the full GTLS handshake — a reconnect is a
/// new connection, not a resumption; with the resumable
/// [`GtlsHandshake`](sgfs_gtls::GtlsHandshake) machine that handshake is
/// driven inline on the calling thread, never on a transient one.
///
/// Alongside the stream, the reconnector returns the [`PipeWatch`] of the
/// *raw transport* underneath it, so the event-driven pipeline can route
/// the replacement channel's readiness into the same I/O-pool token the
/// dead channel used.
pub trait Reconnector: Send {
    /// Dial a fresh upstream. `ConnectionRefused` (and other transient
    /// kinds) are retried under the session's `RetryPolicy`; fatal kinds
    /// abort recovery.
    fn reconnect(&mut self, attempt: u32) -> io::Result<(Upstream, PipeWatch)>;
}

impl<F> Reconnector for F
where
    F: FnMut(u32) -> io::Result<(Upstream, PipeWatch)> + Send,
{
    fn reconnect(&mut self, attempt: u32) -> io::Result<(Upstream, PipeWatch)> {
        self(attempt)
    }
}

/// Whether an encoded NFSv3 call record may be retransmitted on a fresh
/// channel without risking duplicate side effects.
///
/// Pure reads and probes are always safe. WRITE is safe only when
/// `stable == UNSTABLE`: the data is not durable until a COMMIT whose
/// verifier is checked, so a duplicate arrival is absorbed by the
/// crash-recovery protocol. Everything that mutates the namespace
/// (CREATE/REMOVE/RENAME/…), stable WRITEs, SETATTR and COMMIT are not
/// replayed — a lost reply leaves us unable to tell whether the first
/// transmission executed.
pub fn replayable(record: &[u8]) -> bool {
    let mut dec = XdrDecoder::new(record);
    let Ok(header) = CallHeader::decode(&mut dec) else { return false };
    if header.prog != NFS_PROGRAM || header.vers != NFS_VERSION {
        return false;
    }
    match header.proc {
        procnum::NULL
        | procnum::GETATTR
        | procnum::LOOKUP
        | procnum::ACCESS
        | procnum::READLINK
        | procnum::READ
        | procnum::READDIR
        | procnum::READDIRPLUS
        | procnum::FSSTAT
        | procnum::FSINFO
        | procnum::PATHCONF => true,
        procnum::WRITE => matches!(
            WriteArgs::decode(&mut dec),
            Ok(args) if args.stable == StableHow::Unstable
        ),
        _ => false,
    }
}

/// Whether an accepted NFS reply carries `NFS3ERR_JUKEBOX` as its status.
///
/// JUKEBOX is a different retry axis from [`replayable`]: a lost reply
/// leaves the client unsure whether the call executed, so only idempotent
/// calls may be retransmitted — but JUKEBOX is the server *telling* the
/// client the call was never executed (it was shed at admission before
/// dispatch). A jukeboxed call is therefore safe to re-send verbatim,
/// non-idempotent procedures included; the caller should back off first,
/// since the status means the server is deliberately pushing load away.
///
/// Every NFSv3 result struct leads with its `nfsstat3`, so the check is
/// uniform: an RPC-accepted, RPC-successful reply whose first result word
/// is 10008. NULL replies have an empty body and never match.
pub fn is_jukebox_reply(reply: &[u8]) -> bool {
    let mut dec = XdrDecoder::new(reply);
    let Ok(ReplyHeader::Accepted { stat: AcceptStat::Success, .. }) = ReplyHeader::decode(&mut dec)
    else {
        return false;
    };
    matches!(NfsStat3::decode(&mut dec), Ok(NfsStat3::Jukebox))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgfs_nfs3::types::Fh3;
    use sgfs_oncrpc::{AuthSysParams, OpaqueAuth};
    use sgfs_xdr::{XdrEncode, XdrEncoder};

    fn record(proc: u32, body: impl FnOnce(&mut XdrEncoder)) -> Vec<u8> {
        let header = CallHeader {
            xid: 7,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc,
            cred: OpaqueAuth::sys(&AuthSysParams::new("host", 1001, 1001)),
            verf: OpaqueAuth::none(),
        };
        let mut enc = XdrEncoder::with_capacity(128);
        header.encode(&mut enc);
        body(&mut enc);
        enc.into_bytes()
    }

    fn write_record(stable: StableHow) -> Vec<u8> {
        record(procnum::WRITE, |enc| {
            WriteArgs {
                file: Fh3::from_ino(1, 42),
                offset: 0,
                stable,
                data: vec![0u8; 16],
            }
            .encode(enc)
        })
    }

    #[test]
    fn reads_and_probes_are_replayable() {
        for proc in [
            procnum::NULL,
            procnum::GETATTR,
            procnum::LOOKUP,
            procnum::ACCESS,
            procnum::READLINK,
            procnum::READ,
            procnum::READDIR,
            procnum::READDIRPLUS,
            procnum::FSSTAT,
            procnum::FSINFO,
            procnum::PATHCONF,
        ] {
            assert!(replayable(&record(proc, |_| ())), "proc {proc}");
        }
    }

    #[test]
    fn mutations_are_not_replayable() {
        for proc in [
            procnum::SETATTR,
            procnum::CREATE,
            procnum::MKDIR,
            procnum::SYMLINK,
            procnum::MKNOD,
            procnum::REMOVE,
            procnum::RMDIR,
            procnum::RENAME,
            procnum::LINK,
            procnum::COMMIT,
        ] {
            assert!(!replayable(&record(proc, |_| ())), "proc {proc}");
        }
    }

    #[test]
    fn only_unstable_writes_are_replayable() {
        assert!(replayable(&write_record(StableHow::Unstable)));
        assert!(!replayable(&write_record(StableHow::DataSync)));
        assert!(!replayable(&write_record(StableHow::FileSync)));
    }

    fn reply_with_status(status: NfsStat3) -> Vec<u8> {
        let mut enc = XdrEncoder::with_capacity(64);
        ReplyHeader::success(9).encode(&mut enc);
        status.encode(&mut enc);
        enc.into_bytes()
    }

    #[test]
    fn jukebox_replies_are_detected() {
        assert!(is_jukebox_reply(&reply_with_status(NfsStat3::Jukebox)));
        assert!(!is_jukebox_reply(&reply_with_status(NfsStat3::Ok)));
        assert!(!is_jukebox_reply(&reply_with_status(NfsStat3::Acces)));
    }

    #[test]
    fn bodyless_or_garbled_replies_are_not_jukebox() {
        // NULL replies carry no result body at all.
        let null_reply = ReplyHeader::success(9).to_xdr_bytes();
        assert!(!is_jukebox_reply(&null_reply));
        assert!(!is_jukebox_reply(b"not an rpc reply"));
        assert!(!is_jukebox_reply(&[]));
    }

    #[test]
    fn foreign_or_garbled_records_are_not_replayable() {
        assert!(!replayable(b"not an rpc record"));
        assert!(!replayable(&[]));
        let mut wrong_prog = record(procnum::GETATTR, |_| ());
        wrong_prog[4 + 4 + 4 + 3] ^= 1; // flip a program-number bit
        assert!(!replayable(&wrong_prog));
    }
}
