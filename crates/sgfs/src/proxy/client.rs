//! The client-side SGFS proxy.
//!
//! Exposes plain NFS RPC to the local kernel client and forwards it over
//! the session's (optionally GTLS-protected) channel. Its distinguishing
//! feature is the per-session cache (§6.1 "aggressive disk caching of
//! attributes, access permissions and data"):
//!
//! * **attributes / access / lookup / readdir** results are cached in
//!   memory for the session (the session is single-user, so no
//!   cross-client coherence is needed — the paper defers shared-session
//!   consistency to application-tailored protocols);
//! * **data blocks** are cached in a [`BlockStore`] (on local disk for the
//!   WAN configuration, in memory for the SFS-style daemon);
//! * **writes are write-back**: WRITE is absorbed into the dirty cache
//!   and acknowledged immediately; dirty blocks flush on COMMIT and at
//!   session teardown, and blocks of files removed before flushing are
//!   simply dropped — which is exactly how the paper's Seismic run avoids
//!   shipping temporary files across the WAN;
//! * the upstream channel is **pipelined**: a [`Pipeline`] owns the
//!   connection and keeps up to a window of calls in flight, demultiplexing
//!   replies by xid — the write-back flush submits every dirty block
//!   before waiting, and the **read-ahead** worker shares the same
//!   channel instead of a second connection (and second handshake),
//!   reproducing SFS's asynchronous-RPC advantage.

use crate::config::{CacheMode, HopCost, SessionConfig};
use crate::proxy::blockstore::{BlockStore, DiskStore, MemStore};
use crate::proxy::pipeline::Pipeline;
use crate::proxy::stripe::{StripeMap, StripeSet};
use crate::stats::ProxyStats;
use parking_lot::Mutex;
use sgfs_gtls::GtlsStream;
use sgfs_nfs3::proc::{procnum, *};
use sgfs_nfs3::types::*;
use sgfs_nfs3::{NFS_PROGRAM, NFS_VERSION};
use sgfs_oncrpc::record::{read_record, write_record};
use sgfs_oncrpc::{AcceptStat, CallHeader, OpaqueAuth, ReplyHeader};
use sgfs_net::{BoxStream, CrashInjector, CrashPoint};
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::sync::Arc;

/// The channel to the server-side proxy.
pub enum Upstream {
    /// Unprotected (the `gfs` baseline and the tunneled `gfs-ssh` path,
    /// where protection lives in the tunnel).
    Plain(BoxStream),
    /// GTLS-protected (all `sgfs-*` configurations and the SFS analog).
    Tls(Box<GtlsStream>),
}

impl Upstream {
    pub(crate) fn stream(&mut self) -> &mut dyn sgfs_net::Stream {
        match self {
            Upstream::Plain(s) => s,
            Upstream::Tls(t) => t.as_mut(),
        }
    }
}

/// Prefetched blocks shared with the read-ahead worker.
type PrefetchMap = Arc<Mutex<HashMap<(Fh3, u64), Vec<u8>>>>;

/// Blocks a prefetch has been queued or sent for but that have not landed
/// yet. Without this guard every foreground read re-enqueues the whole
/// read-ahead horizon and the worker keeps re-fetching in-flight blocks,
/// wasting the pipeline window on duplicates.
type PrefetchInflight = Arc<Mutex<HashSet<(Fh3, u64)>>>;

/// One stripe-set member as handed to [`ClientProxy::with_stripe`]: the
/// established upstream channel, the watch over its raw transport, and an
/// optional reconnector for per-member failover.
pub type StripeUpstream =
    (Upstream, sgfs_net::PipeWatch, Option<Box<dyn crate::proxy::retry::Reconnector>>);

struct MetaCache {
    attrs: HashMap<Fh3, Fattr3>,
    /// Per (file, uid): (mask of bits ever checked upstream, granted
    /// bits within that mask). A request is only served from cache when
    /// every bit it asks about has actually been checked — granted bits
    /// say nothing about bits the server was never asked to evaluate.
    access: HashMap<(Fh3, u32), (u32, u32)>,
    lookups: HashMap<(Fh3, String), (Fh3, Option<Fattr3>)>,
    /// Raw READDIR/READDIRPLUS result bodies keyed (dir, cookie, plus?).
    readdirs: HashMap<(Fh3, u64, bool), Vec<u8>>,
    hits: u64,
    misses: u64,
}

impl MetaCache {
    fn new() -> Self {
        Self {
            attrs: HashMap::new(),
            access: HashMap::new(),
            lookups: HashMap::new(),
            readdirs: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn invalidate_dir(&mut self, dir: &Fh3) {
        self.readdirs.retain(|(d, _, _), _| d != dir);
        self.attrs.remove(dir);
    }

    fn invalidate_fh(&mut self, fh: &Fh3) {
        self.attrs.remove(fh);
        self.access.retain(|(f, _), _| f != fh);
        self.lookups.retain(|_, (f, _)| f != fh);
    }
}

/// The client-side proxy for one SGFS session.
pub struct ClientProxy {
    /// The pipelined upstream channel (shared with the read-ahead worker).
    pipeline: Pipeline,
    store: Option<Box<dyn BlockStore>>,
    meta_enabled: bool,
    meta: MetaCache,
    stats: Arc<ProxyStats>,
    next_xid: u32,
    client_cred: OpaqueAuth,
    /// Monotonic synthesized mtime for locally acknowledged writes.
    synth_mtime: u64,
    write_verf: u64,
    readahead: u32,
    prefetched: PrefetchMap,
    prefetch_inflight: PrefetchInflight,
    prefetch_tx: Option<mpsc::Sender<PrefetchReq>>,
    /// AIMD read-ahead horizon, shrunk under server JUKEBOX pushback.
    prefetch_gov: Arc<PrefetchGovernor>,
    /// Set by a controller to request key renegotiation between requests.
    rekey_requested: Arc<std::sync::atomic::AtomicBool>,
    /// Virtual per-hop forwarding cost, charged to the testbed clock.
    clock: Option<Arc<sgfs_net::SimClock>>,
    hop: HopCost,
    /// Upstream-forwarded call counts per procedure (diagnostics).
    forwarded: HashMap<u32, u64>,
    /// Kill-point injector for the crash harness (None in production).
    crash: Option<Arc<CrashInjector>>,
    /// Multi-server placement: the stripe set spanning every upstream
    /// member (member 0 is also `pipeline`). `None` = single upstream.
    stripe: Option<StripeSet>,
    /// Per-member blocks a down member missed while out of the write
    /// set; [`resync_member`](Self::resync_member) replays them from the
    /// store before the member rejoins.
    missed: Vec<HashSet<(Fh3, u64)>>,
    /// Per-member reconnectors, shared with the member pipelines, so a
    /// re-sync can dial a rejoined host afresh after the old pipeline
    /// exhausted its reconnect budget and went terminal.
    redial: Vec<Option<SharedReconnector>>,
    /// The client I/O pool member pipelines multiplex onto (needed to
    /// rebuild a member channel at re-sync).
    pool: Option<Arc<sgfs_oncrpc::ClientIoPool>>,
    /// Pipeline parameters retained for member-channel rebuilds.
    window: u32,
    rekey_every: Option<u64>,
    retry: crate::config::RetryPolicy,
}

/// A reconnector both a member pipeline and the proxy's re-sync path can
/// dial through.
type SharedReconnector = Arc<Mutex<Box<dyn crate::proxy::retry::Reconnector>>>;

/// Adapt a shared reconnector into the owned form a pipeline takes.
fn dial_via(shared: &SharedReconnector) -> Box<dyn crate::proxy::retry::Reconnector> {
    let shared = shared.clone();
    Box::new(move |attempt: u32| {
        shared.lock().reconnect(attempt)
    })
}

struct PrefetchReq {
    fh: Fh3,
    offset: u64,
    count: u32,
    cred: OpaqueAuth,
}

/// AIMD governor of the read-ahead horizon, shared between the demand
/// path (which decides how far ahead to queue) and the read-ahead worker
/// (which sees the server's admission verdicts). A JUKEBOX'd prefetch
/// halves the horizon — speculative traffic is the first load an
/// overloaded server wants gone, and shrinking it is the client's half of
/// the backpressure contract — while a run of clean prefetches creeps the
/// horizon back up to the configured depth, one block per
/// [`CLEAN_RUN`](Self::CLEAN_RUN) successes.
struct PrefetchGovernor {
    horizon: std::sync::atomic::AtomicU32,
    /// Configured read-ahead depth: the additive-increase ceiling.
    cap: u32,
    /// Clean prefetches since the last pushback.
    clean: std::sync::atomic::AtomicU32,
}

impl PrefetchGovernor {
    /// Clean prefetches required to re-grow the horizon by one block.
    const CLEAN_RUN: u32 = 16;

    fn new(cap: u32) -> Arc<Self> {
        Arc::new(Self {
            horizon: std::sync::atomic::AtomicU32::new(cap),
            cap,
            clean: std::sync::atomic::AtomicU32::new(0),
        })
    }

    /// Blocks of read-ahead the demand path may currently queue.
    fn current(&self) -> u32 {
        self.horizon.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Multiplicative decrease: the server shed a prefetch READ.
    fn on_jukebox(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        self.clean.store(0, Relaxed);
        let h = self.horizon.load(Relaxed);
        self.horizon.store((h / 2).max(1), Relaxed);
    }

    /// Additive increase after a sustained clean run.
    fn on_clean(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        if self.clean.fetch_add(1, Relaxed) + 1 < Self::CLEAN_RUN {
            return;
        }
        self.clean.store(0, Relaxed);
        let h = self.horizon.load(Relaxed);
        if h < self.cap {
            self.horizon.store(h + 1, Relaxed);
        }
    }
}

/// External handle for dynamic reconfiguration of a live proxy.
#[derive(Clone)]
pub struct ClientProxyController {
    rekey_requested: Arc<std::sync::atomic::AtomicBool>,
}

impl ClientProxyController {
    /// Request an SSL renegotiation before the next forwarded request —
    /// the paper's "force a SSL-renegotiation and refresh the session key".
    pub fn request_rekey(&self) {
        self.rekey_requested.store(true, std::sync::atomic::Ordering::Release);
    }
}

impl ClientProxy {
    /// Build a proxy over an established upstream channel, configured per
    /// the session's [`CacheMode`] and read-ahead depth. `watch` must
    /// observe the raw transport under `upstream`. Without a
    /// reconnector, any upstream transport error remains terminal.
    pub fn new(
        upstream: Upstream,
        watch: sgfs_net::PipeWatch,
        config: &SessionConfig,
    ) -> std::io::Result<Self> {
        Self::with_reconnector(upstream, watch, config, None)
    }

    /// Like [`new`](Self::new), but able to survive transient upstream
    /// failures: the pipeline re-dials through `reconnector` under
    /// `config.retry` and replays idempotent in-flight calls.
    pub fn with_reconnector(
        upstream: Upstream,
        watch: sgfs_net::PipeWatch,
        config: &SessionConfig,
        reconnector: Option<Box<dyn crate::proxy::retry::Reconnector>>,
    ) -> std::io::Result<Self> {
        Self::with_stripe(vec![(upstream, watch, reconnector)], config)
    }

    /// Build a proxy placed across several upstream members per
    /// `config.stripe`: file blocks stripe across the members by block
    /// index, dirty blocks replicate to every mapped member, and each
    /// member fails over independently through its own reconnector.
    ///
    /// With a single upstream (and no stripe policy) this degenerates to
    /// the classic session. Every member's reader is multiplexed onto
    /// one client I/O pool — `config.client_pool` if set, otherwise one
    /// private single-worker pool shared by all members — so a wider
    /// stripe adds **zero** reader threads.
    pub fn with_stripe(
        upstreams: Vec<StripeUpstream>,
        config: &SessionConfig,
    ) -> std::io::Result<Self> {
        assert!(!upstreams.is_empty(), "a session needs at least one upstream");
        let stats = ProxyStats::new();
        if let Some(obs) = &config.obs {
            stats.set_obs(obs.clone());
        }
        let (store, meta_enabled): (Option<Box<dyn BlockStore>>, bool) = match &config.cache {
            CacheMode::None => (None, false),
            CacheMode::MemoryMeta => {
                // SFS-style: metadata aggressively cached; data blocks only
                // via read-ahead, held in a bounded memory store.
                (Some(Box::new(MemStore::new(64 * 1024 * 1024))), true)
            }
            CacheMode::Disk { dir } => {
                // Crash-consistent disk cache: recover the previous
                // incarnation's journal (re-marking survivors dirty)
                // before serving the first call, then journal new state.
                let (store, _report) = DiskStore::with_durability(
                    dir.clone(),
                    config.durability,
                    Some(stats.clone()),
                    config.obs.clone(),
                    config.crash.clone(),
                )?;
                (Some(Box::new(store)), true)
            }
        };
        let striped = upstreams.len() > 1;
        let pool = match (&config.client_pool, striped) {
            (Some(pool), _) => Some(pool.clone()),
            (None, true) => Some(sgfs_oncrpc::ClientIoPool::new(1)),
            (None, false) => None,
        };
        let mut pipelines = Vec::with_capacity(upstreams.len());
        let mut redial = Vec::with_capacity(upstreams.len());
        for (mut upstream, watch, reconnector) in upstreams {
            // Keep a handle on the reconnector: the pipeline dials
            // through it for transient blips, and `resync_member` dials
            // through it again when a rejoined host needs a fresh
            // channel after the pipeline's budget ran out.
            let shared = reconnector.map(|r| Arc::new(Mutex::new(r)) as SharedReconnector);
            let reconnector = shared.as_ref().map(dial_via);
            redial.push(shared);
            if let Upstream::Tls(t) = &mut upstream {
                // Attribute record crypto to this proxy's CPU account before
                // the channel moves onto the client I/O pool. The stream's
                // own auto-rekey stays off: a transparent mid-window
                // renegotiation would interleave handshake records with
                // in-flight DATA replies, so the pipeline tracks the
                // rekey-every threshold itself and rekeys at quiesce points.
                t.busy_counter = Some(stats.busy_counter());
                t.obs = stats.obs().cloned();
            }
            let pipeline = match &pool {
                Some(pool) => Pipeline::with_recovery_on(
                    pool,
                    upstream,
                    watch,
                    config.window,
                    config.rekey_every_records,
                    stats.clone(),
                    reconnector,
                    config.retry,
                )?,
                None => Pipeline::with_recovery(
                    upstream,
                    watch,
                    config.window,
                    config.rekey_every_records,
                    stats.clone(),
                    reconnector,
                    config.retry,
                ),
            };
            pipelines.push(pipeline);
        }
        let stripe = if striped {
            let policy = config.stripe.ok_or_else(|| {
                std::io::Error::other("multiple upstreams require a stripe policy")
            })?;
            let map = StripeMap::new(policy);
            if map.width() as usize != pipelines.len() {
                return Err(std::io::Error::other(format!(
                    "stripe width {} != upstream count {}",
                    map.width(),
                    pipelines.len()
                )));
            }
            Some(StripeSet::new(map, pipelines.clone()))
        } else {
            None
        };
        let missed = vec![HashSet::new(); pipelines.len()];
        let window = config.window;
        let rekey_every = config.rekey_every_records;
        let retry = config.retry;
        Ok(Self {
            pipeline: pipelines.swap_remove(0),
            store,
            meta_enabled,
            meta: MetaCache::new(),
            stats,
            next_xid: 0x7000_0000,
            client_cred: OpaqueAuth::none(),
            synth_mtime: 1,
            write_verf: rand::random(),
            readahead: config.readahead,
            prefetched: Arc::new(Mutex::new(HashMap::new())),
            prefetch_inflight: Arc::new(Mutex::new(HashSet::new())),
            prefetch_tx: None,
            prefetch_gov: PrefetchGovernor::new(config.readahead),
            rekey_requested: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            clock: None,
            hop: HopCost::free(),
            forwarded: HashMap::new(),
            crash: config.crash.clone(),
            stripe,
            missed,
            redial,
            pool,
            window,
            rekey_every,
            retry,
        })
    }

    /// The stripe set, when this session spans several upstreams.
    pub fn stripe(&self) -> Option<&StripeSet> {
        self.stripe.as_ref()
    }

    /// Blocks member `m` missed while out of the write set (pending
    /// re-sync).
    pub fn missed_blocks(&self, m: usize) -> usize {
        self.missed.get(m).map(|s| s.len()).unwrap_or(0)
    }

    /// Upstream-forwarded call counts per NFS procedure.
    pub fn forwarded_by_proc(&self) -> &HashMap<u32, u64> {
        &self.forwarded
    }

    /// Enable per-hop virtual cost accounting on `clock`.
    pub fn set_hop_cost(&mut self, clock: Arc<sgfs_net::SimClock>, hop: HopCost) {
        self.clock = Some(clock);
        self.hop = hop;
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &Arc<ProxyStats> {
        &self.stats
    }

    /// Metadata-cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.meta.hits, self.meta.misses)
    }

    /// Current AIMD read-ahead horizon in blocks (≤ the configured
    /// depth; shrinks under server JUKEBOX pushback).
    pub fn prefetch_horizon(&self) -> u32 {
        self.prefetch_gov.current().min(self.readahead)
    }

    /// A controller for dynamic reconfiguration of the running proxy.
    pub fn controller(&self) -> ClientProxyController {
        ClientProxyController { rekey_requested: self.rekey_requested.clone() }
    }

    /// Number of completed handshakes on the secure channel (1 + rekeys).
    pub fn handshake_count(&self) -> Option<u64> {
        self.pipeline.handshake_count()
    }

    /// The pipelined upstream channel (e.g. for split-phase callers).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Attach a read-ahead worker that fetches through the shared
    /// pipelined channel — its READs fill the in-flight window alongside
    /// demand traffic, with no second connection (or second handshake).
    ///
    /// The worker runs until the proxy is dropped; fetched blocks land in
    /// a shared map the main loop consults before going upstream.
    pub fn start_readahead(&mut self) {
        if self.readahead == 0 {
            return;
        }
        let (tx, rx) = mpsc::channel::<PrefetchReq>();
        let map = self.prefetched.clone();
        let inflight = self.prefetch_inflight.clone();
        let gov = self.prefetch_gov.clone();
        if let Some(set) = self.stripe.clone() {
            // Striped sessions: one worker thread (never one per
            // upstream) that drains the queue, submits each READ
            // split-phase into its mapped member's pipeline, and only
            // then waits — so one round of read-ahead fans out across
            // every server of the stripe in parallel.
            let stats = self.stats.clone();
            std::thread::spawn(move || {
                let mut xid = 0x7800_0000u32;
                while let Ok(first) = rx.recv() {
                    let mut reqs = vec![first];
                    while reqs.len() < 32 {
                        match rx.try_recv() {
                            Ok(r) => reqs.push(r),
                            Err(_) => break,
                        }
                    }
                    let mut pending = Vec::new();
                    for req in reqs {
                        let key = (req.fh.clone(), req.offset);
                        if map.lock().contains_key(&key) {
                            inflight.lock().remove(&key);
                            continue;
                        }
                        let live = set.live_members_of_block(set.map().block_of(req.offset));
                        let Some(&m) = live.first() else {
                            inflight.lock().remove(&key);
                            continue;
                        };
                        xid = xid.wrapping_add(1);
                        // Clamp at the stripe-block boundary: past it the
                        // member serves its holes, not the file.
                        let bs = set.map().block_size() as u64;
                        let count =
                            (req.count as u64).min((req.offset / bs + 1) * bs - req.offset);
                        let args = ReadArgs {
                            file: req.fh.clone(),
                            offset: req.offset,
                            count: count as u32,
                        };
                        let record = encode_call(xid, procnum::READ, &req.cred, &args);
                        pending.push((key, m, set.member(m).submit(record)));
                    }
                    for (key, m, reply) in pending {
                        match reply.wait() {
                            Ok(reply) => {
                                // Cache only confirmed data. A shed
                                // (JUKEBOX) prefetch is simply dropped —
                                // speculative work is never retried, it
                                // shrinks the horizon instead; the demand
                                // path re-fetches the block if it is
                                // actually needed.
                                if let Some(body) = success_body(&reply) {
                                    if let Ok(res) = ReadRes::from_xdr_bytes(body) {
                                        match res.status {
                                            NfsStat3::Ok => {
                                                gov.on_clean();
                                                map.lock().insert(key.clone(), res.data);
                                            }
                                            NfsStat3::Jukebox => gov.on_jukebox(),
                                            _ => {}
                                        }
                                    }
                                }
                            }
                            Err(_) => fail_member_via(&stats, &set, m),
                        }
                        inflight.lock().remove(&key);
                    }
                }
            });
        } else {
            let pipeline = self.pipeline.clone();
            std::thread::spawn(move || {
                let mut xid = 0x7800_0000u32;
                for req in rx {
                    let key = (req.fh.clone(), req.offset);
                    if map.lock().contains_key(&key) {
                        inflight.lock().remove(&key);
                        continue;
                    }
                    xid = xid.wrapping_add(1);
                    let args =
                        ReadArgs { file: req.fh.clone(), offset: req.offset, count: req.count };
                    let res: Result<ReadRes, ()> =
                        call_via(&pipeline, xid, procnum::READ, &req.cred, &args);
                    // As in the striped worker: cache confirmed data only,
                    // drop shed prefetches and shrink the horizon instead
                    // of retrying speculative work.
                    if let Ok(res) = res {
                        match res.status {
                            NfsStat3::Ok => {
                                gov.on_clean();
                                map.lock().insert(key.clone(), res.data);
                            }
                            NfsStat3::Jukebox => gov.on_jukebox(),
                            _ => {}
                        }
                    }
                    inflight.lock().remove(&key);
                }
            });
        }
        self.prefetch_tx = Some(tx);
    }

    /// Serve one downstream connection until EOF, then return `self` so
    /// the session can flush the write-back cache and read final stats.
    pub fn run(mut self, mut downstream: BoxStream) -> (Self, std::io::Result<()>) {
        loop {
            let record = match read_record(&mut downstream) {
                Ok(Some(r)) => r,
                Ok(None) => return (self, Ok(())),
                Err(e) => return (self, Err(e)),
            };
            if self.rekey_requested.swap(false, std::sync::atomic::Ordering::AcqRel) {
                if let Err(e) = self.pipeline.rekey() {
                    return (self, Err(e));
                }
            }
            let stats = self.stats.clone();
            let proc_no = sgfs_obs::peek_proc(&record);
            let t0 = std::time::Instant::now();
            let reply = match stats.track(|| self.process(&record)) {
                Ok(r) => r,
                Err(e) => return (self, Err(e)),
            };
            // End-to-end latency of this downstream request (cache work,
            // upstream round trips, flushes — everything), per procedure.
            if let Some(obs) = stats.obs() {
                obs.record_proc(proc_no, t0.elapsed().as_nanos() as u64);
            }
            // The kernel-client ↔ proxy loopback hop (request + reply).
            if let Some(clock) = &self.clock {
                clock.advance(self.hop.of(record.len()) + self.hop.of(reply.len()));
            }
            if let Err(e) = write_record(&mut downstream, &reply) {
                return (self, Err(e));
            }
        }
    }

    fn process(&mut self, record: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut dec = XdrDecoder::new(record);
        let header = match CallHeader::decode(&mut dec) {
            Ok(h) => h,
            Err(_) => return Ok(accept_error(0, AcceptStat::GarbageArgs)),
        };
        if header.prog != NFS_PROGRAM || header.vers != NFS_VERSION {
            return Ok(accept_error(header.xid, AcceptStat::ProgUnavail));
        }
        self.client_cred = header.cred.clone();
        let args = record[dec.position()..].to_vec();

        if !self.meta_enabled {
            return self.forward(record, header.proc, &args);
        }

        match header.proc {
            procnum::GETATTR => {
                if let Ok(fh) = Fh3::from_xdr_bytes(&args) {
                    if let Some(a) = self.meta.attrs.get(&fh) {
                        self.meta.hits += 1;
                        trace_cache(&self.stats, true, header.xid, header.proc);
                        let res = GetAttrRes { status: NfsStat3::Ok, attr: Some(a.clone()) };
                        return Ok(encode_reply(header.xid, &res));
                    }
                    self.meta.misses += 1;
                    trace_cache(&self.stats, false, header.xid, header.proc);
                }
                self.forward(record, header.proc, &args)
            }
            procnum::ACCESS => {
                if let Ok(a) = AccessArgs::from_xdr_bytes(&args) {
                    let uid = header.cred.as_sys().map(|s| s.uid).unwrap_or(u32::MAX);
                    match self.meta.access.get(&(a.object.clone(), uid)) {
                        // Cache hit only when every requested bit has been
                        // checked upstream; unchecked bits fall through to
                        // the server instead of reading as denied.
                        Some(&(checked, granted)) if a.access & !checked == 0 => {
                            self.meta.hits += 1;
                            trace_cache(&self.stats, true, header.xid, header.proc);
                            let res = AccessRes {
                                status: NfsStat3::Ok,
                                obj_attr: self.meta.attrs.get(&a.object).cloned(),
                                access: granted & a.access,
                            };
                            return Ok(encode_reply(header.xid, &res));
                        }
                        _ => {
                            self.meta.misses += 1;
                            trace_cache(&self.stats, false, header.xid, header.proc);
                        }
                    }
                }
                self.forward(record, header.proc, &args)
            }
            procnum::LOOKUP => {
                if let Ok(a) = DirOpArgs3::from_xdr_bytes(&args) {
                    let key = (a.dir.clone(), a.name.clone());
                    if let Some((fh, attr)) = self.meta.lookups.get(&key) {
                        self.meta.hits += 1;
                        trace_cache(&self.stats, true, header.xid, header.proc);
                        // The tuple's attr is a snapshot from lookup time;
                        // the live attr entry tracks absorbed writes (size,
                        // mtime) and must win when present.
                        let live = self.meta.attrs.get(fh).cloned();
                        let res = LookupRes {
                            status: NfsStat3::Ok,
                            object: Some(fh.clone()),
                            obj_attr: live.or_else(|| attr.clone()),
                            dir_attr: None,
                        };
                        return Ok(encode_reply(header.xid, &res));
                    }
                    self.meta.misses += 1;
                    trace_cache(&self.stats, false, header.xid, header.proc);
                }
                let reply = self.forward(record, header.proc, &args)?;
                // A file with unflushed write-back data: the server's
                // attributes are stale (it has not seen the data yet) —
                // substitute the proxy's authoritative attributes.
                if let Some(body) = success_body(&reply) {
                    if let Ok(res) = LookupRes::from_xdr_bytes(body) {
                        let fh = res.object.clone();
                        if let Some(fh) = fh {
                            let dirty = self
                                .store
                                .as_ref()
                                .map(|s| !s.dirty_blocks_of(&fh).is_empty())
                                .unwrap_or(false);
                            if dirty {
                                if let Some(ours) = self.meta.attrs.get(&fh).cloned() {
                                    let patched =
                                        LookupRes { obj_attr: Some(ours.clone()), ..res };
                                    if let Ok(da) = DirOpArgs3::from_xdr_bytes(&args) {
                                        self.meta.lookups.insert(
                                            (da.dir, da.name),
                                            (fh.clone(), Some(ours)),
                                        );
                                    }
                                    return Ok(encode_reply(header.xid, &patched));
                                }
                            }
                        }
                    }
                }
                Ok(reply)
            }
            procnum::READ => self.handle_read(header.xid, record, &args),
            procnum::WRITE => self.handle_write(header.xid, record, &args),
            procnum::COMMIT => {
                // Write-back: the disk cache *is* the commit target; dirty
                // blocks stay local until session teardown (or memory
                // pressure), which is where the paper's end-of-run
                // write-back time comes from. Only files we know nothing
                // about fall through to the server.
                if self.store.is_some() {
                    if let Ok(a) = CommitArgs::from_xdr_bytes(&args) {
                        if let Some(attr) = self.meta.attrs.get(&a.file) {
                            let res = CommitRes {
                                status: NfsStat3::Ok,
                                wcc: WccData { before: None, after: Some(attr.clone()) },
                                verf: self.write_verf,
                            };
                            return Ok(encode_reply(header.xid, &res));
                        }
                    }
                }
                self.forward(record, header.proc, &args)
            }
            procnum::SETATTR => {
                if let Ok(a) = SetAttrArgs::from_xdr_bytes(&args) {
                    // Truncation invalidates cached blocks; flush dirty
                    // data first so nothing is lost.
                    if a.new_attributes.size.is_some() {
                        self.flush_file(&a.object)?;
                        if let Some(store) = &mut self.store {
                            store.drop_file(&a.object);
                        }
                    }
                    self.meta.invalidate_fh(&a.object);
                }
                self.forward(record, header.proc, &args)
            }
            procnum::CREATE | procnum::MKDIR | procnum::SYMLINK => {
                let dir = dir_of_create(header.proc, &args);
                let reply = self.forward(record, header.proc, &args)?;
                if let Some(dir) = dir {
                    self.meta.invalidate_dir(&dir);
                    // The reply's wcc data carries the directory's fresh
                    // attributes — keep them cached so the kernel client's
                    // next revalidation is served locally.
                    if let Some(body) = success_body(&reply) {
                        if let Ok(res) = CreateRes::from_xdr_bytes(body) {
                            if let Some(a) = res.dir_wcc.after {
                                self.meta.attrs.insert(dir, a);
                            }
                        }
                    }
                }
                self.snoop_create(header.proc, &args, &reply);
                Ok(reply)
            }
            procnum::REMOVE | procnum::RMDIR => {
                if let Ok(a) = DirOpArgs3::from_xdr_bytes(&args) {
                    // The paper's temporary-file optimization: dirty
                    // blocks of a deleted file are dropped, never flushed.
                    let target =
                        self.meta.lookups.get(&(a.dir.clone(), a.name.clone())).map(|(f, _)| f.clone());
                    if let Some(fh) = target {
                        if let Some(store) = &mut self.store {
                            store.drop_file(&fh);
                        }
                        self.meta.invalidate_fh(&fh);
                        self.prefetched.lock().retain(|(f, _), _| f != &fh);
                    }
                    self.meta.lookups.remove(&(a.dir.clone(), a.name.clone()));
                    self.meta.invalidate_dir(&a.dir);
                    let reply = self.forward(record, header.proc, &args)?;
                    if let Some(body) = success_body(&reply) {
                        if let Ok(res) = WccRes::from_xdr_bytes(body) {
                            if let Some(attr) = res.wcc.after {
                                self.meta.attrs.insert(a.dir, attr);
                            }
                        }
                    }
                    return Ok(reply);
                }
                self.forward(record, header.proc, &args)
            }
            procnum::RENAME => {
                if let Ok(a) = RenameArgs::from_xdr_bytes(&args) {
                    self.meta.lookups.remove(&(a.from.dir.clone(), a.from.name.clone()));
                    self.meta.lookups.remove(&(a.to.dir.clone(), a.to.name.clone()));
                    self.meta.invalidate_dir(&a.from.dir);
                    self.meta.invalidate_dir(&a.to.dir);
                    let reply = self.forward(record, header.proc, &args)?;
                    if let Some(body) = success_body(&reply) {
                        if let Ok(res) = RenameRes::from_xdr_bytes(body) {
                            if let Some(attr) = res.from_wcc.after {
                                self.meta.attrs.insert(a.from.dir, attr);
                            }
                            if let Some(attr) = res.to_wcc.after {
                                self.meta.attrs.insert(a.to.dir, attr);
                            }
                        }
                    }
                    return Ok(reply);
                }
                self.forward(record, header.proc, &args)
            }
            procnum::READDIR | procnum::READDIRPLUS => {
                let plus = header.proc == procnum::READDIRPLUS;
                let key = match readdir_key(header.proc, &args) {
                    Some((dir, cookie)) => (dir, cookie, plus),
                    None => return self.forward(record, header.proc, &args),
                };
                if let Some(body) = self.meta.readdirs.get(&key) {
                    self.meta.hits += 1;
                    trace_cache(&self.stats, true, header.xid, header.proc);
                    let mut enc = XdrEncoder::with_capacity(body.len() + 32);
                    ReplyHeader::success(header.xid).encode(&mut enc);
                    let mut out = enc.into_bytes();
                    out.extend_from_slice(body);
                    return Ok(out);
                }
                self.meta.misses += 1;
                trace_cache(&self.stats, false, header.xid, header.proc);
                let reply = self.forward(record, header.proc, &args)?;
                if let Some(body) = success_body(&reply) {
                    self.meta.readdirs.insert(key, body.to_vec());
                    if plus {
                        if let Ok(res) = ReaddirPlusRes::from_xdr_bytes(body) {
                            for e in res.entries {
                                if let (Some(fh), Some(attr)) = (e.handle, e.attr) {
                                    self.meta.attrs.insert(fh, attr);
                                }
                            }
                        }
                    }
                }
                Ok(reply)
            }
            _ => self.forward(record, header.proc, &args),
        }
    }

    fn handle_read(&mut self, xid: u32, record: &[u8], args: &[u8]) -> std::io::Result<Vec<u8>> {
        let a = match ReadArgs::from_xdr_bytes(args) {
            Ok(a) => a,
            Err(_) => return self.forward(record, procnum::READ, args),
        };
        // 1. Block cache.
        if let Some(store) = &mut self.store {
            let key = (a.file.clone(), a.offset);
            let t_blk = std::time::Instant::now();
            if let Some(data) = store.get(&key) {
                if let Some(attr) = self.meta.attrs.get(&a.file) {
                    self.meta.hits += 1;
                    if let Some(obs) = self.stats.obs() {
                        obs.hop_timed(
                            sgfs_obs::Hop::BlockRead,
                            xid,
                            procnum::READ,
                            t_blk.elapsed().as_nanos() as u64,
                        );
                        obs.emit(sgfs_obs::Hop::CacheHit, xid, procnum::READ, data.len() as u64);
                    }
                    let take = data.len().min(a.count as usize);
                    let eof = a.offset + take as u64 >= attr.size;
                    let res = ReadRes {
                        status: NfsStat3::Ok,
                        attr: Some(attr.clone()),
                        count: take as u32,
                        eof,
                        data: data[..take].to_vec(),
                    };
                    self.maybe_prefetch(&a);
                    return Ok(encode_reply(xid, &res));
                }
            }
        }
        // 2. Read-ahead landing zone.
        let prefetched = self.prefetched.lock().remove(&(a.file.clone(), a.offset));
        if let Some(data) = prefetched {
            if let Some(attr) = self.meta.attrs.get(&a.file).cloned() {
                self.meta.hits += 1;
                self.stats.add_prefetch_hit();
                trace_cache(&self.stats, true, xid, procnum::READ);
                self.put_clean((a.file.clone(), a.offset), &data)?;
                let take = data.len().min(a.count as usize);
                let eof = a.offset + take as u64 >= attr.size;
                let res = ReadRes {
                    status: NfsStat3::Ok,
                    attr: Some(attr),
                    count: take as u32,
                    eof,
                    data: data[..take].to_vec(),
                };
                self.maybe_prefetch(&a);
                return Ok(encode_reply(xid, &res));
            }
        }
        self.meta.misses += 1;
        trace_cache(&self.stats, false, xid, procnum::READ);
        // 3. Upstream, after making dirty data visible.
        let has_dirty = self
            .store
            .as_ref()
            .map(|s| !s.dirty_blocks_of(&a.file).is_empty())
            .unwrap_or(false);
        if has_dirty {
            self.flush_file(&a.file)?;
        }
        let reply = self.forward(record, procnum::READ, args)?;
        if let Some(body) = success_body(&reply) {
            if let Ok(res) = ReadRes::from_xdr_bytes(body) {
                if let Some(attr) = &res.attr {
                    self.note_attr(&a.file, attr.clone());
                }
                self.put_clean((a.file.clone(), a.offset), &res.data)?;
            }
        }
        self.maybe_prefetch(&a);
        Ok(reply)
    }

    /// Cache a clean (server-sourced) block, best-effort: a genuine I/O
    /// error just leaves the block uncached (counted by the store); an
    /// injected crash propagates — a dead process serves nothing.
    fn put_clean(&mut self, key: (Fh3, u64), data: &[u8]) -> std::io::Result<()> {
        if let Some(store) = &mut self.store {
            if let Err(e) = store.put(key, data, false) {
                if sgfs_net::crash::is_crash(&e) {
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn maybe_prefetch(&mut self, a: &ReadArgs) {
        if self.readahead == 0 {
            return;
        }
        let Some(tx) = &self.prefetch_tx else { return };
        // The horizon is the AIMD-governed slice of the configured depth:
        // full under clear skies, halved each time the server sheds a
        // prefetch, growing back one block per clean run.
        let horizon = self.prefetch_gov.current().min(self.readahead);
        for i in 1..=horizon as u64 {
            let offset = a.offset + i * a.count as u64;
            let cached = self
                .store
                .as_ref()
                .map(|s| s.meta(&(a.file.clone(), offset)).is_some())
                .unwrap_or(false);
            let key = (a.file.clone(), offset);
            if cached || self.prefetched.lock().contains_key(&key) {
                continue;
            }
            if !self.prefetch_inflight.lock().insert(key) {
                continue; // already queued or on the wire
            }
            let _ = tx.send(PrefetchReq {
                fh: a.file.clone(),
                offset,
                count: a.count,
                cred: self.client_cred.clone(),
            });
        }
    }

    fn handle_write(&mut self, xid: u32, record: &[u8], args: &[u8]) -> std::io::Result<Vec<u8>> {
        if self.store.is_none() {
            return self.forward(record, procnum::WRITE, args);
        }
        let a = match WriteArgs::from_xdr_bytes(args) {
            Ok(a) => a,
            Err(_) => return self.forward(record, procnum::WRITE, args),
        };
        // Need attributes to fabricate a coherent reply.
        if !self.meta.attrs.contains_key(&a.file) {
            match self.call_upstream::<GetAttrRes>(procnum::GETATTR, &a.file) {
                Ok(res) if res.status == NfsStat3::Ok => {
                    self.meta.attrs.insert(a.file.clone(), res.attr.expect("OK has attrs"));
                }
                _ => return self.forward(record, procnum::WRITE, args),
            }
        }
        let t_blk = std::time::Instant::now();
        // In a striped session the cache key *is* the flush routing key:
        // one wsize-sized WRITE can span several stripe blocks, each
        // mapped to a different replica set, so it must be absorbed as
        // stripe-block-aligned extents or the flush would send the whole
        // extent to the first block's members only.
        let stripe_bs = self.stripe.as_ref().map(|s| s.map().block_size() as u64);
        let store = self.store.as_mut().expect("checked");
        let put = match stripe_bs {
            Some(bs) => {
                let mut res = Ok(());
                let mut off = a.offset;
                let mut data = &a.data[..];
                while !data.is_empty() {
                    let take = ((bs - off % bs) as usize).min(data.len());
                    res = store.put((a.file.clone(), off), &data[..take], true);
                    if res.is_err() {
                        break;
                    }
                    off += take as u64;
                    data = &data[take..];
                }
                res
            }
            None => store.put((a.file.clone(), a.offset), &a.data, true),
        };
        if let Err(e) = put {
            if sgfs_net::crash::is_crash(&e) {
                // The acknowledgement below is the durability promise the
                // journal underwrites; a dead process must not make it.
                return Err(e);
            }
            // Spool unusable (ENOSPC, I/O error — already counted by the
            // store): degrade this WRITE to write-through so the ack the
            // client sees is the server's, not a fabrication the cache
            // can no longer back.
            return self.forward(record, procnum::WRITE, args);
        }
        if let Some(obs) = self.stats.obs() {
            obs.hop_timed(
                sgfs_obs::Hop::BlockWrite,
                xid,
                procnum::WRITE,
                t_blk.elapsed().as_nanos() as u64,
            );
        }
        self.synth_mtime += 1;
        let attr = self.meta.attrs.get_mut(&a.file).expect("ensured above");
        attr.size = attr.size.max(a.offset + a.data.len() as u64);
        attr.mtime = NfsTime3::from_nanos(attr.mtime.as_nanos() + self.synth_mtime);
        let res = WriteRes {
            status: NfsStat3::Ok,
            wcc: WccData { before: None, after: Some(attr.clone()) },
            count: a.data.len() as u32,
            committed: StableHow::FileSync,
            verf: self.write_verf,
        };
        Ok(encode_reply(xid, &res))
    }

    /// Push all dirty blocks of `fh` upstream (WRITE + COMMIT), honoring
    /// the NFSv3 crash-recovery contract: if the server's write verifier
    /// changes at any point (it rebooted and lost uncommitted data), all
    /// unstable writes of this flush are re-sent and re-committed.
    ///
    /// Split-phase: every dirty block's WRITE is submitted into the
    /// pipelined window first, then all replies are awaited, and only
    /// then does COMMIT go out — so COMMIT can never overtake data, and a
    /// WAN flush overlaps up to a window of WRITE round trips.
    pub fn flush_file(&mut self, fh: &Fh3) -> std::io::Result<()> {
        // A verifier change mid-flush means a server reboot; more than a
        // couple in one flush means the server is crash-looping and
        // retrying forever would hide that.
        const MAX_VERIFIER_RETRIES: u32 = 3;
        for _ in 0..MAX_VERIFIER_RETRIES {
            match self.flush_file_once(fh)? {
                FlushOutcome::Committed => return Ok(()),
                FlushOutcome::VerifierChanged | FlushOutcome::Retry => continue,
            }
        }
        Err(std::io::Error::other(
            "write verifier kept changing across flush attempts (server crash-looping?)",
        ))
    }

    /// One WRITE-batch + COMMIT round. `VerifierChanged` means the blocks
    /// were re-marked dirty and the caller must flush again; on `Err` the
    /// blocks are also re-marked dirty so a later retry re-sends them —
    /// no block is left clean without a COMMIT covering it.
    fn flush_file_once(&mut self, fh: &Fh3) -> std::io::Result<FlushOutcome> {
        if let Some(set) = self.stripe.clone() {
            return self.flush_file_once_striped(&set, fh);
        }
        let dirty = match &self.store {
            Some(s) => s.dirty_blocks_of(fh),
            None => return Ok(FlushOutcome::Committed),
        };
        if dirty.is_empty() {
            return Ok(FlushOutcome::Committed);
        }
        // One split-phase round is starting: aux = dirty blocks in it.
        if let Some(obs) = self.stats.obs() {
            obs.emit(sgfs_obs::Hop::FlushRound, 0, procnum::COMMIT, dirty.len() as u64);
        }
        let mut records = Vec::with_capacity(dirty.len());
        let mut offsets = Vec::with_capacity(dirty.len());
        for offset in dirty {
            let data = self
                .store
                .as_mut()
                .and_then(|s| s.get(&(fh.clone(), offset)))
                .unwrap_or_default();
            let args = WriteArgs {
                file: fh.clone(),
                offset,
                stable: StableHow::Unstable,
                data,
            };
            self.next_xid = self.next_xid.wrapping_add(1);
            records.push(encode_call(self.next_xid, procnum::WRITE, &self.client_cred, &args));
            offsets.push(offset);
        }
        // One atomic batch: up to a window of WRITEs goes out before the
        // pipeline waits on any reply. The records are kept: a WRITE the
        // server sheds at admission (JUKEBOX — never executed) is re-sent
        // verbatim under backoff rather than failing the whole flush.
        let pending = self.pipeline.submit_batch(records.clone());
        let mut server_verf: Option<u64> = None;
        let mut verifier_changed = false;
        for ((offset, record), reply) in offsets.iter().zip(records.iter()).zip(pending) {
            let settled = reply.wait().and_then(|r| {
                settle_jukebox(&self.pipeline, &self.stats, &self.retry, record, r)
            });
            let verf = match settled.and_then(|r| parse_write_verf(&r)) {
                Ok(v) => v,
                Err(e) => {
                    self.redirty(fh, &offsets);
                    return Err(e);
                }
            };
            if *server_verf.get_or_insert(verf) != verf {
                verifier_changed = true;
            }
            let cleaned = match &mut self.store {
                Some(store) => store.set_clean(&(fh.clone(), *offset)),
                None => Ok(()),
            };
            if let Err(e) = cleaned {
                // The journal could not record the transition; the block
                // stays dirty (the store updates its index only after the
                // append succeeds) and a later flush re-sends it.
                self.redirty(fh, &offsets);
                return Err(e);
            }
        }
        // Kill point: blocks are clean locally, COMMIT never goes out.
        // Recovery must re-dirty them (clean-before-COMMIT is not stable).
        if let Err(e) = self.hit_crash(CrashPoint::FlushBeforeCommit) {
            self.redirty(fh, &offsets);
            return Err(e);
        }
        let commit = CommitArgs { file: fh.clone(), offset: 0, count: 0 };
        let res: CommitRes = match self.call_upstream(procnum::COMMIT, &commit) {
            Ok(r) => r,
            Err(e) => {
                self.redirty(fh, &offsets);
                return Err(std::io::Error::other(e));
            }
        };
        if res.status != NfsStat3::Ok {
            self.redirty(fh, &offsets);
            return Err(std::io::Error::other(format!("commit failed: {:?}", res.status)));
        }
        // The crash-recovery check proper: every WRITE and the COMMIT
        // must carry one verifier. Any change means the server lost its
        // uncommitted (unstable) data — re-send everything.
        if verifier_changed || server_verf.is_some_and(|v| v != res.verf) {
            self.redirty(fh, &offsets);
            return Ok(FlushOutcome::VerifierChanged);
        }
        // Kill point: the server has committed but the journal has not
        // heard — recovery re-sends the blocks, which is idempotent.
        self.hit_crash(CrashPoint::FlushAfterCommit)?;
        if let Some(store) = &mut self.store {
            store.commit_file(fh)?;
        }
        if let Some(a) = res.wcc.after {
            self.meta.attrs.insert(fh.clone(), a);
        }
        Ok(FlushOutcome::Committed)
    }

    /// One replicated WRITE-batch + per-member COMMIT round across the
    /// stripe set.
    ///
    /// Every dirty block's WRITE is encoded once per live mapped member
    /// and every member's batch enters its pipeline window before any
    /// reply is awaited, so the replicas of a flush proceed in parallel.
    /// A block goes clean only when at least one replica confirmed its
    /// WRITE *and* that member's COMMIT verifier matched — members that
    /// die mid-flush are failed over, their blocks are recorded in the
    /// missed set for re-sync, and the flush completes at reduced
    /// redundancy as long as one replica per block survives.
    fn flush_file_once_striped(
        &mut self,
        set: &StripeSet,
        fh: &Fh3,
    ) -> std::io::Result<FlushOutcome> {
        let dirty = match &self.store {
            Some(s) => s.dirty_blocks_of(fh),
            None => return Ok(FlushOutcome::Committed),
        };
        if dirty.is_empty() {
            return Ok(FlushOutcome::Committed);
        }
        if let Some(obs) = self.stats.obs() {
            obs.emit(sgfs_obs::Hop::FlushRound, 0, procnum::COMMIT, dirty.len() as u64);
        }
        let width = set.width();
        // Per-member WRITE batches, one pass over the dirty set.
        let mut offsets_of: Vec<Vec<u64>> = vec![Vec::new(); width];
        let mut records_of: Vec<Vec<Vec<u8>>> = vec![Vec::new(); width];
        for &offset in &dirty {
            let data = self
                .store
                .as_mut()
                .and_then(|s| s.get(&(fh.clone(), offset)))
                .unwrap_or_default();
            let members = set.map().members_of_offset(offset);
            if !members.iter().any(|&m| set.is_up(m)) {
                self.redirty(fh, &dirty);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "every replica of a dirty block is down",
                ));
            }
            for m in members {
                if set.is_up(m) {
                    let args = WriteArgs {
                        file: fh.clone(),
                        offset,
                        stable: StableHow::Unstable,
                        data: data.clone(),
                    };
                    self.next_xid = self.next_xid.wrapping_add(1);
                    offsets_of[m].push(offset);
                    records_of[m].push(encode_call(
                        self.next_xid,
                        procnum::WRITE,
                        &self.client_cred,
                        &args,
                    ));
                } else {
                    self.missed[m].insert((fh.clone(), offset));
                }
            }
        }
        // Fan out: every member's batch is submitted before any reply is
        // awaited.
        let mut pending = Vec::new();
        for (m, records) in records_of.into_iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            let replies = set.member(m).submit_batch(records);
            pending.push((m, replies));
        }
        let mut confirmed: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut member_verf: Vec<Option<u64>> = vec![None; width];
        let mut verifier_changed = false;
        for (m, replies) in pending {
            let mut dead = false;
            for (offset, reply) in offsets_of[m].iter().zip(replies) {
                if dead {
                    self.missed[m].insert((fh.clone(), *offset));
                    continue;
                }
                match collect_write_reply(reply) {
                    Ok(verf) => {
                        if *member_verf[m].get_or_insert(verf) != verf {
                            verifier_changed = true;
                        }
                        confirmed.entry(*offset).or_default().push(m);
                    }
                    Err(_) => {
                        // Member died mid-flush: degrade and keep going
                        // on the survivors.
                        dead = true;
                        member_verf[m] = None;
                        self.fail_member(set, m);
                        self.missed[m].insert((fh.clone(), *offset));
                    }
                }
            }
        }
        // Blocks confirmed by at least one replica go clean; the rest
        // stay dirty for the next round.
        for (&offset, members) in &confirmed {
            if members.is_empty() {
                continue;
            }
            let cleaned = match &mut self.store {
                Some(store) => store.set_clean(&(fh.clone(), offset)),
                None => Ok(()),
            };
            if let Err(e) = cleaned {
                self.redirty(fh, &dirty);
                return Err(e);
            }
        }
        if let Err(e) = self.hit_crash(CrashPoint::FlushBeforeCommit) {
            self.redirty(fh, &dirty);
            return Err(e);
        }
        // One COMMIT per member that confirmed writes; each replica's
        // verifier contract is enforced independently. A member holds
        // only its mapped blocks, so its own file size undershoots the
        // file whenever it lacks the final block — after its COMMIT
        // confirms, mirror the client-visible size so *any* member can
        // serve GETATTR/LOOKUP for the file.
        let mut commit_after: Option<Fattr3> = None;
        let file_size = self.meta.attrs.get(fh).map(|a| a.size);
        for m in 0..width {
            let Some(write_verf) = member_verf[m] else { continue };
            self.next_xid = self.next_xid.wrapping_add(1);
            let commit = CommitArgs { file: fh.clone(), offset: 0, count: 0 };
            let res: Result<CommitRes, ()> = call_via(
                &set.member(m),
                self.next_xid,
                procnum::COMMIT,
                &self.client_cred,
                &commit,
            );
            let committed = match res {
                Ok(res) if res.status == NfsStat3::Ok => {
                    if res.verf != write_verf {
                        verifier_changed = true;
                    }
                    if commit_after.is_none() {
                        commit_after = res.wcc.after;
                    }
                    self.mirror_size(set, m, fh, file_size)
                }
                _ => false,
            };
            if committed {
                self.stats.add_replica_write();
                if let Some(obs) = self.stats.obs() {
                    obs.emit(sgfs_obs::Hop::ReplicaWrite, 0, procnum::COMMIT, m as u64);
                }
            } else {
                // The member's WRITEs landed but its COMMIT (or the size
                // mirror behind it) did not: they are not stable there.
                // Fail the member over and strike it from every block it
                // confirmed.
                self.fail_member(set, m);
                for offset in &offsets_of[m] {
                    self.missed[m].insert((fh.clone(), *offset));
                    if let Some(members) = confirmed.get_mut(offset) {
                        members.retain(|&c| c != m);
                    }
                }
            }
        }
        if verifier_changed {
            self.redirty(fh, &dirty);
            return Ok(FlushOutcome::VerifierChanged);
        }
        // A block whose every confirming replica fell over must be
        // re-sent to the survivors of its stripe.
        let uncovered: Vec<u64> = dirty
            .iter()
            .copied()
            .filter(|o| confirmed.get(o).is_none_or(|v| v.is_empty()))
            .collect();
        if !uncovered.is_empty() {
            self.redirty(fh, &uncovered);
            return Ok(FlushOutcome::Retry);
        }
        self.hit_crash(CrashPoint::FlushAfterCommit)?;
        if let Some(store) = &mut self.store {
            store.commit_file(fh)?;
        }
        if let Some(mut a) = commit_after {
            // The wcc attr came from one member's COMMIT, which ran
            // before the size mirror: never let a partial replica size
            // shrink the fabricated attr the client has already seen.
            if let Some(prev) = self.meta.attrs.get(fh) {
                a.size = a.size.max(prev.size);
            }
            self.meta.attrs.insert(fh.clone(), a);
        }
        Ok(FlushOutcome::Committed)
    }

    /// Mirror the file's client-visible size to member `m` (best-effort
    /// SETATTR after its COMMIT confirmed). Returns `false` when the
    /// member died or rejected the call — the caller fails it over, since
    /// a member with a stale size cannot serve a consistent view.
    fn mirror_size(&mut self, set: &StripeSet, m: usize, fh: &Fh3, size: Option<u64>) -> bool {
        let Some(size) = size else { return true };
        self.next_xid = self.next_xid.wrapping_add(1);
        let sa = SetAttrArgs {
            object: fh.clone(),
            new_attributes: Sattr3 { size: Some(size), ..Default::default() },
        };
        matches!(
            call_via::<WccRes>(
                &set.member(m),
                self.next_xid,
                procnum::SETATTR,
                &self.client_cred,
                &sa,
            ),
            Ok(r) if r.status == NfsStat3::Ok
        )
    }

    fn hit_crash(&self, point: CrashPoint) -> std::io::Result<()> {
        match &self.crash {
            Some(c) => c.hit(point),
            None => Ok(()),
        }
    }

    /// Return flushed-but-uncommitted blocks to the dirty set.
    ///
    /// Best-effort: this runs on error paths, where a tripped crash
    /// injector makes every journal append fail too — recovery re-dirties
    /// the blocks from the journal, which never recorded them as
    /// committed.
    fn redirty(&mut self, fh: &Fh3, offsets: &[u64]) {
        if let Some(store) = &mut self.store {
            for offset in offsets {
                let _ = store.set_dirty(&(fh.clone(), *offset));
            }
        }
    }

    /// Write back everything still dirty — called at session teardown;
    /// the harness times this as the paper's separate "write back at the
    /// end of execution" figure. Returns the number of bytes flushed.
    pub fn flush_all(&mut self) -> std::io::Result<u64> {
        let files = match &self.store {
            Some(s) => s.dirty_files(),
            None => return Ok(0),
        };
        let before = self.store.as_ref().map(|s| s.dirty_bytes()).unwrap_or(0);
        for fh in files {
            self.flush_file(&fh)?;
        }
        Ok(before)
    }

    /// Bytes currently dirty in the write-back cache.
    pub fn dirty_bytes(&self) -> u64 {
        self.store.as_ref().map(|s| s.dirty_bytes()).unwrap_or(0)
    }

    fn snoop_create(&mut self, proc: u32, args: &[u8], reply: &[u8]) {
        let Some(body) = success_body(reply) else { return };
        let Ok(res) = CreateRes::from_xdr_bytes(body) else { return };
        let where_ = match proc {
            procnum::CREATE => CreateArgs::from_xdr_bytes(args).ok().map(|a| a.where_),
            procnum::MKDIR => MkdirArgs::from_xdr_bytes(args).ok().map(|a| a.where_),
            procnum::SYMLINK => SymlinkArgs::from_xdr_bytes(args).ok().map(|a| a.where_),
            _ => None,
        };
        if let (Some(w), Some(fh)) = (where_, res.obj) {
            if let Some(attr) = &res.obj_attr {
                self.meta.attrs.insert(fh.clone(), attr.clone());
            }
            self.meta.lookups.insert((w.dir, w.name), (fh, res.obj_attr));
        }
    }

    /// Forward a raw record upstream and return the raw reply, snooping
    /// cacheable results.
    fn forward(&mut self, record: &[u8], proc: u32, args: &[u8]) -> std::io::Result<Vec<u8>> {
        if let Some(set) = self.stripe.clone() {
            return self.forward_striped(&set, record, proc, args);
        }
        *self.forwarded.entry(proc).or_insert(0) += 1;
        self.stats.add_up(record.len());
        // The upstream round trip is mostly *waiting*; exclude its wall
        // time from the busy accounting (the GTLS layer re-adds the real
        // crypto time through the shared busy counter).
        let t_io = std::time::Instant::now();
        let reply = call_jukebox_patient(&self.pipeline, &self.stats, &self.retry, record)?;
        self.stats.exclude(t_io.elapsed());
        self.stats.add_down(reply.len());
        if self.meta_enabled {
            self.snoop_meta(proc, args, &reply);
        }
        Ok(reply)
    }

    /// Route one forwarded call across the stripe set. READs go to a
    /// mapped member of their block (failing over past down members);
    /// namespace mutations and COMMIT are mirrored to every live member
    /// so replica state stays structurally identical (file handles are
    /// derived from the op sequence, which every member sees in the same
    /// order); everything else rides the first live member.
    fn forward_striped(
        &mut self,
        set: &StripeSet,
        record: &[u8],
        proc: u32,
        args: &[u8],
    ) -> std::io::Result<Vec<u8>> {
        *self.forwarded.entry(proc).or_insert(0) += 1;
        match proc {
            procnum::READ => {
                if let Ok(a) = ReadArgs::from_xdr_bytes(args) {
                    return self.striped_read(set, record, a.offset, args);
                }
                self.forward_first_live(set, record, proc, args)
            }
            procnum::WRITE => {
                // Write-through fallback (no store, or the spool
                // degraded): one WRITE can span several stripe blocks, so
                // it must reach every member mapped to *any* covered
                // block (each receives the whole extent; reads still
                // route per block).
                if let Ok(a) = WriteArgs::from_xdr_bytes(args) {
                    let map = set.map();
                    let end = a.offset + (a.data.len() as u64).max(1) - 1;
                    let mut members: Vec<usize> = Vec::new();
                    for b in map.block_of(a.offset)..=map.block_of(end) {
                        for m in map.members_of_block(b) {
                            if !members.contains(&m) {
                                members.push(m);
                            }
                        }
                    }
                    return self.mirror_to(set, &members, record, proc, args);
                }
                self.forward_first_live(set, record, proc, args)
            }
            procnum::SETATTR
            | procnum::CREATE
            | procnum::MKDIR
            | procnum::SYMLINK
            | procnum::MKNOD
            | procnum::REMOVE
            | procnum::RMDIR
            | procnum::RENAME
            | procnum::LINK
            | procnum::COMMIT => {
                let all: Vec<usize> = (0..set.width()).collect();
                self.mirror_to(set, &all, record, proc, args)
            }
            procnum::GETATTR => {
                if Fh3::from_xdr_bytes(args).is_ok() {
                    return self.striped_getattr(set, record, args);
                }
                self.forward_first_live(set, record, proc, args)
            }
            _ => self.forward_first_live(set, record, proc, args),
        }
    }

    /// GETATTR across the stripe set: any single member undershoots the
    /// file size whenever it lacks the final block, so ask every live
    /// member and serve the largest size observed.
    fn striped_getattr(
        &mut self,
        set: &StripeSet,
        record: &[u8],
        args: &[u8],
    ) -> std::io::Result<Vec<u8>> {
        let mut best: Option<(u64, Vec<u8>)> = None;
        for m in 0..set.width() {
            if !set.is_up(m) {
                continue;
            }
            let Ok(reply) = self.call_member(set, m, record) else { continue };
            let size = success_body(&reply)
                .and_then(|b| GetAttrRes::from_xdr_bytes(b).ok())
                .and_then(|r| r.attr.map(|a| a.size));
            match (&best, size) {
                (None, _) => best = Some((size.unwrap_or(0), reply)),
                (Some((s, _)), Some(ns)) if ns > *s => best = Some((ns, reply)),
                _ => {}
            }
        }
        let Some((_, reply)) = best else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "every stripe-set member is down",
            ));
        };
        if self.meta_enabled {
            self.snoop_meta(procnum::GETATTR, args, &reply);
        }
        Ok(reply)
    }

    /// Serve a READ from the first live member of its block's replica
    /// set, failing over past members that die on the way.
    fn striped_read(
        &mut self,
        set: &StripeSet,
        record: &[u8],
        offset: u64,
        args: &[u8],
    ) -> std::io::Result<Vec<u8>> {
        for m in set.map().members_of_offset(offset) {
            if !set.is_up(m) {
                continue;
            }
            match self.call_member(set, m, record) {
                Ok(reply) => {
                    if let Some(obs) = self.stats.obs() {
                        obs.emit(
                            sgfs_obs::Hop::StripeRead,
                            sgfs_obs::peek_xid(record),
                            procnum::READ,
                            m as u64,
                        );
                    }
                    let reply = clamp_striped_read(set, offset, reply);
                    if self.meta_enabled {
                        self.snoop_meta(procnum::READ, args, &reply);
                    }
                    return Ok(reply);
                }
                Err(_) => continue, // call_member marked the member down
            }
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            "every replica of the block is down",
        ))
    }

    /// Forward to the lowest-index live member, walking down the set as
    /// members fail.
    fn forward_first_live(
        &mut self,
        set: &StripeSet,
        record: &[u8],
        proc: u32,
        args: &[u8],
    ) -> std::io::Result<Vec<u8>> {
        loop {
            let Some(m) = set.first_live() else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "every stripe-set member is down",
                ));
            };
            match self.call_member(set, m, record) {
                Ok(reply) => {
                    if self.meta_enabled {
                        self.snoop_meta(proc, args, &reply);
                    }
                    return Ok(reply);
                }
                Err(_) => continue, // member marked down; next survivor
            }
        }
    }

    /// Mirror one call to every live member of `members` (submitting all
    /// before waiting on any), replying from the lowest-index survivor.
    fn mirror_to(
        &mut self,
        set: &StripeSet,
        members: &[usize],
        record: &[u8],
        proc: u32,
        args: &[u8],
    ) -> std::io::Result<Vec<u8>> {
        let mut pending = Vec::new();
        for &m in members {
            if set.is_up(m) {
                self.stats.add_up(record.len());
                pending.push((m, set.member(m).submit(record.to_vec())));
            }
        }
        if pending.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "every targeted stripe-set member is down",
            ));
        }
        let t_io = std::time::Instant::now();
        let mut first: Option<Vec<u8>> = None;
        for (m, reply) in pending {
            // A shed call never executed on that member, so it is settled
            // (re-sent verbatim under backoff) against the same member —
            // the replicas that accepted the call are unaffected.
            let reply = reply.wait().and_then(|r| {
                settle_jukebox(&set.member(m), &self.stats, &self.retry, record, r)
            });
            match reply {
                Ok(reply) => {
                    self.stats.add_down(reply.len());
                    if first.is_none() {
                        first = Some(reply);
                    }
                }
                Err(_) => self.fail_member(set, m),
            }
        }
        self.stats.exclude(t_io.elapsed());
        let Some(reply) = first else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "every targeted stripe-set member died mid-call",
            ));
        };
        if self.meta_enabled {
            self.snoop_meta(proc, args, &reply);
        }
        Ok(reply)
    }

    /// One accounted call on one member; a terminal error fails the
    /// member over.
    fn call_member(
        &mut self,
        set: &StripeSet,
        m: usize,
        record: &[u8],
    ) -> std::io::Result<Vec<u8>> {
        self.stats.add_up(record.len());
        let t_io = std::time::Instant::now();
        let reply = call_jukebox_patient(&set.member(m), &self.stats, &self.retry, record);
        self.stats.exclude(t_io.elapsed());
        match reply {
            Ok(reply) => {
                self.stats.add_down(reply.len());
                Ok(reply)
            }
            Err(e) => {
                self.fail_member(set, m);
                Err(e)
            }
        }
    }

    /// Take a member out of the set after a terminal failure: count the
    /// failover, refresh the `degraded` gauge, emit the event — exactly
    /// once per down transition, even racing the read-ahead worker.
    fn fail_member(&self, set: &StripeSet, m: usize) {
        fail_member_via(&self.stats, set, m);
    }

    /// Dial a rejoined host afresh and install the new channel in the
    /// stripe set. A member usually goes down because its pipeline spent
    /// its entire reconnect budget against a dead host and turned
    /// terminal; the rejoin path therefore cannot reuse the old channel.
    /// Without a reconnector the existing channel is all there is — the
    /// replay below decides whether it still works.
    fn revive_member(&mut self, m: usize, set: &StripeSet) -> std::io::Result<()> {
        let Some(redial) = self.redial.get(m).cloned().flatten() else {
            return Ok(());
        };
        let (upstream, watch) = redial.lock().reconnect(0)?;
        let pipeline = match &self.pool {
            Some(pool) => Pipeline::with_recovery_on(
                pool,
                upstream,
                watch,
                self.window,
                self.rekey_every,
                self.stats.clone(),
                Some(dial_via(&redial)),
                self.retry,
            )?,
            None => Pipeline::with_recovery(
                upstream,
                watch,
                self.window,
                self.rekey_every,
                self.stats.clone(),
                Some(dial_via(&redial)),
                self.retry,
            ),
        };
        set.replace_member(m, pipeline);
        if m == 0 {
            // `self.pipeline` aliases member 0 (rekey and handshake
            // accounting route through it); keep it on the live channel.
            self.pipeline = set.member(0);
        }
        Ok(())
    }

    /// Re-sync a rejoining member and return it to the read/write set:
    /// every block it missed while down is replayed from the local store
    /// (UNSTABLE WRITE, then one COMMIT per file under the verifier
    /// contract) before the member serves reads or counts toward
    /// replication again. On error the member stays down and the missed
    /// set is kept — re-sync is idempotent and can simply run again.
    pub fn resync_member(&mut self, m: usize) -> std::io::Result<()> {
        let Some(set) = self.stripe.clone() else { return Ok(()) };
        if !set.is_up(m) {
            self.revive_member(m, &set)?;
        }
        let mut missed: Vec<(Fh3, u64)> = self.missed[m].iter().cloned().collect();
        missed.sort();
        let mut files: Vec<Fh3> = missed.iter().map(|(f, _)| f.clone()).collect();
        files.dedup();
        let probe_needed = files.is_empty();
        let mut pending = Vec::new();
        for (fh, offset) in &missed {
            // A missing block means the file was dropped (deleted) or
            // evicted after a covering COMMIT — nothing to replay.
            let Some(data) = self.store.as_mut().and_then(|s| s.get(&(fh.clone(), *offset)))
            else {
                continue;
            };
            let args = WriteArgs {
                file: fh.clone(),
                offset: *offset,
                stable: StableHow::Unstable,
                data,
            };
            self.next_xid = self.next_xid.wrapping_add(1);
            let record =
                encode_call(self.next_xid, procnum::WRITE, &self.client_cred, &args);
            pending.push(set.member(m).submit(record));
        }
        let mut verf: Option<u64> = None;
        for reply in pending {
            let v = collect_write_reply(reply)?;
            if *verf.get_or_insert(v) != v {
                return Err(std::io::Error::other(
                    "replica write verifier changed during re-sync",
                ));
            }
        }
        for fh in files {
            self.next_xid = self.next_xid.wrapping_add(1);
            let commit = CommitArgs { file: fh, offset: 0, count: 0 };
            let res: CommitRes = call_via(
                &set.member(m),
                self.next_xid,
                procnum::COMMIT,
                &self.client_cred,
                &commit,
            )
            .map_err(|_| std::io::Error::other("re-sync COMMIT failed"))?;
            if res.status != NfsStat3::Ok {
                return Err(std::io::Error::other(format!(
                    "re-sync COMMIT failed: {:?}",
                    res.status
                )));
            }
            if verf.is_some_and(|v| v != res.verf) {
                return Err(std::io::Error::other(
                    "replica rebooted mid-re-sync (verifier changed)",
                ));
            }
        }
        if probe_needed {
            // Nothing was replayed, so no traffic proved the revived
            // channel end-to-end. Without this probe a rejoin with an
            // empty missed set would mark the member up — and drop the
            // `degraded` gauge to zero — on pure faith in a channel that
            // may be as dead as the one it replaced. Any decodable reply
            // counts: the probe tests the transport, not the file.
            self.next_xid = self.next_xid.wrapping_add(1);
            let probe = Fh3::from_ino(0, 0);
            let _: GetAttrRes = call_via(
                &set.member(m),
                self.next_xid,
                procnum::GETATTR,
                &self.client_cred,
                &probe,
            )
            .map_err(|_| std::io::Error::other("re-sync probe failed: member stays down"))?;
        }
        self.missed[m].clear();
        set.mark_up(m);
        self.stats.set_degraded(set.down_count());
        self.stats.add_replica_write();
        if let Some(obs) = self.stats.obs() {
            obs.emit(sgfs_obs::Hop::ReplicaWrite, 0, sgfs_obs::NO_PROC, m as u64);
        }
        Ok(())
    }

    /// Whether we hold unflushed data for `fh` (server attrs are stale).
    fn is_dirty(&self, fh: &Fh3) -> bool {
        self.store
            .as_ref()
            .map(|s| !s.dirty_blocks_of(fh).is_empty())
            .unwrap_or(false)
    }

    /// Record a passively-observed attr (GETATTR/LOOKUP/ACCESS/READ
    /// replies). In a striped session a single member's attr undershoots
    /// the file size whenever that member lacks the final block, so
    /// passive observations may only *grow* the cached size; an explicit
    /// client SETATTR (truncation) updates the cache directly instead.
    fn note_attr(&mut self, fh: &Fh3, mut attr: Fattr3) -> Fattr3 {
        if self.stripe.is_some() {
            if let Some(prev) = self.meta.attrs.get(fh) {
                attr.size = attr.size.max(prev.size);
            }
        }
        self.meta.attrs.insert(fh.clone(), attr.clone());
        attr
    }

    fn snoop_meta(&mut self, proc: u32, args: &[u8], reply: &[u8]) {
        let Some(body) = success_body(reply) else { return };
        match proc {
            procnum::GETATTR => {
                if let (Ok(fh), Ok(res)) =
                    (Fh3::from_xdr_bytes(args), GetAttrRes::from_xdr_bytes(body))
                {
                    if let Some(a) = res.attr {
                        if !self.is_dirty(&fh) {
                            self.note_attr(&fh, a);
                        }
                    }
                }
            }
            procnum::ACCESS => {
                if let (Ok(a), Ok(res)) =
                    (AccessArgs::from_xdr_bytes(args), AccessRes::from_xdr_bytes(body))
                {
                    let uid = self.client_cred.as_sys().map(|s| s.uid).unwrap_or(u32::MAX);
                    // Merge: remember which bits this check covered and
                    // refresh the granted state within that mask only.
                    let entry =
                        self.meta.access.entry((a.object.clone(), uid)).or_insert((0, 0));
                    entry.1 = (entry.1 & !a.access) | res.access;
                    entry.0 |= a.access;
                    if let Some(attr) = res.obj_attr {
                        self.note_attr(&a.object, attr);
                    }
                }
            }
            procnum::LOOKUP => {
                if let (Ok(a), Ok(res)) =
                    (DirOpArgs3::from_xdr_bytes(args), LookupRes::from_xdr_bytes(body))
                {
                    if let Some(fh) = res.object {
                        if self.is_dirty(&fh) {
                            // Keep our attrs; cache the mapping with them.
                            let ours = self.meta.attrs.get(&fh).cloned();
                            self.meta.lookups.insert((a.dir, a.name), (fh, ours));
                        } else {
                            let noted = res.obj_attr.map(|attr| self.note_attr(&fh, attr));
                            self.meta.lookups.insert((a.dir, a.name), (fh, noted));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// A proxy-initiated upstream call (flushes, attr fetches). Striped
    /// sessions route it to the first live member, walking down the set
    /// as members fail.
    fn call_upstream<T: XdrDecode>(
        &mut self,
        proc: u32,
        args: &dyn XdrEncode,
    ) -> Result<T, String> {
        self.next_xid = self.next_xid.wrapping_add(1);
        if let Some(set) = self.stripe.clone() {
            let record = encode_call(self.next_xid, proc, &self.client_cred, args);
            loop {
                let Some(m) = set.first_live() else {
                    return Err(format!(
                        "upstream call proc {proc} failed: every member is down"
                    ));
                };
                match self.call_member(&set, m, &record) {
                    Ok(reply) => {
                        let body = success_body(&reply)
                            .ok_or_else(|| format!("upstream call proc {proc} failed"))?;
                        return T::from_xdr_bytes(body)
                            .map_err(|_| format!("upstream call proc {proc} failed"));
                    }
                    Err(_) => continue,
                }
            }
        }
        let record = encode_call(self.next_xid, proc, &self.client_cred, args);
        let reply = call_jukebox_patient(&self.pipeline, &self.stats, &self.retry, &record)
            .map_err(|_| format!("upstream call proc {proc} failed"))?;
        let body =
            success_body(&reply).ok_or_else(|| format!("upstream call proc {proc} failed"))?;
        T::from_xdr_bytes(body).map_err(|_| format!("upstream call proc {proc} failed"))
    }
}

/// Outcome of one WRITE-batch + COMMIT round of `flush_file_once`.
enum FlushOutcome {
    /// Data durable under a single, stable write verifier.
    Committed,
    /// The server's verifier changed (reboot): blocks re-dirtied, flush
    /// must run again.
    VerifierChanged,
    /// Replicated flush: a member fell over mid-round and some blocks
    /// lost every confirming replica — those were re-dirtied and the
    /// flush must run again against the survivors.
    Retry,
}

/// Shared failover bookkeeping (main loop and read-ahead worker): mark
/// the member down and, on the transition only, count the failover,
/// refresh the `degraded` gauge and emit the trace event.
fn fail_member_via(stats: &ProxyStats, set: &StripeSet, m: usize) {
    if set.mark_down(m) {
        stats.add_failover();
        stats.set_degraded(set.down_count());
        if let Some(obs) = stats.obs() {
            obs.emit(sgfs_obs::Hop::ReplicaFailover, 0, sgfs_obs::NO_PROC, m as u64);
        }
    }
}

/// Await one write-back WRITE reply and extract its write verifier.
fn collect_write_reply(reply: crate::proxy::pipeline::PendingReply) -> std::io::Result<u64> {
    parse_write_verf(&reply.wait()?)
}

/// Extract the write verifier from a raw WRITE reply record.
fn parse_write_verf(reply: &[u8]) -> std::io::Result<u64> {
    let res = success_body(reply)
        .and_then(|b| WriteRes::from_xdr_bytes(b).ok())
        .ok_or_else(|| std::io::Error::other("write-back reply malformed"))?;
    if res.status != NfsStat3::Ok {
        return Err(std::io::Error::other(format!("write-back failed: {:?}", res.status)));
    }
    Ok(res.verf)
}

/// Encode one complete call record (header + arguments).
fn encode_call(xid: u32, proc: u32, cred: &OpaqueAuth, args: &dyn XdrEncode) -> Vec<u8> {
    let header = CallHeader {
        xid,
        prog: NFS_PROGRAM,
        vers: NFS_VERSION,
        proc,
        cred: cred.clone(),
        verf: OpaqueAuth::none(),
    };
    let mut enc = XdrEncoder::with_capacity(128);
    header.encode(&mut enc);
    args.encode(&mut enc);
    enc.into_bytes()
}

/// Issue one call through the pipeline and decode the successful result.
/// A striped member stores only its mapped blocks: a READ crossing the
/// stripe-block boundary would be served past the member's own block from
/// its holes (zeros). Truncate the reply at the boundary — a short read
/// is legal NFS, and the client's next READ routes to the right member.
fn clamp_striped_read(set: &StripeSet, offset: u64, reply: Vec<u8>) -> Vec<u8> {
    let bs = set.map().block_size() as u64;
    let keep = ((offset / bs + 1) * bs - offset) as usize;
    let Some(body) = success_body(&reply) else { return reply };
    let Ok(mut res) = ReadRes::from_xdr_bytes(body) else { return reply };
    if res.data.len() <= keep {
        return reply;
    }
    res.data.truncate(keep);
    res.count = keep as u32;
    res.eof = false;
    let xid = u32::from_be_bytes([reply[0], reply[1], reply[2], reply[3]]);
    encode_reply(xid, &res)
}

fn call_via<T: XdrDecode>(
    pipeline: &Pipeline,
    xid: u32,
    proc: u32,
    cred: &OpaqueAuth,
    args: &dyn XdrEncode,
) -> Result<T, ()> {
    let record = encode_call(xid, proc, cred, args);
    let reply = pipeline.call(record).map_err(|_| ())?;
    let body = success_body(&reply).ok_or(())?;
    T::from_xdr_bytes(body).map_err(|_| ())
}

/// One round trip that rides out admission-control pushback: while the
/// server answers `NFS3ERR_JUKEBOX`, re-send the call verbatim under
/// capped exponential backoff. JUKEBOX means the call was *not* executed
/// (it was shed before dispatch), so the verbatim retry is safe even for
/// procedures [`replayable`](crate::proxy::retry::replayable) refuses —
/// this is a different axis from transport-loss replay, where execution
/// is unknown. Once `retry.jukebox_retries` is spent the pushback reply
/// is handed to the caller: JUKEBOX is a legal NFSv3 status the kernel
/// client also understands.
fn call_jukebox_patient(
    pipeline: &Pipeline,
    stats: &ProxyStats,
    retry: &crate::config::RetryPolicy,
    record: &[u8],
) -> std::io::Result<Vec<u8>> {
    let reply = pipeline.call(record.to_vec())?;
    settle_jukebox(pipeline, stats, retry, record, reply)
}

/// The retry half of [`call_jukebox_patient`], for split-phase callers
/// that already hold the first reply.
fn settle_jukebox(
    pipeline: &Pipeline,
    stats: &ProxyStats,
    retry: &crate::config::RetryPolicy,
    record: &[u8],
    mut reply: Vec<u8>,
) -> std::io::Result<Vec<u8>> {
    let mut backoff = retry.backoff_base;
    for _ in 0..retry.jukebox_retries {
        if !crate::proxy::retry::is_jukebox_reply(&reply) {
            return Ok(reply);
        }
        stats.add_jukebox_retry();
        if let Some(obs) = stats.obs() {
            obs.emit(
                sgfs_obs::Hop::JukeboxRetry,
                sgfs_obs::peek_xid(record),
                sgfs_obs::peek_proc(record),
                backoff.as_nanos() as u64,
            );
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(retry.backoff_cap);
        reply = pipeline.call(record.to_vec())?;
    }
    Ok(reply)
}

/// Emit a cache hit/miss trace event into the proxy's observability
/// domain, when one is attached (the hit/miss *counters* live in
/// `MetaCache`; this is the event-stream mirror of those increments).
fn trace_cache(stats: &ProxyStats, hit: bool, xid: u32, proc: u32) {
    if let Some(obs) = stats.obs() {
        let hop = if hit { sgfs_obs::Hop::CacheHit } else { sgfs_obs::Hop::CacheMiss };
        obs.emit(hop, xid, proc, 0);
    }
}

fn encode_reply<T: XdrEncode>(xid: u32, result: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(128);
    ReplyHeader::success(xid).encode(&mut enc);
    result.encode(&mut enc);
    enc.into_bytes()
}

fn accept_error(xid: u32, stat: AcceptStat) -> Vec<u8> {
    ReplyHeader::Accepted { xid, verf: OpaqueAuth::none(), stat }.to_xdr_bytes()
}

fn success_body(reply: &[u8]) -> Option<&[u8]> {
    let mut dec = XdrDecoder::new(reply);
    match ReplyHeader::decode(&mut dec) {
        Ok(ReplyHeader::Accepted { stat: AcceptStat::Success, .. }) => {
            Some(&reply[dec.position()..])
        }
        _ => None,
    }
}

fn dir_of_create(proc: u32, args: &[u8]) -> Option<Fh3> {
    match proc {
        procnum::CREATE => CreateArgs::from_xdr_bytes(args).ok().map(|a| a.where_.dir),
        procnum::MKDIR => MkdirArgs::from_xdr_bytes(args).ok().map(|a| a.where_.dir),
        procnum::SYMLINK => SymlinkArgs::from_xdr_bytes(args).ok().map(|a| a.where_.dir),
        _ => None,
    }
}

fn readdir_key(proc: u32, args: &[u8]) -> Option<(Fh3, u64)> {
    match proc {
        procnum::READDIR => ReaddirArgs::from_xdr_bytes(args).ok().map(|a| (a.dir, a.cookie)),
        procnum::READDIRPLUS => {
            ReaddirPlusArgs::from_xdr_bytes(args).ok().map(|a| (a.dir, a.cookie))
        }
        _ => None,
    }
}
