//! The client proxy's data-block cache backing stores.
//!
//! The paper's WAN configuration caches 32 KB data blocks on the client
//! host's local disk; the SFS-style daemon keeps a bounded in-memory block
//! cache instead. Both stores index blocks by `(file handle, offset)` and
//! track a dirty bit for write-back.

use sgfs_nfs3::Fh3;
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Key of one cached block.
pub type BlockKey = (Fh3, u64);

/// Metadata for one resident block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Block payload length.
    pub len: u32,
    /// Dirty (written back on flush) vs clean.
    pub dirty: bool,
}

/// A block store: where cached data blocks live.
pub trait BlockStore: Send {
    /// Fetch a block's bytes, if cached.
    fn get(&mut self, key: &BlockKey) -> Option<Vec<u8>>;
    /// Insert/overwrite a block.
    fn put(&mut self, key: BlockKey, data: &[u8], dirty: bool);
    /// Metadata without reading the payload.
    fn meta(&self, key: &BlockKey) -> Option<BlockMeta>;
    /// Set the dirty bit of a resident block.
    fn set_clean(&mut self, key: &BlockKey);
    /// Re-mark a resident block dirty — used when a flush fails (or the
    /// server's write verifier changes) after the block was already
    /// marked clean, so a later retry re-sends it.
    fn set_dirty(&mut self, key: &BlockKey);
    /// All block offsets cached for `fh`, sorted.
    fn blocks_of(&self, fh: &Fh3) -> Vec<u64>;
    /// All dirty block offsets for `fh`, sorted.
    fn dirty_blocks_of(&self, fh: &Fh3) -> Vec<u64>;
    /// Every file handle with at least one dirty block.
    fn dirty_files(&self) -> Vec<Fh3>;
    /// Drop all blocks of `fh` (cached *and* dirty — deletion of a file
    /// discards its unflushed data, the paper's temporary-file win).
    fn drop_file(&mut self, fh: &Fh3);
    /// Total bytes cached.
    fn total_bytes(&self) -> u64;
    /// Total dirty bytes.
    fn dirty_bytes(&self) -> u64;
}

/// Disk-backed store: one spool file per cached file handle, written at
/// block offsets (sparse), with an in-memory index. Real file I/O makes
/// the disk-cache cost in the benchmarks genuine.
pub struct DiskStore {
    dir: PathBuf,
    index: HashMap<BlockKey, BlockMeta>,
    open: HashMap<Fh3, std::fs::File>,
}

impl DiskStore {
    /// Create a store spooling under `dir` (created if missing, and
    /// cleared — each session starts with a cold cache, per the paper's
    /// methodology).
    pub fn new(dir: PathBuf) -> std::io::Result<Self> {
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, index: HashMap::new(), open: HashMap::new() })
    }

    fn file_for(&mut self, fh: &Fh3) -> std::io::Result<&mut std::fs::File> {
        if !self.open.contains_key(fh) {
            let name: String = fh.0.iter().map(|b| format!("{b:02x}")).collect();
            let path = self.dir.join(format!("{name}.spool"));
            let f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?;
            self.open.insert(fh.clone(), f);
        }
        Ok(self.open.get_mut(fh).expect("just inserted"))
    }
}

impl BlockStore for DiskStore {
    fn get(&mut self, key: &BlockKey) -> Option<Vec<u8>> {
        let meta = *self.index.get(key)?;
        let (fh, offset) = key;
        let fh = fh.clone();
        let offset = *offset;
        let f = self.file_for(&fh).ok()?;
        let mut buf = vec![0u8; meta.len as usize];
        f.seek(SeekFrom::Start(offset)).ok()?;
        f.read_exact(&mut buf).ok()?;
        Some(buf)
    }

    fn put(&mut self, key: BlockKey, data: &[u8], dirty: bool) {
        let (fh, offset) = &key;
        let fh = fh.clone();
        let offset = *offset;
        if let Ok(f) = self.file_for(&fh) {
            if f.seek(SeekFrom::Start(offset)).is_ok() && f.write_all(data).is_ok() {
                self.index.insert(key, BlockMeta { len: data.len() as u32, dirty });
            }
        }
    }

    fn meta(&self, key: &BlockKey) -> Option<BlockMeta> {
        self.index.get(key).copied()
    }

    fn set_clean(&mut self, key: &BlockKey) {
        if let Some(m) = self.index.get_mut(key) {
            m.dirty = false;
        }
    }

    fn set_dirty(&mut self, key: &BlockKey) {
        if let Some(m) = self.index.get_mut(key) {
            m.dirty = true;
        }
    }

    fn blocks_of(&self, fh: &Fh3) -> Vec<u64> {
        let mut v: Vec<u64> =
            self.index.keys().filter(|(f, _)| f == fh).map(|(_, o)| *o).collect();
        v.sort_unstable();
        v
    }

    fn dirty_blocks_of(&self, fh: &Fh3) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .index
            .iter()
            .filter(|((f, _), m)| f == fh && m.dirty)
            .map(|((_, o), _)| *o)
            .collect();
        v.sort_unstable();
        v
    }

    fn dirty_files(&self) -> Vec<Fh3> {
        let mut v: Vec<Fh3> = self
            .index
            .iter()
            .filter(|(_, m)| m.dirty)
            .map(|((f, _), _)| f.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    fn drop_file(&mut self, fh: &Fh3) {
        self.index.retain(|(f, _), _| f != fh);
        if self.open.remove(fh).is_some() {
            let name: String = fh.0.iter().map(|b| format!("{b:02x}")).collect();
            let _ = std::fs::remove_file(self.dir.join(format!("{name}.spool")));
        }
    }

    fn total_bytes(&self) -> u64 {
        self.index.values().map(|m| m.len as u64).sum()
    }

    fn dirty_bytes(&self) -> u64 {
        self.index.values().filter(|m| m.dirty).map(|m| m.len as u64).sum()
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        self.open.clear();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// In-memory store (SFS-style daemon cache), bounded by FIFO eviction of
/// clean blocks.
pub struct MemStore {
    blocks: HashMap<BlockKey, (Vec<u8>, bool)>,
    order: std::collections::VecDeque<BlockKey>,
    capacity: u64,
    resident: u64,
}

impl MemStore {
    /// Store capped at `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            blocks: HashMap::new(),
            order: std::collections::VecDeque::new(),
            capacity,
            resident: 0,
        }
    }
}

impl BlockStore for MemStore {
    fn get(&mut self, key: &BlockKey) -> Option<Vec<u8>> {
        self.blocks.get(key).map(|(d, _)| d.clone())
    }

    fn put(&mut self, key: BlockKey, data: &[u8], dirty: bool) {
        if let Some((old, _)) = self.blocks.insert(key.clone(), (data.to_vec(), dirty)) {
            self.resident -= old.len() as u64;
        } else {
            self.order.push_back(key);
        }
        self.resident += data.len() as u64;
        // Evict clean blocks FIFO while over budget.
        let mut scanned = 0;
        while self.resident > self.capacity && scanned < self.order.len() {
            let victim = match self.order.pop_front() {
                Some(v) => v,
                None => break,
            };
            match self.blocks.get(&victim) {
                Some((_, true)) => {
                    self.order.push_back(victim); // dirty: keep
                    scanned += 1;
                }
                Some((d, false)) => {
                    self.resident -= d.len() as u64;
                    self.blocks.remove(&victim);
                }
                None => {}
            }
        }
    }

    fn meta(&self, key: &BlockKey) -> Option<BlockMeta> {
        self.blocks
            .get(key)
            .map(|(d, dirty)| BlockMeta { len: d.len() as u32, dirty: *dirty })
    }

    fn set_clean(&mut self, key: &BlockKey) {
        if let Some((_, dirty)) = self.blocks.get_mut(key) {
            *dirty = false;
        }
    }

    fn set_dirty(&mut self, key: &BlockKey) {
        if let Some((_, dirty)) = self.blocks.get_mut(key) {
            *dirty = true;
        }
    }

    fn blocks_of(&self, fh: &Fh3) -> Vec<u64> {
        let mut v: Vec<u64> =
            self.blocks.keys().filter(|(f, _)| f == fh).map(|(_, o)| *o).collect();
        v.sort_unstable();
        v
    }

    fn dirty_blocks_of(&self, fh: &Fh3) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .blocks
            .iter()
            .filter(|((f, _), (_, dirty))| f == fh && *dirty)
            .map(|((_, o), _)| *o)
            .collect();
        v.sort_unstable();
        v
    }

    fn dirty_files(&self) -> Vec<Fh3> {
        let mut v: Vec<Fh3> = self
            .blocks
            .iter()
            .filter(|(_, (_, dirty))| *dirty)
            .map(|((f, _), _)| f.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    fn drop_file(&mut self, fh: &Fh3) {
        let dropped: Vec<BlockKey> =
            self.blocks.keys().filter(|(f, _)| f == fh).cloned().collect();
        for key in dropped {
            if let Some((d, _)) = self.blocks.remove(&key) {
                self.resident -= d.len() as u64;
            }
        }
        self.order.retain(|(f, _)| f != fh);
    }

    fn total_bytes(&self) -> u64 {
        self.resident
    }

    fn dirty_bytes(&self) -> u64 {
        self.blocks
            .values()
            .filter(|(_, dirty)| *dirty)
            .map(|(d, _)| d.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh(n: u64) -> Fh3 {
        Fh3::from_ino(1, n)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sgfs-blockstore-test-{tag}-{}", std::process::id()))
    }

    fn exercise(store: &mut dyn BlockStore) {
        store.put((fh(1), 0), &[1; 100], false);
        store.put((fh(1), 32768), &[2; 100], true);
        store.put((fh(2), 0), &[3; 50], true);

        assert_eq!(store.get(&(fh(1), 0)).unwrap(), vec![1; 100]);
        assert_eq!(store.get(&(fh(1), 32768)).unwrap(), vec![2; 100]);
        assert!(store.get(&(fh(1), 999)).is_none());
        assert!(store.meta(&(fh(1), 32768)).unwrap().dirty);
        assert_eq!(store.blocks_of(&fh(1)), vec![0, 32768]);
        assert_eq!(store.dirty_blocks_of(&fh(1)), vec![32768]);
        assert_eq!(store.dirty_files(), vec![fh(1), fh(2)]);
        assert_eq!(store.total_bytes(), 250);
        assert_eq!(store.dirty_bytes(), 150);

        store.set_clean(&(fh(1), 32768));
        assert_eq!(store.dirty_blocks_of(&fh(1)), Vec::<u64>::new());
        store.set_dirty(&(fh(1), 32768));
        assert_eq!(store.dirty_blocks_of(&fh(1)), vec![32768], "re-dirtied for retry");
        store.set_dirty(&(fh(9), 0)); // absent key: no-op
        store.set_clean(&(fh(1), 32768));

        store.drop_file(&fh(1));
        assert!(store.get(&(fh(1), 0)).is_none());
        assert_eq!(store.get(&(fh(2), 0)).unwrap(), vec![3; 50]);
    }

    #[test]
    fn disk_store_semantics() {
        let mut store = DiskStore::new(temp_dir("disk")).unwrap();
        exercise(&mut store);
    }

    #[test]
    fn mem_store_semantics() {
        let mut store = MemStore::new(1 << 20);
        exercise(&mut store);
    }

    #[test]
    fn disk_store_overwrite_block() {
        let mut store = DiskStore::new(temp_dir("ow")).unwrap();
        store.put((fh(1), 0), &[1; 100], false);
        store.put((fh(1), 0), &[9; 80], true);
        assert_eq!(store.get(&(fh(1), 0)).unwrap(), vec![9; 80]);
        assert!(store.meta(&(fh(1), 0)).unwrap().dirty);
        assert_eq!(store.total_bytes(), 80);
    }

    #[test]
    fn mem_store_evicts_clean_not_dirty() {
        let mut store = MemStore::new(250);
        store.put((fh(1), 0), &[1; 100], true); // dirty: protected
        store.put((fh(1), 1), &[2; 100], false);
        store.put((fh(1), 2), &[3; 100], false); // over budget
        assert!(store.get(&(fh(1), 0)).is_some(), "dirty block survives");
        assert!(store.total_bytes() <= 250);
    }

    #[test]
    fn disk_store_cleans_up_spool_dir() {
        let dir = temp_dir("cleanup");
        {
            let mut store = DiskStore::new(dir.clone()).unwrap();
            store.put((fh(1), 0), &[1; 10], false);
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spool removed on drop");
    }
}
