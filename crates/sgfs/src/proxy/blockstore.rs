//! The client proxy's data-block cache backing stores.
//!
//! The paper's WAN configuration caches 32 KB data blocks on the client
//! host's local disk; the SFS-style daemon keeps a bounded in-memory block
//! cache instead. Both stores index blocks by `(file handle, offset)` and
//! track a dirty bit for write-back.
//!
//! The disk store can additionally run **crash-consistent**: with a
//! [`DurabilityPolicy`] whose journal is enabled, every dirty-block state
//! change is logged to a write-ahead journal (see
//! [`journal`](super::journal)) in the spool directory, the spool survives
//! restarts, and [`DiskStore::with_durability`] replays the journal to
//! re-mark surviving blocks dirty before the proxy serves its first call.

use super::journal::{Journal, RecoveryReport, Survivor};
use crate::config::DurabilityPolicy;
use crate::stats::ProxyStats;
use sgfs_net::{CrashInjector, CrashPoint};
use sgfs_nfs3::Fh3;
use sgfs_obs::{Hop, Obs};
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Key of one cached block.
pub type BlockKey = (Fh3, u64);

/// Metadata for one resident block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Block payload length.
    pub len: u32,
    /// Dirty (written back on flush) vs clean.
    pub dirty: bool,
}

/// A block store: where cached data blocks live.
///
/// Mutating operations return `io::Result` so a journaled disk store can
/// refuse to acknowledge state it could not make durable; the in-memory
/// store never fails. Callers distinguish an injected crash
/// ([`sgfs_net::crash::is_crash`]) — which must propagate — from a
/// genuine I/O error, which degrades the block to write-through.
pub trait BlockStore: Send {
    /// Fetch a block's bytes, if cached.
    fn get(&mut self, key: &BlockKey) -> Option<Vec<u8>>;
    /// Insert/overwrite a block.
    fn put(&mut self, key: BlockKey, data: &[u8], dirty: bool) -> std::io::Result<()>;
    /// Metadata without reading the payload.
    fn meta(&self, key: &BlockKey) -> Option<BlockMeta>;
    /// Mark a resident block clean (its WRITE was acked upstream).
    fn set_clean(&mut self, key: &BlockKey) -> std::io::Result<()>;
    /// Re-mark a resident block dirty — used when a flush fails (or the
    /// server's write verifier changes) after the block was already
    /// marked clean, so a later retry re-sends it.
    fn set_dirty(&mut self, key: &BlockKey) -> std::io::Result<()>;
    /// The server confirmed a COMMIT of `fh`: its clean blocks are now
    /// stable and need not survive a crash. No visible state changes;
    /// journaled stores use this to shrink the recovery set.
    fn commit_file(&mut self, _fh: &Fh3) -> std::io::Result<()> {
        Ok(())
    }
    /// All block offsets cached for `fh`, sorted.
    fn blocks_of(&self, fh: &Fh3) -> Vec<u64>;
    /// All dirty block offsets for `fh`, sorted.
    fn dirty_blocks_of(&self, fh: &Fh3) -> Vec<u64>;
    /// Every file handle with at least one dirty block.
    fn dirty_files(&self) -> Vec<Fh3>;
    /// Drop all blocks of `fh` (cached *and* dirty — deletion of a file
    /// discards its unflushed data, the paper's temporary-file win).
    fn drop_file(&mut self, fh: &Fh3);
    /// Total bytes cached.
    fn total_bytes(&self) -> u64;
    /// Total dirty bytes.
    fn dirty_bytes(&self) -> u64;
}

/// Disk-backed store: one spool file per cached file handle, written at
/// block offsets (sparse), with an in-memory index. Real file I/O makes
/// the disk-cache cost in the benchmarks genuine.
///
/// Two modes:
///
/// * [`new`](Self::new) — ephemeral: the spool directory is cleared on
///   open and removed on drop (each benchmark session starts cold, per
///   the paper's methodology). A crash discards dirty blocks.
/// * [`with_durability`](Self::with_durability) — crash-consistent: the
///   spool and a write-ahead journal persist across restarts, and
///   construction replays the journal into the index.
pub struct DiskStore {
    dir: PathBuf,
    index: HashMap<BlockKey, BlockMeta>,
    open: HashMap<Fh3, std::fs::File>,
    journal: Option<Journal>,
    stats: Option<Arc<ProxyStats>>,
    crash: Option<Arc<CrashInjector>>,
    /// Keep the spool directory on drop (journal mode).
    persist: bool,
}

impl DiskStore {
    /// Create an ephemeral store spooling under `dir` (created if
    /// missing, and cleared — each session starts with a cold cache, per
    /// the paper's methodology).
    pub fn new(dir: PathBuf) -> std::io::Result<Self> {
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            index: HashMap::new(),
            open: HashMap::new(),
            journal: None,
            stats: None,
            crash: None,
            persist: false,
        })
    }

    /// Open a crash-consistent store under `dir`: recover the journal
    /// left by a previous incarnation (replaying up to the first torn
    /// record), re-mark every surviving block dirty, and start journaling
    /// new state. With `policy.journal` off this degenerates to
    /// [`new`](Self::new).
    pub fn with_durability(
        dir: PathBuf,
        policy: DurabilityPolicy,
        stats: Option<Arc<ProxyStats>>,
        obs: Option<Arc<Obs>>,
        crash: Option<Arc<CrashInjector>>,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        if !policy.journal {
            let mut s = Self::new(dir)?;
            s.stats = stats;
            s.crash = crash;
            return Ok((s, RecoveryReport::default()));
        }
        std::fs::create_dir_all(&dir)?;
        let t0 = std::time::Instant::now();
        let mut report = Journal::recover(&dir);
        Journal::truncate_tail(&dir, &report)?;
        let mut store = Self {
            dir,
            index: HashMap::new(),
            open: HashMap::new(),
            journal: None,
            stats: stats.clone(),
            crash: crash.clone(),
            persist: true,
        };
        // Re-admit survivors, verifying the spool actually holds the
        // bytes the journal promises (spool writes precede journal
        // appends, so a shortfall means external tampering — skip and
        // count rather than resurrect garbage).
        let mut recovered: Vec<Survivor> = Vec::new();
        let mut recovered_bytes = 0u64;
        for s in std::mem::take(&mut report.survivors) {
            let (fh, offset) = &s.key;
            let end = *offset + s.len as u64;
            let ok = store
                .file_for(&fh.clone())
                .and_then(|f| f.metadata())
                .map(|m| m.len() >= end)
                .unwrap_or(false);
            if ok {
                store
                    .index
                    .insert(s.key.clone(), BlockMeta { len: s.len, dirty: true });
                recovered_bytes += s.len as u64;
                recovered.push(s);
            } else if let Some(st) = &stats {
                st.add_cache_io_error();
            }
        }
        let mut journal =
            Journal::open(&store.dir, policy, &recovered, report.records_replayed)?;
        journal.instrument(stats.clone(), obs.clone(), crash);
        store.journal = Some(journal);
        report.survivors = recovered;
        if let Some(st) = &stats {
            st.add_recovered(report.survivors.len() as u64, recovered_bytes);
        }
        if let Some(o) = &obs {
            o.emit(Hop::RecoveryReplay, 0, sgfs_obs::NO_PROC, report.records_replayed);
            if report.torn_bytes > 0 {
                o.emit(Hop::RecoveryTorn, 0, sgfs_obs::NO_PROC, report.torn_bytes);
            }
            o.emit(Hop::RecoveryComplete, 0, sgfs_obs::NO_PROC, report.survivors.len() as u64);
            o.record_hop(Hop::RecoveryComplete, t0.elapsed().as_nanos() as u64);
        }
        Ok((store, report))
    }

    /// The spool directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// Force journal buffers to disk (session teardown).
    pub fn sync_journal(&mut self) -> std::io::Result<()> {
        match &mut self.journal {
            Some(j) => j.sync(),
            None => Ok(()),
        }
    }

    fn hit(&self, point: CrashPoint) -> std::io::Result<()> {
        match &self.crash {
            Some(c) => c.hit(point),
            None => Ok(()),
        }
    }

    fn count_io_error(&self) {
        if let Some(s) = &self.stats {
            s.add_cache_io_error();
        }
    }

    fn file_for(&mut self, fh: &Fh3) -> std::io::Result<&mut std::fs::File> {
        if !self.open.contains_key(fh) {
            let path = self.dir.join(Self::spool_name(fh));
            let f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?;
            self.open.insert(fh.clone(), f);
        }
        Ok(self.open.get_mut(fh).expect("just inserted"))
    }

    fn spool_name(fh: &Fh3) -> String {
        let name: String = fh.0.iter().map(|b| format!("{b:02x}")).collect();
        format!("{name}.spool")
    }
}

impl BlockStore for DiskStore {
    fn get(&mut self, key: &BlockKey) -> Option<Vec<u8>> {
        let meta = *self.index.get(key)?;
        let (fh, offset) = key;
        let fh = fh.clone();
        let offset = *offset;
        let mut buf = vec![0u8; meta.len as usize];
        let read = (|| -> std::io::Result<()> {
            let f = self.file_for(&fh)?;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(&mut buf)
        })();
        match read {
            Ok(()) => Some(buf),
            Err(_) => {
                // Spool read failed: the index promised bytes the disk
                // no longer yields. Evict the entry (forcing an upstream
                // re-READ) rather than serve a short block; count it.
                self.index.remove(key);
                self.count_io_error();
                None
            }
        }
    }

    fn put(&mut self, key: BlockKey, data: &[u8], dirty: bool) -> std::io::Result<()> {
        self.hit(CrashPoint::BeforeSpoolWrite)?;
        let (fh, offset) = &key;
        let fh = fh.clone();
        let offset = *offset;
        let write = (|| -> std::io::Result<()> {
            let f = self.file_for(&fh)?;
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(data)
        })();
        if let Err(e) = write {
            // Short writes / ENOSPC no longer insert a lying index entry;
            // the caller decides whether to degrade to write-through.
            self.count_io_error();
            return Err(e);
        }
        self.hit(CrashPoint::AfterSpoolWrite)?;
        if let Some(j) = &mut self.journal {
            j.record_put(&key, data.len() as u32, dirty)?;
        }
        self.index
            .insert(key, BlockMeta { len: data.len() as u32, dirty });
        Ok(())
    }

    fn meta(&self, key: &BlockKey) -> Option<BlockMeta> {
        self.index.get(key).copied()
    }

    fn set_clean(&mut self, key: &BlockKey) -> std::io::Result<()> {
        if !self.index.contains_key(key) {
            return Ok(());
        }
        if let Some(j) = &mut self.journal {
            j.record_set_clean(key)?;
        }
        if let Some(m) = self.index.get_mut(key) {
            m.dirty = false;
        }
        Ok(())
    }

    fn set_dirty(&mut self, key: &BlockKey) -> std::io::Result<()> {
        let Some(len) = self.index.get(key).map(|m| m.len) else {
            return Ok(());
        };
        if let Some(j) = &mut self.journal {
            j.record_set_dirty(key, len)?;
        }
        if let Some(m) = self.index.get_mut(key) {
            m.dirty = true;
        }
        Ok(())
    }

    fn commit_file(&mut self, fh: &Fh3) -> std::io::Result<()> {
        if let Some(j) = &mut self.journal {
            j.record_commit_file(fh)?;
        }
        Ok(())
    }

    fn blocks_of(&self, fh: &Fh3) -> Vec<u64> {
        let mut v: Vec<u64> =
            self.index.keys().filter(|(f, _)| f == fh).map(|(_, o)| *o).collect();
        v.sort_unstable();
        v
    }

    fn dirty_blocks_of(&self, fh: &Fh3) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .index
            .iter()
            .filter(|((f, _), m)| f == fh && m.dirty)
            .map(|((_, o), _)| *o)
            .collect();
        v.sort_unstable();
        v
    }

    fn dirty_files(&self) -> Vec<Fh3> {
        let mut v: Vec<Fh3> = self
            .index
            .iter()
            .filter(|(_, m)| m.dirty)
            .map(|((f, _), _)| f.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    fn drop_file(&mut self, fh: &Fh3) {
        // Journal first: if the append fails (crash), the blocks stay
        // both in the index and in the recovery set — dropping from the
        // index but not the journal would resurrect deleted data.
        if let Some(j) = &mut self.journal {
            if j.record_drop_file(fh).is_err() {
                self.count_io_error();
                return;
            }
        }
        self.index.retain(|(f, _), _| f != fh);
        if self.open.remove(fh).is_some()
            && std::fs::remove_file(self.dir.join(Self::spool_name(fh))).is_err()
        {
            // The spool file lingers (it will be truncated on reuse or
            // removed with the directory); count, don't ignore.
            self.count_io_error();
        }
    }

    fn total_bytes(&self) -> u64 {
        self.index.values().map(|m| m.len as u64).sum()
    }

    fn dirty_bytes(&self) -> u64 {
        self.index.values().filter(|m| m.dirty).map(|m| m.len as u64).sum()
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        if self.persist {
            // Crash-consistent mode: the spool and journal ARE the
            // durable state; flush journal buffers and leave everything
            // in place for the next incarnation.
            if let Some(j) = &mut self.journal {
                let _ = j.sync();
            }
            return;
        }
        self.open.clear();
        if std::fs::remove_dir_all(&self.dir).is_err() && self.dir.exists() {
            self.count_io_error();
        }
    }
}

/// In-memory store (SFS-style daemon cache), bounded by FIFO eviction of
/// clean blocks.
pub struct MemStore {
    blocks: HashMap<BlockKey, (Vec<u8>, bool)>,
    order: std::collections::VecDeque<BlockKey>,
    capacity: u64,
    resident: u64,
}

impl MemStore {
    /// Store capped at `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            blocks: HashMap::new(),
            order: std::collections::VecDeque::new(),
            capacity,
            resident: 0,
        }
    }
}

impl BlockStore for MemStore {
    fn get(&mut self, key: &BlockKey) -> Option<Vec<u8>> {
        self.blocks.get(key).map(|(d, _)| d.clone())
    }

    fn put(&mut self, key: BlockKey, data: &[u8], dirty: bool) -> std::io::Result<()> {
        if let Some((old, _)) = self.blocks.insert(key.clone(), (data.to_vec(), dirty)) {
            self.resident -= old.len() as u64;
        } else {
            self.order.push_back(key);
        }
        self.resident += data.len() as u64;
        // Evict clean blocks FIFO while over budget.
        let mut scanned = 0;
        while self.resident > self.capacity && scanned < self.order.len() {
            let victim = match self.order.pop_front() {
                Some(v) => v,
                None => break,
            };
            match self.blocks.get(&victim) {
                Some((_, true)) => {
                    self.order.push_back(victim); // dirty: keep
                    scanned += 1;
                }
                Some((d, false)) => {
                    self.resident -= d.len() as u64;
                    self.blocks.remove(&victim);
                }
                None => {}
            }
        }
        Ok(())
    }

    fn meta(&self, key: &BlockKey) -> Option<BlockMeta> {
        self.blocks
            .get(key)
            .map(|(d, dirty)| BlockMeta { len: d.len() as u32, dirty: *dirty })
    }

    fn set_clean(&mut self, key: &BlockKey) -> std::io::Result<()> {
        if let Some((_, dirty)) = self.blocks.get_mut(key) {
            *dirty = false;
        }
        Ok(())
    }

    fn set_dirty(&mut self, key: &BlockKey) -> std::io::Result<()> {
        if let Some((_, dirty)) = self.blocks.get_mut(key) {
            *dirty = true;
        }
        Ok(())
    }

    fn blocks_of(&self, fh: &Fh3) -> Vec<u64> {
        let mut v: Vec<u64> =
            self.blocks.keys().filter(|(f, _)| f == fh).map(|(_, o)| *o).collect();
        v.sort_unstable();
        v
    }

    fn dirty_blocks_of(&self, fh: &Fh3) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .blocks
            .iter()
            .filter(|((f, _), (_, dirty))| f == fh && *dirty)
            .map(|((_, o), _)| *o)
            .collect();
        v.sort_unstable();
        v
    }

    fn dirty_files(&self) -> Vec<Fh3> {
        let mut v: Vec<Fh3> = self
            .blocks
            .iter()
            .filter(|(_, (_, dirty))| *dirty)
            .map(|((f, _), _)| f.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    fn drop_file(&mut self, fh: &Fh3) {
        let dropped: Vec<BlockKey> =
            self.blocks.keys().filter(|(f, _)| f == fh).cloned().collect();
        for key in dropped {
            if let Some((d, _)) = self.blocks.remove(&key) {
                self.resident -= d.len() as u64;
            }
        }
        self.order.retain(|(f, _)| f != fh);
    }

    fn total_bytes(&self) -> u64 {
        self.resident
    }

    fn dirty_bytes(&self) -> u64 {
        self.blocks
            .values()
            .filter(|(_, dirty)| *dirty)
            .map(|(d, _)| d.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh(n: u64) -> Fh3 {
        Fh3::from_ino(1, n)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sgfs-blockstore-test-{tag}-{}", std::process::id()))
    }

    fn exercise(store: &mut dyn BlockStore) {
        store.put((fh(1), 0), &[1; 100], false).unwrap();
        store.put((fh(1), 32768), &[2; 100], true).unwrap();
        store.put((fh(2), 0), &[3; 50], true).unwrap();

        assert_eq!(store.get(&(fh(1), 0)).unwrap(), vec![1; 100]);
        assert_eq!(store.get(&(fh(1), 32768)).unwrap(), vec![2; 100]);
        assert!(store.get(&(fh(1), 999)).is_none());
        assert!(store.meta(&(fh(1), 32768)).unwrap().dirty);
        assert_eq!(store.blocks_of(&fh(1)), vec![0, 32768]);
        assert_eq!(store.dirty_blocks_of(&fh(1)), vec![32768]);
        assert_eq!(store.dirty_files(), vec![fh(1), fh(2)]);
        assert_eq!(store.total_bytes(), 250);
        assert_eq!(store.dirty_bytes(), 150);

        store.set_clean(&(fh(1), 32768)).unwrap();
        assert_eq!(store.dirty_blocks_of(&fh(1)), Vec::<u64>::new());
        store.set_dirty(&(fh(1), 32768)).unwrap();
        assert_eq!(store.dirty_blocks_of(&fh(1)), vec![32768], "re-dirtied for retry");
        store.set_dirty(&(fh(9), 0)).unwrap(); // absent key: no-op
        store.set_clean(&(fh(1), 32768)).unwrap();
        store.commit_file(&fh(1)).unwrap();

        store.drop_file(&fh(1));
        assert!(store.get(&(fh(1), 0)).is_none());
        assert_eq!(store.get(&(fh(2), 0)).unwrap(), vec![3; 50]);
    }

    #[test]
    fn disk_store_semantics() {
        let mut store = DiskStore::new(temp_dir("disk")).unwrap();
        exercise(&mut store);
    }

    #[test]
    fn journaled_disk_store_semantics() {
        let dir = temp_dir("disk-journal");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut store, report) = DiskStore::with_durability(
                dir.clone(),
                DurabilityPolicy::default(),
                None,
                None,
                None,
            )
            .unwrap();
            assert!(report.survivors.is_empty(), "cold start");
            exercise(&mut store);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_store_semantics() {
        let mut store = MemStore::new(1 << 20);
        exercise(&mut store);
    }

    #[test]
    fn disk_store_overwrite_block() {
        let mut store = DiskStore::new(temp_dir("ow")).unwrap();
        store.put((fh(1), 0), &[1; 100], false).unwrap();
        store.put((fh(1), 0), &[9; 80], true).unwrap();
        assert_eq!(store.get(&(fh(1), 0)).unwrap(), vec![9; 80]);
        assert!(store.meta(&(fh(1), 0)).unwrap().dirty);
        assert_eq!(store.total_bytes(), 80);
    }

    #[test]
    fn mem_store_evicts_clean_not_dirty() {
        let mut store = MemStore::new(250);
        store.put((fh(1), 0), &[1; 100], true).unwrap(); // dirty: protected
        store.put((fh(1), 1), &[2; 100], false).unwrap();
        store.put((fh(1), 2), &[3; 100], false).unwrap(); // over budget
        assert!(store.get(&(fh(1), 0)).is_some(), "dirty block survives");
        assert!(store.total_bytes() <= 250);
    }

    #[test]
    fn disk_store_cleans_up_spool_dir() {
        let dir = temp_dir("cleanup");
        {
            let mut store = DiskStore::new(dir.clone()).unwrap();
            store.put((fh(1), 0), &[1; 10], false).unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spool removed on drop");
    }

    #[test]
    fn journaled_store_survives_restart() {
        let dir = temp_dir("restart");
        let _ = std::fs::remove_dir_all(&dir);
        let policy = DurabilityPolicy::default();
        {
            let (mut store, _) =
                DiskStore::with_durability(dir.clone(), policy, None, None, None).unwrap();
            store.put((fh(1), 0), &[7; 100], true).unwrap();
            store.put((fh(1), 32768), &[8; 64], true).unwrap();
            store.put((fh(2), 0), &[9; 10], false).unwrap(); // clean: not recovered
        }
        assert!(dir.exists(), "spool persists in journal mode");
        let (mut store, report) =
            DiskStore::with_durability(dir.clone(), policy, None, None, None).unwrap();
        assert_eq!(report.survivors.len(), 2);
        assert_eq!(store.dirty_blocks_of(&fh(1)), vec![0, 32768]);
        assert_eq!(store.get(&(fh(1), 0)).unwrap(), vec![7; 100], "payload recovered");
        assert_eq!(store.get(&(fh(1), 32768)).unwrap(), vec![8; 64]);
        assert!(store.get(&(fh(2), 0)).is_none(), "clean block not resurrected");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_blocks_do_not_recover() {
        let dir = temp_dir("committed");
        let _ = std::fs::remove_dir_all(&dir);
        let policy = DurabilityPolicy::default();
        {
            let (mut store, _) =
                DiskStore::with_durability(dir.clone(), policy, None, None, None).unwrap();
            store.put((fh(1), 0), &[7; 100], true).unwrap();
            store.set_clean(&(fh(1), 0)).unwrap();
            store.commit_file(&fh(1)).unwrap();
            store.put((fh(1), 32768), &[8; 64], true).unwrap(); // post-commit write
        }
        let (_store, report) =
            DiskStore::with_durability(dir.clone(), policy, None, None, None).unwrap();
        let keys: Vec<_> = report.survivors.iter().map(|s| s.key.clone()).collect();
        assert_eq!(keys, vec![(fh(1), 32768)], "only the uncommitted block recovers");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_before_commit_still_recovers_dirty() {
        let dir = temp_dir("clean-uncommitted");
        let _ = std::fs::remove_dir_all(&dir);
        let policy = DurabilityPolicy::default();
        {
            let (mut store, _) =
                DiskStore::with_durability(dir.clone(), policy, None, None, None).unwrap();
            store.put((fh(1), 0), &[7; 100], true).unwrap();
            store.set_clean(&(fh(1), 0)).unwrap(); // WRITE acked, COMMIT never ran
        }
        let (store, report) =
            DiskStore::with_durability(dir.clone(), policy, None, None, None).unwrap();
        assert_eq!(report.survivors.len(), 1);
        assert_eq!(store.dirty_blocks_of(&fh(1)), vec![0], "recovered dirty, not clean");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_file_stays_dropped_after_restart() {
        let dir = temp_dir("dropped");
        let _ = std::fs::remove_dir_all(&dir);
        let policy = DurabilityPolicy::default();
        {
            let (mut store, _) =
                DiskStore::with_durability(dir.clone(), policy, None, None, None).unwrap();
            store.put((fh(1), 0), &[7; 100], true).unwrap();
            store.drop_file(&fh(1));
        }
        let (_store, report) =
            DiskStore::with_durability(dir.clone(), policy, None, None, None).unwrap();
        assert!(report.survivors.is_empty(), "deleted data not resurrected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_disabled_policy_behaves_ephemeral() {
        let dir = temp_dir("nojournal");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut store, _) = DiskStore::with_durability(
                dir.clone(),
                DurabilityPolicy::none(),
                None,
                None,
                None,
            )
            .unwrap();
            store.put((fh(1), 0), &[7; 100], true).unwrap();
        }
        assert!(!dir.exists(), "ephemeral mode cleans up");
    }

    #[test]
    fn recovery_counts_into_stats() {
        let dir = temp_dir("recovery-stats");
        let _ = std::fs::remove_dir_all(&dir);
        let policy = DurabilityPolicy::default();
        {
            let (mut store, _) =
                DiskStore::with_durability(dir.clone(), policy, None, None, None).unwrap();
            store.put((fh(1), 0), &[7; 100], true).unwrap();
        }
        let stats = ProxyStats::new();
        let (_store, _) = DiskStore::with_durability(
            dir.clone(),
            policy,
            Some(stats.clone()),
            None,
            None,
        )
        .unwrap();
        assert_eq!(stats.recovered(), (1, 100));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
