//! The SGFS client- and server-side proxies.

pub mod blockstore;
pub mod client;
pub mod journal;
pub mod pipeline;
pub mod retry;
pub mod server;
pub mod stripe;

pub use client::ClientProxy;
pub use pipeline::Pipeline;
pub use retry::Reconnector;
pub use server::ServerProxy;
pub use stripe::{StripeMap, StripeSet};

/// Proxy-layer errors.
#[derive(Debug)]
pub enum ProxyError {
    /// The authenticated grid user is not authorized by the gridmap.
    Unauthorized(String),
    /// Transport failure.
    Io(std::io::Error),
    /// Protocol violation.
    Protocol(String),
}

impl std::fmt::Display for ProxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyError::Unauthorized(dn) => write!(f, "grid user {dn} not authorized"),
            ProxyError::Io(e) => write!(f, "proxy transport error: {e}"),
            ProxyError::Protocol(s) => write!(f, "proxy protocol error: {s}"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<std::io::Error> for ProxyError {
    fn from(e: std::io::Error) -> Self {
        ProxyError::Io(e)
    }
}
