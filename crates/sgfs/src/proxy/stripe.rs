//! Multi-server placement: the stripe map and the runtime stripe set.
//!
//! A session placed across several FSS upstreams (see
//! [`StripePolicy`](crate::config::StripePolicy)) routes every file block
//! through the **stripe map**: a pure function from block index to the
//! `replicas` distinct members that hold the block. The map is
//! deterministic — no RNG, no state — so the client, a rebuilt client,
//! and a test oracle all agree on the placement, and a reconnect cannot
//! silently re-home blocks.
//!
//! The **stripe set** is the runtime side: one pipelined channel per
//! member plus an up/down flag. Reads try a block's members in map order
//! and fail over past down members; replicated flushes fan WRITE batches
//! out to every live member of each block. The set is cheap to clone
//! (pipelines are handles, flags are shared), which is how the read-ahead
//! worker fans prefetches out across servers without a second thread per
//! upstream.

use crate::config::StripePolicy;
use crate::proxy::pipeline::Pipeline;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Pure block → members placement for one session.
///
/// Member of replica `j` of block `b` is `(b * replicas + j) % width`:
/// consecutive residues, so the `replicas` members of one block are
/// always distinct (`replicas <= width`), and the assignment sequence is
/// a plain round-robin over the members — over any prefix of blocks,
/// per-member load is balanced within one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeMap {
    width: u32,
    replicas: u32,
    block_size: u32,
}

impl StripeMap {
    /// Build the map for a placement, clamping degenerate policies
    /// (`width >= 1`, `1 <= replicas <= width`, `block_size >= 1`).
    pub fn new(policy: StripePolicy) -> Self {
        let width = policy.width.max(1);
        Self {
            width,
            replicas: policy.replicas.clamp(1, width),
            block_size: policy.block_size.max(1),
        }
    }

    /// Number of members the map distributes over.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Replicas per block.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Stripe unit in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// The block index a byte offset falls in.
    pub fn block_of(&self, offset: u64) -> u64 {
        offset / self.block_size as u64
    }

    /// The distinct members holding `block`, in read-preference order
    /// (the first is the block's primary).
    pub fn members_of_block(&self, block: u64) -> Vec<usize> {
        let base = block * self.replicas as u64;
        (0..self.replicas as u64)
            .map(|j| ((base + j) % self.width as u64) as usize)
            .collect()
    }

    /// The members holding the block containing byte `offset`.
    pub fn members_of_offset(&self, offset: u64) -> Vec<usize> {
        self.members_of_block(self.block_of(offset))
    }
}

/// One upstream member of a striped session.
///
/// The pipeline slot is shared across every clone of the set (the proxy
/// and its read-ahead worker), so a re-sync can swap in a fresh channel
/// for a member whose old pipeline burned its reconnect budget while the
/// host was away.
#[derive(Clone)]
struct Member {
    pipeline: Arc<Mutex<Pipeline>>,
    up: Arc<AtomicBool>,
}

/// The runtime stripe set: the map plus one pipelined channel and one
/// up/down flag per member.
///
/// Down is sticky until [`mark_up`](Self::mark_up): a member is marked
/// down when a call on it fails terminally (its own reconnect/replay
/// machinery already ran and gave up), and rejoins only after an explicit
/// re-sync (`ClientProxy::resync_member`).
#[derive(Clone)]
pub struct StripeSet {
    map: StripeMap,
    members: Vec<Member>,
}

impl StripeSet {
    /// Assemble a set from one pipeline per member. `pipelines.len()`
    /// must equal the map width.
    pub fn new(map: StripeMap, pipelines: Vec<Pipeline>) -> Self {
        assert_eq!(
            pipelines.len(),
            map.width() as usize,
            "stripe set needs exactly one pipeline per member"
        );
        Self {
            map,
            members: pipelines
                .into_iter()
                .map(|pipeline| Member {
                    pipeline: Arc::new(Mutex::new(pipeline)),
                    up: Arc::new(AtomicBool::new(true)),
                })
                .collect(),
        }
    }

    /// The placement map.
    pub fn map(&self) -> &StripeMap {
        &self.map
    }

    /// Number of members.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// The member's pipelined channel (a cheap cloneable handle).
    pub fn member(&self, idx: usize) -> Pipeline {
        self.members[idx].pipeline.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Swap in a fresh channel for `idx` — the rejoin half of failover.
    /// Every clone of the set observes the replacement; the old pipeline
    /// retires when its last outstanding handle drops.
    pub fn replace_member(&self, idx: usize, pipeline: Pipeline) {
        *self.members[idx].pipeline.lock().unwrap_or_else(|e| e.into_inner()) = pipeline;
    }

    /// Whether the member is currently in the read/write set.
    pub fn is_up(&self, idx: usize) -> bool {
        self.members[idx].up.load(Ordering::Acquire)
    }

    /// Take the member out of the read/write set. Returns `true` if this
    /// call transitioned it (so callers emit the failover event exactly
    /// once per incident even when racing the read-ahead worker).
    pub fn mark_down(&self, idx: usize) -> bool {
        self.members[idx].up.swap(false, Ordering::AcqRel)
    }

    /// Return a re-synced member to the read/write set.
    pub fn mark_up(&self, idx: usize) {
        self.members[idx].up.store(true, Ordering::Release);
    }

    /// Members currently marked down.
    pub fn down_count(&self) -> u64 {
        self.members.iter().filter(|m| !m.up.load(Ordering::Acquire)).count() as u64
    }

    /// The live members of `block`, in read-preference order.
    pub fn live_members_of_block(&self, block: u64) -> Vec<usize> {
        self.map
            .members_of_block(block)
            .into_iter()
            .filter(|&m| self.is_up(m))
            .collect()
    }

    /// The lowest-index live member (metadata traffic routes here), or
    /// `None` when every member is down.
    pub fn first_live(&self) -> Option<usize> {
        (0..self.members.len()).find(|&m| self.is_up(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(width: u32, replicas: u32, block_size: u32) -> StripeMap {
        StripeMap::new(StripePolicy { width, replicas, block_size })
    }

    /// Per-member block counts over the first `blocks` blocks.
    fn coverage(m: &StripeMap, blocks: u64) -> Vec<u64> {
        let mut counts = vec![0u64; m.width() as usize];
        for b in 0..blocks {
            for member in m.members_of_block(b) {
                counts[member] += 1;
            }
        }
        counts
    }

    #[test]
    fn degenerate_policies_clamp() {
        let m = map(0, 0, 0);
        assert_eq!((m.width(), m.replicas(), m.block_size()), (1, 1, 1));
        let m = map(2, 5, 512);
        assert_eq!(m.replicas(), 2, "replicas clamped to width");
    }

    #[test]
    fn width_one_maps_everything_to_member_zero() {
        let m = map(1, 1, 512);
        for b in [0, 1, 7, 1000] {
            assert_eq!(m.members_of_block(b), vec![0]);
        }
    }

    #[test]
    fn offsets_bucket_by_block_size() {
        let m = map(4, 1, 512);
        assert_eq!(m.block_of(0), 0);
        assert_eq!(m.block_of(511), 0);
        assert_eq!(m.block_of(512), 1);
        assert_eq!(m.members_of_offset(1024), m.members_of_block(2));
    }

    #[test]
    fn replicas_are_distinct_members() {
        let m = map(4, 3, 512);
        for b in 0..64 {
            let members = m.members_of_block(b);
            let mut dedup = members.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "block {b}: {members:?}");
        }
    }

    #[test]
    fn coverage_balanced_within_one_block() {
        // The counterexample that killed the primary+consecutive scheme:
        // 2 blocks, width 4, 2 replicas must land one block per member.
        let counts = coverage(&map(4, 2, 512), 2);
        assert_eq!(counts, vec![1, 1, 1, 1]);
        for (w, r, n) in [(4u32, 1u32, 10u64), (3, 2, 7), (5, 3, 11), (8, 2, 1)] {
            let counts = coverage(&map(w, r, 512), n);
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(max - min <= 1, "w={w} r={r} n={n}: {counts:?}");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary placement: every block of the file maps to
            /// exactly `replicas` *distinct* members, and per-member
            /// coverage over the whole file is balanced within one block.
            #[test]
            fn placement_is_distinct_and_balanced(
                file_size in 0u64..4 * 1024 * 1024,
                block_size in 1u32..128 * 1024,
                width in 1u32..9,
                replicas in 1u32..9,
            ) {
                let m = map(width, replicas, block_size);
                let blocks = file_size.div_ceil(m.block_size() as u64);
                let mut counts = vec![0u64; m.width() as usize];
                for b in 0..blocks {
                    let members = m.members_of_block(b);
                    prop_assert_eq!(members.len(), m.replicas() as usize);
                    let mut dedup = members.clone();
                    dedup.sort_unstable();
                    dedup.dedup();
                    prop_assert_eq!(
                        dedup.len(), m.replicas() as usize,
                        "block {} placed twice on one member: {:?}", b, members
                    );
                    for member in members {
                        prop_assert!(member < m.width() as usize);
                        counts[member] += 1;
                    }
                }
                let min = counts.iter().min().copied().unwrap_or(0);
                let max = counts.iter().max().copied().unwrap_or(0);
                prop_assert!(
                    max - min <= 1,
                    "coverage skew over {} blocks: {:?}", blocks, counts
                );
            }

            /// The map is a pure function of the policy: a rebuilt map
            /// (what a reconnect or a fresh client produces) places every
            /// block and byte offset identically. No block silently
            /// re-homes across a session recovery.
            #[test]
            fn placement_is_stable_across_rebuilds(
                block_size in 1u32..128 * 1024,
                width in 0u32..9,
                replicas in 0u32..12,
                probe_blocks in proptest::collection::vec(0u64..1 << 40, 1..32),
                probe_offsets in proptest::collection::vec(0u64..1 << 50, 1..32),
            ) {
                let policy = StripePolicy { width, replicas, block_size };
                let a = StripeMap::new(policy);
                let b = StripeMap::new(policy);
                prop_assert_eq!(a, b);
                for &blk in &probe_blocks {
                    prop_assert_eq!(a.members_of_block(blk), b.members_of_block(blk));
                }
                for &off in &probe_offsets {
                    prop_assert_eq!(a.block_of(off), b.block_of(off));
                    prop_assert_eq!(a.members_of_offset(off), b.members_of_offset(off));
                }
            }
        }
    }

    #[test]
    fn stripe_set_tracks_membership() {
        use crate::stats::ProxyStats;
        use sgfs_net::pipe_pair;

        let m = map(2, 2, 512);
        let mut pipelines = Vec::new();
        let mut servers = Vec::new();
        for _ in 0..2 {
            let (client, server) = pipe_pair();
            let watch = client.watch();
            servers.push(server);
            pipelines.push(Pipeline::new(
                crate::proxy::client::Upstream::Plain(Box::new(client)),
                watch,
                4,
                None,
                ProxyStats::new(),
            ));
        }
        let set = StripeSet::new(m, pipelines);
        assert_eq!(set.width(), 2);
        assert_eq!(set.first_live(), Some(0));
        assert_eq!(set.live_members_of_block(0), vec![0, 1]);

        assert!(set.mark_down(0), "first mark_down transitions");
        assert!(!set.mark_down(0), "second is a no-op");
        assert_eq!(set.down_count(), 1);
        assert_eq!(set.first_live(), Some(1));
        assert_eq!(set.live_members_of_block(0), vec![1]);

        // A clone shares the flags: failover seen by one handle is seen
        // by all (the read-ahead worker and the main loop agree).
        let clone = set.clone();
        assert!(!clone.is_up(0));
        clone.mark_up(0);
        assert!(set.is_up(0));
        drop(servers);
    }
}
