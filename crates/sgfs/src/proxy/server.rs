//! The server-side SGFS proxy (§4.2–4.3).
//!
//! Sits between the secure channel and the kernel NFS server. After the
//! GTLS handshake authenticates the grid user, the proxy authorizes the
//! effective DN against the session gridmap, then for every forwarded RPC:
//!
//! * rewrites the `AUTH_SYS` credential to the mapped local account
//!   (identity mapping — the client-side uid/gid "do not represent the
//!   grid user's identity and cannot be used for authorization");
//! * shields ACL files (`.name.acl`) from all remote access, including
//!   filtering them out of READDIR/READDIRPLUS replies;
//! * with fine-grained ACLs enabled, terminates ACCESS calls itself,
//!   evaluating the per-file grid ACL (with parent inheritance and an
//!   in-memory cache) against the authenticated DN;
//! * forwards everything else verbatim and snoops replies to maintain the
//!   handle→(parent, name) map the ACL engine needs.

use crate::acl::{acl_file_name, is_acl_file_name, Acl};
use crate::config::{HopCost, SessionConfig};
use crate::proxy::ProxyError;
use crate::stats::ProxyStats;
use parking_lot::Mutex;
use sgfs_nfs3::proc::{procnum, *};
use sgfs_nfs3::types::*;
use sgfs_nfs3::{Nfs3Client, NFS_PROGRAM, NFS_VERSION};
use sgfs_oncrpc::msg::AuthSysParams;
use sgfs_oncrpc::record::{read_record, write_record};
use sgfs_oncrpc::{AcceptStat, CallHeader, OpaqueAuth, ReplyHeader};
use sgfs_net::BoxStream;
use sgfs_pki::{DistinguishedName, MapTarget, ValidatedPeer};
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder};
use std::collections::HashMap;
use std::sync::Arc;

/// uid/gid used for anonymous grid users.
const ANON: u32 = 65534;

/// The server-side proxy for one SGFS session.
pub struct ServerProxy {
    config: Mutex<SessionConfig>,
    peer_dn: DistinguishedName,
    mapped: (u32, u32),
    /// Connection used to forward client traffic to the kernel server.
    forward: Mutex<BoxStream>,
    /// The proxy's own NFS client (service credentials) for ACL files.
    acl_client: Mutex<Nfs3Client>,
    /// fh → (parent fh, name), learned from forwarded traffic.
    name_map: Mutex<HashMap<Fh3, (Fh3, String)>>,
    /// fh → effective ACL (None = no ACL anywhere up the chain).
    acl_cache: Mutex<HashMap<Fh3, Option<Arc<Acl>>>>,
    root_fh: Fh3,
    stats: Arc<ProxyStats>,
    /// Virtual per-hop forwarding cost, charged to the testbed clock.
    hop: Mutex<Option<(Arc<sgfs_net::SimClock>, HopCost)>>,
}

impl ServerProxy {
    /// Authorize `peer` against the session gridmap and build the proxy.
    ///
    /// `forward` is the loopback connection to the kernel NFS server used
    /// for the session's traffic; `acl_client` is the proxy's own
    /// connection (service credentials) for reading/writing ACL files.
    pub fn new(
        config: SessionConfig,
        peer: &ValidatedPeer,
        forward: BoxStream,
        acl_client: Nfs3Client,
        root_fh: Fh3,
    ) -> Result<Arc<Self>, ProxyError> {
        let mapped = match config.gridmap.lookup(&peer.effective_dn) {
            MapTarget::Account(name) => config
                .account_ids(&name)
                .ok_or_else(|| ProxyError::Unauthorized(format!("unknown account {name}")))?,
            MapTarget::Anonymous => (ANON, ANON),
            MapTarget::Denied => {
                return Err(ProxyError::Unauthorized(peer.effective_dn.to_string()))
            }
        };
        Ok(Arc::new(Self {
            config: Mutex::new(config),
            peer_dn: peer.effective_dn.clone(),
            mapped,
            forward: Mutex::new(forward),
            acl_client: Mutex::new(acl_client),
            name_map: Mutex::new(HashMap::new()),
            acl_cache: Mutex::new(HashMap::new()),
            root_fh,
            stats: ProxyStats::new(),
            hop: Mutex::new(None),
        }))
    }

    /// Enable per-hop virtual cost accounting on `clock`.
    pub fn set_hop_cost(&self, clock: Arc<sgfs_net::SimClock>, hop: HopCost) {
        *self.hop.lock() = Some((clock, hop));
    }

    /// The local identity this session's requests run as.
    pub fn mapped_identity(&self) -> (u32, u32) {
        self.mapped
    }

    /// The authenticated grid identity.
    pub fn peer_dn(&self) -> &DistinguishedName {
        &self.peer_dn
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &Arc<ProxyStats> {
        &self.stats
    }

    /// Replace the session configuration (dynamic reconfiguration — e.g.
    /// an updated gridmap or ACL policy pushed by the FSS). The identity
    /// mapping of the established session is unchanged; authorization of
    /// *new* sessions uses the new gridmap.
    pub fn reload_config(&self, config: SessionConfig) {
        *self.config.lock() = config;
        self.acl_cache.lock().clear();
    }

    /// Serve one downstream (secure-channel) connection until EOF.
    pub fn serve(self: &Arc<Self>, mut downstream: BoxStream) -> std::io::Result<()> {
        while let Some(record) = read_record(&mut downstream)? {
            let reply = self.process_one(&record)?;
            write_record(&mut downstream, &reply)?;
        }
        Ok(())
    }

    /// Spawn [`serve`](Self::serve) on its own thread.
    pub fn spawn(self: Arc<Self>, downstream: BoxStream) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let _ = self.serve(downstream);
        })
    }

    /// Process one call record with full session accounting — exactly one
    /// iteration of [`serve`](Self::serve)'s loop, minus the transport.
    /// This is the entry point the sharded server core drives.
    pub fn process_one(&self, record: &[u8]) -> std::io::Result<Vec<u8>> {
        let reply = self.stats.track(|| self.process(record))?;
        // The proxy ↔ kernel-server loopback hop (request + reply).
        if let Some((clock, hop)) = self.hop.lock().as_ref() {
            clock.advance(hop.of(record.len()) + hop.of(reply.len()));
        }
        self.stats.add_down(reply.len());
        Ok(reply)
    }

    /// Process one call record into one reply record.
    fn process(&self, record: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut dec = XdrDecoder::new(record);
        let header = match CallHeader::decode(&mut dec) {
            Ok(h) => h,
            Err(_) => {
                return Ok(accept_error(0, AcceptStat::GarbageArgs));
            }
        };
        if header.prog != NFS_PROGRAM || header.vers != NFS_VERSION {
            return Ok(accept_error(header.xid, AcceptStat::ProgUnavail));
        }
        let args = &record[dec.position()..];

        // Shield ACL files from every name-bearing operation.
        if let Some(name_hit) = touches_acl_file(header.proc, args) {
            if name_hit {
                return Ok(deny_nfs(header.xid, header.proc));
            }
        }

        // Fine-grained access control: terminate ACCESS locally.
        let fine = self.config.lock().fine_grained_acl;
        if fine && header.proc == procnum::ACCESS {
            if let Ok(a) = AccessArgs::from_xdr_bytes(args) {
                let acl = self.effective_acl(&a.object);
                let granted = acl.map(|acl| acl.mask_for(&self.peer_dn)).unwrap_or(0);
                let res = AccessRes {
                    status: NfsStat3::Ok,
                    obj_attr: None,
                    access: granted & a.access,
                };
                return Ok(encode_reply(header.xid, &res));
            }
            return Ok(accept_error(header.xid, AcceptStat::GarbageArgs));
        }

        // Identity mapping: swap in the mapped local account's credential.
        let (uid, gid) = self.mapped;
        let mut fwd_header = header.clone();
        fwd_header.cred = OpaqueAuth::sys(&AuthSysParams {
            stamp: 0,
            machine_name: "sgfs-server-proxy".into(),
            uid,
            gid,
            gids: vec![gid],
        });
        let mut enc = XdrEncoder::with_capacity(record.len() + 32);
        fwd_header.encode(&mut enc);
        let mut fwd = enc.into_bytes();
        fwd.extend_from_slice(args);
        self.stats.add_up(fwd.len());

        let reply = {
            // Waiting on the kernel server is not proxy CPU time.
            let t_io = std::time::Instant::now();
            let mut upstream = self.forward.lock();
            let reply = write_record(&mut *upstream, &fwd).and_then(|()| {
                read_record(&mut *upstream)?.ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "kernel server closed")
                })
            })?;
            self.stats.exclude(t_io.elapsed());
            reply
        };

        self.snoop(header.proc, args, &reply);

        // Filter ACL files out of directory listings.
        if header.proc == procnum::READDIR || header.proc == procnum::READDIRPLUS {
            if let Some(filtered) = filter_listing(header.proc, header.xid, &reply) {
                return Ok(filtered);
            }
        }
        Ok(reply)
    }

    /// Learn fh→(parent, name) mappings from successful replies.
    fn snoop(&self, proc: u32, args: &[u8], reply: &[u8]) {
        let Some(result) = success_body(reply) else { return };
        match proc {
            procnum::LOOKUP => {
                if let (Ok(a), Ok(r)) =
                    (DirOpArgs3::from_xdr_bytes(args), LookupRes::from_xdr_bytes(result))
                {
                    if let Some(fh) = r.object {
                        self.name_map.lock().insert(fh, (a.dir, a.name));
                    }
                }
            }
            procnum::CREATE => {
                if let (Ok(a), Ok(r)) =
                    (CreateArgs::from_xdr_bytes(args), CreateRes::from_xdr_bytes(result))
                {
                    if let Some(fh) = r.obj {
                        self.name_map.lock().insert(fh, (a.where_.dir, a.where_.name));
                    }
                }
            }
            procnum::MKDIR => {
                if let (Ok(a), Ok(r)) =
                    (MkdirArgs::from_xdr_bytes(args), CreateRes::from_xdr_bytes(result))
                {
                    if let Some(fh) = r.obj {
                        self.name_map.lock().insert(fh, (a.where_.dir, a.where_.name));
                    }
                }
            }
            procnum::READDIRPLUS => {
                if let (Ok(a), Ok(r)) = (
                    ReaddirPlusArgs::from_xdr_bytes(args),
                    ReaddirPlusRes::from_xdr_bytes(result),
                ) {
                    let mut map = self.name_map.lock();
                    for e in r.entries {
                        if let Some(fh) = e.handle {
                            if e.name != "." && e.name != ".." {
                                map.insert(fh, (a.dir.clone(), e.name));
                            }
                        }
                    }
                }
            }
            procnum::RENAME => {
                if let Ok(a) = RenameArgs::from_xdr_bytes(args) {
                    let mut map = self.name_map.lock();
                    let moved: Option<Fh3> = map
                        .iter()
                        .find(|(_, (d, n))| *d == a.from.dir && *n == a.from.name)
                        .map(|(fh, _)| fh.clone());
                    if let Some(fh) = moved {
                        map.insert(fh.clone(), (a.to.dir, a.to.name));
                        self.acl_cache.lock().remove(&fh);
                    }
                }
            }
            procnum::REMOVE | procnum::RMDIR => {
                if let Ok(a) = DirOpArgs3::from_xdr_bytes(args) {
                    let mut map = self.name_map.lock();
                    let gone: Option<Fh3> = map
                        .iter()
                        .find(|(_, (d, n))| *d == a.dir && *n == a.name)
                        .map(|(fh, _)| fh.clone());
                    if let Some(fh) = gone {
                        map.remove(&fh);
                        self.acl_cache.lock().remove(&fh);
                    }
                }
            }
            _ => {}
        }
    }

    // ---- the grid ACL engine ---------------------------------------------

    /// The effective ACL for `fh`: its own `.name.acl` if present, else
    /// the nearest ancestor's, cached in memory.
    pub fn effective_acl(&self, fh: &Fh3) -> Option<Arc<Acl>> {
        if let Some(hit) = self.acl_cache.lock().get(fh) {
            return hit.clone();
        }
        let resolved = self.resolve_acl(fh, 0);
        self.acl_cache.lock().insert(fh.clone(), resolved.clone());
        resolved
    }

    fn resolve_acl(&self, fh: &Fh3, depth: usize) -> Option<Arc<Acl>> {
        if depth > 64 {
            return None; // cycle guard
        }
        let lookup = if fh == &self.root_fh {
            // The export root's own ACL lives inside it as ".acl".
            Some((self.root_fh.clone(), None))
        } else {
            self.name_map
                .lock()
                .get(fh)
                .cloned()
                .map(|(parent, name)| (parent, Some(name)))
        };
        let (parent, name) = lookup?;
        let acl_name = match &name {
            Some(n) => acl_file_name(n),
            None => ".acl".to_string(),
        };
        if let Some(text) = self.read_file_in(&parent, &acl_name) {
            if let Ok(acl) = Acl::parse(&text) {
                return Some(Arc::new(acl));
            }
        }
        name.as_ref()?; // root without a root ACL
        self.resolve_acl(&parent, depth + 1)
    }

    fn read_file_in(&self, dir: &Fh3, name: &str) -> Option<String> {
        let mut client = self.acl_client.lock();
        let (fh, _) = client.lookup(dir, name).ok()?;
        let mut data = Vec::new();
        let mut offset = 0;
        loop {
            let res = client.read(&fh, offset, 32 * 1024).ok()?;
            offset += res.count as u64;
            data.extend_from_slice(&res.data);
            if res.eof {
                break;
            }
        }
        String::from_utf8(data).ok()
    }

    /// Install/replace the ACL for the object called `name` under `dir` —
    /// the management-service path for fine-grained ACL administration.
    pub fn set_acl(&self, dir: &Fh3, name: Option<&str>, acl: &Acl) -> Result<(), ProxyError> {
        let acl_name = match name {
            Some(n) => acl_file_name(n),
            None => ".acl".to_string(),
        };
        let text = acl.to_text();
        let mut client = self.acl_client.lock();
        let fh = match client.lookup(dir, &acl_name) {
            Ok((fh, _)) => fh,
            Err(_) => {
                let (fh, _) = client
                    .create(dir, &acl_name, Sattr3 { mode: Some(0o600), ..Default::default() })
                    .map_err(|e| ProxyError::Protocol(format!("ACL create failed: {e}")))?;
                fh
            }
        };
        client
            .setattr(&fh, &Sattr3 { size: Some(0), ..Default::default() })
            .map_err(|e| ProxyError::Protocol(format!("ACL truncate failed: {e}")))?;
        client
            .write(&fh, 0, text.into_bytes(), StableHow::FileSync)
            .map_err(|e| ProxyError::Protocol(format!("ACL write failed: {e}")))?;
        drop(client);
        self.acl_cache.lock().clear();
        Ok(())
    }

    /// Read the ACL stored for `name` under `dir`, if any.
    pub fn get_acl(&self, dir: &Fh3, name: Option<&str>) -> Option<Acl> {
        let acl_name = match name {
            Some(n) => acl_file_name(n),
            None => ".acl".to_string(),
        };
        let text = self.read_file_in(dir, &acl_name)?;
        Acl::parse(&text).ok()
    }

    /// Drop all cached ACL resolutions (after out-of-band ACL edits).
    pub fn invalidate_acl_cache(&self) {
        self.acl_cache.lock().clear();
    }
}

/// The sharded server core drives the proxy one record at a time.
impl sgfs_oncrpc::shard::RecordService for ServerProxy {
    fn process_record(&self, record: &[u8]) -> std::io::Result<Vec<u8>> {
        // A record reaching execution means admission reopened for this
        // session: the overload gauge tracks the *latest* verdict, so
        // observers (the signed Query op included) see pushback end.
        self.stats.set_overloaded(false);
        self.process_one(record)
    }

    /// Admission-control shed: answer `NFS3ERR_JUKEBOX` *without*
    /// executing the call. The kernel-server never sees the request, no
    /// state changes, and the status contract tells the client its
    /// verbatim retry is safe — even for CREATE/RENAME-class procedures.
    /// Records we cannot shape a JUKEBOX reply for (NULL, non-NFS
    /// programs, garbage) return `None` and are processed normally.
    fn shed_record(&self, record: &[u8]) -> Option<Vec<u8>> {
        let mut dec = XdrDecoder::new(record);
        let header = CallHeader::decode(&mut dec).ok()?;
        if header.prog != NFS_PROGRAM || header.vers != NFS_VERSION {
            return None;
        }
        let reply = jukebox_nfs(header.xid, header.proc)?;
        self.stats.add_shed();
        self.stats.set_overloaded(true);
        Some(reply)
    }
}

/// An NFS-level JUKEBOX ("try again later") reply shaped correctly for
/// each procedure, or `None` for procedures without a status field
/// (NULL, the FS-info probes, and anything unknown — those are never
/// shed, the shard executes them instead). Public so alternative
/// [`RecordService`](sgfs_oncrpc::RecordService) implementations (test
/// backends included) can answer admission pushback with the same wire
/// bytes the production proxy produces.
pub fn jukebox_nfs(xid: u32, proc: u32) -> Option<Vec<u8>> {
    let status = NfsStat3::Jukebox;
    Some(match proc {
        procnum::GETATTR => encode_reply(xid, &GetAttrRes { status, attr: None }),
        procnum::SETATTR | procnum::WRITE | procnum::REMOVE | procnum::RMDIR => {
            // WRITE's OK-only fields (count/committed/verf) are absent on
            // an error arm, so WccRes is the wire shape for all four.
            encode_reply(xid, &WccRes { status, wcc: WccData::default() })
        }
        procnum::LOOKUP => encode_reply(
            xid,
            &LookupRes { status, object: None, obj_attr: None, dir_attr: None },
        ),
        procnum::ACCESS => encode_reply(xid, &AccessRes { status, obj_attr: None, access: 0 }),
        procnum::READLINK => {
            encode_reply(xid, &ReadlinkRes { status, attr: None, path: String::new() })
        }
        procnum::READ => encode_reply(
            xid,
            &ReadRes { status, attr: None, count: 0, eof: false, data: Vec::new() },
        ),
        procnum::CREATE | procnum::MKDIR | procnum::SYMLINK => encode_reply(
            xid,
            &CreateRes { status, obj: None, obj_attr: None, dir_wcc: WccData::default() },
        ),
        procnum::RENAME => encode_reply(
            xid,
            &RenameRes { status, from_wcc: WccData::default(), to_wcc: WccData::default() },
        ),
        procnum::LINK => {
            encode_reply(xid, &LinkRes { status, attr: None, dir_wcc: WccData::default() })
        }
        procnum::READDIR => encode_reply(
            xid,
            &ReaddirRes {
                status,
                dir_attr: None,
                cookieverf: 0,
                entries: Vec::new(),
                eof: false,
            },
        ),
        procnum::READDIRPLUS => encode_reply(
            xid,
            &ReaddirPlusRes {
                status,
                dir_attr: None,
                cookieverf: 0,
                entries: Vec::new(),
                eof: false,
            },
        ),
        procnum::COMMIT => {
            encode_reply(xid, &CommitRes { status, wcc: WccData::default(), verf: 0 })
        }
        _ => return None,
    })
}

/// Does this call name an ACL file? `Some(true)` = yes (deny),
/// `Some(false)` = carries names but none are ACLs, `None` = nameless proc.
fn touches_acl_file(proc: u32, args: &[u8]) -> Option<bool> {
    let check = |name: &str| is_acl_file_name(name);
    match proc {
        procnum::LOOKUP | procnum::REMOVE | procnum::RMDIR => {
            DirOpArgs3::from_xdr_bytes(args).ok().map(|a| check(&a.name))
        }
        procnum::CREATE => CreateArgs::from_xdr_bytes(args).ok().map(|a| check(&a.where_.name)),
        procnum::MKDIR => MkdirArgs::from_xdr_bytes(args).ok().map(|a| check(&a.where_.name)),
        procnum::SYMLINK => SymlinkArgs::from_xdr_bytes(args).ok().map(|a| check(&a.where_.name)),
        procnum::RENAME => RenameArgs::from_xdr_bytes(args)
            .ok()
            .map(|a| check(&a.from.name) || check(&a.to.name)),
        procnum::LINK => LinkArgs::from_xdr_bytes(args).ok().map(|a| check(&a.link.name)),
        _ => None,
    }
}

/// Encode a successful reply: header + result body.
fn encode_reply<T: XdrEncode>(xid: u32, result: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(64);
    ReplyHeader::success(xid).encode(&mut enc);
    result.encode(&mut enc);
    enc.into_bytes()
}

/// Encode an RPC-level accepted-error reply.
fn accept_error(xid: u32, stat: AcceptStat) -> Vec<u8> {
    ReplyHeader::Accepted { xid, verf: OpaqueAuth::none(), stat }.to_xdr_bytes()
}

/// An NFS-level ACCES denial shaped correctly for each procedure.
fn deny_nfs(xid: u32, proc: u32) -> Vec<u8> {
    let status = NfsStat3::Acces;
    match proc {
        procnum::LOOKUP => encode_reply(
            xid,
            &LookupRes { status, object: None, obj_attr: None, dir_attr: None },
        ),
        procnum::CREATE | procnum::MKDIR | procnum::SYMLINK => encode_reply(
            xid,
            &CreateRes { status, obj: None, obj_attr: None, dir_wcc: WccData::default() },
        ),
        procnum::REMOVE | procnum::RMDIR => {
            encode_reply(xid, &WccRes { status, wcc: WccData::default() })
        }
        procnum::RENAME => encode_reply(
            xid,
            &RenameRes { status, from_wcc: WccData::default(), to_wcc: WccData::default() },
        ),
        procnum::LINK => {
            encode_reply(xid, &LinkRes { status, attr: None, dir_wcc: WccData::default() })
        }
        _ => accept_error(xid, AcceptStat::SystemErr),
    }
}

/// The result bytes of an accepted-success reply, if that is what it is.
fn success_body(reply: &[u8]) -> Option<&[u8]> {
    let mut dec = XdrDecoder::new(reply);
    match ReplyHeader::decode(&mut dec) {
        Ok(ReplyHeader::Accepted { stat: AcceptStat::Success, .. }) => {
            Some(&reply[dec.position()..])
        }
        _ => None,
    }
}

/// Rewrite a READDIR/READDIRPLUS success reply without ACL-file entries.
fn filter_listing(proc: u32, xid: u32, reply: &[u8]) -> Option<Vec<u8>> {
    let body = success_body(reply)?;
    if proc == procnum::READDIR {
        let mut res = ReaddirRes::from_xdr_bytes(body).ok()?;
        let before = res.entries.len();
        res.entries.retain(|e| !is_acl_file_name(&e.name));
        if res.entries.len() == before {
            return None; // nothing filtered; relay the original bytes
        }
        Some(encode_reply(xid, &res))
    } else {
        let mut res = ReaddirPlusRes::from_xdr_bytes(body).ok()?;
        let before = res.entries.len();
        res.entries.retain(|e| !is_acl_file_name(&e.name));
        if res.entries.len() == before {
            return None;
        }
        Some(encode_reply(xid, &res))
    }
}

