//! Write-ahead journal for the disk block cache.
//!
//! The write-back cache acknowledges WRITE calls as soon as the block is
//! spooled locally; without a journal, a proxy crash silently discards
//! every dirty block. This module makes the dirty-block *state* durable:
//! each `put(dirty)`, `set_clean`, `set_dirty`, `drop_file` and
//! per-file commit appends one checksummed, length-prefixed record to
//! `journal.wal` in the spool directory. The block *payloads* live in the
//! spool files (written before the journal records them), so a journal
//! record implies its payload is on disk.
//!
//! # Record format
//!
//! The file opens with the 8-byte magic `SGFSWAL1`. Each record is
//!
//! ```text
//! u32 body_len | u32 crc32(body) | body
//! ```
//!
//! with all integers little-endian and body =
//!
//! ```text
//! u8 op | u8 flag | u16 fh_len | fh bytes | u64 offset | u32 len
//! ```
//!
//! The CRC (IEEE 802.3, table-based — no external crate) covers the body
//! only; the length prefix is validated by bounds-checking against the
//! remaining file. Replay stops at the first short, oversized, or
//! checksum-failing record: everything before the tear is trusted,
//! everything after is discarded (it was never acknowledged as durable).
//!
//! # Recovery invariant
//!
//! A replayed block is re-marked **dirty** even if its last journal record
//! was `SET_CLEAN`: the cache marks blocks clean when the server's WRITE
//! reply arrives, *before* the COMMIT confirms stability, so clean-but-
//! uncommitted is not proof of durability. Re-sending an already-stable
//! block is idempotent under the NFSv3 write-verifier contract, so the
//! conservative choice costs bandwidth, never correctness. Only a
//! `COMMIT_FILE` record (appended after a successful COMMIT reply)
//! releases a file's cleaned blocks from the recovery set.
//!
//! # Compaction
//!
//! Dead records (clean erases, dropped files, superseded states)
//! accumulate; once they outnumber live entries and the journal holds at
//! least `compact_min_records` records, the live state is rewritten to
//! `journal.tmp`, fsynced, and renamed over `journal.wal` — the rename is
//! the atomic commit point, so a crash mid-compaction recovers from
//! either the old complete journal or the new complete one.

use super::blockstore::BlockKey;
use crate::config::DurabilityPolicy;
use crate::stats::ProxyStats;
use sgfs_net::{CrashInjector, CrashPoint};
use sgfs_nfs3::Fh3;
use sgfs_obs::{Hop, Obs, NO_PROC};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Journal file name inside the spool directory.
pub const JOURNAL_FILE: &str = "journal.wal";
/// Compaction scratch file, renamed over [`JOURNAL_FILE`] atomically.
pub const JOURNAL_TMP: &str = "journal.tmp";
/// File magic: identifies format version 1.
pub const MAGIC: &[u8; 8] = b"SGFSWAL1";

const OP_PUT: u8 = 1;
const OP_SET_CLEAN: u8 = 2;
const OP_SET_DIRTY: u8 = 3;
const OP_DROP_FILE: u8 = 4;
const OP_COMMIT_FILE: u8 = 5;

const FLAG_CLEAN: u8 = 0;
const FLAG_DIRTY: u8 = 1;

/// Longest record body we accept on replay: op header plus the largest
/// encodable file handle. Anything bigger is corruption, not data.
const MAX_BODY: usize = 2 + 2 + u16::MAX as usize + 8 + 4;

/// CRC-32 (IEEE 802.3, reflected), table-driven.
fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Replay-visible state of one journaled block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LiveState {
    /// Last record left the block dirty.
    Dirty,
    /// Last record marked it clean — still recovered dirty (see module
    /// docs), but released by a later `COMMIT_FILE`.
    Cleaned,
}

/// One block the journal says must survive a restart.
#[derive(Debug, Clone)]
pub struct Survivor {
    /// Block identity.
    pub key: BlockKey,
    /// Payload length in the spool file.
    pub len: u32,
}

/// What [`Journal::recover`] found on disk.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Blocks to re-mark dirty, spool payloads already on disk.
    pub survivors: Vec<Survivor>,
    /// Journal records replayed before the tail (if any) was hit.
    pub records_replayed: u64,
    /// Bytes of torn/corrupt tail discarded (0 = clean shutdown tail).
    pub torn_bytes: u64,
}

/// Append-side state of the write-ahead journal.
pub struct Journal {
    path: PathBuf,
    tmp_path: PathBuf,
    file: File,
    policy: DurabilityPolicy,
    /// Mirror of the live (journaled, not yet committed/erased) entries,
    /// for compaction and the dead-record trigger.
    live: HashMap<BlockKey, (LiveState, u32)>,
    /// Records in the file since the last compaction.
    records: u64,
    /// Appends since the last fsync.
    unsynced: u32,
    stats: Option<Arc<ProxyStats>>,
    obs: Option<Arc<Obs>>,
    crash: Option<Arc<CrashInjector>>,
}

impl Journal {
    /// Open (creating or appending to) the journal in `dir`. `live_from`
    /// seeds the in-memory mirror when opening over a recovered journal.
    pub fn open(
        dir: &Path,
        policy: DurabilityPolicy,
        survivors: &[Survivor],
        records: u64,
    ) -> std::io::Result<Self> {
        let path = dir.join(JOURNAL_FILE);
        let fresh = !path.exists();
        let mut file =
            std::fs::OpenOptions::new().append(true).create(true).open(&path)?;
        if fresh || file.metadata()?.len() == 0 {
            file.write_all(MAGIC)?;
            file.sync_data()?;
        }
        let live = survivors
            .iter()
            .map(|s| (s.key.clone(), (LiveState::Dirty, s.len)))
            .collect();
        Ok(Self {
            path,
            tmp_path: dir.join(JOURNAL_TMP),
            file,
            policy,
            live,
            records,
            unsynced: 0,
            stats: None,
            obs: None,
            crash: None,
        })
    }

    /// Attach the stats/trace/crash planes (session wiring).
    pub fn instrument(
        &mut self,
        stats: Option<Arc<ProxyStats>>,
        obs: Option<Arc<Obs>>,
        crash: Option<Arc<CrashInjector>>,
    ) {
        self.stats = stats;
        self.obs = obs;
        self.crash = crash;
    }

    /// Dirty-block entries the journal currently protects.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    fn encode_body(op: u8, flag: u8, fh: &Fh3, offset: u64, len: u32) -> Vec<u8> {
        let mut body = Vec::with_capacity(2 + 2 + fh.0.len() + 12);
        body.push(op);
        body.push(flag);
        body.extend_from_slice(&(fh.0.len() as u16).to_le_bytes());
        body.extend_from_slice(&fh.0);
        body.extend_from_slice(&offset.to_le_bytes());
        body.extend_from_slice(&len.to_le_bytes());
        body
    }

    fn hit(&self, point: CrashPoint) -> std::io::Result<()> {
        match &self.crash {
            Some(c) => c.hit(point),
            None => Ok(()),
        }
    }

    fn append(&mut self, body: &[u8]) -> std::io::Result<()> {
        self.hit(CrashPoint::BeforeJournalAppend)?;
        let mut rec = Vec::with_capacity(8 + body.len());
        rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(body).to_le_bytes());
        rec.extend_from_slice(body);
        if let Some(c) = &self.crash {
            if let Err((prefix, e)) = c.hit_torn(rec.len()) {
                // Torn write: a seeded prefix reaches the file, then the
                // "process" dies. Recovery must detect and discard it.
                let _ = self.file.write_all(&rec[..prefix]);
                let _ = self.file.sync_data();
                return Err(e);
            }
        }
        self.file.write_all(&rec)?;
        self.hit(CrashPoint::AfterJournalAppend)?;
        self.records += 1;
        self.unsynced += 1;
        if self.policy.fsync_every > 0 && self.unsynced >= self.policy.fsync_every {
            self.hit(CrashPoint::BeforeJournalFsync)?;
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        if let Some(s) = &self.stats {
            s.add_journal_append();
        }
        if let Some(o) = &self.obs {
            o.emit(Hop::JournalAppend, 0, NO_PROC, rec.len() as u64);
        }
        Ok(())
    }

    /// Journal a dirty put (or a clean put overwriting a journaled key —
    /// the clean record erases the entry so recovery won't resurrect a
    /// server-sourced block as dirty). Returns whether a record was
    /// written.
    pub fn record_put(&mut self, key: &BlockKey, len: u32, dirty: bool) -> std::io::Result<bool> {
        if !dirty && !self.live.contains_key(key) {
            return Ok(false);
        }
        let flag = if dirty { FLAG_DIRTY } else { FLAG_CLEAN };
        let body = Self::encode_body(OP_PUT, flag, &key.0, key.1, len);
        self.append(&body)?;
        if dirty {
            self.live.insert(key.clone(), (LiveState::Dirty, len));
        } else {
            self.live.remove(key);
        }
        self.maybe_compact()?;
        Ok(true)
    }

    /// Journal a clean transition (flush acked the WRITE).
    pub fn record_set_clean(&mut self, key: &BlockKey) -> std::io::Result<()> {
        let Some(&(_, len)) = self.live.get(key) else { return Ok(()) };
        let body = Self::encode_body(OP_SET_CLEAN, FLAG_CLEAN, &key.0, key.1, len);
        self.append(&body)?;
        self.live.insert(key.clone(), (LiveState::Cleaned, len));
        self.maybe_compact()
    }

    /// Journal a re-dirty (flush failed / verifier changed).
    pub fn record_set_dirty(&mut self, key: &BlockKey, len: u32) -> std::io::Result<()> {
        let body = Self::encode_body(OP_SET_DIRTY, FLAG_DIRTY, &key.0, key.1, len);
        self.append(&body)?;
        self.live.insert(key.clone(), (LiveState::Dirty, len));
        self.maybe_compact()
    }

    /// Journal the drop of every block of `fh` (file deleted — unflushed
    /// data is intentionally discarded).
    pub fn record_drop_file(&mut self, fh: &Fh3) -> std::io::Result<()> {
        if !self.live.keys().any(|(f, _)| f == fh) {
            return Ok(());
        }
        let body = Self::encode_body(OP_DROP_FILE, 0, fh, 0, 0);
        self.append(&body)?;
        self.live.retain(|(f, _), _| f != fh);
        self.maybe_compact()
    }

    /// Journal a successful COMMIT of `fh`: its cleaned blocks are now
    /// server-stable and leave the recovery set. Dirty entries (written
    /// after the flush batch was sent) stay.
    pub fn record_commit_file(&mut self, fh: &Fh3) -> std::io::Result<()> {
        if !self
            .live
            .iter()
            .any(|((f, _), (st, _))| f == fh && *st == LiveState::Cleaned)
        {
            return Ok(());
        }
        let body = Self::encode_body(OP_COMMIT_FILE, 0, fh, 0, 0);
        self.append(&body)?;
        self.live
            .retain(|(f, _), (st, _)| f != fh || *st != LiveState::Cleaned);
        self.maybe_compact()
    }

    /// Force everything appended so far to disk (teardown).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    fn maybe_compact(&mut self) -> std::io::Result<()> {
        if self.policy.compact_min_records == 0
            || self.records < self.policy.compact_min_records
            || self.records < 2 * self.live.len() as u64
        {
            return Ok(());
        }
        self.hit(CrashPoint::DuringCompaction)?;
        let mut tmp = File::create(&self.tmp_path)?;
        tmp.write_all(MAGIC)?;
        let mut kept = 0u64;
        for (key, &(state, len)) in &self.live {
            let (op, flag) = match state {
                LiveState::Dirty => (OP_PUT, FLAG_DIRTY),
                LiveState::Cleaned => (OP_SET_CLEAN, FLAG_CLEAN),
            };
            let body = Self::encode_body(op, flag, &key.0, key.1, len);
            let mut rec = Vec::with_capacity(8 + body.len());
            rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
            rec.extend_from_slice(&crc32(&body).to_le_bytes());
            rec.extend_from_slice(&body);
            tmp.write_all(&rec)?;
            kept += 1;
        }
        tmp.sync_data()?;
        drop(tmp);
        self.hit(CrashPoint::BeforeCompactionRename)?;
        std::fs::rename(&self.tmp_path, &self.path)?;
        self.file =
            std::fs::OpenOptions::new().append(true).open(&self.path)?;
        self.records = kept;
        self.unsynced = 0;
        if let Some(s) = &self.stats {
            s.add_journal_compaction();
        }
        if let Some(o) = &self.obs {
            o.emit(Hop::JournalCompact, 0, NO_PROC, kept);
        }
        Ok(())
    }

    /// Replay the journal in `dir`. Missing file ⇒ empty report (cold
    /// start). Never panics: a corrupt or torn tail is measured, reported
    /// and discarded, and the next [`open`](Self::open) truncation-free
    /// append continues after a [`truncate_tail`](Self::truncate_tail).
    pub fn recover(dir: &Path) -> RecoveryReport {
        let path = dir.join(JOURNAL_FILE);
        // An interrupted compaction may have died before the rename; the
        // tmp file is uncommitted state and must not survive.
        let _ = std::fs::remove_file(dir.join(JOURNAL_TMP));
        let mut report = RecoveryReport::default();
        let Ok(mut f) = File::open(&path) else { return report };
        let mut buf = Vec::new();
        if f.read_to_end(&mut buf).is_err() {
            return report;
        }
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            report.torn_bytes = buf.len() as u64;
            return report;
        }
        let mut live: HashMap<BlockKey, (LiveState, u32)> = HashMap::new();
        let mut pos = MAGIC.len();
        let valid_end = loop {
            if pos == buf.len() {
                break pos; // clean end
            }
            if buf.len() - pos < 8 {
                break pos; // torn length/crc prefix
            }
            let body_len =
                u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc =
                u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if !(4..=MAX_BODY).contains(&body_len) || buf.len() - pos - 8 < body_len {
                break pos; // short or absurd record
            }
            let body = &buf[pos + 8..pos + 8 + body_len];
            if crc32(body) != crc {
                break pos; // torn/corrupt payload
            }
            Self::replay_body(body, &mut live);
            report.records_replayed += 1;
            pos += 8 + body_len;
        };
        report.torn_bytes = (buf.len() - valid_end) as u64;
        report.survivors = live
            .into_iter()
            .map(|(key, (_, len))| Survivor { key, len })
            .collect();
        // Deterministic recovery order for tests and replay.
        report.survivors.sort_by(|a, b| a.key.cmp(&b.key));
        report
    }

    fn replay_body(body: &[u8], live: &mut HashMap<BlockKey, (LiveState, u32)>) {
        let op = body[0];
        let flag = body[1];
        if body.len() < 4 {
            return;
        }
        let fh_len = u16::from_le_bytes(body[2..4].try_into().expect("2 bytes")) as usize;
        if body.len() < 4 + fh_len + 12 {
            // CRC passed but lengths disagree: treat as a no-op rather
            // than indexing out of bounds.
            return;
        }
        let fh = Fh3(body[4..4 + fh_len].to_vec());
        let offset = u64::from_le_bytes(
            body[4 + fh_len..12 + fh_len].try_into().expect("8 bytes"),
        );
        let len = u32::from_le_bytes(
            body[12 + fh_len..16 + fh_len].try_into().expect("4 bytes"),
        );
        let key = (fh.clone(), offset);
        match op {
            OP_PUT if flag == FLAG_DIRTY => {
                live.insert(key, (LiveState::Dirty, len));
            }
            OP_PUT => {
                // Clean overwrite: server-sourced data replaced the dirty
                // block; nothing left to recover.
                live.remove(&key);
            }
            OP_SET_CLEAN => {
                if let Some(e) = live.get_mut(&key) {
                    e.0 = LiveState::Cleaned;
                }
            }
            OP_SET_DIRTY => {
                live.insert(key, (LiveState::Dirty, len));
            }
            OP_DROP_FILE => {
                live.retain(|(f, _), _| f != &fh);
            }
            OP_COMMIT_FILE => {
                live.retain(|(f, _), (st, _)| f != &fh || *st != LiveState::Cleaned);
            }
            _ => {} // unknown op from a future version: ignore
        }
    }

    /// Truncate any torn tail found by [`recover`](Self::recover) so new
    /// appends start at a record boundary. Call before [`open`].
    pub fn truncate_tail(dir: &Path, report: &RecoveryReport) -> std::io::Result<()> {
        if report.torn_bytes == 0 {
            return Ok(());
        }
        let path = dir.join(JOURNAL_FILE);
        let f = std::fs::OpenOptions::new().write(true).open(&path)?;
        let len = f.metadata()?.len();
        f.set_len(len.saturating_sub(report.torn_bytes))?;
        f.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgfs_net::CrashInjector;

    fn fh(n: u64) -> Fh3 {
        Fh3::from_ino(1, n)
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("sgfs-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn policy() -> DurabilityPolicy {
        DurabilityPolicy { journal: true, fsync_every: 1, compact_min_records: 0 }
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_dirty_puts() {
        let dir = tmp("roundtrip");
        let mut j = Journal::open(&dir, policy(), &[], 0).unwrap();
        j.record_put(&(fh(1), 0), 100, true).unwrap();
        j.record_put(&(fh(1), 32768), 64, true).unwrap();
        j.record_put(&(fh(2), 0), 10, false).unwrap(); // clean, unjournaled
        drop(j);
        let r = Journal::recover(&dir);
        assert_eq!(r.records_replayed, 2);
        assert_eq!(r.torn_bytes, 0);
        let keys: Vec<_> = r.survivors.iter().map(|s| s.key.clone()).collect();
        assert_eq!(keys, vec![(fh(1), 0), (fh(1), 32768)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_clean_still_recovers_commit_releases() {
        let dir = tmp("clean");
        let mut j = Journal::open(&dir, policy(), &[], 0).unwrap();
        j.record_put(&(fh(1), 0), 100, true).unwrap();
        j.record_set_clean(&(fh(1), 0)).unwrap();
        drop(j);
        let r = Journal::recover(&dir);
        assert_eq!(r.survivors.len(), 1, "clean-before-COMMIT still recovered");

        // Next incarnation: the survivor flushes again and this time the
        // COMMIT lands — only then does it leave the recovery set.
        let mut j = Journal::open(&dir, policy(), &r.survivors, r.records_replayed).unwrap();
        j.record_set_clean(&(fh(1), 0)).unwrap();
        j.record_commit_file(&fh(1)).unwrap();
        drop(j);
        let r = Journal::recover(&dir);
        assert!(r.survivors.is_empty(), "COMMIT releases cleaned blocks");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_file_erases_and_clean_put_erases() {
        let dir = tmp("drop");
        let mut j = Journal::open(&dir, policy(), &[], 0).unwrap();
        j.record_put(&(fh(1), 0), 100, true).unwrap();
        j.record_put(&(fh(2), 0), 50, true).unwrap();
        j.record_drop_file(&fh(1)).unwrap();
        // Server-sourced clean data overwrote the dirty block.
        j.record_put(&(fh(2), 0), 50, false).unwrap();
        drop(j);
        let r = Journal::recover(&dir);
        assert!(r.survivors.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_detected_and_truncated() {
        let dir = tmp("torn");
        let mut j = Journal::open(&dir, policy(), &[], 0).unwrap();
        j.record_put(&(fh(1), 0), 100, true).unwrap();
        j.record_put(&(fh(1), 32768), 64, true).unwrap();
        drop(j);
        // Tear the last record mid-payload.
        let path = dir.join(JOURNAL_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let r = Journal::recover(&dir);
        assert_eq!(r.records_replayed, 1, "tail record discarded");
        assert_eq!(r.survivors.len(), 1);
        assert!(r.torn_bytes > 0);
        Journal::truncate_tail(&dir, &r).unwrap();
        // Appends continue at a record boundary.
        let mut j = Journal::open(&dir, policy(), &r.survivors, r.records_replayed).unwrap();
        j.record_put(&(fh(3), 0), 9, true).unwrap();
        drop(j);
        let r = Journal::recover(&dir);
        assert_eq!(r.records_replayed, 2);
        assert_eq!(r.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_replay_without_panic() {
        let dir = tmp("crc");
        let mut j = Journal::open(&dir, policy(), &[], 0).unwrap();
        j.record_put(&(fh(1), 0), 100, true).unwrap();
        j.record_put(&(fh(2), 0), 50, true).unwrap();
        drop(j);
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // flip a payload byte of the last record
        std::fs::write(&path, &bytes).unwrap();
        let r = Journal::recover(&dir);
        assert_eq!(r.records_replayed, 1);
        assert_eq!(r.survivors.len(), 1);
        assert!(r.torn_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_file_yields_empty_report() {
        let dir = tmp("garbage");
        std::fs::write(dir.join(JOURNAL_FILE), b"not a journal at all").unwrap();
        let r = Journal::recover(&dir);
        assert!(r.survivors.is_empty());
        assert_eq!(r.records_replayed, 0);
        assert!(r.torn_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_live_state_only() {
        let dir = tmp("compact");
        let pol = DurabilityPolicy { journal: true, fsync_every: 1, compact_min_records: 4 };
        let mut j = Journal::open(&dir, pol, &[], 0).unwrap();
        // 5 records, all live: below the dead-dominate trigger (5 < 10).
        for i in 0..4 {
            j.record_put(&(fh(1), i * 32768), 100, true).unwrap();
        }
        j.record_put(&(fh(2), 0), 64, true).unwrap();
        let size_before = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        // Dropping fh1 leaves 6 records, 1 live → compaction fires.
        j.record_drop_file(&fh(1)).unwrap();
        drop(j);
        let size_after = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        assert!(size_after < size_before, "compaction shrank the journal");
        let r = Journal::recover(&dir);
        assert_eq!(r.survivors.len(), 1);
        assert_eq!(r.survivors[0].key, (fh(2), 0));
        assert!(!dir.join(JOURNAL_TMP).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_injection_recovers_prefix() {
        let dir = tmp("torn-inject");
        let mut j = Journal::open(&dir, policy(), &[], 0).unwrap();
        j.instrument(None, None, Some(CrashInjector::at(CrashPoint::TornJournalAppend, 2)));
        j.record_put(&(fh(1), 0), 100, true).unwrap();
        let err = j.record_put(&(fh(2), 0), 50, true).unwrap_err();
        assert!(sgfs_net::crash::is_crash(&err));
        drop(j);
        let r = Journal::recover(&dir);
        assert_eq!(r.records_replayed, 1, "torn record never replayed");
        assert_eq!(r.survivors.len(), 1);
        assert_eq!(r.survivors[0].key, (fh(1), 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_during_compaction_leaves_old_journal_valid() {
        let dir = tmp("compact-crash");
        // min=3 keeps the first two appends below the compaction
        // threshold so the armed kill fires on the third.
        let pol = DurabilityPolicy { journal: true, fsync_every: 1, compact_min_records: 3 };
        let mut j = Journal::open(&dir, pol, &[], 0).unwrap();
        j.record_put(&(fh(1), 0), 100, true).unwrap();
        j.record_drop_file(&fh(1)).unwrap();
        j.instrument(None, None, Some(CrashInjector::at(CrashPoint::BeforeCompactionRename, 1)));
        let err = j.record_put(&(fh(2), 0), 64, true).unwrap_err();
        assert!(sgfs_net::crash::is_crash(&err));
        drop(j);
        // The append itself landed before compaction started; the tmp
        // file is discarded and the old journal replays in full.
        let r = Journal::recover(&dir);
        assert_eq!(r.survivors.len(), 1);
        assert_eq!(r.survivors[0].key, (fh(2), 0));
        assert!(!dir.join(JOURNAL_TMP).exists(), "uncommitted compaction discarded");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
