//! Xid-demultiplexed RPC pipelining over the upstream channel, pumped by
//! the shared client I/O pool.
//!
//! The client proxy used to issue upstream calls strictly serially: write
//! one record, block for its reply, repeat. Over a WAN that bounds
//! throughput at one call per round trip. A [`Pipeline`] instead owns the
//! upstream channel and admits up to `window` calls before requiring a
//! reply, matching replies back to callers by RPC xid — the transaction
//! id that is the first word of every ONC RPC call *and* reply record
//! (RFC 5531 §9).
//!
//! Earlier revisions parked a dedicated blocking reader thread per
//! pipeline; N sessions cost N stacks, and a dropped handle leaked its
//! thread outright (nothing joined it). The pipeline is now a
//! [`PoolConn`] pinned to a [`ClientIoPool`] worker: its event sources —
//! the upstream transport's [`PipeWatch`] and a wake-aware submission
//! ring ([`sgfs_net::submit_ring`]) carrying caller commands — are routed
//! into one readiness token, and a `pump` pass drains whatever is
//! actionable without ever blocking for *new* input. Steady state is
//! allocation-free: the ring is a fixed-capacity ladder, and the
//! record/reply scratch buffers recycle as before. Dropping the last
//! handle closes the ring; the worker observes the close, delivers any
//! replies that already arrived, fails the rest, flushes `ProxyStats`,
//! and retires the connection — the handle's `Drop` blocks (bounded)
//! until that retirement is signalled, so teardown is deterministic and
//! nothing is left parked.
//!
//! Because several independent callers (the proxy's request loop, the
//! split-phase write-back, the read-ahead worker) share one channel, their
//! original xids could collide. The pipeline therefore rewrites the xid of
//! each admitted call to a private monotonically increasing wire xid,
//! remembers the mapping, and rewrites the reply's xid back before
//! completing the caller — callers observe byte-identical replies to the
//! serial protocol.
//!
//! Renegotiation (rekey) must not interleave with data records: the GTLS
//! rekey runs over the protected channel and expects only handshake
//! records, so in-flight DATA replies would break it. The pipeline
//! *quiesces* first — stops admitting, drains every outstanding reply —
//! and only then renegotiates. The periodic `rekey_every` threshold is
//! tracked here (not by `GtlsStream::auto_rekey_every`, which would fire
//! mid-window) for the same reason.
//!
//! Fault recovery: sessions are expected to outlive transient WAN
//! failures, so a transport error is not the end of the channel when a
//! [`Reconnector`] is installed. The pump classifies the error
//! ([`is_transient_io`]), fails the in-flight calls that are unsafe to
//! retransmit (see [`retry::replayable`]), re-dials with capped
//! exponential backoff, and replays the idempotent remainder — in their
//! original wire-xid order — on the fresh channel, re-registering the
//! replacement transport's watch on the same pool token. A successful
//! reconnect re-runs the full GTLS handshake, which also satisfies any
//! pending rekey request. Without a reconnector any transport error
//! remains terminal, as before.
//!
//! Blocking inside the pump: the emulated transport's `Stream` objects
//! are not splittable into read/write halves, so one pump alternates
//! between admitting writes and collecting replies. Replies are only
//! read once the transport watch reports input, and the message-atomic
//! writer invariant (see the shard module docs in `sgfs-oncrpc`)
//! guarantees a whole record follows, so the bounded blocking record
//! read cannot stall the worker. Against a *silent* server (replies
//! simply never come) the pipeline goes idle — no thread waits — and the
//! per-call deadline in [`RetryPolicy::call_deadline`] bounds
//! [`PendingReply::wait`] on the caller's side. Renegotiation and
//! reconnect backoff do block their pool worker (they are rare,
//! bounded control-plane events); pool sizing accounts for that.

use crate::config::RetryPolicy;
use crate::proxy::retry::{self, Reconnector};
use crate::stats::ProxyStats;
use crate::proxy::client::Upstream;
use sgfs_net::{submit_ring, PipeWatch, Popped, Readiness, SubmitReceiver, SubmitSender};
use sgfs_oncrpc::record::{is_transient_io, read_record_into, write_record_with};
use sgfs_oncrpc::{ClientIoPool, ConnPump, PoolConn};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default in-flight window (calls admitted before a reply is required).
pub const DEFAULT_WINDOW: u32 = 8;

/// Capacity of the submission ring between handles and the pump.
/// Producers block (backpressure) when it is full.
const RING_CAPACITY: usize = 256;

/// Fairness budget: work items one pump pass performs before re-arming
/// its token so neighbor connections on the same worker get a turn.
const MAX_PUMP: usize = 32;

/// Upper bound a dropping handle waits for the pump to acknowledge
/// retirement. Retirement is normally immediate; the bound only guards
/// against a wedged pool worker.
const RETIRE_WAIT: Duration = Duration::from_secs(5);

/// One record plus the channel its reply is delivered on.
type BatchEntry = (Vec<u8>, mpsc::Sender<io::Result<Vec<u8>>>);

/// Commands from pipeline handles to the I/O thread.
enum Cmd {
    /// Forward one raw call record; the reply (original xid restored)
    /// goes back through `reply_tx`.
    Call {
        record: Vec<u8>,
        reply_tx: mpsc::Sender<io::Result<Vec<u8>>>,
    },
    /// Several calls submitted atomically: they reach the I/O thread as a
    /// unit, so up to a window of them is guaranteed to be admitted
    /// before the thread blocks on a reply. Individual `submit` calls
    /// race against admission — a batch of N ≤ window never leaves a
    /// member stranded behind a blocking read.
    Batch(Vec<BatchEntry>),
    /// Quiesce the window and renegotiate the session keys.
    Rekey { done_tx: mpsc::Sender<io::Result<()>> },
}

/// State shared between handles and the I/O thread.
struct Shared {
    /// Mirror of the upstream's completed-handshake count (cumulative
    /// across reconnections).
    handshakes: AtomicU64,
    /// Whether the upstream is GTLS-protected (rekey is meaningful).
    is_tls: bool,
    /// Per-call reply deadline applied by `PendingReply::wait`.
    deadline: Option<Duration>,
}

/// Signals the handle side when the pump has retired the connection
/// (stats flushed, waiters completed, upstream released).
#[derive(Clone)]
struct RetireGate(Arc<(Mutex<bool>, Condvar)>);

impl RetireGate {
    fn new() -> Self {
        Self(Arc::new((Mutex::new(false), Condvar::new())))
    }

    fn set(&self) {
        let (lock, cvar) = &*self.0;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
    }

    fn wait(&self, timeout: Duration) {
        let (lock, cvar) = &*self.0;
        let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        let _ = cvar.wait_timeout_while(guard, timeout, |done| !*done);
    }
}

/// A cloneable handle to the pipelined upstream channel.
///
/// Dropping every handle closes the submission ring; the pool worker
/// observes the close, delivers replies that already arrived, fails the
/// remainder, flushes stats, and retires the connection. The last
/// handle's drop blocks (bounded by [`RETIRE_WAIT`]) for that
/// acknowledgment — the event-plane equivalent of joining the old
/// per-pipeline reader thread.
#[derive(Clone)]
pub struct Pipeline {
    inner: Arc<PipelineInner>,
}

struct PipelineInner {
    /// `Some` until drop; taken there so the ring closes before the
    /// retirement wait begins.
    cmd_tx: Option<SubmitSender<Cmd>>,
    shared: Arc<Shared>,
    retired: RetireGate,
    /// Keeps the I/O pool alive for as long as the pipeline is; a
    /// private (per-pipeline) pool shuts down and joins when this Arc
    /// drops.
    _pool: Arc<ClientIoPool>,
}

impl Drop for PipelineInner {
    fn drop(&mut self) {
        self.cmd_tx.take();
        self.retired.wait(RETIRE_WAIT);
    }
}

/// A submitted call whose reply has not been collected yet.
pub struct PendingReply {
    rx: mpsc::Receiver<io::Result<Vec<u8>>>,
    deadline: Option<Duration>,
}

impl PendingReply {
    /// Block until the reply arrives (original xid restored), or until
    /// the per-call deadline expires — a silent server yields `TimedOut`
    /// rather than a hang.
    pub fn wait(self) -> io::Result<Vec<u8>> {
        match self.deadline {
            None => match self.rx.recv() {
                Ok(r) => r,
                Err(_) => Err(broken("upstream pipeline terminated")),
            },
            Some(d) => match self.rx.recv_timeout(d) {
                Ok(r) => r,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    Err(broken("upstream pipeline terminated"))
                }
                Err(mpsc::RecvTimeoutError::Timeout) => Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "upstream reply deadline exceeded",
                )),
            },
        }
    }
}

impl Pipeline {
    /// Take ownership of `upstream` and start the I/O thread, with no
    /// fault recovery: any transport error is terminal for the channel.
    ///
    /// `window` is clamped to at least 1 (a window of 1 degenerates to
    /// the serial protocol); `rekey_every` renegotiates after that many
    /// calls, at a quiesce point.
    pub fn new(
        upstream: Upstream,
        watch: PipeWatch,
        window: u32,
        rekey_every: Option<u64>,
        stats: Arc<ProxyStats>,
    ) -> Self {
        Self::with_recovery(
            upstream,
            watch,
            window,
            rekey_every,
            stats,
            None,
            RetryPolicy::default(),
        )
    }

    /// Like [`new`](Self::new), but with fault recovery: on a transient
    /// transport error the pump re-dials through `reconnector` under
    /// `retry`'s backoff bounds and replays idempotent in-flight calls
    /// on the fresh channel.
    ///
    /// The pipeline runs on a private single-worker [`ClientIoPool`] —
    /// thread-for-thread what the old dedicated reader cost, but with
    /// deterministic teardown. Sessions that share a pool use
    /// [`with_recovery_on`](Self::with_recovery_on).
    pub fn with_recovery(
        upstream: Upstream,
        watch: PipeWatch,
        window: u32,
        rekey_every: Option<u64>,
        stats: Arc<ProxyStats>,
        reconnector: Option<Box<dyn Reconnector>>,
        retry: RetryPolicy,
    ) -> Self {
        let pool = ClientIoPool::new(1);
        Self::with_recovery_on(&pool, upstream, watch, window, rekey_every, stats, reconnector, retry)
            .expect("a fresh private pool accepts its first connection")
    }

    /// Pin this pipeline's upstream onto an existing client I/O pool so
    /// many sessions multiplex a fixed set of event-loop threads.
    /// `watch` must observe the raw transport under `upstream` (for a
    /// GTLS channel, the pipe beneath the secure stream). Fails only if
    /// `pool` is already shut down.
    #[allow(clippy::too_many_arguments)]
    pub fn with_recovery_on(
        pool: &Arc<ClientIoPool>,
        upstream: Upstream,
        watch: PipeWatch,
        window: u32,
        rekey_every: Option<u64>,
        stats: Arc<ProxyStats>,
        reconnector: Option<Box<dyn Reconnector>>,
        retry: RetryPolicy,
    ) -> io::Result<Self> {
        let (cmd_tx, cmd_rx) = submit_ring(RING_CAPACITY);
        let (is_tls, handshakes) = match &upstream {
            Upstream::Tls(t) => (true, t.handshake_count()),
            Upstream::Plain(_) => (false, 0),
        };
        let shared = Arc::new(Shared {
            handshakes: AtomicU64::new(handshakes),
            is_tls,
            deadline: retry.call_deadline,
        });
        let retired = RetireGate::new();
        let state = IoState {
            upstream,
            watch,
            cmd_rx,
            readiness: None,
            shutdown: false,
            retired: false,
            gate: retired.clone(),
            window: window.max(1),
            rekey_every,
            stats,
            shared: shared.clone(),
            reconnector,
            retry,
            reconnects_used: 0,
            queue: VecDeque::new(),
            in_flight: HashMap::new(),
            rekey_waiters: Vec::new(),
            rekey_due: false,
            wire_xid: 0x9000_0000,
            calls_since_rekey: 0,
            reply_buf: Vec::new(),
            reply_high_water: 0,
            write_scratch: Vec::new(),
        };
        pool.add_conn(Box::new(state))?;
        Ok(Self {
            inner: Arc::new(PipelineInner {
                cmd_tx: Some(cmd_tx),
                shared,
                retired,
                _pool: pool.clone(),
            }),
        })
    }

    fn sender(&self) -> &SubmitSender<Cmd> {
        self.inner.cmd_tx.as_ref().expect("sender present until the last handle drops")
    }

    /// Submit a raw call record without waiting for its reply — the
    /// split-phase half of pipelined write-back. Blocks only while the
    /// submission ring is full (backpressure against a slow upstream).
    pub fn submit(&self, record: Vec<u8>) -> PendingReply {
        let (reply_tx, rx) = mpsc::channel();
        // A push failure means the pump retired; the rejected command's
        // reply sender drops here and wait() reports the broken channel.
        let _ = self.sender().push(Cmd::Call { record, reply_tx });
        PendingReply { rx, deadline: self.inner.shared.deadline }
    }

    /// Submit a group of call records atomically. Up to a window of them
    /// is admitted before the pump collects any reply, so a split-phase
    /// flush overlaps its round trips deterministically.
    pub fn submit_batch(&self, records: Vec<Vec<u8>>) -> Vec<PendingReply> {
        let mut waiters = Vec::with_capacity(records.len());
        let mut batch = Vec::with_capacity(records.len());
        for record in records {
            let (reply_tx, rx) = mpsc::channel();
            batch.push((record, reply_tx));
            waiters.push(PendingReply { rx, deadline: self.inner.shared.deadline });
        }
        let _ = self.sender().push(Cmd::Batch(batch));
        waiters
    }

    /// Forward one call record and block for its reply.
    pub fn call(&self, record: Vec<u8>) -> io::Result<Vec<u8>> {
        self.submit(record).wait()
    }

    /// Quiesce the window and renegotiate the session keys, blocking
    /// until the new keys are in effect. No-op on a plaintext upstream.
    pub fn rekey(&self) -> io::Result<()> {
        let (done_tx, rx) = mpsc::channel();
        self.sender()
            .push(Cmd::Rekey { done_tx })
            .map_err(|_| broken("upstream pipeline terminated"))?;
        rx.recv().map_err(|_| broken("upstream pipeline terminated"))?
    }

    /// Completed handshakes on the secure channel (`None` when plain),
    /// cumulative across reconnections.
    pub fn handshake_count(&self) -> Option<u64> {
        self.inner
            .shared
            .is_tls
            .then(|| self.inner.shared.handshakes.load(Ordering::Acquire))
    }
}

/// One admitted call awaiting its reply.
struct InFlight {
    orig_xid: [u8; 4],
    /// The full wire record (wire xid already patched in), kept so the
    /// call can be retransmitted across a reconnect. On completion this
    /// buffer is recycled: the reply is swapped into it and handed to the
    /// waiter, and the retired capacity becomes the next read scratch.
    record: Vec<u8>,
    /// Whether retransmission on a fresh channel is safe
    /// (see [`retry::replayable`]).
    replay: bool,
    /// NFS procedure number (peeked from the call header), for trace
    /// events and reply-latency attribution.
    proc: u32,
    /// When the call was last transmitted; reply RTT = `sent_at.elapsed()`.
    sent_at: Instant,
    reply_tx: mpsc::Sender<io::Result<Vec<u8>>>,
}

/// Outcome of one unit of pump work.
enum Step {
    /// Did something; the pass may continue within its budget.
    Progress,
    /// Nothing actionable until the next readiness notification.
    Idle,
    /// Ring closed and drained: the connection is done.
    Retire,
}

/// The pipeline's entire I/O state, pinned to a [`ClientIoPool`] worker
/// as a [`PoolConn`]; the recovery path re-enters the same machinery on
/// a fresh upstream.
struct IoState {
    upstream: Upstream,
    /// Readiness watch on the raw transport under `upstream`.
    watch: PipeWatch,
    /// Consumer side of the handle-to-pump submission ring.
    cmd_rx: SubmitReceiver<Cmd>,
    /// The pool token's readiness, kept so a reconnected transport's
    /// watch can be routed to the same token.
    readiness: Option<Readiness>,
    /// Every handle dropped (ring closed); retire once `queue` drains.
    shutdown: bool,
    /// Clean retirement happened in `pump` (stats flushed there).
    retired: bool,
    gate: RetireGate,
    window: u32,
    rekey_every: Option<u64>,
    stats: Arc<ProxyStats>,
    shared: Arc<Shared>,
    reconnector: Option<Box<dyn Reconnector>>,
    retry: RetryPolicy,
    /// Reconnections performed so far (lifetime budget).
    reconnects_used: u32,
    /// Commands accepted but not yet admitted (window full or rekeying).
    queue: VecDeque<Cmd>,
    in_flight: HashMap<u32, InFlight>,
    rekey_waiters: Vec<mpsc::Sender<io::Result<()>>>,
    rekey_due: bool,
    /// Wire xids live only between the two proxies; any monotonic counter
    /// works as long as at most `window` are outstanding at once.
    wire_xid: u32,
    calls_since_rekey: u64,
    /// Read scratch; replies are swapped out of it to their waiters and
    /// the retired call record's buffer is swapped in, so at steady state
    /// with same-sized calls and replies no allocation occurs here.
    reply_buf: Vec<u8>,
    /// Largest capacity `reply_buf` has reached. Because the swap recycles
    /// buffers of varying capacity, growth is charged against this
    /// high-water mark, not per-read capacity deltas.
    reply_high_water: usize,
    write_scratch: Vec<u8>,
}

impl PoolConn for IoState {
    fn attach(&mut self, readiness: Readiness) {
        // Both event sources share the token: commands and upstream data
        // each wake the same pump. Registration fires immediately when
        // anything is already pending, so submissions racing the pin are
        // not lost.
        self.watch.register(readiness.clone());
        self.cmd_rx.register(readiness.clone());
        self.readiness = Some(readiness);
    }

    fn pump(&mut self) -> ConnPump {
        for _ in 0..MAX_PUMP {
            match self.pump_once() {
                Ok(Step::Progress) => {}
                Ok(Step::Idle) => return ConnPump::Idle,
                Ok(Step::Retire) => {
                    self.retire();
                    return ConnPump::Gone;
                }
                Err(e) => {
                    if let Err(fatal) = self.recover(e) {
                        self.fail_channel(&fatal);
                        self.retire();
                        return ConnPump::Gone;
                    }
                }
            }
        }
        // Budget spent; there may or may not be work left — re-arming
        // unconditionally costs at most one extra (idle) pass.
        ConnPump::Rearm
    }
}

impl Drop for IoState {
    fn drop(&mut self) {
        if !self.retired {
            // Pool-shutdown path: the worker dropped us without a clean
            // retirement. Flush every waiter (and the depth gauge)
            // before signalling so no stat is lost.
            self.fail_channel(&broken("client I/O pool shut down"));
        }
        self.gate.set();
    }
}

impl IoState {
    fn retire(&mut self) {
        self.retired = true;
        self.gate.set();
    }

    /// Perform at most one unit of work. Priority: retirement check,
    /// admission (fills the window), rekey at quiesce, reply collection.
    fn pump_once(&mut self) -> io::Result<Step> {
        if self.shutdown && self.queue.is_empty() {
            return Ok(self.finish());
        }

        // Admission: top the window up from queued commands, unless a
        // rekey is pending (which quiesces the channel first).
        if !self.rekey_due && (self.in_flight.len() as u32) < self.window {
            let cmd = match self.queue.pop_front() {
                Some(c) => Some(c),
                None if !self.shutdown => match self.cmd_rx.pop() {
                    Popped::Value(c) => Some(c),
                    Popped::Empty => None,
                    Popped::Closed => {
                        self.shutdown = true;
                        // Loop back into the retirement check.
                        return Ok(Step::Progress);
                    }
                },
                None => None,
            };
            if let Some(cmd) = cmd {
                match cmd {
                    Cmd::Call { record, reply_tx } => self.send_call(record, reply_tx)?,
                    Cmd::Batch(calls) => {
                        // Expand at the head of the queue, preserving
                        // batch order; admission re-pops them before any
                        // reply is read (admission has priority) and
                        // parks overflow beyond the window.
                        for (record, reply_tx) in calls.into_iter().rev() {
                            self.queue.push_front(Cmd::Call { record, reply_tx });
                        }
                    }
                    Cmd::Rekey { done_tx } => {
                        self.rekey_due = true;
                        self.rekey_waiters.push(done_tx);
                    }
                }
                return Ok(Step::Progress);
            }
        }

        if self.rekey_due && self.in_flight.is_empty() {
            // Quiesced: safe to renegotiate over the shared channel. On
            // failure the waiters stay parked — a successful recovery
            // (full fresh handshake) satisfies them.
            self.rekey_due = false;
            self.calls_since_rekey = 0;
            renegotiate(&mut self.upstream, &self.shared)?;
            for w in self.rekey_waiters.drain(..) {
                let _ = w.send(Ok(()));
            }
            return Ok(Step::Progress);
        }

        if !self.in_flight.is_empty() {
            if self.watch.has_input() {
                self.read_one_reply()?;
                return Ok(Step::Progress);
            }
            if self.watch.is_closed() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "upstream EOF with calls in flight",
                ));
            }
        }

        Ok(Step::Idle)
    }

    /// Final drain once every handle is gone: deliver replies that have
    /// already arrived, then fail anything still outstanding — dropping
    /// the last handle abandons calls whose replies are still in the
    /// air. Leaves the depth gauge at zero.
    fn finish(&mut self) -> Step {
        while !self.in_flight.is_empty() && self.watch.has_input() {
            if self.read_one_reply().is_err() {
                break;
            }
        }
        if !self.in_flight.is_empty() {
            for (_, call) in self.in_flight.drain() {
                let _ = call
                    .reply_tx
                    .send(Err(broken("pipeline dropped with calls in flight")));
            }
            self.stats.pipeline_completed(0);
        }
        for w in self.rekey_waiters.drain(..) {
            let _ = w.send(Err(broken("upstream pipeline terminated")));
        }
        Step::Retire
    }

    /// Admit one call: rewrite its xid, register the waiter, transmit.
    /// The call is registered *before* the write so a mid-write failure
    /// is recovered (replayed or failed) uniformly with every other
    /// in-flight call.
    fn send_call(
        &mut self,
        mut record: Vec<u8>,
        reply_tx: mpsc::Sender<io::Result<Vec<u8>>>,
    ) -> io::Result<()> {
        if record.len() < 4 {
            let _ = reply_tx.send(Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "RPC record shorter than an xid",
            )));
            return Ok(());
        }
        self.wire_xid = self.wire_xid.wrapping_add(1);
        let orig_xid = [record[0], record[1], record[2], record[3]];
        record[0..4].copy_from_slice(&self.wire_xid.to_be_bytes());
        // Classification is only consulted by the recovery path.
        let replay = self.reconnector.is_some() && retry::replayable(&record);
        let proc = sgfs_obs::peek_proc(&record);
        if let Some(obs) = self.stats.obs() {
            obs.emit(sgfs_obs::Hop::UpstreamSend, self.wire_xid, proc, record.len() as u64);
        }
        self.in_flight.insert(
            self.wire_xid,
            InFlight { orig_xid, record, replay, proc, sent_at: Instant::now(), reply_tx },
        );
        self.stats.pipeline_admitted(self.in_flight.len() as u64);
        self.calls_since_rekey += 1;
        if self.rekey_every.is_some_and(|n| self.calls_since_rekey >= n) {
            self.rekey_due = true;
        }
        let cap = self.write_scratch.capacity();
        let res = write_record_with(
            self.upstream.stream(),
            &self.in_flight[&self.wire_xid].record,
            &mut self.write_scratch,
        );
        self.stats.add_record_alloc((self.write_scratch.capacity() - cap) as u64);
        res
    }

    /// Collect exactly one reply and complete its waiter, handing the
    /// reply buffer over without copying.
    fn read_one_reply(&mut self) -> io::Result<()> {
        match read_record_into(self.upstream.stream(), &mut self.reply_buf) {
            Ok(true) => {}
            Ok(false) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "upstream EOF with calls in flight",
                ))
            }
            Err(e) => return Err(e),
        }
        let cap = self.reply_buf.capacity();
        if cap > self.reply_high_water {
            self.stats.add_record_alloc((cap - self.reply_high_water) as u64);
            self.reply_high_water = cap;
        }
        if self.reply_buf.len() < 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "upstream reply shorter than an xid",
            ));
        }
        let xid = u32::from_be_bytes([
            self.reply_buf[0],
            self.reply_buf[1],
            self.reply_buf[2],
            self.reply_buf[3],
        ]);
        let Some(mut call) = self.in_flight.remove(&xid) else {
            // A reply to nothing we sent: the stream framing can no
            // longer be trusted; a fresh connection can.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "upstream reply to unknown xid",
            ));
        };
        if let Some(obs) = self.stats.obs() {
            // aux = upstream round-trip time in nanoseconds.
            obs.hop_timed(
                sgfs_obs::Hop::UpstreamReply,
                xid,
                call.proc,
                call.sent_at.elapsed().as_nanos() as u64,
            );
        }
        // Zero-copy handoff: the reply rides out in `reply_buf`, and the
        // retired call record's buffer becomes the next read scratch.
        std::mem::swap(&mut self.reply_buf, &mut call.record);
        call.record[0..4].copy_from_slice(&call.orig_xid);
        self.reply_buf.clear();
        self.stats.pipeline_completed(self.in_flight.len() as u64);
        // The caller may have given up on the reply; channel teardown
        // handles the rest.
        let _ = call.reply_tx.send(Ok(call.record));
        Ok(())
    }

    /// Transport failure: fail the in-flight calls that cannot be safely
    /// retransmitted, then re-dial and replay the rest. `Err` means the
    /// channel is truly dead (no reconnector, fatal error, or budget
    /// exhausted) and carries the terminal cause.
    fn recover(&mut self, err: io::Error) -> io::Result<()> {
        if self.reconnector.is_none()
            || !is_transient_io(&err)
            || self.reconnects_used >= self.retry.max_reconnects
        {
            return Err(err);
        }

        // Partition the window: idempotent calls survive for replay (in
        // wire-xid order, preserving relative submission order — COMMIT
        // never jumps ahead of a replayed WRITE because COMMIT is never
        // in flight while unstable WRITEs are, and non-idempotent calls
        // fail right here rather than replay).
        let mut replay: Vec<(u32, InFlight)> = Vec::new();
        for (xid, call) in self.in_flight.drain() {
            if call.replay {
                replay.push((xid, call));
            } else {
                let _ = call.reply_tx.send(Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "connection lost with a non-idempotent call in flight",
                )));
            }
        }
        replay.sort_by_key(|(xid, _)| *xid);
        self.stats.pipeline_completed(0);

        let mut backoff = self.retry.backoff_base;
        let mut last = err;
        for attempt in 0..self.retry.dial_attempts.max(1) {
            if attempt > 0 {
                let d = backoff.min(self.retry.backoff_cap);
                std::thread::sleep(d);
                self.stats.add_backoff(d);
                if let Some(obs) = self.stats.obs() {
                    obs.hop_timed(
                        sgfs_obs::Hop::Backoff,
                        0,
                        sgfs_obs::NO_PROC,
                        d.as_nanos() as u64,
                    );
                }
                backoff = backoff.saturating_mul(2);
            }
            let dialed = self
                .reconnector
                .as_mut()
                .expect("checked above")
                .reconnect(attempt);
            match dialed {
                Ok((up, watch)) => {
                    self.install(up, watch);
                    match self.resend(&replay) {
                        Ok(()) => {
                            let replayed = replay.len() as u64;
                            for (xid, mut call) in replay {
                                if let Some(obs) = self.stats.obs() {
                                    obs.emit(sgfs_obs::Hop::Replay, xid, call.proc, 0);
                                }
                                call.sent_at = Instant::now();
                                self.in_flight.insert(xid, call);
                            }
                            if let Some(obs) = self.stats.obs() {
                                obs.emit(
                                    sgfs_obs::Hop::Reconnect,
                                    0,
                                    sgfs_obs::NO_PROC,
                                    replayed,
                                );
                            }
                            self.stats.pipeline_admitted(self.in_flight.len() as u64);
                            self.stats.add_replays(replayed);
                            self.stats.add_reconnect();
                            self.reconnects_used += 1;
                            // The fresh connection ran a full handshake:
                            // any pending rekey request is satisfied.
                            self.rekey_due = false;
                            self.calls_since_rekey = 0;
                            for w in self.rekey_waiters.drain(..) {
                                let _ = w.send(Ok(()));
                            }
                            return Ok(());
                        }
                        Err(e) if is_transient_io(&e) => last = e,
                        Err(e) => {
                            fail_waiters(replay, &e);
                            return Err(e);
                        }
                    }
                }
                Err(e) if is_transient_io(&e) => last = e,
                Err(e) => {
                    fail_waiters(replay, &e);
                    return Err(e);
                }
            }
        }
        fail_waiters(replay, &last);
        Err(last)
    }

    /// Adopt a fresh upstream, carrying the cumulative handshake count
    /// (and crypto-time accounting) over to the replacement channel and
    /// routing the new transport's readiness into the existing pool
    /// token (registration fires immediately if data already arrived).
    fn install(&mut self, mut up: Upstream, watch: PipeWatch) {
        if let Upstream::Tls(t) = &mut up {
            t.busy_counter = Some(self.stats.busy_counter());
            t.obs = self.stats.obs().cloned();
            let total = self.shared.handshakes.load(Ordering::Acquire) + t.handshake_count();
            t.set_handshake_count(total);
            self.shared.handshakes.store(total, Ordering::Release);
        }
        self.upstream = up;
        self.watch = watch;
        if let Some(r) = &self.readiness {
            self.watch.register(r.clone());
        }
    }

    /// Retransmit every surviving call on the (fresh) upstream. Nothing
    /// is re-registered until all writes land: a mid-resend failure kills
    /// this connection too, and the next dial attempt resends them all.
    fn resend(&mut self, replay: &[(u32, InFlight)]) -> io::Result<()> {
        for (_, call) in replay {
            write_record_with(self.upstream.stream(), &call.record, &mut self.write_scratch)?;
        }
        Ok(())
    }

    /// Complete every outstanding waiter with an error; the upstream is
    /// dead beyond recovery.
    fn fail_channel(&mut self, cause: &io::Error) {
        let msg = format!("upstream channel failed: {cause}");
        for (_, call) in self.in_flight.drain() {
            let _ = call.reply_tx.send(Err(broken(&msg)));
        }
        self.stats.pipeline_completed(0);
        for cmd in self.queue.drain(..) {
            match cmd {
                Cmd::Call { reply_tx, .. } => {
                    let _ = reply_tx.send(Err(broken(&msg)));
                }
                Cmd::Batch(calls) => {
                    for (_, reply_tx) in calls {
                        let _ = reply_tx.send(Err(broken(&msg)));
                    }
                }
                Cmd::Rekey { done_tx } => {
                    let _ = done_tx.send(Err(broken(&msg)));
                }
            }
        }
        for w in self.rekey_waiters.drain(..) {
            let _ = w.send(Err(broken(&msg)));
        }
    }
}

/// Fail a batch of replay candidates whose recovery did not pan out.
fn fail_waiters(replay: Vec<(u32, InFlight)>, cause: &io::Error) {
    let msg = format!("upstream recovery failed: {cause}");
    for (_, call) in replay {
        let _ = call.reply_tx.send(Err(broken(&msg)));
    }
}

fn renegotiate(upstream: &mut Upstream, shared: &Shared) -> io::Result<()> {
    match upstream {
        Upstream::Tls(t) => {
            t.renegotiate().map_err(io::Error::from)?;
            shared.handshakes.store(t.handshake_count(), Ordering::Release);
            Ok(())
        }
        // Nothing to rekey on a plaintext channel (gfs / tunneled).
        Upstream::Plain(_) => Ok(()),
    }
}

fn broken(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgfs_net::pipe_pair;
    use sgfs_oncrpc::record::{read_record, write_record};

    /// An echo server that reads `n` records and replies with each
    /// record's xid followed by a payload derived from the request —
    /// optionally delaying replies to force deep windows.
    fn echo_server(
        mut end: sgfs_net::PipeEnd,
        batch: usize,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || loop {
            let mut held = Vec::new();
            for _ in 0..batch {
                match read_record(&mut end) {
                    Ok(Some(r)) => held.push(r),
                    _ => return,
                }
            }
            // Reply in reverse order: exercises the demux.
            for r in held.into_iter().rev() {
                let mut reply = r[0..4].to_vec();
                reply.extend_from_slice(b"echo:");
                reply.extend_from_slice(&r[4..]);
                if write_record(&mut end, &reply).is_err() {
                    return;
                }
            }
        })
    }

    fn call_record(xid: u32, body: &[u8]) -> Vec<u8> {
        let mut r = xid.to_be_bytes().to_vec();
        r.extend_from_slice(body);
        r
    }

    /// Box a pipe end as a plaintext upstream, keeping its watch.
    fn plain_upstream(end: sgfs_net::PipeEnd) -> (Upstream, PipeWatch) {
        let watch = end.watch();
        (Upstream::Plain(Box::new(end)), watch)
    }

    fn plain_pipeline(
        end: sgfs_net::PipeEnd,
        window: u32,
        stats: Arc<ProxyStats>,
    ) -> Pipeline {
        let (up, watch) = plain_upstream(end);
        Pipeline::new(up, watch, window, None, stats)
    }

    #[test]
    fn replies_match_calls_across_reordering() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 4);
        let stats = ProxyStats::new();
        let p = plain_pipeline(client_end, 4, stats.clone());

        let pending: Vec<(u32, PendingReply)> = (0..4u32)
            .map(|i| {
                let record = call_record(0x1000 + i, format!("payload-{i}").as_bytes());
                (0x1000 + i, p.submit(record))
            })
            .collect();
        for (xid, reply) in pending {
            let reply = reply.wait().unwrap();
            assert_eq!(&reply[0..4], &xid.to_be_bytes(), "xid restored");
            let i = xid - 0x1000;
            assert_eq!(&reply[4..], format!("echo:payload-{i}").as_bytes());
        }
        assert_eq!(stats.pipeline_peak(), 4);
        assert_eq!(stats.pipeline_depth(), 0);
    }

    #[test]
    fn window_of_one_is_serial() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 1);
        let p = plain_pipeline(client_end, 1, ProxyStats::new());
        for i in 0..20u32 {
            let reply = p.call(call_record(i, b"x")).unwrap();
            assert_eq!(&reply[0..4], &i.to_be_bytes());
        }
    }

    #[test]
    fn colliding_caller_xids_are_disambiguated() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 2);
        let p = plain_pipeline(client_end, 2, ProxyStats::new());
        // Two concurrent calls with the SAME caller xid: the wire rewrite
        // must keep them apart.
        let a = p.submit(call_record(7, b"first"));
        let b = p.submit(call_record(7, b"second"));
        let ra = a.wait().unwrap();
        let rb = b.wait().unwrap();
        assert_eq!(&ra[4..], b"echo:first");
        assert_eq!(&rb[4..], b"echo:second");
    }

    #[test]
    fn batch_admits_a_full_window_before_reading() {
        let (client_end, server_end) = pipe_pair();
        // The server releases nothing until 4 records have arrived: only
        // an atomic batch admission can satisfy it.
        let _server = echo_server(server_end, 4);
        let stats = ProxyStats::new();
        let p = plain_pipeline(client_end, 4, stats.clone());
        let records = (0..4u32).map(|i| call_record(i, b"batched")).collect();
        let pending = p.submit_batch(records);
        for (i, reply) in pending.into_iter().enumerate() {
            let reply = reply.wait().unwrap();
            assert_eq!(&reply[0..4], &(i as u32).to_be_bytes());
        }
        assert_eq!(stats.pipeline_peak(), 4);
    }

    #[test]
    fn batch_overflow_parks_behind_the_window() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 1);
        let p = plain_pipeline(client_end, 2, ProxyStats::new());
        // 10 calls through a window of 2: overflow tops up as replies
        // complete, in submission order.
        let records = (0..10u32).map(|i| call_record(i, b"over")).collect();
        let pending = p.submit_batch(records);
        for (i, reply) in pending.into_iter().enumerate() {
            let reply = reply.wait().unwrap();
            assert_eq!(&reply[0..4], &(i as u32).to_be_bytes());
        }
    }

    #[test]
    fn upstream_eof_fails_outstanding_calls() {
        let (client_end, server_end) = pipe_pair();
        let p = plain_pipeline(client_end, 4, ProxyStats::new());
        let pending = p.submit(call_record(1, b"doomed"));
        drop(server_end);
        assert!(pending.wait().is_err());
        // Subsequent calls fail fast rather than hanging.
        assert!(p.call(call_record(2, b"late")).is_err());
    }

    #[test]
    fn plain_rekey_is_noop() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 1);
        let p = plain_pipeline(client_end, 4, ProxyStats::new());
        assert!(p.rekey().is_ok());
        assert_eq!(p.handshake_count(), None);
        assert_eq!(&p.call(call_record(9, b"after")).unwrap()[0..4], &9u32.to_be_bytes());
    }

    #[test]
    fn record_alloc_settles_at_steady_state() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 1);
        let stats = ProxyStats::new();
        let p = plain_pipeline(client_end, 4, stats.clone());
        let payload = vec![0xabu8; 4096];
        for i in 0..32u32 {
            p.call(call_record(i, &payload)).unwrap();
        }
        let settled = stats.record_alloc_bytes();
        assert!(settled > 0, "scratch growth must be accounted at warm-up");
        assert!(
            settled <= 64 * 1024,
            "settled scratch accounting implausibly large: {settled} B \
             (per-reply copies would inflate it every call)"
        );
        // Steady state at the settled size, then *varying* sizes: the
        // reply handoff recycles caller buffers of differing capacity,
        // and none of that churn may be charged as new scratch growth.
        for i in 32..96u32 {
            p.call(call_record(i, &payload)).unwrap();
        }
        for i in 96..128u32 {
            let len = 64 + ((i as usize * 509) % payload.len());
            p.call(call_record(i, &payload[..len])).unwrap();
        }
        assert_eq!(
            stats.record_alloc_bytes(),
            settled,
            "record scratch buffers must stop growing at steady state"
        );
    }

    // --- fault recovery -------------------------------------------------

    use sgfs_nfs3::proc::procnum;
    use sgfs_nfs3::{NFS_PROGRAM, NFS_VERSION};
    use sgfs_oncrpc::{AuthSysParams, CallHeader, OpaqueAuth};
    use sgfs_xdr::{XdrEncode, XdrEncoder};

    /// A minimal but *valid* NFSv3 call record (the replay classifier
    /// must be able to decode the header).
    fn nfs_record(xid: u32, proc: u32) -> Vec<u8> {
        let header = CallHeader {
            xid,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc,
            cred: OpaqueAuth::sys(&AuthSysParams::new("t", 1001, 1001)),
            verf: OpaqueAuth::none(),
        };
        let mut enc = XdrEncoder::with_capacity(64);
        header.encode(&mut enc);
        enc.into_bytes()
    }

    /// A reconnector serving fresh echo-server connections, refusing the
    /// first `refuse` dial attempts.
    fn echo_reconnector(refuse: u32) -> Box<dyn Reconnector> {
        let mut refusals = refuse;
        Box::new(move |_attempt: u32| {
            if refusals > 0 {
                refusals -= 1;
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "injected connect refusal",
                ));
            }
            let (client_end, server_end) = pipe_pair();
            echo_server(server_end, 1);
            Ok(plain_upstream(client_end))
        })
    }

    fn quick_retry() -> RetryPolicy {
        RetryPolicy {
            max_reconnects: 4,
            dial_attempts: 6,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            call_deadline: Some(Duration::from_secs(10)),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn reconnect_replays_idempotent_calls() {
        let (client_end, server_end) = pipe_pair();
        let stats = ProxyStats::new();
        let (up, watch) = plain_upstream(client_end);
        let p = Pipeline::with_recovery(
            up,
            watch,
            4,
            None,
            stats.clone(),
            Some(echo_reconnector(0)),
            quick_retry(),
        );
        let pending = p.submit(nfs_record(0x77, procnum::GETATTR));
        // Kill the first connection before any reply: the GETATTR must be
        // replayed on the fresh channel and still complete correctly.
        drop(server_end);
        let reply = pending.wait().unwrap();
        assert_eq!(&reply[0..4], &0x77u32.to_be_bytes(), "caller xid restored");
        assert_eq!(stats.reconnects(), 1);
        assert_eq!(stats.replays(), 1);
        // Channel stays serviceable afterwards.
        assert!(p.call(nfs_record(0x78, procnum::ACCESS)).is_ok());
    }

    #[test]
    fn connect_refusals_are_retried_with_backoff() {
        let (client_end, server_end) = pipe_pair();
        let stats = ProxyStats::new();
        let (up, watch) = plain_upstream(client_end);
        let p = Pipeline::with_recovery(
            up,
            watch,
            4,
            None,
            stats.clone(),
            Some(echo_reconnector(2)),
            quick_retry(),
        );
        let pending = p.submit(nfs_record(1, procnum::LOOKUP));
        drop(server_end);
        assert!(pending.wait().is_ok());
        assert_eq!(stats.reconnects(), 1);
        assert!(stats.backoff() > Duration::ZERO, "refused dials must back off");
    }

    #[test]
    fn non_idempotent_calls_fail_cleanly_on_reconnect() {
        let (client_end, server_end) = pipe_pair();
        let stats = ProxyStats::new();
        let (up, watch) = plain_upstream(client_end);
        let p = Pipeline::with_recovery(
            up,
            watch,
            4,
            None,
            stats.clone(),
            Some(echo_reconnector(0)),
            quick_retry(),
        );
        // Batch admission puts both calls in flight atomically before
        // the pump collects any reply.
        let mut pending =
            p.submit_batch(vec![nfs_record(2, procnum::RENAME), nfs_record(3, procnum::GETATTR)]);
        let getattr = pending.pop().unwrap();
        let rename = pending.pop().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        drop(server_end);
        let err = rename.wait().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset, "{err}");
        assert!(getattr.wait().is_ok(), "idempotent neighbor must survive");
        assert_eq!(stats.replays(), 1, "only the GETATTR is replayed");
    }

    #[test]
    fn reconnect_budget_exhaustion_is_terminal() {
        let (client_end, server_end) = pipe_pair();
        let (up, watch) = plain_upstream(client_end);
        let p = Pipeline::with_recovery(
            up,
            watch,
            4,
            None,
            ProxyStats::new(),
            // Every dial refused: recovery must give up, not spin.
            Some(Box::new(|_attempt: u32| {
                Err::<(Upstream, PipeWatch), _>(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "always refused",
                ))
            })),
            RetryPolicy {
                dial_attempts: 2,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
                ..quick_retry()
            },
        );
        let pending = p.submit(nfs_record(4, procnum::GETATTR));
        drop(server_end);
        assert!(pending.wait().is_err());
        assert!(p.call(nfs_record(5, procnum::GETATTR)).is_err(), "channel is dead");
    }

    #[test]
    fn trace_events_cover_send_reply_and_recovery() {
        use sgfs_obs::{Hop, Obs};
        let (client_end, server_end) = pipe_pair();
        let stats = ProxyStats::new();
        let obs = Obs::new();
        stats.set_obs(obs.clone());
        let (up, watch) = plain_upstream(client_end);
        let p = Pipeline::with_recovery(
            up,
            watch,
            4,
            None,
            stats.clone(),
            Some(echo_reconnector(1)),
            quick_retry(),
        );
        // A one-shot server: answers the first call, then hangs up — the
        // second call must ride the recovery path.
        let server = std::thread::spawn(move || {
            let mut end = server_end;
            let r = read_record(&mut end).unwrap().unwrap();
            let mut reply = r[0..4].to_vec();
            reply.extend_from_slice(b"ok");
            write_record(&mut end, &reply).unwrap();
        });
        p.call(nfs_record(0x41, procnum::GETATTR)).unwrap();
        server.join().unwrap();
        p.call(nfs_record(0x42, procnum::READ)).unwrap();
        let hops: Vec<Hop> = obs.events().0.iter().map(|e| e.hop).collect();
        // First call: clean send/reply pair.
        assert_eq!(&hops[0..2], &[Hop::UpstreamSend, Hop::UpstreamReply]);
        // Second call: sent, channel dies, backed off (one refused dial),
        // replayed on the fresh channel, then replied.
        assert_eq!(hops[2], Hop::UpstreamSend);
        for hop in [Hop::Backoff, Hop::Replay, Hop::Reconnect, Hop::UpstreamReply] {
            assert!(hops[3..].contains(&hop), "missing {hop:?} in {hops:?}");
        }
        // Procedure attribution survives the wire-xid rewrite.
        let (events, _) = obs.events();
        assert!(events.iter().any(|e| e.hop == Hop::UpstreamReply && e.proc == procnum::READ));
        assert_eq!(obs.hop_hist(Hop::UpstreamReply).count(), 2);
    }

    #[test]
    fn silent_server_trips_call_deadline() {
        let (client_end, server_end) = pipe_pair();
        // No echo server: the connection is open but never answers.
        let (up, watch) = plain_upstream(client_end);
        let p = Pipeline::with_recovery(
            up,
            watch,
            4,
            None,
            ProxyStats::new(),
            None,
            RetryPolicy {
                call_deadline: Some(Duration::from_millis(50)),
                ..RetryPolicy::default()
            },
        );
        let err = p.call(nfs_record(6, procnum::GETATTR)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        drop(server_end);
    }

    // --- event-plane teardown -------------------------------------------

    use sgfs_oncrpc::process_thread_count;

    fn wait_for<F: Fn() -> bool>(what: &str, f: F) {
        for _ in 0..1000 {
            if f() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn drop_flushes_stats_and_joins_private_pool() {
        let before = process_thread_count();
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 1);
        let stats = ProxyStats::new();
        let p = plain_pipeline(client_end, 4, stats.clone());
        for i in 0..8u32 {
            p.call(call_record(i, b"x")).unwrap();
        }
        assert_eq!(stats.pipeline_peak(), 1);
        // Dropping the last handle retires the connection: the depth
        // gauge is flushed to zero before drop returns, and the private
        // pool worker joins — no leaked reader thread.
        drop(p);
        assert_eq!(stats.pipeline_depth(), 0, "depth gauge flushed before drop returned");
        if let (Some(b), Some(_)) = (before, process_thread_count()) {
            wait_for("threads back to baseline", || {
                process_thread_count().is_some_and(|a| a <= b)
            });
        }
    }

    #[test]
    fn drop_with_calls_in_flight_fails_them_and_retires() {
        let (client_end, server_end) = pipe_pair();
        // Silent server: the reply never comes.
        let p = plain_pipeline(client_end, 4, ProxyStats::new());
        let pending = p.submit(call_record(1, b"abandoned"));
        // Give the pump time to admit the call before abandoning it.
        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        drop(p);
        assert!(
            start.elapsed() < RETIRE_WAIT,
            "retirement must not wait out the backstop timeout"
        );
        // The abandoned call fails instead of hanging.
        assert!(pending.wait().is_err());
        drop(server_end);
    }

    #[test]
    fn pipelines_share_a_fixed_pool() {
        let before = process_thread_count();
        let pool = ClientIoPool::new(2);
        let mut servers = Vec::new();
        let pipelines: Vec<Pipeline> = (0..16)
            .map(|_| {
                let (client_end, server_end) = pipe_pair();
                servers.push(echo_server(server_end, 1));
                let (up, watch) = plain_upstream(client_end);
                Pipeline::with_recovery_on(
                    &pool,
                    up,
                    watch,
                    4,
                    None,
                    ProxyStats::new(),
                    None,
                    RetryPolicy::default(),
                )
                .unwrap()
            })
            .collect();
        wait_for("all conns pinned", || pool.active_conns() == 16);
        // Interleave traffic across every pipeline on the 2 workers.
        for round in 0..4u32 {
            let pending: Vec<PendingReply> = pipelines
                .iter()
                .map(|p| p.submit(call_record(round, b"pooled")))
                .collect();
            for reply in pending {
                assert_eq!(&reply.wait().unwrap()[4..], b"echo:pooled");
            }
        }
        drop(pipelines);
        wait_for("all conns retired", || pool.active_conns() == 0);
        for s in servers {
            s.join().unwrap();
        }
        drop(pool);
        if let (Some(b), Some(_)) = (before, process_thread_count()) {
            wait_for("pool threads joined", || {
                process_thread_count().is_some_and(|a| a <= b)
            });
        }
    }
}
