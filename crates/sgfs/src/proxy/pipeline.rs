//! Xid-demultiplexed RPC pipelining over the upstream channel.
//!
//! The client proxy used to issue upstream calls strictly serially: write
//! one record, block for its reply, repeat. Over a WAN that bounds
//! throughput at one call per round trip. A [`Pipeline`] instead owns the
//! upstream channel on a dedicated I/O thread and admits up to `window`
//! calls before requiring a reply, matching replies back to callers by
//! RPC xid — the transaction id that is the first word of every ONC RPC
//! call *and* reply record (RFC 5531 §9).
//!
//! Because several independent callers (the proxy's request loop, the
//! split-phase write-back, the read-ahead worker) share one channel, their
//! original xids could collide. The pipeline therefore rewrites the xid of
//! each admitted call to a private monotonically increasing wire xid,
//! remembers the mapping, and rewrites the reply's xid back before
//! completing the caller — callers observe byte-identical replies to the
//! serial protocol.
//!
//! Renegotiation (rekey) must not interleave with data records: the GTLS
//! rekey runs over the protected channel and expects only handshake
//! records, so in-flight DATA replies would break it. The pipeline
//! *quiesces* first — stops admitting, drains every outstanding reply —
//! and only then renegotiates. The periodic `rekey_every` threshold is
//! tracked here (not by `GtlsStream::auto_rekey_every`, which would fire
//! mid-window) for the same reason.
//!
//! Single-thread alternation: the emulated transport's `Stream` objects
//! are not splittable into read/write halves, so one thread alternates
//! between admitting writes and blocking on the next reply. The server
//! proxy answers every request it receives, so a blocked read always
//! terminates and queued commands wait at most one reply time for
//! admission.

use crate::proxy::client::Upstream;
use crate::stats::ProxyStats;
use sgfs_oncrpc::record::{read_record_into, write_record_with};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// Default in-flight window (calls admitted before a reply is required).
pub const DEFAULT_WINDOW: u32 = 8;

/// Commands from pipeline handles to the I/O thread.
enum Cmd {
    /// Forward one raw call record; the reply (original xid restored)
    /// goes back through `reply_tx`.
    Call {
        record: Vec<u8>,
        reply_tx: mpsc::Sender<io::Result<Vec<u8>>>,
    },
    /// Several calls submitted atomically: they reach the I/O thread as a
    /// unit, so up to a window of them is guaranteed to be admitted
    /// before the thread blocks on a reply. Individual `submit` calls
    /// race against admission — a batch of N ≤ window never leaves a
    /// member stranded behind a blocking read.
    Batch(Vec<(Vec<u8>, mpsc::Sender<io::Result<Vec<u8>>>)>),
    /// Quiesce the window and renegotiate the session keys.
    Rekey { done_tx: mpsc::Sender<io::Result<()>> },
}

/// State shared between handles and the I/O thread.
struct Shared {
    /// Mirror of the upstream's completed-handshake count.
    handshakes: AtomicU64,
    /// Whether the upstream is GTLS-protected (rekey is meaningful).
    is_tls: bool,
}

/// A cloneable handle to the pipelined upstream channel.
///
/// Dropping every handle shuts the I/O thread down and closes the
/// upstream connection.
#[derive(Clone)]
pub struct Pipeline {
    cmd_tx: mpsc::Sender<Cmd>,
    shared: Arc<Shared>,
}

/// A submitted call whose reply has not been collected yet.
pub struct PendingReply {
    rx: mpsc::Receiver<io::Result<Vec<u8>>>,
}

impl PendingReply {
    /// Block until the reply arrives (original xid restored).
    pub fn wait(self) -> io::Result<Vec<u8>> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(broken("upstream pipeline terminated")),
        }
    }
}

impl Pipeline {
    /// Take ownership of `upstream` and start the I/O thread.
    ///
    /// `window` is clamped to at least 1 (a window of 1 degenerates to
    /// the serial protocol); `rekey_every` renegotiates after that many
    /// calls, at a quiesce point.
    pub fn new(
        upstream: Upstream,
        window: u32,
        rekey_every: Option<u64>,
        stats: Arc<ProxyStats>,
    ) -> Self {
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let (is_tls, handshakes) = match &upstream {
            Upstream::Tls(t) => (true, t.handshake_count()),
            Upstream::Plain(_) => (false, 0),
        };
        let shared = Arc::new(Shared { handshakes: AtomicU64::new(handshakes), is_tls });
        let thread_shared = shared.clone();
        std::thread::spawn(move || {
            io_loop(upstream, cmd_rx, window.max(1), rekey_every, stats, thread_shared)
        });
        Self { cmd_tx, shared }
    }

    /// Submit a raw call record without waiting for its reply — the
    /// split-phase half of pipelined write-back.
    pub fn submit(&self, record: Vec<u8>) -> PendingReply {
        let (reply_tx, rx) = mpsc::channel();
        // A send failure means the I/O thread is gone; wait() observes
        // the dropped sender and reports it.
        let _ = self.cmd_tx.send(Cmd::Call { record, reply_tx });
        PendingReply { rx }
    }

    /// Submit a group of call records atomically. Up to a window of them
    /// is admitted before the I/O thread waits on any reply, so a
    /// split-phase flush overlaps its round trips deterministically.
    pub fn submit_batch(&self, records: Vec<Vec<u8>>) -> Vec<PendingReply> {
        let mut waiters = Vec::with_capacity(records.len());
        let mut batch = Vec::with_capacity(records.len());
        for record in records {
            let (reply_tx, rx) = mpsc::channel();
            batch.push((record, reply_tx));
            waiters.push(PendingReply { rx });
        }
        let _ = self.cmd_tx.send(Cmd::Batch(batch));
        waiters
    }

    /// Forward one call record and block for its reply.
    pub fn call(&self, record: Vec<u8>) -> io::Result<Vec<u8>> {
        self.submit(record).wait()
    }

    /// Quiesce the window and renegotiate the session keys, blocking
    /// until the new keys are in effect. No-op on a plaintext upstream.
    pub fn rekey(&self) -> io::Result<()> {
        let (done_tx, rx) = mpsc::channel();
        self.cmd_tx
            .send(Cmd::Rekey { done_tx })
            .map_err(|_| broken("upstream pipeline terminated"))?;
        rx.recv().map_err(|_| broken("upstream pipeline terminated"))?
    }

    /// Completed handshakes on the secure channel (`None` when plain).
    pub fn handshake_count(&self) -> Option<u64> {
        self.shared
            .is_tls
            .then(|| self.shared.handshakes.load(Ordering::Acquire))
    }
}

/// One admitted call awaiting its reply.
struct InFlight {
    orig_xid: [u8; 4],
    reply_tx: mpsc::Sender<io::Result<Vec<u8>>>,
}

fn io_loop(
    mut upstream: Upstream,
    cmd_rx: mpsc::Receiver<Cmd>,
    window: u32,
    rekey_every: Option<u64>,
    stats: Arc<ProxyStats>,
    shared: Arc<Shared>,
) {
    // Commands accepted but not yet admitted (window full or rekeying).
    let mut queue: VecDeque<Cmd> = VecDeque::new();
    let mut in_flight: HashMap<u32, InFlight> = HashMap::new();
    let mut rekey_waiters: Vec<mpsc::Sender<io::Result<()>>> = Vec::new();
    let mut rekey_due = false;
    // Wire xids live only between the two proxies; any monotonic counter
    // works as long as at most `window` are outstanding at once.
    let mut wire_xid: u32 = 0x9000_0000;
    let mut calls_since_rekey: u64 = 0;
    // Reused record buffers; capacity growth is the per-record allocation
    // figure the stats expose.
    let mut reply_buf: Vec<u8> = Vec::new();
    let mut write_scratch: Vec<u8> = Vec::new();

    loop {
        // Admission: fill the window from queued commands, unless a rekey
        // is pending (which quiesces the channel first).
        while !rekey_due && (in_flight.len() as u32) < window {
            let cmd = match queue.pop_front() {
                Some(c) => c,
                None => match cmd_rx.try_recv() {
                    Ok(c) => c,
                    Err(_) => break,
                },
            };
            match cmd {
                Cmd::Call { mut record, reply_tx } => {
                    if record.len() < 4 {
                        let _ = reply_tx.send(Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "RPC record shorter than an xid",
                        )));
                        continue;
                    }
                    wire_xid = wire_xid.wrapping_add(1);
                    let orig_xid = [record[0], record[1], record[2], record[3]];
                    record[0..4].copy_from_slice(&wire_xid.to_be_bytes());
                    let cap = write_scratch.capacity();
                    if let Err(e) =
                        write_record_with(upstream.stream(), &record, &mut write_scratch)
                    {
                        let _ = reply_tx.send(Err(e));
                        fail_channel(&mut in_flight, &mut queue, &mut rekey_waiters, &stats);
                        return;
                    }
                    stats.add_record_alloc((write_scratch.capacity() - cap) as u64);
                    in_flight.insert(wire_xid, InFlight { orig_xid, reply_tx });
                    stats.pipeline_admitted(in_flight.len() as u64);
                    calls_since_rekey += 1;
                    if rekey_every.is_some_and(|n| calls_since_rekey >= n) {
                        rekey_due = true;
                    }
                }
                Cmd::Batch(calls) => {
                    // Expand at the head of the queue, preserving batch
                    // order; the admission loop re-pops them immediately
                    // and parks any overflow beyond the window.
                    for (record, reply_tx) in calls.into_iter().rev() {
                        queue.push_front(Cmd::Call { record, reply_tx });
                    }
                }
                Cmd::Rekey { done_tx } => {
                    rekey_due = true;
                    rekey_waiters.push(done_tx);
                }
            }
        }

        if in_flight.is_empty() {
            if rekey_due {
                // Quiesced: safe to renegotiate over the shared channel.
                let res = renegotiate(&mut upstream, &shared);
                calls_since_rekey = 0;
                rekey_due = false;
                let failed = res.is_err();
                for w in rekey_waiters.drain(..) {
                    let _ = w.send(res.as_ref().map(|_| ()).map_err(clone_err));
                }
                if failed {
                    fail_channel(&mut in_flight, &mut queue, &mut rekey_waiters, &stats);
                    return;
                }
                continue;
            }
            // Idle: block for the next command (or shut down once every
            // handle is dropped).
            match cmd_rx.recv() {
                Ok(cmd) => {
                    queue.push_back(cmd);
                    continue;
                }
                Err(_) => return,
            }
        }

        // Collect exactly one reply and complete its waiter.
        let cap = reply_buf.capacity();
        match read_record_into(upstream.stream(), &mut reply_buf) {
            Ok(true) => {
                stats.add_record_alloc((reply_buf.capacity() - cap) as u64);
                if reply_buf.len() < 4 {
                    fail_channel(&mut in_flight, &mut queue, &mut rekey_waiters, &stats);
                    return;
                }
                let xid =
                    u32::from_be_bytes([reply_buf[0], reply_buf[1], reply_buf[2], reply_buf[3]]);
                match in_flight.remove(&xid) {
                    Some(call) => {
                        let mut reply = reply_buf.clone();
                        reply[0..4].copy_from_slice(&call.orig_xid);
                        stats.pipeline_completed(in_flight.len() as u64);
                        // The caller may have given up on the reply;
                        // channel teardown handles the rest.
                        let _ = call.reply_tx.send(Ok(reply));
                    }
                    None => {
                        // A reply to nothing we sent: protocol violation,
                        // the channel can no longer be trusted.
                        fail_channel(&mut in_flight, &mut queue, &mut rekey_waiters, &stats);
                        return;
                    }
                }
            }
            Ok(false) | Err(_) => {
                // EOF or transport error with calls outstanding.
                fail_channel(&mut in_flight, &mut queue, &mut rekey_waiters, &stats);
                return;
            }
        }
    }
}

/// Complete every outstanding waiter with an error; the upstream is dead.
fn fail_channel(
    in_flight: &mut HashMap<u32, InFlight>,
    queue: &mut VecDeque<Cmd>,
    rekey_waiters: &mut Vec<mpsc::Sender<io::Result<()>>>,
    stats: &ProxyStats,
) {
    for (_, call) in in_flight.drain() {
        let _ = call.reply_tx.send(Err(broken("upstream channel failed")));
    }
    stats.pipeline_completed(0);
    for cmd in queue.drain(..) {
        match cmd {
            Cmd::Call { reply_tx, .. } => {
                let _ = reply_tx.send(Err(broken("upstream channel failed")));
            }
            Cmd::Batch(calls) => {
                for (_, reply_tx) in calls {
                    let _ = reply_tx.send(Err(broken("upstream channel failed")));
                }
            }
            Cmd::Rekey { done_tx } => {
                let _ = done_tx.send(Err(broken("upstream channel failed")));
            }
        }
    }
    for w in rekey_waiters.drain(..) {
        let _ = w.send(Err(broken("upstream channel failed")));
    }
}

fn renegotiate(upstream: &mut Upstream, shared: &Shared) -> io::Result<()> {
    match upstream {
        Upstream::Tls(t) => {
            t.renegotiate().map_err(io::Error::from)?;
            shared.handshakes.store(t.handshake_count(), Ordering::Release);
            Ok(())
        }
        // Nothing to rekey on a plaintext channel (gfs / tunneled).
        Upstream::Plain(_) => Ok(()),
    }
}

fn broken(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, msg.to_string())
}

fn clone_err(e: &io::Error) -> io::Error {
    io::Error::new(e.kind(), e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgfs_net::pipe_pair;
    use sgfs_oncrpc::record::{read_record, write_record};

    /// An echo server that reads `n` records and replies with each
    /// record's xid followed by a payload derived from the request —
    /// optionally delaying replies to force deep windows.
    fn echo_server(
        mut end: sgfs_net::PipeEnd,
        batch: usize,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || loop {
            let mut held = Vec::new();
            for _ in 0..batch {
                match read_record(&mut end) {
                    Ok(Some(r)) => held.push(r),
                    _ => return,
                }
            }
            // Reply in reverse order: exercises the demux.
            for r in held.into_iter().rev() {
                let mut reply = r[0..4].to_vec();
                reply.extend_from_slice(b"echo:");
                reply.extend_from_slice(&r[4..]);
                if write_record(&mut end, &reply).is_err() {
                    return;
                }
            }
        })
    }

    fn call_record(xid: u32, body: &[u8]) -> Vec<u8> {
        let mut r = xid.to_be_bytes().to_vec();
        r.extend_from_slice(body);
        r
    }

    #[test]
    fn replies_match_calls_across_reordering() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 4);
        let stats = ProxyStats::new();
        let p = Pipeline::new(Upstream::Plain(Box::new(client_end)), 4, None, stats.clone());

        let pending: Vec<(u32, PendingReply)> = (0..4u32)
            .map(|i| {
                let record = call_record(0x1000 + i, format!("payload-{i}").as_bytes());
                (0x1000 + i, p.submit(record))
            })
            .collect();
        for (xid, reply) in pending {
            let reply = reply.wait().unwrap();
            assert_eq!(&reply[0..4], &xid.to_be_bytes(), "xid restored");
            let i = xid - 0x1000;
            assert_eq!(&reply[4..], format!("echo:payload-{i}").as_bytes());
        }
        assert_eq!(stats.pipeline_peak(), 4);
        assert_eq!(stats.pipeline_depth(), 0);
    }

    #[test]
    fn window_of_one_is_serial() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 1);
        let p = Pipeline::new(Upstream::Plain(Box::new(client_end)), 1, None, ProxyStats::new());
        for i in 0..20u32 {
            let reply = p.call(call_record(i, b"x")).unwrap();
            assert_eq!(&reply[0..4], &i.to_be_bytes());
        }
    }

    #[test]
    fn colliding_caller_xids_are_disambiguated() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 2);
        let p = Pipeline::new(Upstream::Plain(Box::new(client_end)), 2, None, ProxyStats::new());
        // Two concurrent calls with the SAME caller xid: the wire rewrite
        // must keep them apart.
        let a = p.submit(call_record(7, b"first"));
        let b = p.submit(call_record(7, b"second"));
        let ra = a.wait().unwrap();
        let rb = b.wait().unwrap();
        assert_eq!(&ra[4..], b"echo:first");
        assert_eq!(&rb[4..], b"echo:second");
    }

    #[test]
    fn batch_admits_a_full_window_before_reading() {
        let (client_end, server_end) = pipe_pair();
        // The server releases nothing until 4 records have arrived: only
        // an atomic batch admission can satisfy it.
        let _server = echo_server(server_end, 4);
        let stats = ProxyStats::new();
        let p = Pipeline::new(Upstream::Plain(Box::new(client_end)), 4, None, stats.clone());
        let records = (0..4u32).map(|i| call_record(i, b"batched")).collect();
        let pending = p.submit_batch(records);
        for (i, reply) in pending.into_iter().enumerate() {
            let reply = reply.wait().unwrap();
            assert_eq!(&reply[0..4], &(i as u32).to_be_bytes());
        }
        assert_eq!(stats.pipeline_peak(), 4);
    }

    #[test]
    fn batch_overflow_parks_behind_the_window() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 1);
        let p = Pipeline::new(Upstream::Plain(Box::new(client_end)), 2, None, ProxyStats::new());
        // 10 calls through a window of 2: overflow tops up as replies
        // complete, in submission order.
        let records = (0..10u32).map(|i| call_record(i, b"over")).collect();
        let pending = p.submit_batch(records);
        for (i, reply) in pending.into_iter().enumerate() {
            let reply = reply.wait().unwrap();
            assert_eq!(&reply[0..4], &(i as u32).to_be_bytes());
        }
    }

    #[test]
    fn upstream_eof_fails_outstanding_calls() {
        let (client_end, server_end) = pipe_pair();
        let p = Pipeline::new(Upstream::Plain(Box::new(client_end)), 4, None, ProxyStats::new());
        let pending = p.submit(call_record(1, b"doomed"));
        drop(server_end);
        assert!(pending.wait().is_err());
        // Subsequent calls fail fast rather than hanging.
        assert!(p.call(call_record(2, b"late")).is_err());
    }

    #[test]
    fn plain_rekey_is_noop() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 1);
        let p = Pipeline::new(Upstream::Plain(Box::new(client_end)), 4, None, ProxyStats::new());
        assert!(p.rekey().is_ok());
        assert_eq!(p.handshake_count(), None);
        assert_eq!(&p.call(call_record(9, b"after")).unwrap()[0..4], &9u32.to_be_bytes());
    }

    #[test]
    fn record_alloc_settles_at_steady_state() {
        let (client_end, server_end) = pipe_pair();
        let _server = echo_server(server_end, 1);
        let stats = ProxyStats::new();
        let p = Pipeline::new(Upstream::Plain(Box::new(client_end)), 4, None, stats.clone());
        let payload = vec![0xabu8; 4096];
        for i in 0..32u32 {
            p.call(call_record(i, &payload)).unwrap();
        }
        let settled = stats.record_alloc_bytes();
        for i in 32..96u32 {
            p.call(call_record(i, &payload)).unwrap();
        }
        assert_eq!(
            stats.record_alloc_bytes(),
            settled,
            "record scratch buffers must stop growing at steady state"
        );
    }
}
