//! The `gfs-ssh` baseline: an SSH-like encrypted tunnel between proxies.
//!
//! The earlier GFS security model (reference \[45\] in the paper) runs the proxy
//! traffic through per-session SSH tunnels and authenticates the proxies
//! to each other with a middleware-distributed session key. This module
//! reproduces that stack: both tunnel endpoints prove knowledge of the
//! session key, derive AES-256-CBC + SHA1-HMAC record keys from it (the
//! paper configures the SSH tunnels with exactly those algorithms), and
//! then *forward* bytes between a local pipe and the wire on dedicated
//! threads — the "double user-level forwarding" whose cost Figure 4 shows:
//! every RPC message makes two extra user-level hops with two extra copies
//! and context switches, plus a second encryption layer.
//!
//! Establishment is two-phase ([`tunnel_start`] writes this side's hello,
//! [`TunnelPending::finish`] reads the peer's), so an in-process pair can
//! be brought up on one thread: start both sides, then finish both — each
//! finish finds the peer's hello already in the pipe. The forwarder
//! threads are owned by a [`TunnelGuard`] that joins them on drop; tie the
//! guard's lifetime to the session so teardown reclaims the threads
//! deterministically instead of leaking them.

use crate::config::HopCost;
use crate::proxy::ProxyError;
use sgfs_net::SimClock;
use std::sync::Arc;
use sgfs_crypto::prf::prf_sha256;
use sgfs_crypto::{ct_eq, hmac_sha256};
use sgfs_gtls::record::{read_frame, write_frame, HalfConn, CT_DATA};
use sgfs_gtls::CipherSuite;
use sgfs_net::{pipe_pair, BoxStream};
use std::io::{Read, Write};

/// Tunnel chunk size: how much is read from the local side per frame.
const CHUNK: usize = 32 * 1024 + 512;

/// Owns a tunnel endpoint's two forwarder threads and joins them on
/// drop. The forwarders exit when either side of the tunnel closes
/// (dropping the local plaintext stream cascades the teardown), so the
/// guard's join terminates once the endpoint's user is gone — keep it
/// with the session and teardown reclaims the threads deterministically.
pub struct TunnelGuard {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl TunnelGuard {
    /// Wait for both forwarders to exit. Idempotent.
    pub fn join(&mut self) {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TunnelGuard {
    fn drop(&mut self) {
        self.join();
    }
}

/// A tunnel endpoint that has written its own hello but not yet read the
/// peer's — the pause point that lets one thread establish both ends of
/// an in-process tunnel (start both, then finish both).
pub struct TunnelPending {
    wire: sgfs_net::PipeEnd,
    key: Vec<u8>,
    is_client: bool,
    hop: Option<(Arc<SimClock>, HopCost)>,
    my_nonce: [u8; 16],
}

/// Write this side's hello (`nonce, HMAC(key, role || nonce)`) — the MAC
/// proves knowledge of the session key, the inter-proxy authentication of
/// the session-key model — and return the endpoint paused before the
/// peer-hello read.
pub fn tunnel_start(
    wire: sgfs_net::PipeEnd,
    key: &[u8],
    is_client: bool,
    hop: Option<(Arc<SimClock>, HopCost)>,
) -> Result<TunnelPending, ProxyError> {
    let mut wire = wire;
    let my_role: &[u8] = if is_client { b"tunnel-client" } else { b"tunnel-server" };
    let my_nonce: [u8; 16] = rand::random();
    let mut msg = my_role.to_vec();
    msg.extend_from_slice(&my_nonce);
    let mac = hmac_sha256(key, &msg);
    let mut hello = my_nonce.to_vec();
    hello.extend_from_slice(&mac);
    write_frame(&mut wire, CT_DATA, &hello)?;
    Ok(TunnelPending { wire, key: key.to_vec(), is_client, hop, my_nonce })
}

impl TunnelPending {
    /// Read and verify the peer's hello, derive the per-direction record
    /// states, and start the two forwarder threads. Returns the local
    /// plaintext stream the proxy connects to, a readiness watch on it
    /// (what an event loop must observe — the forwarders, not the loop,
    /// drain the encrypted wire), and the guard owning the forwarders.
    pub fn finish(self) -> Result<(BoxStream, sgfs_net::PipeWatch, TunnelGuard), ProxyError> {
        let TunnelPending { mut wire, key, is_client, hop, my_nonce } = self;
        let peer_role: &[u8] = if is_client { b"tunnel-server" } else { b"tunnel-client" };

        let (_, peer_hello) = read_frame(&mut wire)?;
        if peer_hello.len() != 16 + 32 {
            return Err(ProxyError::Protocol("bad tunnel hello".into()));
        }
        let peer_nonce = &peer_hello[..16];
        let mut expect = peer_role.to_vec();
        expect.extend_from_slice(peer_nonce);
        if !ct_eq(&hmac_sha256(&key, &expect), &peer_hello[16..]) {
            return Err(ProxyError::Unauthorized("tunnel session key mismatch".into()));
        }

        // Key block: client-write then server-write material.
        let mut seed = Vec::with_capacity(32);
        if is_client {
            seed.extend_from_slice(&my_nonce);
            seed.extend_from_slice(peer_nonce);
        } else {
            seed.extend_from_slice(peer_nonce);
            seed.extend_from_slice(&my_nonce);
        }
        let block = prf_sha256(&key, b"ssh tunnel keys", &seed, 2 * (32 + 20));
        let (c_key, rest) = block.split_at(32);
        let (c_mac, rest) = rest.split_at(20);
        let (s_key, s_mac) = rest.split_at(32);
        let suite = CipherSuite::Aes256CbcSha1;
        let c2s = HalfConn::new(suite, c_key, c_mac, &[]);
        let s2c = HalfConn::new(suite, s_key, s_mac, &[]);
        let (mut tx_state, mut rx_state) = if is_client { (c2s, s2c) } else { (s2c, c2s) };

        let hop_tx = hop.clone();
        let hop_rx = hop;

        // Reads and writes happen on separate forwarder threads, so both
        // the wire and the local pipe are split into independent halves.
        let (local_for_proxy, local_for_tunnel) = pipe_pair();
        let (mut local_read, mut local_write) = local_for_tunnel.split();
        let (mut wire_read, mut wire_write) = wire.split();

        // local → wire (encrypt).
        let tx_handle = std::thread::spawn(move || {
            let mut rng = rand::thread_rng();
            let mut buf = vec![0u8; CHUNK];
            loop {
                let n = match local_read.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                // The extra user-level hop: this forwarder is a separate
                // process in the paper's SSH model, paying a read syscall
                // from the local pipe and a write to the wire per message.
                if let Some((clock, hop)) = &hop_tx {
                    clock.advance(hop.of(n) * 2);
                }
                let sealed = tx_state.seal(CT_DATA, &buf[..n], &mut rng);
                if write_frame(&mut wire_write, CT_DATA, &sealed).is_err() {
                    break;
                }
            }
        });

        // wire → local (decrypt).
        let rx_handle = std::thread::spawn(move || {
            while let Ok((_, body)) = read_frame(&mut wire_read) {
                let plain = match rx_state.open(CT_DATA, body) {
                    Ok(p) => p,
                    Err(_) => break,
                };
                if let Some((clock, hop)) = &hop_rx {
                    clock.advance(hop.of(plain.len()) * 2);
                }
                if local_write.write_all(&plain).is_err() {
                    break;
                }
            }
        });

        let watch = local_for_proxy.watch();
        Ok((
            Box::new(local_for_proxy),
            watch,
            TunnelGuard { handles: vec![tx_handle, rx_handle] },
        ))
    }
}

/// Client-side tunnel endpoint (the `ssh` process on the compute host).
/// Blocks for the server's hello; use [`tunnel_start`] when both ends
/// are established from one thread.
pub fn tunnel_client(
    wire: sgfs_net::PipeEnd,
    key: &[u8],
    hop: Option<(Arc<SimClock>, HopCost)>,
) -> Result<(BoxStream, TunnelGuard), ProxyError> {
    tunnel_start(wire, key, true, hop)?.finish().map(|(s, _, g)| (s, g))
}

/// Server-side tunnel endpoint (the `sshd` on the file-server host).
pub fn tunnel_server(
    wire: sgfs_net::PipeEnd,
    key: &[u8],
    hop: Option<(Arc<SimClock>, HopCost)>,
) -> Result<(BoxStream, TunnelGuard), ProxyError> {
    tunnel_start(wire, key, false, hop)?.finish().map(|(s, _, g)| (s, g))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Vec<u8> {
        b"shared-session-key-from-middleware".to_vec()
    }

    #[test]
    fn tunnel_roundtrip() {
        let (wire_a, wire_b) = pipe_pair();
        let k = key();
        let k2 = k.clone();
        let server = std::thread::spawn(move || tunnel_server(wire_b, &k2, None).unwrap());
        let (mut client_side, _cg) = tunnel_client(wire_a, &k, None).unwrap();
        let (mut server_side, _sg) = server.join().unwrap();

        client_side.write_all(b"rpc request").unwrap();
        let mut buf = [0u8; 11];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"rpc request");

        server_side.write_all(b"rpc reply").unwrap();
        let mut buf = [0u8; 9];
        client_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"rpc reply");

        // Close the endpoints before the guards drop: their drop-join
        // only terminates once the local pipes are gone.
        drop(client_side);
        drop(server_side);
    }

    #[test]
    fn two_phase_pair_establishes_on_one_thread() {
        let (wire_a, wire_b) = pipe_pair();
        let k = key();
        // start/start then finish/finish: each finish reads a hello that
        // is already in the pipe, so no concurrent peer thread is needed.
        let client_pend = tunnel_start(wire_a, &k, true, None).unwrap();
        let server_pend = tunnel_start(wire_b, &k, false, None).unwrap();
        let (mut client_side, _cw, mut cg) = client_pend.finish().unwrap();
        let (mut server_side, server_watch, mut sg) = server_pend.finish().unwrap();

        client_side.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        assert!(!server_watch.has_input(), "watch drained with the read");

        // Dropping the endpoints cascades teardown; the guards' joins
        // terminate instead of leaking the forwarders.
        drop(client_side);
        drop(server_side);
        cg.join();
        sg.join();
    }

    #[test]
    fn wrong_session_key_rejected() {
        let (wire_a, wire_b) = pipe_pair();
        let server =
            std::thread::spawn(move || tunnel_server(wire_b, b"key-one", None).is_err());
        let client_err = tunnel_client(wire_a, b"key-two", None).is_err();
        let server_err = server.join().unwrap();
        assert!(client_err || server_err, "at least one side must reject");
    }

    #[test]
    fn wire_carries_no_plaintext() {
        // Tap the wire by interposing a recording relay (both directions).
        let (wire_a, tap_a) = pipe_pair();
        let (tap_b, wire_b) = pipe_pair();
        let k = key();
        let k2 = k.clone();
        let captured = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (a_read, a_write) = tap_a.split();
        let (b_read, b_write) = tap_b.split();
        let relay = |mut from: sgfs_net::PipeReader,
                     mut to: sgfs_net::PipeWriter,
                     cap: Option<std::sync::Arc<parking_lot::Mutex<Vec<u8>>>>| {
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                loop {
                    let n = match from.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => n,
                    };
                    if let Some(c) = &cap {
                        c.lock().extend_from_slice(&buf[..n]);
                    }
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            })
        };
        relay(a_read, b_write, Some(captured.clone())); // client → server, recorded
        relay(b_read, a_write, None); // server → client
        let server = std::thread::spawn(move || tunnel_server(wire_b, &k2, None).unwrap());
        let (mut client_side, _cg) = tunnel_client(wire_a, &k, None).unwrap();
        let (mut server_side, _sg) = server.join().unwrap();

        let secret = b"TOPSECRET-GRID-DATA-TOPSECRET";
        client_side.write_all(secret).unwrap();
        let mut buf = vec![0u8; secret.len()];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(buf, secret);

        let wire_bytes = captured.lock().clone();
        assert!(!wire_bytes.is_empty());
        assert!(
            !wire_bytes.windows(10).any(|w| w == &secret[..10]),
            "plaintext leaked onto the wire"
        );
        drop(client_side);
        drop(server_side);
    }

    #[test]
    fn large_transfer_through_tunnel() {
        let (wire_a, wire_b) = pipe_pair();
        let k = key();
        let k2 = k.clone();
        let server = std::thread::spawn(move || tunnel_server(wire_b, &k2, None).unwrap());
        let (mut client_side, _cg) = tunnel_client(wire_a, &k, None).unwrap();
        let (mut server_side, _sg) = server.join().unwrap();

        let data: Vec<u8> = (0..500_000).map(|i| (i % 251) as u8).collect();
        let expected = data.clone();
        let writer = std::thread::spawn(move || {
            client_side.write_all(&data).unwrap();
            client_side
        });
        let mut got = vec![0u8; expected.len()];
        server_side.read_exact(&mut got).unwrap();
        assert_eq!(got, expected);
        // The writer returns (and thereby drops) the client endpoint;
        // drop the server one too so the guards' drop-joins terminate.
        writer.join().unwrap();
        drop(server_side);
    }
}
