//! The `gfs-ssh` baseline: an SSH-like encrypted tunnel between proxies.
//!
//! The earlier GFS security model (reference \[45\] in the paper) runs the proxy
//! traffic through per-session SSH tunnels and authenticates the proxies
//! to each other with a middleware-distributed session key. This module
//! reproduces that stack: both tunnel endpoints prove knowledge of the
//! session key, derive AES-256-CBC + SHA1-HMAC record keys from it (the
//! paper configures the SSH tunnels with exactly those algorithms), and
//! then *forward* bytes between a local pipe and the wire on dedicated
//! threads — the "double user-level forwarding" whose cost Figure 4 shows:
//! every RPC message makes two extra user-level hops with two extra copies
//! and context switches, plus a second encryption layer.

use crate::config::HopCost;
use crate::proxy::ProxyError;
use sgfs_net::SimClock;
use std::sync::Arc;
use sgfs_crypto::prf::prf_sha256;
use sgfs_crypto::{ct_eq, hmac_sha256};
use sgfs_gtls::record::{read_frame, write_frame, HalfConn, CT_DATA};
use sgfs_gtls::CipherSuite;
use sgfs_net::{pipe_pair, BoxStream};
use std::io::{Read, Write};

/// Tunnel chunk size: how much is read from the local side per frame.
const CHUNK: usize = 32 * 1024 + 512;

/// Authenticate on the wire and derive per-direction record states.
///
/// Both sides exchange `nonce, HMAC(key, role || nonce)`; the MACs prove
/// knowledge of the session key (the inter-proxy authentication of the
/// session-key model), and the nonces salt the record keys.
fn authenticate(
    wire: &mut dyn sgfs_net::Stream,
    key: &[u8],
    is_client: bool,
) -> Result<(HalfConn, HalfConn), ProxyError> {
    let my_role: &[u8] = if is_client { b"tunnel-client" } else { b"tunnel-server" };
    let peer_role: &[u8] = if is_client { b"tunnel-server" } else { b"tunnel-client" };

    let my_nonce: [u8; 16] = rand::random();
    let mut msg = my_role.to_vec();
    msg.extend_from_slice(&my_nonce);
    let mac = hmac_sha256(key, &msg);
    let mut hello = my_nonce.to_vec();
    hello.extend_from_slice(&mac);
    write_frame(wire, CT_DATA, &hello)?;

    let (_, peer_hello) = read_frame(wire)?;
    if peer_hello.len() != 16 + 32 {
        return Err(ProxyError::Protocol("bad tunnel hello".into()));
    }
    let peer_nonce = &peer_hello[..16];
    let mut expect = peer_role.to_vec();
    expect.extend_from_slice(peer_nonce);
    if !ct_eq(&hmac_sha256(key, &expect), &peer_hello[16..]) {
        return Err(ProxyError::Unauthorized("tunnel session key mismatch".into()));
    }

    // Key block: client-write then server-write material.
    let mut seed = Vec::with_capacity(32);
    if is_client {
        seed.extend_from_slice(&my_nonce);
        seed.extend_from_slice(peer_nonce);
    } else {
        seed.extend_from_slice(peer_nonce);
        seed.extend_from_slice(&my_nonce);
    }
    let block = prf_sha256(key, b"ssh tunnel keys", &seed, 2 * (32 + 20));
    let (c_key, rest) = block.split_at(32);
    let (c_mac, rest) = rest.split_at(20);
    let (s_key, s_mac) = rest.split_at(32);
    let suite = CipherSuite::Aes256CbcSha1;
    let c2s = HalfConn::new(suite, c_key, c_mac, &[]);
    let s2c = HalfConn::new(suite, s_key, s_mac, &[]);
    Ok(if is_client { (c2s, s2c) } else { (s2c, c2s) })
}

/// Stand up one tunnel endpoint over `wire`, returning the local
/// plaintext stream the proxy connects to.
///
/// Spawns two forwarder threads (one per direction) that move bytes
/// between the local pipe and the encrypted wire — the real extra
/// user-level hop of the SSH model.
fn endpoint(
    wire: sgfs_net::PipeEnd,
    key: &[u8],
    is_client: bool,
    hop: Option<(Arc<SimClock>, HopCost)>,
) -> Result<(BoxStream, sgfs_net::PipeWatch), ProxyError> {
    let mut wire = wire;
    let (mut tx_state, mut rx_state) = authenticate(&mut wire, key, is_client)?;
    let hop_tx = hop.clone();
    let hop_rx = hop;

    // Reads and writes happen on separate forwarder threads, so both the
    // wire and the local pipe are split into independent halves.
    let (local_for_proxy, local_for_tunnel) = pipe_pair();
    let (mut local_read, mut local_write) = local_for_tunnel.split();
    let (mut wire_read, mut wire_write) = wire.split();

    // local → wire (encrypt).
    std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut buf = vec![0u8; CHUNK];
        loop {
            let n = match local_read.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            // The extra user-level hop: this forwarder is a separate
            // process in the paper's SSH model, paying a read syscall from
            // the local pipe and a write to the wire per message.
            if let Some((clock, hop)) = &hop_tx {
                clock.advance(hop.of(n) * 2);
            }
            let sealed = tx_state.seal(CT_DATA, &buf[..n], &mut rng);
            if write_frame(&mut wire_write, CT_DATA, &sealed).is_err() {
                break;
            }
        }
    });

    // wire → local (decrypt).
    std::thread::spawn(move || {
        while let Ok((_, body)) = read_frame(&mut wire_read) {
            let plain = match rx_state.open(CT_DATA, body) {
                Ok(p) => p,
                Err(_) => break,
            };
            if let Some((clock, hop)) = &hop_rx {
                clock.advance(hop.of(plain.len()) * 2);
            }
            if local_write.write_all(&plain).is_err() {
                break;
            }
        }
    });

    let watch = local_for_proxy.watch();
    Ok((Box::new(local_for_proxy), watch))
}

/// Client-side tunnel endpoint (the `ssh` process on the compute host).
pub fn tunnel_client(
    wire: sgfs_net::PipeEnd,
    key: &[u8],
    hop: Option<(Arc<SimClock>, HopCost)>,
) -> Result<BoxStream, ProxyError> {
    endpoint(wire, key, true, hop).map(|(s, _)| s)
}

/// Server-side tunnel endpoint (the `sshd` on the file-server host).
pub fn tunnel_server(
    wire: sgfs_net::PipeEnd,
    key: &[u8],
    hop: Option<(Arc<SimClock>, HopCost)>,
) -> Result<BoxStream, ProxyError> {
    endpoint(wire, key, false, hop).map(|(s, _)| s)
}

/// Like [`tunnel_server`] but also returns a readiness watch on the local
/// plaintext pipe — what the sharded server core must observe, since the
/// forwarder threads (not the shard) drain the encrypted wire.
pub fn tunnel_server_watched(
    wire: sgfs_net::PipeEnd,
    key: &[u8],
    hop: Option<(Arc<SimClock>, HopCost)>,
) -> Result<(BoxStream, sgfs_net::PipeWatch), ProxyError> {
    endpoint(wire, key, false, hop)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Vec<u8> {
        b"shared-session-key-from-middleware".to_vec()
    }

    #[test]
    fn tunnel_roundtrip() {
        let (wire_a, wire_b) = pipe_pair();
        let k = key();
        let k2 = k.clone();
        let server = std::thread::spawn(move || tunnel_server(wire_b, &k2, None).unwrap());
        let mut client_side = tunnel_client(wire_a, &k, None).unwrap();
        let mut server_side = server.join().unwrap();

        client_side.write_all(b"rpc request").unwrap();
        let mut buf = [0u8; 11];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"rpc request");

        server_side.write_all(b"rpc reply").unwrap();
        let mut buf = [0u8; 9];
        client_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"rpc reply");
    }

    #[test]
    fn wrong_session_key_rejected() {
        let (wire_a, wire_b) = pipe_pair();
        let server =
            std::thread::spawn(move || tunnel_server(wire_b, b"key-one", None).is_err());
        let client_err = tunnel_client(wire_a, b"key-two", None).is_err();
        let server_err = server.join().unwrap();
        assert!(client_err || server_err, "at least one side must reject");
    }

    #[test]
    fn wire_carries_no_plaintext() {
        // Tap the wire by interposing a recording relay (both directions).
        let (wire_a, tap_a) = pipe_pair();
        let (tap_b, wire_b) = pipe_pair();
        let k = key();
        let k2 = k.clone();
        let captured = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (a_read, a_write) = tap_a.split();
        let (b_read, b_write) = tap_b.split();
        let relay = |mut from: sgfs_net::PipeReader,
                     mut to: sgfs_net::PipeWriter,
                     cap: Option<std::sync::Arc<parking_lot::Mutex<Vec<u8>>>>| {
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                loop {
                    let n = match from.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => n,
                    };
                    if let Some(c) = &cap {
                        c.lock().extend_from_slice(&buf[..n]);
                    }
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            })
        };
        relay(a_read, b_write, Some(captured.clone())); // client → server, recorded
        relay(b_read, a_write, None); // server → client
        let server = std::thread::spawn(move || tunnel_server(wire_b, &k2, None).unwrap());
        let mut client_side = tunnel_client(wire_a, &k, None).unwrap();
        let mut server_side = server.join().unwrap();

        let secret = b"TOPSECRET-GRID-DATA-TOPSECRET";
        client_side.write_all(secret).unwrap();
        let mut buf = vec![0u8; secret.len()];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(buf, secret);

        let wire_bytes = captured.lock().clone();
        assert!(!wire_bytes.is_empty());
        assert!(
            !wire_bytes.windows(10).any(|w| w == &secret[..10]),
            "plaintext leaked onto the wire"
        );
    }

    #[test]
    fn large_transfer_through_tunnel() {
        let (wire_a, wire_b) = pipe_pair();
        let k = key();
        let k2 = k.clone();
        let server = std::thread::spawn(move || tunnel_server(wire_b, &k2, None).unwrap());
        let mut client_side = tunnel_client(wire_a, &k, None).unwrap();
        let mut server_side = server.join().unwrap();

        let data: Vec<u8> = (0..500_000).map(|i| (i % 251) as u8).collect();
        let expected = data.clone();
        let writer = std::thread::spawn(move || {
            client_side.write_all(&data).unwrap();
            client_side
        });
        let mut got = vec![0u8; expected.len()];
        server_side.read_exact(&mut got).unwrap();
        assert_eq!(got, expected);
        writer.join().unwrap();
    }
}
