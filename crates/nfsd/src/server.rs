//! The NFSv3 server: dispatch of all 21 procedures onto a [`Vfs`].

use crate::exports::Exports;
use sgfs_nfs3::proc::{procnum, *};
use sgfs_nfs3::types::*;
use sgfs_nfs3::{NFS_PROGRAM, NFS_VERSION};
use sgfs_oncrpc::server::Dispatch;
use sgfs_oncrpc::{AcceptStat, OpaqueAuth, RpcService};
use sgfs_vfs::{FileKind, Ino, UserContext, Vfs};
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode};
use std::sync::Arc;

/// The uid/gid root is squashed to (traditional `nobody`).
const NOBODY: u32 = 65534;

/// A user-level NFSv3 server instance over one VFS.
pub struct NfsServer {
    vfs: Arc<Vfs>,
    exports: Exports,
    fsid: u64,
    /// Boot verifier returned by WRITE/COMMIT (detects server restarts).
    write_verf: u64,
    /// Whether this server squashes uid 0 (from the export entry used at
    /// mount; a single policy per server instance keeps things simple).
    root_squash: bool,
}

impl NfsServer {
    /// Create a server exporting `vfs` with the given exports table.
    pub fn new(vfs: Arc<Vfs>, exports: Exports) -> Arc<Self> {
        let root_squash = true;
        Arc::new(Self {
            vfs,
            exports,
            fsid: 1,
            write_verf: rand::random(),
            root_squash,
        })
    }

    /// Create with root squashing disabled (tests, trusted proxies).
    pub fn new_no_squash(vfs: Arc<Vfs>, exports: Exports) -> Arc<Self> {
        let mut s = Self {
            vfs,
            exports,
            fsid: 1,
            write_verf: rand::random(),
            root_squash: false,
        };
        s.fsid = 1;
        Arc::new(s)
    }

    /// The backing filesystem.
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    /// MOUNT analog: resolve an exported path for `host` to a root handle.
    ///
    /// Returns `None` when the path is not exported to that host — the
    /// paper's "export /GFS/X to localhost" restriction.
    pub fn mount(&self, path: &str, host: &str) -> Option<Fh3> {
        self.exports.check(path, host)?;
        let attr = self.vfs.resolve(path, &UserContext::root()).ok()?;
        if attr.kind != FileKind::Directory {
            return None;
        }
        Some(Fh3::from_ino(self.fsid, attr.ino))
    }

    fn ctx_from_cred(&self, cred: &OpaqueAuth) -> UserContext {
        match cred.as_sys() {
            Some(sys) => {
                let (mut uid, mut gids) = (sys.uid, sys.gids.clone());
                if gids.is_empty() {
                    gids.push(sys.gid);
                }
                if self.root_squash && uid == 0 {
                    uid = NOBODY;
                    gids = vec![NOBODY];
                }
                UserContext { uid, gids }
            }
            None => UserContext::new(NOBODY, NOBODY),
        }
    }

    fn ino(&self, fh: &Fh3) -> Result<Ino, NfsStat3> {
        match fh.to_ino() {
            Some((fsid, ino)) if fsid == self.fsid => Ok(ino),
            _ => Err(NfsStat3::Stale),
        }
    }

    fn post_attr(&self, ino: Ino) -> PostOpAttr {
        self.vfs.getattr(ino).ok().map(|a| Fattr3::from_vfs(&a, self.fsid))
    }

    fn wcc_before(&self, ino: Ino) -> Option<WccAttr> {
        self.vfs.getattr(ino).ok().map(|a| WccAttr {
            size: a.size,
            mtime: NfsTime3::from_nanos(a.mtime),
            ctime: NfsTime3::from_nanos(a.ctime),
        })
    }

    fn wcc(&self, before: Option<WccAttr>, ino: Ino) -> WccData {
        WccData { before, after: self.post_attr(ino) }
    }

    // ---- procedure bodies -------------------------------------------------

    fn getattr(&self, fh: &Fh3) -> GetAttrRes {
        match self.ino(fh).and_then(|ino| self.vfs.getattr(ino).map_err(Into::into)) {
            Ok(a) => GetAttrRes { status: NfsStat3::Ok, attr: Some(Fattr3::from_vfs(&a, self.fsid)) },
            Err(status) => GetAttrRes { status, attr: None },
        }
    }

    fn setattr(&self, args: &SetAttrArgs, ctx: &UserContext) -> WccRes {
        let ino = match self.ino(&args.object) {
            Ok(i) => i,
            Err(status) => return WccRes { status, wcc: WccData::default() },
        };
        let before = self.wcc_before(ino);
        match self.vfs.setattr(ino, &args.new_attributes.to_vfs(), ctx) {
            Ok(_) => WccRes { status: NfsStat3::Ok, wcc: self.wcc(before, ino) },
            Err(e) => WccRes { status: e.into(), wcc: self.wcc(before, ino) },
        }
    }

    fn lookup(&self, args: &DirOpArgs3, ctx: &UserContext) -> LookupRes {
        let dir_ino = match self.ino(&args.dir) {
            Ok(i) => i,
            Err(status) => {
                return LookupRes { status, object: None, obj_attr: None, dir_attr: None }
            }
        };
        match self.vfs.lookup(dir_ino, &args.name, ctx) {
            Ok(a) => LookupRes {
                status: NfsStat3::Ok,
                object: Some(Fh3::from_ino(self.fsid, a.ino)),
                obj_attr: Some(Fattr3::from_vfs(&a, self.fsid)),
                dir_attr: self.post_attr(dir_ino),
            },
            Err(e) => LookupRes {
                status: e.into(),
                object: None,
                obj_attr: None,
                dir_attr: self.post_attr(dir_ino),
            },
        }
    }

    fn access(&self, args: &AccessArgs, ctx: &UserContext) -> AccessRes {
        let ino = match self.ino(&args.object) {
            Ok(i) => i,
            Err(status) => return AccessRes { status, obj_attr: None, access: 0 },
        };
        match self.vfs.access(ino, ctx, args.access) {
            Ok(granted) => AccessRes {
                status: NfsStat3::Ok,
                obj_attr: self.post_attr(ino),
                access: granted,
            },
            Err(e) => AccessRes { status: e.into(), obj_attr: self.post_attr(ino), access: 0 },
        }
    }

    fn readlink(&self, fh: &Fh3) -> ReadlinkRes {
        let ino = match self.ino(fh) {
            Ok(i) => i,
            Err(status) => return ReadlinkRes { status, attr: None, path: String::new() },
        };
        match self.vfs.readlink(ino) {
            Ok(path) => ReadlinkRes { status: NfsStat3::Ok, attr: self.post_attr(ino), path },
            Err(e) => ReadlinkRes { status: e.into(), attr: self.post_attr(ino), path: String::new() },
        }
    }

    fn read(&self, args: &ReadArgs, ctx: &UserContext) -> ReadRes {
        let ino = match self.ino(&args.file) {
            Ok(i) => i,
            Err(status) => {
                return ReadRes { status, attr: None, count: 0, eof: false, data: Vec::new() }
            }
        };
        match self.vfs.read(ino, args.offset, args.count, ctx) {
            Ok((data, eof)) => ReadRes {
                status: NfsStat3::Ok,
                attr: self.post_attr(ino),
                count: data.len() as u32,
                eof,
                data,
            },
            Err(e) => ReadRes {
                status: e.into(),
                attr: self.post_attr(ino),
                count: 0,
                eof: false,
                data: Vec::new(),
            },
        }
    }

    fn write(&self, args: &WriteArgs, ctx: &UserContext) -> WriteRes {
        let ino = match self.ino(&args.file) {
            Ok(i) => i,
            Err(status) => {
                return WriteRes {
                    status,
                    wcc: WccData::default(),
                    count: 0,
                    committed: StableHow::Unstable,
                    verf: self.write_verf,
                }
            }
        };
        let before = self.wcc_before(ino);
        match self.vfs.write(ino, args.offset, &args.data, ctx) {
            Ok(_) => WriteRes {
                status: NfsStat3::Ok,
                wcc: self.wcc(before, ino),
                count: args.data.len() as u32,
                // The in-memory store is as durable as it gets: report the
                // requested stability (or better).
                committed: StableHow::FileSync,
                verf: self.write_verf,
            },
            Err(e) => WriteRes {
                status: e.into(),
                wcc: self.wcc(before, ino),
                count: 0,
                committed: StableHow::Unstable,
                verf: self.write_verf,
            },
        }
    }

    fn create(&self, args: &CreateArgs, ctx: &UserContext) -> CreateRes {
        let dir_ino = match self.ino(&args.where_.dir) {
            Ok(i) => i,
            Err(status) => {
                return CreateRes { status, obj: None, obj_attr: None, dir_wcc: WccData::default() }
            }
        };
        let before = self.wcc_before(dir_ino);
        let (mode, exclusive) = match &args.how {
            CreateMode::Unchecked(s) => (s.mode.unwrap_or(0o644), false),
            CreateMode::Guarded(s) => (s.mode.unwrap_or(0o644), true),
            CreateMode::Exclusive(_) => (0o644, true),
        };
        match self.vfs.create(dir_ino, &args.where_.name, mode, exclusive, ctx) {
            Ok(a) => {
                // Apply remaining sattr fields (e.g. size) for unchecked/guarded.
                if let CreateMode::Unchecked(s) | CreateMode::Guarded(s) = &args.how {
                    let vs = s.to_vfs();
                    if !vs.is_empty() {
                        let _ = self.vfs.setattr(a.ino, &vs, ctx);
                    }
                }
                CreateRes {
                    status: NfsStat3::Ok,
                    obj: Some(Fh3::from_ino(self.fsid, a.ino)),
                    obj_attr: self.post_attr(a.ino),
                    dir_wcc: self.wcc(before, dir_ino),
                }
            }
            Err(e) => CreateRes {
                status: e.into(),
                obj: None,
                obj_attr: None,
                dir_wcc: self.wcc(before, dir_ino),
            },
        }
    }

    fn mkdir(&self, args: &MkdirArgs, ctx: &UserContext) -> CreateRes {
        let dir_ino = match self.ino(&args.where_.dir) {
            Ok(i) => i,
            Err(status) => {
                return CreateRes { status, obj: None, obj_attr: None, dir_wcc: WccData::default() }
            }
        };
        let before = self.wcc_before(dir_ino);
        let mode = args.attributes.mode.unwrap_or(0o755);
        match self.vfs.mkdir(dir_ino, &args.where_.name, mode, ctx) {
            Ok(a) => CreateRes {
                status: NfsStat3::Ok,
                obj: Some(Fh3::from_ino(self.fsid, a.ino)),
                obj_attr: self.post_attr(a.ino),
                dir_wcc: self.wcc(before, dir_ino),
            },
            Err(e) => CreateRes {
                status: e.into(),
                obj: None,
                obj_attr: None,
                dir_wcc: self.wcc(before, dir_ino),
            },
        }
    }

    fn symlink(&self, args: &SymlinkArgs, ctx: &UserContext) -> CreateRes {
        let dir_ino = match self.ino(&args.where_.dir) {
            Ok(i) => i,
            Err(status) => {
                return CreateRes { status, obj: None, obj_attr: None, dir_wcc: WccData::default() }
            }
        };
        let before = self.wcc_before(dir_ino);
        match self.vfs.symlink(dir_ino, &args.where_.name, &args.target, ctx) {
            Ok(a) => CreateRes {
                status: NfsStat3::Ok,
                obj: Some(Fh3::from_ino(self.fsid, a.ino)),
                obj_attr: self.post_attr(a.ino),
                dir_wcc: self.wcc(before, dir_ino),
            },
            Err(e) => CreateRes {
                status: e.into(),
                obj: None,
                obj_attr: None,
                dir_wcc: self.wcc(before, dir_ino),
            },
        }
    }

    fn remove(&self, args: &DirOpArgs3, ctx: &UserContext, is_rmdir: bool) -> WccRes {
        let dir_ino = match self.ino(&args.dir) {
            Ok(i) => i,
            Err(status) => return WccRes { status, wcc: WccData::default() },
        };
        let before = self.wcc_before(dir_ino);
        let result = if is_rmdir {
            self.vfs.rmdir(dir_ino, &args.name, ctx)
        } else {
            self.vfs.remove(dir_ino, &args.name, ctx)
        };
        match result {
            Ok(()) => WccRes { status: NfsStat3::Ok, wcc: self.wcc(before, dir_ino) },
            Err(e) => WccRes { status: e.into(), wcc: self.wcc(before, dir_ino) },
        }
    }

    fn rename(&self, args: &RenameArgs, ctx: &UserContext) -> RenameRes {
        let (from_ino, to_ino) = match (self.ino(&args.from.dir), self.ino(&args.to.dir)) {
            (Ok(f), Ok(t)) => (f, t),
            _ => {
                return RenameRes {
                    status: NfsStat3::Stale,
                    from_wcc: WccData::default(),
                    to_wcc: WccData::default(),
                }
            }
        };
        let from_before = self.wcc_before(from_ino);
        let to_before = self.wcc_before(to_ino);
        let status = match self.vfs.rename(from_ino, &args.from.name, to_ino, &args.to.name, ctx)
        {
            Ok(()) => NfsStat3::Ok,
            Err(e) => e.into(),
        };
        RenameRes {
            status,
            from_wcc: self.wcc(from_before, from_ino),
            to_wcc: self.wcc(to_before, to_ino),
        }
    }

    fn link(&self, args: &LinkArgs, ctx: &UserContext) -> LinkRes {
        let (file_ino, dir_ino) = match (self.ino(&args.file), self.ino(&args.link.dir)) {
            (Ok(f), Ok(d)) => (f, d),
            _ => return LinkRes { status: NfsStat3::Stale, attr: None, dir_wcc: WccData::default() },
        };
        let before = self.wcc_before(dir_ino);
        match self.vfs.link(file_ino, dir_ino, &args.link.name, ctx) {
            Ok(_) => LinkRes {
                status: NfsStat3::Ok,
                attr: self.post_attr(file_ino),
                dir_wcc: self.wcc(before, dir_ino),
            },
            Err(e) => LinkRes {
                status: e.into(),
                attr: self.post_attr(file_ino),
                dir_wcc: self.wcc(before, dir_ino),
            },
        }
    }

    fn readdir(&self, args: &ReaddirArgs, ctx: &UserContext) -> ReaddirRes {
        let dir_ino = match self.ino(&args.dir) {
            Ok(i) => i,
            Err(status) => {
                return ReaddirRes {
                    status,
                    dir_attr: None,
                    cookieverf: 0,
                    entries: Vec::new(),
                    eof: false,
                }
            }
        };
        match self.vfs.readdir(dir_ino, ctx) {
            Ok(all) => {
                let mut entries = Vec::new();
                let mut bytes = 0usize;
                let mut eof = true;
                for e in all.into_iter().filter(|e| e.cookie > args.cookie) {
                    bytes += 24 + e.name.len();
                    if bytes > args.count as usize && !entries.is_empty() {
                        eof = false;
                        break;
                    }
                    entries.push(Entry3 { fileid: e.ino, name: e.name, cookie: e.cookie });
                }
                ReaddirRes {
                    status: NfsStat3::Ok,
                    dir_attr: self.post_attr(dir_ino),
                    cookieverf: 0,
                    entries,
                    eof,
                }
            }
            Err(e) => ReaddirRes {
                status: e.into(),
                dir_attr: self.post_attr(dir_ino),
                cookieverf: 0,
                entries: Vec::new(),
                eof: false,
            },
        }
    }

    fn readdirplus(&self, args: &ReaddirPlusArgs, ctx: &UserContext) -> ReaddirPlusRes {
        let dir_ino = match self.ino(&args.dir) {
            Ok(i) => i,
            Err(status) => {
                return ReaddirPlusRes {
                    status,
                    dir_attr: None,
                    cookieverf: 0,
                    entries: Vec::new(),
                    eof: false,
                }
            }
        };
        match self.vfs.readdir(dir_ino, ctx) {
            Ok(all) => {
                let mut entries = Vec::new();
                let mut bytes = 0usize;
                let mut eof = true;
                for e in all.into_iter().filter(|e| e.cookie > args.cookie) {
                    bytes += 200 + e.name.len();
                    if bytes > args.maxcount as usize && !entries.is_empty() {
                        eof = false;
                        break;
                    }
                    entries.push(EntryPlus3 {
                        fileid: e.ino,
                        name: e.name,
                        cookie: e.cookie,
                        attr: self.post_attr(e.ino),
                        handle: Some(Fh3::from_ino(self.fsid, e.ino)),
                    });
                }
                ReaddirPlusRes {
                    status: NfsStat3::Ok,
                    dir_attr: self.post_attr(dir_ino),
                    cookieverf: 0,
                    entries,
                    eof,
                }
            }
            Err(e) => ReaddirPlusRes {
                status: e.into(),
                dir_attr: self.post_attr(dir_ino),
                cookieverf: 0,
                entries: Vec::new(),
                eof: false,
            },
        }
    }

    fn fsstat(&self, fh: &Fh3) -> FsStatRes {
        let ino = match self.ino(fh) {
            Ok(i) => i,
            Err(status) => {
                return FsStatRes {
                    status,
                    attr: None,
                    tbytes: 0,
                    fbytes: 0,
                    abytes: 0,
                    tfiles: 0,
                    ffiles: 0,
                }
            }
        };
        let (used, files) = self.vfs.statfs();
        let total: u64 = 1 << 40;
        FsStatRes {
            status: NfsStat3::Ok,
            attr: self.post_attr(ino),
            tbytes: total,
            fbytes: total - used,
            abytes: total - used,
            tfiles: 1 << 20,
            ffiles: (1 << 20) - files,
        }
    }

    fn fsinfo(&self, fh: &Fh3) -> FsInfoRes {
        let attr = self.ino(fh).ok().and_then(|i| self.post_attr(i));
        FsInfoRes {
            status: NfsStat3::Ok,
            attr,
            // 32 KB read/write sizes — the paper's experimental setting.
            rtmax: 32 * 1024,
            rtpref: 32 * 1024,
            wtmax: 32 * 1024,
            wtpref: 32 * 1024,
            dtpref: 8 * 1024,
            maxfilesize: u64::MAX / 2,
        }
    }

    fn pathconf(&self, fh: &Fh3) -> PathConfRes {
        let attr = self.ino(fh).ok().and_then(|i| self.post_attr(i));
        PathConfRes { status: NfsStat3::Ok, attr, linkmax: 32000, name_max: 255 }
    }

    fn commit(&self, args: &CommitArgs) -> CommitRes {
        let ino = match self.ino(&args.file) {
            Ok(i) => i,
            Err(status) => {
                return CommitRes { status, wcc: WccData::default(), verf: self.write_verf }
            }
        };
        // All writes are already durable in the in-memory store.
        CommitRes {
            status: NfsStat3::Ok,
            wcc: WccData { before: None, after: self.post_attr(ino) },
            verf: self.write_verf,
        }
    }
}

/// Decode args and run the body, mapping decode failures to GarbageArgs.
fn with_args<A: XdrDecode, R: XdrEncode>(
    args: &mut XdrDecoder<'_>,
    f: impl FnOnce(A) -> R,
) -> Dispatch {
    match A::decode(args) {
        Ok(a) => Dispatch::reply(&f(a)),
        Err(_) => Dispatch::Error(AcceptStat::GarbageArgs),
    }
}

impl RpcService for NfsServer {
    fn program(&self) -> u32 {
        NFS_PROGRAM
    }

    fn version(&self) -> u32 {
        NFS_VERSION
    }

    fn handle(&self, proc: u32, cred: &OpaqueAuth, args: &mut XdrDecoder<'_>) -> Dispatch {
        let ctx = self.ctx_from_cred(cred);
        match proc {
            procnum::NULL => Dispatch::Ok(Vec::new()),
            procnum::GETATTR => with_args(args, |fh: Fh3| self.getattr(&fh)),
            procnum::SETATTR => with_args(args, |a: SetAttrArgs| self.setattr(&a, &ctx)),
            procnum::LOOKUP => with_args(args, |a: DirOpArgs3| self.lookup(&a, &ctx)),
            procnum::ACCESS => with_args(args, |a: AccessArgs| self.access(&a, &ctx)),
            procnum::READLINK => with_args(args, |fh: Fh3| self.readlink(&fh)),
            procnum::READ => with_args(args, |a: ReadArgs| self.read(&a, &ctx)),
            procnum::WRITE => with_args(args, |a: WriteArgs| self.write(&a, &ctx)),
            procnum::CREATE => with_args(args, |a: CreateArgs| self.create(&a, &ctx)),
            procnum::MKDIR => with_args(args, |a: MkdirArgs| self.mkdir(&a, &ctx)),
            procnum::SYMLINK => with_args(args, |a: SymlinkArgs| self.symlink(&a, &ctx)),
            procnum::MKNOD => Dispatch::reply(&CreateRes {
                status: NfsStat3::NotSupp,
                obj: None,
                obj_attr: None,
                dir_wcc: WccData::default(),
            }),
            procnum::REMOVE => with_args(args, |a: DirOpArgs3| self.remove(&a, &ctx, false)),
            procnum::RMDIR => with_args(args, |a: DirOpArgs3| self.remove(&a, &ctx, true)),
            procnum::RENAME => with_args(args, |a: RenameArgs| self.rename(&a, &ctx)),
            procnum::LINK => with_args(args, |a: LinkArgs| self.link(&a, &ctx)),
            procnum::READDIR => with_args(args, |a: ReaddirArgs| self.readdir(&a, &ctx)),
            procnum::READDIRPLUS => with_args(args, |a: ReaddirPlusArgs| self.readdirplus(&a, &ctx)),
            procnum::FSSTAT => with_args(args, |fh: Fh3| self.fsstat(&fh)),
            procnum::FSINFO => with_args(args, |fh: Fh3| self.fsinfo(&fh)),
            procnum::PATHCONF => with_args(args, |fh: Fh3| self.pathconf(&fh)),
            procnum::COMMIT => with_args(args, |a: CommitArgs| self.commit(&a)),
            _ => Dispatch::Error(AcceptStat::ProcUnavail),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exports::ExportEntry;
    use sgfs_nfs3::Nfs3Client;
    use sgfs_oncrpc::msg::AuthSysParams;
    use sgfs_oncrpc::spawn_connection;
    use sgfs_vfs::ROOT_INO;

    fn testbed() -> (Arc<NfsServer>, Nfs3Client, Fh3) {
        let vfs = Arc::new(Vfs::new());
        vfs.mkdir_p("/GFS", 0o777, &UserContext::root()).unwrap();
        let mut exports = Exports::new();
        exports.add(ExportEntry::localhost("/GFS"));
        let server = NfsServer::new(vfs, exports);
        let root = server.mount("/GFS", "localhost").unwrap();
        let (a, b) = sgfs_net::pipe_pair();
        spawn_connection(Box::new(b), server.clone());
        let mut client = Nfs3Client::new(Box::new(a));
        client.set_cred(OpaqueAuth::sys(&AuthSysParams::new("client", 1000, 1000)));
        (server, client, root)
    }

    #[test]
    fn mount_respects_exports() {
        let (server, _c, _root) = testbed();
        assert!(server.mount("/GFS", "localhost").is_some());
        assert!(server.mount("/GFS", "remote").is_none());
        assert!(server.mount("/etc", "localhost").is_none());
    }

    #[test]
    fn full_file_lifecycle() {
        let (_s, mut c, root) = testbed();
        c.null().unwrap();
        let (fh, attr) = c.create(&root, "data.bin", Sattr3::default()).unwrap();
        assert_eq!(attr.unwrap().ftype, FType3::Reg);

        let payload: Vec<u8> = (0..100_000).map(|i| (i % 256) as u8).collect();
        let mut off = 0u64;
        for chunk in payload.chunks(32 * 1024) {
            let res = c.write(&fh, off, chunk.to_vec(), StableHow::Unstable).unwrap();
            assert_eq!(res.count as usize, chunk.len());
            off += chunk.len() as u64;
        }
        c.commit(&fh, 0, 0).unwrap();

        assert_eq!(c.getattr(&fh).unwrap().size, payload.len() as u64);
        let mut got = Vec::new();
        let mut off = 0u64;
        loop {
            let r = c.read(&fh, off, 32 * 1024).unwrap();
            got.extend_from_slice(&r.data);
            off += r.count as u64;
            if r.eof {
                break;
            }
        }
        assert_eq!(got, payload);

        c.remove(&root, "data.bin").unwrap();
        match c.getattr(&fh) {
            Err(Nfs3Error::Status(NfsStat3::Stale)) => {}
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    use sgfs_nfs3::Nfs3Error;

    #[test]
    fn directories_and_readdir() {
        let (_s, mut c, root) = testbed();
        let (sub, _) = c.mkdir(&root, "sub", Sattr3::default()).unwrap();
        for name in ["a", "b", "c"] {
            c.create(&sub, name, Sattr3::default()).unwrap();
        }
        let res = c.readdir(&sub, 0, 0, 4096).unwrap();
        assert!(res.eof);
        let names: Vec<_> = res.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec![".", "..", "a", "b", "c"]);

        // Chunked listing with a tiny count.
        let first = c.readdir(&sub, 0, 0, 60).unwrap();
        assert!(!first.eof);
        assert!(!first.entries.is_empty());
        let cookie = first.entries.last().unwrap().cookie;
        let rest = c.readdir(&sub, cookie, 0, 4096).unwrap();
        assert!(rest.eof);
        assert_eq!(
            first.entries.len() + rest.entries.len(),
            5,
            "chunks cover everything exactly once"
        );
    }

    #[test]
    fn readdirplus_carries_handles() {
        let (_s, mut c, root) = testbed();
        c.create(&root, "x", Sattr3::default()).unwrap();
        let res = c.readdirplus(&root, 0, 0, 64 * 1024).unwrap();
        let x = res.entries.iter().find(|e| e.name == "x").unwrap();
        let fh = x.handle.clone().unwrap();
        assert_eq!(c.getattr(&fh).unwrap().ftype, FType3::Reg);
        assert!(x.attr.is_some());
    }

    #[test]
    fn lookup_and_errors() {
        let (_s, mut c, root) = testbed();
        match c.lookup(&root, "missing") {
            Err(Nfs3Error::Status(NfsStat3::NoEnt)) => {}
            other => panic!("{other:?}"),
        }
        let bogus = Fh3::from_ino(1, 9999);
        match c.getattr(&bogus) {
            Err(Nfs3Error::Status(NfsStat3::Stale)) => {}
            other => panic!("{other:?}"),
        }
        let wrong_fsid = Fh3::from_ino(42, ROOT_INO);
        match c.getattr(&wrong_fsid) {
            Err(Nfs3Error::Status(NfsStat3::Stale)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rename_link_symlink() {
        let (_s, mut c, root) = testbed();
        let (fh, _) = c.create(&root, "orig", Sattr3::default()).unwrap();
        c.write(&fh, 0, b"payload".to_vec(), StableHow::FileSync).unwrap();
        c.rename(&root, "orig", &root, "renamed").unwrap();
        let (fh2, _) = c.lookup(&root, "renamed").unwrap();
        assert_eq!(fh2, fh);

        c.link(&fh, &root, "hardlink").unwrap();
        assert_eq!(c.getattr(&fh).unwrap().nlink, 2);

        let (lnk, _) = c.symlink(&root, "sym", "/GFS/renamed").unwrap();
        assert_eq!(c.readlink(&lnk).unwrap(), "/GFS/renamed");
    }

    #[test]
    fn access_and_permissions_respect_cred() {
        let (_s, mut c, root) = testbed();
        let (fh, _) = c.create(&root, "mine", Sattr3 { mode: Some(0o600), ..Default::default() })
            .unwrap();
        let granted = c.access(&fh, 0x3f).unwrap();
        assert_ne!(granted & 0x01, 0, "owner can read");

        // Another user cannot read the 0600 file.
        c.set_cred(OpaqueAuth::sys(&AuthSysParams::new("client", 2000, 2000)));
        let granted = c.access(&fh, 0x3f).unwrap();
        assert_eq!(granted, 0);
        match c.read(&fh, 0, 10) {
            Err(Nfs3Error::Status(NfsStat3::Acces)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn root_is_squashed() {
        let (_s, mut c, root) = testbed();
        c.set_cred(OpaqueAuth::sys(&AuthSysParams::new("client", 0, 0)));
        let (fh, attr) = c.create(&root, "as-root", Sattr3::default()).unwrap();
        assert_eq!(attr.unwrap().uid, NOBODY, "uid 0 squashed to nobody");
        let _ = fh;
    }

    #[test]
    fn setattr_truncate_via_rpc() {
        let (_s, mut c, root) = testbed();
        let (fh, _) = c.create(&root, "t", Sattr3::default()).unwrap();
        c.write(&fh, 0, vec![7u8; 100], StableHow::FileSync).unwrap();
        c.setattr(&fh, &Sattr3 { size: Some(10), ..Default::default() }).unwrap();
        assert_eq!(c.getattr(&fh).unwrap().size, 10);
    }

    #[test]
    fn fsinfo_reports_32k_transfer_sizes() {
        let (_s, mut c, root) = testbed();
        let info = c.fsinfo(&root).unwrap();
        assert_eq!(info.rtmax, 32 * 1024);
        assert_eq!(info.wtmax, 32 * 1024);
        let stat = c.fsstat(&root).unwrap();
        assert!(stat.fbytes > 0);
        let pc = c.pathconf(&root).unwrap();
        assert_eq!(pc.name_max, 255);
    }
}
