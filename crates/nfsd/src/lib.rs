//! A user-level NFSv3 server — the "kernel NFS server" of the testbed.
//!
//! In the paper, a stock kernel `nfsd` exports `/GFS` to localhost and the
//! server-side SGFS proxy is the only party that talks to it. This crate
//! is that terminal server: it implements all 21 NFSv3 procedures over the
//! in-memory [`sgfs_vfs::Vfs`], enforces an exports table at mount time,
//! honors `AUTH_SYS` credentials (with optional root squashing), and
//! plugs into the ONC RPC dispatch loop as an [`RpcService`](sgfs_oncrpc::RpcService).

mod exports;
mod server;

pub use exports::{ExportEntry, Exports};
pub use server::NfsServer;
