//! The exports table — the kernel `/etc/exports` analog.
//!
//! Per the paper's deployment model (§5), the host-wide exports file needs
//! only one entry: the grid-accessible tree (e.g. `/GFS`), exported to
//! localhost so that only the server-side proxy can reach the kernel
//! server directly.

/// One export: a path and the hosts allowed to mount it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportEntry {
    /// Exported directory path within the VFS.
    pub path: String,
    /// Host patterns allowed to mount (exact match or `"*"`).
    pub hosts: Vec<String>,
    /// Whether root (uid 0) credentials are squashed to nobody.
    pub root_squash: bool,
    /// Read-only export.
    pub read_only: bool,
}

impl ExportEntry {
    /// Export `path` to exactly `host`, squashing root, read-write.
    pub fn to_host(path: &str, host: &str) -> Self {
        Self { path: path.into(), hosts: vec![host.into()], root_squash: true, read_only: false }
    }

    /// Export `path` to localhost only — the paper's deployment.
    pub fn localhost(path: &str) -> Self {
        Self::to_host(path, "localhost")
    }

    fn allows(&self, host: &str) -> bool {
        self.hosts.iter().any(|h| h == "*" || h == host)
    }
}

/// The set of exports a server offers.
#[derive(Debug, Clone, Default)]
pub struct Exports {
    entries: Vec<ExportEntry>,
}

impl Exports {
    /// Empty table (nothing mountable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an export.
    pub fn add(&mut self, entry: ExportEntry) {
        self.entries.push(entry);
    }

    /// Find the export covering `path` for `host`, if any.
    pub fn check(&self, path: &str, host: &str) -> Option<&ExportEntry> {
        self.entries.iter().find(|e| e.path == path && e.allows(host))
    }

    /// Parse an `/etc/exports`-style file:
    ///
    /// ```text
    /// /GFS localhost(rw,root_squash)
    /// /pub *(ro)
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut out = Self::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let path = parts
                .next()
                .ok_or_else(|| format!("line {}: missing path", lineno + 1))?;
            let mut entry = ExportEntry {
                path: path.to_string(),
                hosts: Vec::new(),
                root_squash: true,
                read_only: false,
            };
            for spec in parts {
                let (host, opts) = match spec.split_once('(') {
                    Some((h, o)) => (h, o.strip_suffix(')').ok_or_else(|| {
                        format!("line {}: unterminated options", lineno + 1)
                    })?),
                    None => (spec, ""),
                };
                entry.hosts.push(host.to_string());
                for opt in opts.split(',').filter(|o| !o.is_empty()) {
                    match opt {
                        "rw" => entry.read_only = false,
                        "ro" => entry.read_only = true,
                        "root_squash" => entry.root_squash = true,
                        "no_root_squash" => entry.root_squash = false,
                        other => return Err(format!("line {}: unknown option {other}", lineno + 1)),
                    }
                }
            }
            if entry.hosts.is_empty() {
                return Err(format!("line {}: no hosts", lineno + 1));
            }
            out.add(entry);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn localhost_only_export() {
        let mut e = Exports::new();
        e.add(ExportEntry::localhost("/GFS"));
        assert!(e.check("/GFS", "localhost").is_some());
        assert!(e.check("/GFS", "evilhost").is_none());
        assert!(e.check("/other", "localhost").is_none());
    }

    #[test]
    fn wildcard_host() {
        let mut e = Exports::new();
        e.add(ExportEntry { path: "/pub".into(), hosts: vec!["*".into()], root_squash: true, read_only: true });
        assert!(e.check("/pub", "anyone").is_some());
    }

    #[test]
    fn parse_exports_file() {
        let e = Exports::parse(
            "# exports\n/GFS localhost(rw,no_root_squash)\n/pub *(ro)\n",
        )
        .unwrap();
        let gfs = e.check("/GFS", "localhost").unwrap();
        assert!(!gfs.root_squash);
        assert!(!gfs.read_only);
        let pub_ = e.check("/pub", "x").unwrap();
        assert!(pub_.read_only);
    }

    #[test]
    fn parse_rejects_bad_options() {
        assert!(Exports::parse("/GFS localhost(bogus)").is_err());
        assert!(Exports::parse("/GFS localhost(rw").is_err());
        assert!(Exports::parse("/GFS").is_err());
    }
}
