//! Property tests on the NFSv3 wire layer: arbitrary bytes never panic
//! the decoders, and structured values round-trip exactly.

use proptest::prelude::*;
use sgfs_nfs3::proc::*;
use sgfs_nfs3::types::*;
use sgfs_xdr::{XdrDecode, XdrEncode};

fn arb_fh() -> impl Strategy<Value = Fh3> {
    proptest::collection::vec(any::<u8>(), 0..=64).prop_map(Fh3)
}

fn arb_attr() -> impl Strategy<Value = Fattr3> {
    (
        prop_oneof![Just(FType3::Reg), Just(FType3::Dir), Just(FType3::Lnk)],
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        (any::<u32>(), 0u32..1_000_000_000),
    )
        .prop_map(|(ftype, mode, uid, size, fileid, (secs, nsecs))| Fattr3 {
            ftype,
            mode: mode & 0o7777,
            nlink: 1,
            uid,
            gid: uid ^ 7,
            size,
            used: size,
            fsid: 1,
            fileid,
            atime: NfsTime3 { seconds: secs, nseconds: nsecs },
            mtime: NfsTime3 { seconds: secs / 2, nseconds: nsecs },
            ctime: NfsTime3 { seconds: secs / 3, nseconds: nsecs },
        })
}

proptest! {
    #[test]
    fn fattr_roundtrip(attr in arb_attr()) {
        let bytes = attr.to_xdr_bytes();
        prop_assert_eq!(Fattr3::from_xdr_bytes(&bytes).unwrap(), attr);
    }

    #[test]
    fn read_args_roundtrip(fh in arb_fh(), offset: u64, count: u32) {
        let args = ReadArgs { file: fh, offset, count };
        prop_assert_eq!(ReadArgs::from_xdr_bytes(&args.to_xdr_bytes()).unwrap(), args);
    }

    #[test]
    fn write_args_roundtrip(
        fh in arb_fh(),
        offset: u64,
        data in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let args = WriteArgs { file: fh, offset, stable: StableHow::Unstable, data };
        prop_assert_eq!(WriteArgs::from_xdr_bytes(&args.to_xdr_bytes()).unwrap(), args);
    }

    #[test]
    fn lookup_res_roundtrip(fh in arb_fh(), attr in arb_attr(), dir_attr in proptest::option::of(arb_attr())) {
        let res = LookupRes {
            status: NfsStat3::Ok,
            object: Some(fh),
            obj_attr: Some(attr),
            dir_attr,
        };
        prop_assert_eq!(LookupRes::from_xdr_bytes(&res.to_xdr_bytes()).unwrap(), res);
    }

    #[test]
    fn readdir_res_roundtrip(
        entries in proptest::collection::vec(
            ("[a-z]{1,12}", any::<u64>()),
            0..20,
        ),
        eof: bool,
    ) {
        let entries: Vec<Entry3> = entries
            .into_iter()
            .enumerate()
            .map(|(i, (name, fileid))| Entry3 { fileid, name, cookie: i as u64 + 1 })
            .collect();
        let res = ReaddirRes { status: NfsStat3::Ok, dir_attr: None, cookieverf: 0, entries, eof };
        prop_assert_eq!(ReaddirRes::from_xdr_bytes(&res.to_xdr_bytes()).unwrap(), res);
    }

    #[test]
    fn read_res_roundtrip(
        attr in proptest::option::of(arb_attr()),
        eof: bool,
        data in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let res = ReadRes {
            status: NfsStat3::Ok,
            attr,
            count: data.len() as u32,
            eof,
            data,
        };
        prop_assert_eq!(ReadRes::from_xdr_bytes(&res.to_xdr_bytes()).unwrap(), res);
    }

    #[test]
    fn access_roundtrip(fh in arb_fh(), bits in 0u32..0x40, attr in proptest::option::of(arb_attr())) {
        let args = AccessArgs { object: fh, access: bits };
        prop_assert_eq!(AccessArgs::from_xdr_bytes(&args.to_xdr_bytes()).unwrap(), args);
        let res = AccessRes { status: NfsStat3::Ok, obj_attr: attr, access: bits };
        prop_assert_eq!(AccessRes::from_xdr_bytes(&res.to_xdr_bytes()).unwrap(), res);
    }

    #[test]
    fn commit_roundtrip(fh in arb_fh(), offset: u64, count: u32, verf: u64, attr in arb_attr()) {
        let args = CommitArgs { file: fh, offset, count };
        prop_assert_eq!(CommitArgs::from_xdr_bytes(&args.to_xdr_bytes()).unwrap(), args);
        let res = CommitRes {
            status: NfsStat3::Ok,
            wcc: WccData { before: None, after: Some(attr) },
            verf,
        };
        prop_assert_eq!(CommitRes::from_xdr_bytes(&res.to_xdr_bytes()).unwrap(), res);
    }

    #[test]
    fn rename_args_roundtrip(
        from_dir in arb_fh(), from_name in "[a-z]{1,16}",
        to_dir in arb_fh(), to_name in "[a-z]{1,16}",
    ) {
        let args = RenameArgs {
            from: DirOpArgs3 { dir: from_dir, name: from_name },
            to: DirOpArgs3 { dir: to_dir, name: to_name },
        };
        prop_assert_eq!(RenameArgs::from_xdr_bytes(&args.to_xdr_bytes()).unwrap(), args);
    }

    /// Fuzz every decoder with garbage: structured error or value, never
    /// a panic, never unbounded allocation.
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Fattr3::from_xdr_bytes(&bytes);
        let _ = Fh3::from_xdr_bytes(&bytes);
        let _ = ReadArgs::from_xdr_bytes(&bytes);
        let _ = WriteArgs::from_xdr_bytes(&bytes);
        let _ = ReadRes::from_xdr_bytes(&bytes);
        let _ = WriteRes::from_xdr_bytes(&bytes);
        let _ = LookupRes::from_xdr_bytes(&bytes);
        let _ = CreateArgs::from_xdr_bytes(&bytes);
        let _ = CreateRes::from_xdr_bytes(&bytes);
        let _ = ReaddirRes::from_xdr_bytes(&bytes);
        let _ = ReaddirPlusRes::from_xdr_bytes(&bytes);
        let _ = RenameArgs::from_xdr_bytes(&bytes);
        let _ = SetAttrArgs::from_xdr_bytes(&bytes);
        let _ = AccessArgs::from_xdr_bytes(&bytes);
        let _ = CommitArgs::from_xdr_bytes(&bytes);
        let _ = FsInfoRes::from_xdr_bytes(&bytes);
    }

    /// Same for the RPC message layer.
    #[test]
    fn rpc_headers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        use sgfs_oncrpc::{CallHeader, ReplyHeader, OpaqueAuth};
        let _ = CallHeader::from_xdr_bytes(&bytes);
        let _ = ReplyHeader::from_xdr_bytes(&bytes);
        let _ = OpaqueAuth::from_xdr_bytes(&bytes);
    }

    /// Truncating a valid message at any byte boundary is a structured
    /// error, never a panic: real length prefixes with payloads cut short
    /// reach deeper decoder states than random garbage.
    #[test]
    fn truncated_valid_messages_never_panic(
        fh in arb_fh(),
        attr in arb_attr(),
        offset: u64,
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cut_pct in 0usize..100,
    ) {
        let full_attr = attr.to_xdr_bytes();
        let full_write = WriteArgs { file: fh.clone(), offset, stable: StableHow::Unstable, data: data.clone() }
            .to_xdr_bytes();
        let full_read_res = ReadRes { status: NfsStat3::Ok, attr: Some(attr.clone()), count: data.len() as u32, eof: false, data }
            .to_xdr_bytes();
        let full_lookup = LookupRes { status: NfsStat3::Ok, object: Some(fh), obj_attr: Some(attr), dir_attr: None }
            .to_xdr_bytes();
        for full in [&full_attr, &full_write, &full_read_res, &full_lookup] {
            let cut = full.len() * cut_pct / 100;
            prop_assert!(cut < full.len());
            let _ = Fattr3::from_xdr_bytes(&full[..cut]);
            let _ = WriteArgs::from_xdr_bytes(&full[..cut]);
            let _ = ReadRes::from_xdr_bytes(&full[..cut]);
            let _ = LookupRes::from_xdr_bytes(&full[..cut]);
        }
    }
}
