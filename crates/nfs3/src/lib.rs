//! NFS version 3 protocol (RFC 1813): types, XDR codecs, and client stubs.
//!
//! This crate is the shared protocol vocabulary of the whole stack: the
//! user-level NFS server (`sgfs-nfsd`), the kernel-client stand-in
//! (`sgfs-nfsclient`), and the SGFS proxies (which decode, inspect,
//! rewrite, and re-encode these messages in flight) all speak it.
//!
//! All 21 NFSv3 procedures are covered. [`client::Nfs3Client`] provides a
//! typed stub per procedure over any [`sgfs_oncrpc::RpcClient`] transport.

pub mod client;
pub mod proc;
pub mod types;

pub use client::{Nfs3Client, Nfs3Error};
pub use types::*;

/// The NFS program number.
pub const NFS_PROGRAM: u32 = 100003;
/// The protocol version this crate implements.
pub const NFS_VERSION: u32 = 3;
