//! NFSv3 wire types and their XDR codecs.

use sgfs_vfs::{FileAttr, FileKind, VfsError};
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder, XdrError, XdrResult};

/// Maximum file handle size (RFC 1813 NFS3_FHSIZE).
pub const FHSIZE: u32 = 64;

/// NFSv3 status codes (subset the stack produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum NfsStat3 {
    /// Success.
    Ok = 0,
    /// Not owner.
    Perm = 1,
    /// No such file or directory.
    NoEnt = 2,
    /// I/O error.
    Io = 5,
    /// Permission denied.
    Acces = 13,
    /// File exists.
    Exist = 17,
    /// No such device.
    NoDev = 19,
    /// Not a directory.
    NotDir = 20,
    /// Is a directory.
    IsDir = 21,
    /// Invalid argument.
    Inval = 22,
    /// File too large.
    FBig = 27,
    /// No space left.
    NoSpc = 28,
    /// Read-only filesystem.
    Rofs = 30,
    /// Name too long.
    NameTooLong = 63,
    /// Directory not empty.
    NotEmpty = 66,
    /// Stale file handle.
    Stale = 70,
    /// Operation not supported.
    NotSupp = 10004,
    /// Server fault.
    ServerFault = 10006,
    /// Server temporarily out of resources: the call was *not* executed
    /// and the client should back off and retry it verbatim (RFC 1813
    /// NFS3ERR_JUKEBOX). This is the admission-control overflow signal.
    Jukebox = 10008,
}

impl NfsStat3 {
    /// Decode from the wire.
    pub fn from_u32(v: u32) -> XdrResult<Self> {
        Ok(match v {
            0 => NfsStat3::Ok,
            1 => NfsStat3::Perm,
            2 => NfsStat3::NoEnt,
            5 => NfsStat3::Io,
            13 => NfsStat3::Acces,
            17 => NfsStat3::Exist,
            19 => NfsStat3::NoDev,
            20 => NfsStat3::NotDir,
            21 => NfsStat3::IsDir,
            22 => NfsStat3::Inval,
            27 => NfsStat3::FBig,
            28 => NfsStat3::NoSpc,
            30 => NfsStat3::Rofs,
            63 => NfsStat3::NameTooLong,
            66 => NfsStat3::NotEmpty,
            70 => NfsStat3::Stale,
            10004 => NfsStat3::NotSupp,
            10006 => NfsStat3::ServerFault,
            10008 => NfsStat3::Jukebox,
            other => return Err(XdrError::InvalidEnum { what: "nfsstat3", value: other }),
        })
    }
}

impl From<VfsError> for NfsStat3 {
    fn from(e: VfsError) -> Self {
        match e {
            VfsError::NotFound => NfsStat3::NoEnt,
            VfsError::NotDir => NfsStat3::NotDir,
            VfsError::IsDir => NfsStat3::IsDir,
            VfsError::Exists => NfsStat3::Exist,
            VfsError::NotEmpty => NfsStat3::NotEmpty,
            VfsError::Access => NfsStat3::Acces,
            VfsError::Stale => NfsStat3::Stale,
            VfsError::Inval => NfsStat3::Inval,
            VfsError::NameTooLong => NfsStat3::NameTooLong,
            VfsError::NotSupp => NfsStat3::NotSupp,
        }
    }
}

impl XdrEncode for NfsStat3 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(*self as u32);
    }
}

impl XdrDecode for NfsStat3 {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        NfsStat3::from_u32(dec.get_u32()?)
    }
}

/// An opaque file handle.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fh3(pub Vec<u8>);

impl Fh3 {
    /// Build a handle from an inode number and filesystem id.
    pub fn from_ino(fsid: u64, ino: u64) -> Self {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&fsid.to_be_bytes());
        v.extend_from_slice(&ino.to_be_bytes());
        Fh3(v)
    }

    /// Recover `(fsid, ino)` from a handle built by [`from_ino`](Self::from_ino).
    pub fn to_ino(&self) -> Option<(u64, u64)> {
        if self.0.len() != 16 {
            return None;
        }
        let fsid = u64::from_be_bytes(self.0[..8].try_into().ok()?);
        let ino = u64::from_be_bytes(self.0[8..].try_into().ok()?);
        Some((fsid, ino))
    }
}

impl XdrEncode for Fh3 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(&self.0);
    }
}

impl XdrDecode for Fh3 {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Fh3(dec.get_opaque_max(FHSIZE)?))
    }
}

/// NFS time: seconds + nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord)]
pub struct NfsTime3 {
    /// Seconds.
    pub seconds: u32,
    /// Nanoseconds.
    pub nseconds: u32,
}

impl NfsTime3 {
    /// From a nanosecond counter.
    pub fn from_nanos(nanos: u64) -> Self {
        Self { seconds: (nanos / 1_000_000_000) as u32, nseconds: (nanos % 1_000_000_000) as u32 }
    }

    /// Back to nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.seconds as u64 * 1_000_000_000 + self.nseconds as u64
    }
}

impl XdrEncode for NfsTime3 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.seconds);
        enc.put_u32(self.nseconds);
    }
}

impl XdrDecode for NfsTime3 {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { seconds: dec.get_u32()?, nseconds: dec.get_u32()? })
    }
}

/// File type (ftype3). Device/socket/fifo types exist on the wire but the
/// stack never creates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum FType3 {
    /// Regular file.
    Reg = 1,
    /// Directory.
    Dir = 2,
    /// Symbolic link.
    Lnk = 5,
}

impl From<FileKind> for FType3 {
    fn from(k: FileKind) -> Self {
        match k {
            FileKind::Regular => FType3::Reg,
            FileKind::Directory => FType3::Dir,
            FileKind::Symlink => FType3::Lnk,
        }
    }
}

impl FType3 {
    /// Back to the VFS kind.
    pub fn to_kind(self) -> FileKind {
        match self {
            FType3::Reg => FileKind::Regular,
            FType3::Dir => FileKind::Directory,
            FType3::Lnk => FileKind::Symlink,
        }
    }
}

/// File attributes (fattr3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fattr3 {
    /// File type.
    pub ftype: FType3,
    /// Permission bits.
    pub mode: u32,
    /// Hard link count.
    pub nlink: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Size in bytes.
    pub size: u64,
    /// Bytes actually used.
    pub used: u64,
    /// Filesystem id.
    pub fsid: u64,
    /// File id (inode number).
    pub fileid: u64,
    /// Access time.
    pub atime: NfsTime3,
    /// Modification time.
    pub mtime: NfsTime3,
    /// Change time.
    pub ctime: NfsTime3,
}

impl Fattr3 {
    /// Convert from a VFS attribute record.
    pub fn from_vfs(a: &FileAttr, fsid: u64) -> Self {
        Self {
            ftype: a.kind.into(),
            mode: a.mode,
            nlink: a.nlink,
            uid: a.uid,
            gid: a.gid,
            size: a.size,
            used: a.size,
            fsid,
            fileid: a.ino,
            atime: NfsTime3::from_nanos(a.atime),
            mtime: NfsTime3::from_nanos(a.mtime),
            ctime: NfsTime3::from_nanos(a.ctime),
        }
    }
}

impl XdrEncode for Fattr3 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.ftype as u32);
        enc.put_u32(self.mode);
        enc.put_u32(self.nlink);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u64(self.size);
        enc.put_u64(self.used);
        enc.put_u64(0); // rdev (specdata3: two u32s)
        enc.put_u64(self.fsid);
        enc.put_u64(self.fileid);
        self.atime.encode(enc);
        self.mtime.encode(enc);
        self.ctime.encode(enc);
    }
}

impl XdrDecode for Fattr3 {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let ftype = match dec.get_u32()? {
            1 => FType3::Reg,
            2 => FType3::Dir,
            5 => FType3::Lnk,
            other => return Err(XdrError::InvalidEnum { what: "ftype3", value: other }),
        };
        let mode = dec.get_u32()?;
        let nlink = dec.get_u32()?;
        let uid = dec.get_u32()?;
        let gid = dec.get_u32()?;
        let size = dec.get_u64()?;
        let used = dec.get_u64()?;
        let _rdev = dec.get_u64()?;
        let fsid = dec.get_u64()?;
        let fileid = dec.get_u64()?;
        Ok(Self {
            ftype,
            mode,
            nlink,
            uid,
            gid,
            size,
            used,
            fsid,
            fileid,
            atime: NfsTime3::decode(dec)?,
            mtime: NfsTime3::decode(dec)?,
            ctime: NfsTime3::decode(dec)?,
        })
    }
}

/// Optional post-operation attributes.
pub type PostOpAttr = Option<Fattr3>;

/// Pre-operation attributes (wcc_attr).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WccAttr {
    /// Size before the operation.
    pub size: u64,
    /// mtime before the operation.
    pub mtime: NfsTime3,
    /// ctime before the operation.
    pub ctime: NfsTime3,
}

impl XdrEncode for WccAttr {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.size);
        self.mtime.encode(enc);
        self.ctime.encode(enc);
    }
}

impl XdrDecode for WccAttr {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self {
            size: dec.get_u64()?,
            mtime: NfsTime3::decode(dec)?,
            ctime: NfsTime3::decode(dec)?,
        })
    }
}

/// Weak cache-consistency data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WccData {
    /// Attributes before.
    pub before: Option<WccAttr>,
    /// Attributes after.
    pub after: PostOpAttr,
}

impl XdrEncode for WccData {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.before.encode(enc);
        self.after.encode(enc);
    }
}

impl XdrDecode for WccData {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { before: Option::decode(dec)?, after: Option::decode(dec)? })
    }
}

/// Settable attributes (sattr3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sattr3 {
    /// New mode.
    pub mode: Option<u32>,
    /// New uid.
    pub uid: Option<u32>,
    /// New gid.
    pub gid: Option<u32>,
    /// New size (truncate/extend).
    pub size: Option<u64>,
    /// New atime.
    pub atime: Option<NfsTime3>,
    /// New mtime.
    pub mtime: Option<NfsTime3>,
}

impl Sattr3 {
    /// Convert to the VFS setattr request.
    pub fn to_vfs(&self) -> sgfs_vfs::SetAttrs {
        sgfs_vfs::SetAttrs {
            mode: self.mode,
            uid: self.uid,
            gid: self.gid,
            size: self.size,
            atime: self.atime.map(|t| t.as_nanos()),
            mtime: self.mtime.map(|t| t.as_nanos()),
        }
    }
}

impl XdrEncode for Sattr3 {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.mode.encode(enc);
        self.uid.encode(enc);
        self.gid.encode(enc);
        self.size.encode(enc);
        self.atime.encode(enc);
        self.mtime.encode(enc);
    }
}

impl XdrDecode for Sattr3 {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self {
            mode: Option::decode(dec)?,
            uid: Option::decode(dec)?,
            gid: Option::decode(dec)?,
            size: Option::decode(dec)?,
            atime: Option::decode(dec)?,
            mtime: Option::decode(dec)?,
        })
    }
}

/// Directory operation argument: parent handle + name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOpArgs3 {
    /// Parent directory handle.
    pub dir: Fh3,
    /// Entry name.
    pub name: String,
}

impl XdrEncode for DirOpArgs3 {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.dir.encode(enc);
        enc.put_string(&self.name);
    }
}

impl XdrDecode for DirOpArgs3 {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { dir: Fh3::decode(dec)?, name: dec.get_string_max(255)? })
    }
}

/// WRITE stability levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum StableHow {
    /// May be cached by the server (needs COMMIT).
    Unstable = 0,
    /// Data must be durable before replying.
    DataSync = 1,
    /// Data and metadata durable before replying.
    FileSync = 2,
}

impl XdrEncode for StableHow {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(*self as u32);
    }
}

impl XdrDecode for StableHow {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(match dec.get_u32()? {
            0 => StableHow::Unstable,
            1 => StableHow::DataSync,
            2 => StableHow::FileSync,
            other => return Err(XdrError::InvalidEnum { what: "stable_how", value: other }),
        })
    }
}

/// One READDIR entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry3 {
    /// File id.
    pub fileid: u64,
    /// Name.
    pub name: String,
    /// Resume cookie.
    pub cookie: u64,
}

/// One READDIRPLUS entry (entry + attributes + handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryPlus3 {
    /// File id.
    pub fileid: u64,
    /// Name.
    pub name: String,
    /// Resume cookie.
    pub cookie: u64,
    /// Attributes, when the server supplies them.
    pub attr: PostOpAttr,
    /// Handle, when the server supplies it.
    pub handle: Option<Fh3>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fh_roundtrip() {
        let fh = Fh3::from_ino(7, 42);
        assert_eq!(fh.to_ino(), Some((7, 42)));
        let back = Fh3::from_xdr_bytes(&fh.to_xdr_bytes()).unwrap();
        assert_eq!(back, fh);
    }

    #[test]
    fn fh_size_limit() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&[0u8; 65]);
        assert!(Fh3::from_xdr_bytes(&enc.into_bytes()).is_err());
    }

    #[test]
    fn fattr_roundtrip() {
        let a = Fattr3 {
            ftype: FType3::Reg,
            mode: 0o644,
            nlink: 2,
            uid: 1000,
            gid: 100,
            size: 12345,
            used: 12345,
            fsid: 1,
            fileid: 99,
            atime: NfsTime3::from_nanos(1_500_000_001),
            mtime: NfsTime3::from_nanos(2_500_000_002),
            ctime: NfsTime3::from_nanos(3_500_000_003),
        };
        assert_eq!(Fattr3::from_xdr_bytes(&a.to_xdr_bytes()).unwrap(), a);
    }

    #[test]
    fn time_conversion() {
        let t = NfsTime3::from_nanos(5_123_456_789);
        assert_eq!(t.seconds, 5);
        assert_eq!(t.nseconds, 123_456_789);
        assert_eq!(t.as_nanos(), 5_123_456_789);
    }

    #[test]
    fn sattr_roundtrip() {
        let s = Sattr3 {
            mode: Some(0o600),
            uid: None,
            gid: Some(5),
            size: Some(0),
            atime: None,
            mtime: Some(NfsTime3 { seconds: 9, nseconds: 1 }),
        };
        assert_eq!(Sattr3::from_xdr_bytes(&s.to_xdr_bytes()).unwrap(), s);
    }

    #[test]
    fn wcc_roundtrip() {
        let w = WccData {
            before: Some(WccAttr { size: 5, mtime: NfsTime3::default(), ctime: NfsTime3::default() }),
            after: None,
        };
        assert_eq!(WccData::from_xdr_bytes(&w.to_xdr_bytes()).unwrap(), w);
    }

    #[test]
    fn stat_mapping_from_vfs() {
        assert_eq!(NfsStat3::from(VfsError::NotFound), NfsStat3::NoEnt);
        assert_eq!(NfsStat3::from(VfsError::Access), NfsStat3::Acces);
        assert_eq!(NfsStat3::from(VfsError::Stale), NfsStat3::Stale);
        assert_eq!(NfsStat3::from(VfsError::NotEmpty), NfsStat3::NotEmpty);
    }
}
