//! Typed NFSv3 client stubs over any RPC transport.

use crate::proc::{procnum, *};
use crate::types::*;
use crate::{NFS_PROGRAM, NFS_VERSION};
use sgfs_net::BoxStream;
use sgfs_oncrpc::{OpaqueAuth, RpcClient, RpcError};

/// NFS client-side errors: RPC transport failures or NFS status codes.
#[derive(Debug)]
pub enum Nfs3Error {
    /// RPC-layer failure.
    Rpc(RpcError),
    /// The server returned a non-OK NFS status.
    Status(NfsStat3),
}

impl std::fmt::Display for Nfs3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Nfs3Error::Rpc(e) => write!(f, "NFS RPC error: {e}"),
            Nfs3Error::Status(s) => write!(f, "NFS error: {s:?}"),
        }
    }
}

impl std::error::Error for Nfs3Error {}

impl From<RpcError> for Nfs3Error {
    fn from(e: RpcError) -> Self {
        Nfs3Error::Rpc(e)
    }
}

/// Result alias.
pub type Nfs3Result<T> = Result<T, Nfs3Error>;

/// A typed NFSv3 client: one stub method per procedure.
pub struct Nfs3Client {
    rpc: RpcClient,
}

fn ok_status(status: NfsStat3) -> Nfs3Result<()> {
    if status == NfsStat3::Ok {
        Ok(())
    } else {
        Err(Nfs3Error::Status(status))
    }
}

impl Nfs3Client {
    /// Build over an established transport (plain, GTLS, or tunneled).
    pub fn new(stream: BoxStream) -> Self {
        Self { rpc: RpcClient::new(stream, NFS_PROGRAM, NFS_VERSION) }
    }

    /// Wrap an existing RPC client (must target NFS prog/vers).
    pub fn from_rpc(rpc: RpcClient) -> Self {
        Self { rpc }
    }

    /// Set the AUTH_SYS credential presented on each call.
    pub fn set_cred(&mut self, cred: OpaqueAuth) {
        self.rpc.set_cred(cred);
    }

    /// NULL — ping.
    pub fn null(&mut self) -> Nfs3Result<()> {
        self.rpc.null().map_err(Into::into)
    }

    /// GETATTR.
    pub fn getattr(&mut self, fh: &Fh3) -> Nfs3Result<Fattr3> {
        let res: GetAttrRes = self.rpc.call(procnum::GETATTR, fh)?;
        ok_status(res.status)?;
        Ok(res.attr.expect("OK GETATTR carries attributes"))
    }

    /// SETATTR.
    pub fn setattr(&mut self, fh: &Fh3, sattr: &Sattr3) -> Nfs3Result<WccData> {
        let args = SetAttrArgs { object: fh.clone(), new_attributes: sattr.clone() };
        let res: WccRes = self.rpc.call(procnum::SETATTR, &args)?;
        ok_status(res.status)?;
        Ok(res.wcc)
    }

    /// LOOKUP.
    pub fn lookup(&mut self, dir: &Fh3, name: &str) -> Nfs3Result<(Fh3, PostOpAttr)> {
        let args = DirOpArgs3 { dir: dir.clone(), name: name.into() };
        let res: LookupRes = self.rpc.call(procnum::LOOKUP, &args)?;
        ok_status(res.status)?;
        Ok((res.object.expect("OK LOOKUP carries a handle"), res.obj_attr))
    }

    /// ACCESS.
    pub fn access(&mut self, fh: &Fh3, mask: u32) -> Nfs3Result<u32> {
        let args = AccessArgs { object: fh.clone(), access: mask };
        let res: AccessRes = self.rpc.call(procnum::ACCESS, &args)?;
        ok_status(res.status)?;
        Ok(res.access)
    }

    /// READLINK.
    pub fn readlink(&mut self, fh: &Fh3) -> Nfs3Result<String> {
        let res: ReadlinkRes = self.rpc.call(procnum::READLINK, fh)?;
        ok_status(res.status)?;
        Ok(res.path)
    }

    /// READ.
    pub fn read(&mut self, fh: &Fh3, offset: u64, count: u32) -> Nfs3Result<ReadRes> {
        let args = ReadArgs { file: fh.clone(), offset, count };
        let res: ReadRes = self.rpc.call(procnum::READ, &args)?;
        ok_status(res.status)?;
        Ok(res)
    }

    /// WRITE.
    pub fn write(
        &mut self,
        fh: &Fh3,
        offset: u64,
        data: Vec<u8>,
        stable: StableHow,
    ) -> Nfs3Result<WriteRes> {
        let args = WriteArgs { file: fh.clone(), offset, stable, data };
        let res: WriteRes = self.rpc.call(procnum::WRITE, &args)?;
        ok_status(res.status)?;
        Ok(res)
    }

    /// CREATE (unchecked by default).
    pub fn create(&mut self, dir: &Fh3, name: &str, attrs: Sattr3) -> Nfs3Result<(Fh3, PostOpAttr)> {
        self.create_how(dir, name, CreateMode::Unchecked(attrs))
    }

    /// CREATE with an explicit mode.
    pub fn create_how(&mut self, dir: &Fh3, name: &str, how: CreateMode) -> Nfs3Result<(Fh3, PostOpAttr)> {
        let args = CreateArgs { where_: DirOpArgs3 { dir: dir.clone(), name: name.into() }, how };
        let res: CreateRes = self.rpc.call(procnum::CREATE, &args)?;
        ok_status(res.status)?;
        Ok((res.obj.ok_or(Nfs3Error::Status(NfsStat3::ServerFault))?, res.obj_attr))
    }

    /// MKDIR.
    pub fn mkdir(&mut self, dir: &Fh3, name: &str, attrs: Sattr3) -> Nfs3Result<(Fh3, PostOpAttr)> {
        let args = MkdirArgs {
            where_: DirOpArgs3 { dir: dir.clone(), name: name.into() },
            attributes: attrs,
        };
        let res: CreateRes = self.rpc.call(procnum::MKDIR, &args)?;
        ok_status(res.status)?;
        Ok((res.obj.ok_or(Nfs3Error::Status(NfsStat3::ServerFault))?, res.obj_attr))
    }

    /// SYMLINK.
    pub fn symlink(&mut self, dir: &Fh3, name: &str, target: &str) -> Nfs3Result<(Fh3, PostOpAttr)> {
        let args = SymlinkArgs {
            where_: DirOpArgs3 { dir: dir.clone(), name: name.into() },
            attributes: Sattr3::default(),
            target: target.into(),
        };
        let res: CreateRes = self.rpc.call(procnum::SYMLINK, &args)?;
        ok_status(res.status)?;
        Ok((res.obj.ok_or(Nfs3Error::Status(NfsStat3::ServerFault))?, res.obj_attr))
    }

    /// REMOVE.
    pub fn remove(&mut self, dir: &Fh3, name: &str) -> Nfs3Result<WccData> {
        let args = DirOpArgs3 { dir: dir.clone(), name: name.into() };
        let res: WccRes = self.rpc.call(procnum::REMOVE, &args)?;
        ok_status(res.status)?;
        Ok(res.wcc)
    }

    /// RMDIR.
    pub fn rmdir(&mut self, dir: &Fh3, name: &str) -> Nfs3Result<WccData> {
        let args = DirOpArgs3 { dir: dir.clone(), name: name.into() };
        let res: WccRes = self.rpc.call(procnum::RMDIR, &args)?;
        ok_status(res.status)?;
        Ok(res.wcc)
    }

    /// RENAME.
    pub fn rename(&mut self, from_dir: &Fh3, from: &str, to_dir: &Fh3, to: &str) -> Nfs3Result<()> {
        let args = RenameArgs {
            from: DirOpArgs3 { dir: from_dir.clone(), name: from.into() },
            to: DirOpArgs3 { dir: to_dir.clone(), name: to.into() },
        };
        let res: RenameRes = self.rpc.call(procnum::RENAME, &args)?;
        ok_status(res.status)
    }

    /// LINK.
    pub fn link(&mut self, file: &Fh3, dir: &Fh3, name: &str) -> Nfs3Result<PostOpAttr> {
        let args = LinkArgs {
            file: file.clone(),
            link: DirOpArgs3 { dir: dir.clone(), name: name.into() },
        };
        let res: LinkRes = self.rpc.call(procnum::LINK, &args)?;
        ok_status(res.status)?;
        Ok(res.attr)
    }

    /// READDIR (one chunk; loop on `eof`/cookies for large directories).
    pub fn readdir(&mut self, dir: &Fh3, cookie: u64, cookieverf: u64, count: u32) -> Nfs3Result<ReaddirRes> {
        let args = ReaddirArgs { dir: dir.clone(), cookie, cookieverf, count };
        let res: ReaddirRes = self.rpc.call(procnum::READDIR, &args)?;
        ok_status(res.status)?;
        Ok(res)
    }

    /// READDIRPLUS (one chunk).
    pub fn readdirplus(
        &mut self,
        dir: &Fh3,
        cookie: u64,
        cookieverf: u64,
        maxcount: u32,
    ) -> Nfs3Result<ReaddirPlusRes> {
        let args = ReaddirPlusArgs {
            dir: dir.clone(),
            cookie,
            cookieverf,
            dircount: maxcount / 4,
            maxcount,
        };
        let res: ReaddirPlusRes = self.rpc.call(procnum::READDIRPLUS, &args)?;
        ok_status(res.status)?;
        Ok(res)
    }

    /// FSSTAT.
    pub fn fsstat(&mut self, root: &Fh3) -> Nfs3Result<FsStatRes> {
        let res: FsStatRes = self.rpc.call(procnum::FSSTAT, root)?;
        ok_status(res.status)?;
        Ok(res)
    }

    /// FSINFO.
    pub fn fsinfo(&mut self, root: &Fh3) -> Nfs3Result<FsInfoRes> {
        let res: FsInfoRes = self.rpc.call(procnum::FSINFO, root)?;
        ok_status(res.status)?;
        Ok(res)
    }

    /// PATHCONF.
    pub fn pathconf(&mut self, fh: &Fh3) -> Nfs3Result<PathConfRes> {
        let res: PathConfRes = self.rpc.call(procnum::PATHCONF, fh)?;
        ok_status(res.status)?;
        Ok(res)
    }

    /// COMMIT.
    pub fn commit(&mut self, fh: &Fh3, offset: u64, count: u32) -> Nfs3Result<CommitRes> {
        let args = CommitArgs { file: fh.clone(), offset, count };
        let res: CommitRes = self.rpc.call(procnum::COMMIT, &args)?;
        ok_status(res.status)?;
        Ok(res)
    }
}
