//! NFSv3 procedure numbers, argument and result messages.
//!
//! Result types follow the RFC 1813 union layout: a status discriminant
//! followed by an OK arm or a fail arm (which usually still carries
//! post-op attributes for client cache maintenance).

use crate::types::*;
use sgfs_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder, XdrError, XdrResult};

/// Procedure numbers.
#[allow(missing_docs)]
pub mod procnum {
    pub const NULL: u32 = 0;
    pub const GETATTR: u32 = 1;
    pub const SETATTR: u32 = 2;
    pub const LOOKUP: u32 = 3;
    pub const ACCESS: u32 = 4;
    pub const READLINK: u32 = 5;
    pub const READ: u32 = 6;
    pub const WRITE: u32 = 7;
    pub const CREATE: u32 = 8;
    pub const MKDIR: u32 = 9;
    pub const SYMLINK: u32 = 10;
    pub const MKNOD: u32 = 11;
    pub const REMOVE: u32 = 12;
    pub const RMDIR: u32 = 13;
    pub const RENAME: u32 = 14;
    pub const LINK: u32 = 15;
    pub const READDIR: u32 = 16;
    pub const READDIRPLUS: u32 = 17;
    pub const FSSTAT: u32 = 18;
    pub const FSINFO: u32 = 19;
    pub const PATHCONF: u32 = 20;
    pub const COMMIT: u32 = 21;
}

// ---------------- GETATTR ----------------

/// GETATTR result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetAttrRes {
    /// Status; attributes present iff `Ok`.
    pub status: NfsStat3,
    /// The attributes.
    pub attr: Option<Fattr3>,
}

impl XdrEncode for GetAttrRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        if self.status == NfsStat3::Ok {
            self.attr.as_ref().expect("OK GETATTR carries attributes").encode(enc);
        }
    }
}

impl XdrDecode for GetAttrRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let attr = if status == NfsStat3::Ok { Some(Fattr3::decode(dec)?) } else { None };
        Ok(Self { status, attr })
    }
}

// ---------------- SETATTR ----------------

/// SETATTR arguments (guard check omitted; the stack never uses it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetAttrArgs {
    /// Target object.
    pub object: Fh3,
    /// New attributes.
    pub new_attributes: Sattr3,
}

impl XdrEncode for SetAttrArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.object.encode(enc);
        self.new_attributes.encode(enc);
        enc.put_bool(false); // guard: check = FALSE
    }
}

impl XdrDecode for SetAttrArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let object = Fh3::decode(dec)?;
        let new_attributes = Sattr3::decode(dec)?;
        if dec.get_bool()? {
            let _guard_ctime = NfsTime3::decode(dec)?;
        }
        Ok(Self { object, new_attributes })
    }
}

/// SETATTR result: status + wcc data either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WccRes {
    /// Status.
    pub status: NfsStat3,
    /// Cache-consistency data.
    pub wcc: WccData,
}

impl XdrEncode for WccRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.wcc.encode(enc);
    }
}

impl XdrDecode for WccRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { status: NfsStat3::decode(dec)?, wcc: WccData::decode(dec)? })
    }
}

// ---------------- LOOKUP ----------------

/// LOOKUP result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupRes {
    /// Status.
    pub status: NfsStat3,
    /// Found object's handle (OK only).
    pub object: Option<Fh3>,
    /// Found object's attributes (OK only).
    pub obj_attr: PostOpAttr,
    /// Directory attributes (both arms).
    pub dir_attr: PostOpAttr,
}

impl XdrEncode for LookupRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        if self.status == NfsStat3::Ok {
            self.object.as_ref().expect("OK LOOKUP carries a handle").encode(enc);
            self.obj_attr.encode(enc);
        }
        self.dir_attr.encode(enc);
    }
}

impl XdrDecode for LookupRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let (object, obj_attr) = if status == NfsStat3::Ok {
            (Some(Fh3::decode(dec)?), Option::decode(dec)?)
        } else {
            (None, None)
        };
        Ok(Self { status, object, obj_attr, dir_attr: Option::decode(dec)? })
    }
}

// ---------------- ACCESS ----------------

/// ACCESS arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessArgs {
    /// Object to check.
    pub object: Fh3,
    /// Requested access bits.
    pub access: u32,
}

impl XdrEncode for AccessArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.object.encode(enc);
        enc.put_u32(self.access);
    }
}

impl XdrDecode for AccessArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { object: Fh3::decode(dec)?, access: dec.get_u32()? })
    }
}

/// ACCESS result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRes {
    /// Status.
    pub status: NfsStat3,
    /// Post-op attributes (both arms).
    pub obj_attr: PostOpAttr,
    /// Granted bits (OK only).
    pub access: u32,
}

impl XdrEncode for AccessRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.obj_attr.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u32(self.access);
        }
    }
}

impl XdrDecode for AccessRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let obj_attr = Option::decode(dec)?;
        let access = if status == NfsStat3::Ok { dec.get_u32()? } else { 0 };
        Ok(Self { status, obj_attr, access })
    }
}

// ---------------- READLINK ----------------

/// READLINK result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadlinkRes {
    /// Status.
    pub status: NfsStat3,
    /// Symlink attributes.
    pub attr: PostOpAttr,
    /// Target path (OK only).
    pub path: String,
}

impl XdrEncode for ReadlinkRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.attr.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_string(&self.path);
        }
    }
}

impl XdrDecode for ReadlinkRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let attr = Option::decode(dec)?;
        let path = if status == NfsStat3::Ok { dec.get_string_max(4096)? } else { String::new() };
        Ok(Self { status, attr, path })
    }
}

// ---------------- READ ----------------

/// READ arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadArgs {
    /// File to read.
    pub file: Fh3,
    /// Byte offset.
    pub offset: u64,
    /// Byte count.
    pub count: u32,
}

impl XdrEncode for ReadArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
    }
}

impl XdrDecode for ReadArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { file: Fh3::decode(dec)?, offset: dec.get_u64()?, count: dec.get_u32()? })
    }
}

/// READ result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRes {
    /// Status.
    pub status: NfsStat3,
    /// File attributes.
    pub attr: PostOpAttr,
    /// Bytes returned (OK only).
    pub count: u32,
    /// End of file reached.
    pub eof: bool,
    /// The data.
    pub data: Vec<u8>,
}

impl XdrEncode for ReadRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.attr.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u32(self.count);
            enc.put_bool(self.eof);
            enc.put_opaque(&self.data);
        }
    }
}

impl XdrDecode for ReadRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let attr = Option::decode(dec)?;
        if status == NfsStat3::Ok {
            Ok(Self {
                status,
                attr,
                count: dec.get_u32()?,
                eof: dec.get_bool()?,
                data: dec.get_opaque()?,
            })
        } else {
            Ok(Self { status, attr, count: 0, eof: false, data: Vec::new() })
        }
    }
}

// ---------------- WRITE ----------------

/// WRITE arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteArgs {
    /// File to write.
    pub file: Fh3,
    /// Byte offset.
    pub offset: u64,
    /// Stability requested.
    pub stable: StableHow,
    /// The data.
    pub data: Vec<u8>,
}

impl XdrEncode for WriteArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset);
        enc.put_u32(self.data.len() as u32);
        self.stable.encode(enc);
        enc.put_opaque(&self.data);
    }
}

impl XdrDecode for WriteArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let file = Fh3::decode(dec)?;
        let offset = dec.get_u64()?;
        let count = dec.get_u32()?;
        let stable = StableHow::decode(dec)?;
        let data = dec.get_opaque()?;
        if data.len() != count as usize {
            return Err(XdrError::InvalidEnum { what: "write count", value: count });
        }
        Ok(Self { file, offset, stable, data })
    }
}

/// WRITE result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRes {
    /// Status.
    pub status: NfsStat3,
    /// Cache-consistency data.
    pub wcc: WccData,
    /// Bytes written (OK only).
    pub count: u32,
    /// Stability achieved.
    pub committed: StableHow,
    /// Write verifier (detects server reboots between WRITE and COMMIT).
    pub verf: u64,
}

impl XdrEncode for WriteRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.wcc.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u32(self.count);
            self.committed.encode(enc);
            enc.put_u64(self.verf);
        }
    }
}

impl XdrDecode for WriteRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let wcc = WccData::decode(dec)?;
        if status == NfsStat3::Ok {
            Ok(Self {
                status,
                wcc,
                count: dec.get_u32()?,
                committed: StableHow::decode(dec)?,
                verf: dec.get_u64()?,
            })
        } else {
            Ok(Self { status, wcc, count: 0, committed: StableHow::Unstable, verf: 0 })
        }
    }
}

// ---------------- CREATE / MKDIR / SYMLINK ----------------

/// CREATE mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CreateMode {
    /// Create or open existing.
    Unchecked(Sattr3),
    /// Fail if the name exists.
    Guarded(Sattr3),
    /// Exclusive create keyed by a client verifier.
    Exclusive(u64),
}

/// CREATE arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateArgs {
    /// Where to create.
    pub where_: DirOpArgs3,
    /// How to create.
    pub how: CreateMode,
}

impl XdrEncode for CreateArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.where_.encode(enc);
        match &self.how {
            CreateMode::Unchecked(s) => {
                enc.put_u32(0);
                s.encode(enc);
            }
            CreateMode::Guarded(s) => {
                enc.put_u32(1);
                s.encode(enc);
            }
            CreateMode::Exclusive(v) => {
                enc.put_u32(2);
                enc.put_u64(*v);
            }
        }
    }
}

impl XdrDecode for CreateArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let where_ = DirOpArgs3::decode(dec)?;
        let how = match dec.get_u32()? {
            0 => CreateMode::Unchecked(Sattr3::decode(dec)?),
            1 => CreateMode::Guarded(Sattr3::decode(dec)?),
            2 => CreateMode::Exclusive(dec.get_u64()?),
            other => return Err(XdrError::InvalidEnum { what: "createmode3", value: other }),
        };
        Ok(Self { where_, how })
    }
}

/// MKDIR arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MkdirArgs {
    /// Where to create.
    pub where_: DirOpArgs3,
    /// Directory attributes.
    pub attributes: Sattr3,
}

impl XdrEncode for MkdirArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.where_.encode(enc);
        self.attributes.encode(enc);
    }
}

impl XdrDecode for MkdirArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { where_: DirOpArgs3::decode(dec)?, attributes: Sattr3::decode(dec)? })
    }
}

/// SYMLINK arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymlinkArgs {
    /// Where to create.
    pub where_: DirOpArgs3,
    /// Link attributes.
    pub attributes: Sattr3,
    /// Target path.
    pub target: String,
}

impl XdrEncode for SymlinkArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.where_.encode(enc);
        self.attributes.encode(enc);
        enc.put_string(&self.target);
    }
}

impl XdrDecode for SymlinkArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self {
            where_: DirOpArgs3::decode(dec)?,
            attributes: Sattr3::decode(dec)?,
            target: dec.get_string_max(4096)?,
        })
    }
}

/// Result shared by CREATE / MKDIR / SYMLINK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateRes {
    /// Status.
    pub status: NfsStat3,
    /// New object handle (OK only; optional per spec).
    pub obj: Option<Fh3>,
    /// New object attributes (OK only).
    pub obj_attr: PostOpAttr,
    /// Parent directory cache-consistency data.
    pub dir_wcc: WccData,
}

impl XdrEncode for CreateRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        if self.status == NfsStat3::Ok {
            self.obj.encode(enc);
            self.obj_attr.encode(enc);
        }
        self.dir_wcc.encode(enc);
    }
}

impl XdrDecode for CreateRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let (obj, obj_attr) = if status == NfsStat3::Ok {
            (Option::decode(dec)?, Option::decode(dec)?)
        } else {
            (None, None)
        };
        Ok(Self { status, obj, obj_attr, dir_wcc: WccData::decode(dec)? })
    }
}

// ---------------- RENAME / LINK ----------------

/// RENAME arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameArgs {
    /// Source.
    pub from: DirOpArgs3,
    /// Destination.
    pub to: DirOpArgs3,
}

impl XdrEncode for RenameArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.from.encode(enc);
        self.to.encode(enc);
    }
}

impl XdrDecode for RenameArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { from: DirOpArgs3::decode(dec)?, to: DirOpArgs3::decode(dec)? })
    }
}

/// RENAME result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameRes {
    /// Status.
    pub status: NfsStat3,
    /// Source directory wcc.
    pub from_wcc: WccData,
    /// Destination directory wcc.
    pub to_wcc: WccData,
}

impl XdrEncode for RenameRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.from_wcc.encode(enc);
        self.to_wcc.encode(enc);
    }
}

impl XdrDecode for RenameRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self {
            status: NfsStat3::decode(dec)?,
            from_wcc: WccData::decode(dec)?,
            to_wcc: WccData::decode(dec)?,
        })
    }
}

/// LINK arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkArgs {
    /// Existing file.
    pub file: Fh3,
    /// New location.
    pub link: DirOpArgs3,
}

impl XdrEncode for LinkArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        self.link.encode(enc);
    }
}

impl XdrDecode for LinkArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { file: Fh3::decode(dec)?, link: DirOpArgs3::decode(dec)? })
    }
}

/// LINK result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkRes {
    /// Status.
    pub status: NfsStat3,
    /// File attributes after.
    pub attr: PostOpAttr,
    /// Link directory wcc.
    pub dir_wcc: WccData,
}

impl XdrEncode for LinkRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.attr.encode(enc);
        self.dir_wcc.encode(enc);
    }
}

impl XdrDecode for LinkRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self {
            status: NfsStat3::decode(dec)?,
            attr: Option::decode(dec)?,
            dir_wcc: WccData::decode(dec)?,
        })
    }
}

// ---------------- READDIR / READDIRPLUS ----------------

/// READDIR arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReaddirArgs {
    /// Directory.
    pub dir: Fh3,
    /// Resume cookie (0 = start).
    pub cookie: u64,
    /// Cookie verifier.
    pub cookieverf: u64,
    /// Max reply bytes.
    pub count: u32,
}

impl XdrEncode for ReaddirArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.dir.encode(enc);
        enc.put_u64(self.cookie);
        enc.put_u64(self.cookieverf);
        enc.put_u32(self.count);
    }
}

impl XdrDecode for ReaddirArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self {
            dir: Fh3::decode(dec)?,
            cookie: dec.get_u64()?,
            cookieverf: dec.get_u64()?,
            count: dec.get_u32()?,
        })
    }
}

/// READDIR result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReaddirRes {
    /// Status.
    pub status: NfsStat3,
    /// Directory attributes.
    pub dir_attr: PostOpAttr,
    /// Cookie verifier.
    pub cookieverf: u64,
    /// Entries (OK only).
    pub entries: Vec<Entry3>,
    /// True when the listing is complete.
    pub eof: bool,
}

impl XdrEncode for ReaddirRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.dir_attr.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u64(self.cookieverf);
            for e in &self.entries {
                enc.put_bool(true);
                enc.put_u64(e.fileid);
                enc.put_string(&e.name);
                enc.put_u64(e.cookie);
            }
            enc.put_bool(false);
            enc.put_bool(self.eof);
        }
    }
}

impl XdrDecode for ReaddirRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let dir_attr = Option::decode(dec)?;
        if status != NfsStat3::Ok {
            return Ok(Self { status, dir_attr, cookieverf: 0, entries: Vec::new(), eof: false });
        }
        let cookieverf = dec.get_u64()?;
        let mut entries = Vec::new();
        while dec.get_bool()? {
            entries.push(Entry3 {
                fileid: dec.get_u64()?,
                name: dec.get_string_max(255)?,
                cookie: dec.get_u64()?,
            });
        }
        let eof = dec.get_bool()?;
        Ok(Self { status, dir_attr, cookieverf, entries, eof })
    }
}

/// READDIRPLUS arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReaddirPlusArgs {
    /// Directory.
    pub dir: Fh3,
    /// Resume cookie.
    pub cookie: u64,
    /// Cookie verifier.
    pub cookieverf: u64,
    /// Max bytes of directory information.
    pub dircount: u32,
    /// Max total reply bytes.
    pub maxcount: u32,
}

impl XdrEncode for ReaddirPlusArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.dir.encode(enc);
        enc.put_u64(self.cookie);
        enc.put_u64(self.cookieverf);
        enc.put_u32(self.dircount);
        enc.put_u32(self.maxcount);
    }
}

impl XdrDecode for ReaddirPlusArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self {
            dir: Fh3::decode(dec)?,
            cookie: dec.get_u64()?,
            cookieverf: dec.get_u64()?,
            dircount: dec.get_u32()?,
            maxcount: dec.get_u32()?,
        })
    }
}

/// READDIRPLUS result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReaddirPlusRes {
    /// Status.
    pub status: NfsStat3,
    /// Directory attributes.
    pub dir_attr: PostOpAttr,
    /// Cookie verifier.
    pub cookieverf: u64,
    /// Entries with attributes and handles.
    pub entries: Vec<EntryPlus3>,
    /// Listing complete.
    pub eof: bool,
}

impl XdrEncode for ReaddirPlusRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.dir_attr.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u64(self.cookieverf);
            for e in &self.entries {
                enc.put_bool(true);
                enc.put_u64(e.fileid);
                enc.put_string(&e.name);
                enc.put_u64(e.cookie);
                e.attr.encode(enc);
                e.handle.encode(enc);
            }
            enc.put_bool(false);
            enc.put_bool(self.eof);
        }
    }
}

impl XdrDecode for ReaddirPlusRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let dir_attr = Option::decode(dec)?;
        if status != NfsStat3::Ok {
            return Ok(Self { status, dir_attr, cookieverf: 0, entries: Vec::new(), eof: false });
        }
        let cookieverf = dec.get_u64()?;
        let mut entries = Vec::new();
        while dec.get_bool()? {
            entries.push(EntryPlus3 {
                fileid: dec.get_u64()?,
                name: dec.get_string_max(255)?,
                cookie: dec.get_u64()?,
                attr: Option::decode(dec)?,
                handle: Option::decode(dec)?,
            });
        }
        let eof = dec.get_bool()?;
        Ok(Self { status, dir_attr, cookieverf, entries, eof })
    }
}

// ---------------- FSSTAT / FSINFO / PATHCONF / COMMIT ----------------

/// FSSTAT result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsStatRes {
    /// Status.
    pub status: NfsStat3,
    /// Root attributes.
    pub attr: PostOpAttr,
    /// Total bytes.
    pub tbytes: u64,
    /// Free bytes.
    pub fbytes: u64,
    /// Available bytes.
    pub abytes: u64,
    /// Total file slots.
    pub tfiles: u64,
    /// Free file slots.
    pub ffiles: u64,
}

impl XdrEncode for FsStatRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.attr.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u64(self.tbytes);
            enc.put_u64(self.fbytes);
            enc.put_u64(self.abytes);
            enc.put_u64(self.tfiles);
            enc.put_u64(self.ffiles);
            enc.put_u64(self.ffiles); // afiles
            enc.put_u32(0); // invarsec
        }
    }
}

impl XdrDecode for FsStatRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let attr = Option::decode(dec)?;
        if status != NfsStat3::Ok {
            return Ok(Self { status, attr, tbytes: 0, fbytes: 0, abytes: 0, tfiles: 0, ffiles: 0 });
        }
        let tbytes = dec.get_u64()?;
        let fbytes = dec.get_u64()?;
        let abytes = dec.get_u64()?;
        let tfiles = dec.get_u64()?;
        let ffiles = dec.get_u64()?;
        let _afiles = dec.get_u64()?;
        let _invarsec = dec.get_u32()?;
        Ok(Self { status, attr, tbytes, fbytes, abytes, tfiles, ffiles })
    }
}

/// FSINFO result (static filesystem parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsInfoRes {
    /// Status.
    pub status: NfsStat3,
    /// Root attributes.
    pub attr: PostOpAttr,
    /// Max READ size.
    pub rtmax: u32,
    /// Preferred READ size.
    pub rtpref: u32,
    /// Max WRITE size.
    pub wtmax: u32,
    /// Preferred WRITE size.
    pub wtpref: u32,
    /// Preferred READDIR size.
    pub dtpref: u32,
    /// Max file size.
    pub maxfilesize: u64,
}

impl XdrEncode for FsInfoRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.attr.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u32(self.rtmax);
            enc.put_u32(self.rtpref);
            enc.put_u32(1); // rtmult
            enc.put_u32(self.wtmax);
            enc.put_u32(self.wtpref);
            enc.put_u32(1); // wtmult
            enc.put_u32(self.dtpref);
            enc.put_u64(self.maxfilesize);
            NfsTime3 { seconds: 0, nseconds: 1 }.encode(enc); // time_delta
            enc.put_u32(0x1b); // properties: LINK|SYMLINK|HOMOGENEOUS|CANSETTIME
        }
    }
}

impl XdrDecode for FsInfoRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let attr = Option::decode(dec)?;
        if status != NfsStat3::Ok {
            return Ok(Self {
                status,
                attr,
                rtmax: 0,
                rtpref: 0,
                wtmax: 0,
                wtpref: 0,
                dtpref: 0,
                maxfilesize: 0,
            });
        }
        let rtmax = dec.get_u32()?;
        let rtpref = dec.get_u32()?;
        let _rtmult = dec.get_u32()?;
        let wtmax = dec.get_u32()?;
        let wtpref = dec.get_u32()?;
        let _wtmult = dec.get_u32()?;
        let dtpref = dec.get_u32()?;
        let maxfilesize = dec.get_u64()?;
        let _time_delta = NfsTime3::decode(dec)?;
        let _properties = dec.get_u32()?;
        Ok(Self { status, attr, rtmax, rtpref, wtmax, wtpref, dtpref, maxfilesize })
    }
}

/// PATHCONF result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathConfRes {
    /// Status.
    pub status: NfsStat3,
    /// Attributes.
    pub attr: PostOpAttr,
    /// Max hard links.
    pub linkmax: u32,
    /// Max name length.
    pub name_max: u32,
}

impl XdrEncode for PathConfRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.attr.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u32(self.linkmax);
            enc.put_u32(self.name_max);
            enc.put_bool(true); // no_trunc
            enc.put_bool(true); // chown_restricted
            enc.put_bool(false); // case_insensitive
            enc.put_bool(true); // case_preserving
        }
    }
}

impl XdrDecode for PathConfRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let attr = Option::decode(dec)?;
        if status != NfsStat3::Ok {
            return Ok(Self { status, attr, linkmax: 0, name_max: 0 });
        }
        let linkmax = dec.get_u32()?;
        let name_max = dec.get_u32()?;
        for _ in 0..4 {
            let _ = dec.get_bool()?;
        }
        Ok(Self { status, attr, linkmax, name_max })
    }
}

/// COMMIT arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitArgs {
    /// File.
    pub file: Fh3,
    /// Range start.
    pub offset: u64,
    /// Range length (0 = to EOF).
    pub count: u32,
}

impl XdrEncode for CommitArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
    }
}

impl XdrDecode for CommitArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        Ok(Self { file: Fh3::decode(dec)?, offset: dec.get_u64()?, count: dec.get_u32()? })
    }
}

/// COMMIT result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRes {
    /// Status.
    pub status: NfsStat3,
    /// Cache-consistency data.
    pub wcc: WccData,
    /// Write verifier.
    pub verf: u64,
}

impl XdrEncode for CommitRes {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.status.encode(enc);
        self.wcc.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u64(self.verf);
        }
    }
}

impl XdrDecode for CommitRes {
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let status = NfsStat3::decode(dec)?;
        let wcc = WccData::decode(dec)?;
        let verf = if status == NfsStat3::Ok { dec.get_u64()? } else { 0 };
        Ok(Self { status, wcc, verf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh() -> Fh3 {
        Fh3::from_ino(1, 5)
    }

    fn attr() -> Fattr3 {
        Fattr3 {
            ftype: FType3::Reg,
            mode: 0o644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size: 10,
            used: 10,
            fsid: 1,
            fileid: 5,
            atime: NfsTime3::default(),
            mtime: NfsTime3::default(),
            ctime: NfsTime3::default(),
        }
    }

    #[test]
    fn read_write_roundtrip() {
        let ra = ReadArgs { file: fh(), offset: 1024, count: 32768 };
        assert_eq!(ReadArgs::from_xdr_bytes(&ra.to_xdr_bytes()).unwrap(), ra);

        let rr = ReadRes {
            status: NfsStat3::Ok,
            attr: Some(attr()),
            count: 3,
            eof: true,
            data: vec![1, 2, 3],
        };
        assert_eq!(ReadRes::from_xdr_bytes(&rr.to_xdr_bytes()).unwrap(), rr);

        let wa = WriteArgs { file: fh(), offset: 0, stable: StableHow::Unstable, data: vec![9; 100] };
        assert_eq!(WriteArgs::from_xdr_bytes(&wa.to_xdr_bytes()).unwrap(), wa);

        let wr = WriteRes {
            status: NfsStat3::Ok,
            wcc: WccData::default(),
            count: 100,
            committed: StableHow::FileSync,
            verf: 77,
        };
        assert_eq!(WriteRes::from_xdr_bytes(&wr.to_xdr_bytes()).unwrap(), wr);
    }

    #[test]
    fn error_arms_omit_ok_fields() {
        let rr = ReadRes {
            status: NfsStat3::Stale,
            attr: None,
            count: 0,
            eof: false,
            data: Vec::new(),
        };
        let bytes = rr.to_xdr_bytes();
        assert_eq!(bytes.len(), 8); // status + attr-absent bool
        assert_eq!(ReadRes::from_xdr_bytes(&bytes).unwrap(), rr);
    }

    #[test]
    fn lookup_roundtrip_both_arms() {
        let ok = LookupRes {
            status: NfsStat3::Ok,
            object: Some(fh()),
            obj_attr: Some(attr()),
            dir_attr: None,
        };
        assert_eq!(LookupRes::from_xdr_bytes(&ok.to_xdr_bytes()).unwrap(), ok);
        let err = LookupRes {
            status: NfsStat3::NoEnt,
            object: None,
            obj_attr: None,
            dir_attr: Some(attr()),
        };
        assert_eq!(LookupRes::from_xdr_bytes(&err.to_xdr_bytes()).unwrap(), err);
    }

    #[test]
    fn create_modes_roundtrip() {
        for how in [
            CreateMode::Unchecked(Sattr3::default()),
            CreateMode::Guarded(Sattr3 { mode: Some(0o600), ..Default::default() }),
            CreateMode::Exclusive(0xdead_beef),
        ] {
            let ca = CreateArgs {
                where_: DirOpArgs3 { dir: fh(), name: "new.txt".into() },
                how: how.clone(),
            };
            assert_eq!(CreateArgs::from_xdr_bytes(&ca.to_xdr_bytes()).unwrap(), ca);
        }
    }

    #[test]
    fn readdir_roundtrip() {
        let res = ReaddirRes {
            status: NfsStat3::Ok,
            dir_attr: Some(attr()),
            cookieverf: 7,
            entries: vec![
                Entry3 { fileid: 1, name: ".".into(), cookie: 1 },
                Entry3 { fileid: 2, name: "data.bin".into(), cookie: 2 },
            ],
            eof: true,
        };
        assert_eq!(ReaddirRes::from_xdr_bytes(&res.to_xdr_bytes()).unwrap(), res);
    }

    #[test]
    fn readdirplus_roundtrip() {
        let res = ReaddirPlusRes {
            status: NfsStat3::Ok,
            dir_attr: None,
            cookieverf: 0,
            entries: vec![EntryPlus3 {
                fileid: 9,
                name: "x".into(),
                cookie: 3,
                attr: Some(attr()),
                handle: Some(fh()),
            }],
            eof: false,
        };
        assert_eq!(ReaddirPlusRes::from_xdr_bytes(&res.to_xdr_bytes()).unwrap(), res);
    }

    #[test]
    fn fsinfo_pathconf_commit_roundtrip() {
        let fi = FsInfoRes {
            status: NfsStat3::Ok,
            attr: Some(attr()),
            rtmax: 32768,
            rtpref: 32768,
            wtmax: 32768,
            wtpref: 32768,
            dtpref: 8192,
            maxfilesize: u64::MAX / 2,
        };
        assert_eq!(FsInfoRes::from_xdr_bytes(&fi.to_xdr_bytes()).unwrap(), fi);

        let pc = PathConfRes { status: NfsStat3::Ok, attr: None, linkmax: 32000, name_max: 255 };
        assert_eq!(PathConfRes::from_xdr_bytes(&pc.to_xdr_bytes()).unwrap(), pc);

        let cr = CommitRes { status: NfsStat3::Ok, wcc: WccData::default(), verf: 3 };
        assert_eq!(CommitRes::from_xdr_bytes(&cr.to_xdr_bytes()).unwrap(), cr);
    }

    #[test]
    fn write_count_mismatch_rejected() {
        let wa = WriteArgs { file: fh(), offset: 0, stable: StableHow::Unstable, data: vec![1; 10] };
        let mut bytes = wa.to_xdr_bytes();
        // Corrupt the count field (it sits right after fh(20 bytes) + offset(8)).
        bytes[28] ^= 0x01;
        assert!(WriteArgs::from_xdr_bytes(&bytes).is_err());
    }
}
