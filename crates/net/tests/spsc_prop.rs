//! Property and model tests for the SPSC cross-shard handoff queue.
//!
//! The queue carries accepted sessions from the acceptor to their shard,
//! so its contract is absolute: FIFO order, no drop, no duplicate, under
//! every interleaving of push / pop / close. Three layers of evidence:
//!
//! 1. proptest over arbitrary operation scripts against a `VecDeque`
//!    model (single-threaded: checks the index arithmetic and the
//!    close/drain protocol);
//! 2. an exhaustive small-case interleaving explorer — every way to
//!    interleave the producer's and consumer's operation sequences is
//!    replayed against the model (loom-style coverage at operation
//!    granularity, with no extra dependency);
//! 3. randomized two-thread stress with yields, checking the received
//!    sequence is exactly `0..n`.

use proptest::prelude::*;
use sgfs_net::{spsc_channel, Popped};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32),
    Pop,
    Close,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Close is rolled in via value space: pushes and pops dominate, with
    // roughly one close opportunity per dozen operations.
    (any::<u32>(), 0u8..12).prop_map(|(v, k)| match k {
        0 => Op::Close,
        1..=6 => Op::Pop,
        _ => Op::Push(v),
    })
}

proptest! {
    /// Arbitrary scripts behave exactly like the obvious queue model.
    #[test]
    fn matches_queue_model(capacity in 1usize..9,
                           ops in proptest::collection::vec(op_strategy(), 0..64)) {
        let (tx, rx) = spsc_channel::<u32>(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut closed = false;
        for op in ops {
            match op {
                Op::Push(v) => {
                    let accepted = tx.push(v).is_ok();
                    let expect = !closed && model.len() < capacity;
                    prop_assert_eq!(accepted, expect, "push acceptance");
                    if accepted {
                        model.push_back(v);
                    }
                }
                Op::Pop => match rx.pop() {
                    Popped::Value(v) => {
                        prop_assert_eq!(Some(v), model.pop_front(), "FIFO order");
                    }
                    Popped::Empty => {
                        prop_assert!(model.is_empty() && !closed, "spurious Empty");
                    }
                    Popped::Closed => {
                        prop_assert!(model.is_empty() && closed, "spurious Closed");
                    }
                },
                Op::Close => {
                    tx.close();
                    closed = true;
                }
            }
        }
        // Whatever the script left queued must drain in order.
        while let Popped::Value(v) = rx.pop() {
            prop_assert_eq!(Some(v), model.pop_front(), "drain order");
        }
        prop_assert!(model.is_empty(), "no value stranded");
    }
}

/// Exhaustively explore every interleaving of a producer script and a
/// consumer script (operation-granular), verifying each against the
/// model. With `pushes` pushes + close on one side and `pops` pops on
/// the other this is C(pushes+1+pops, pops) interleavings — small cases
/// cover every reachable head/tail/closed configuration of the ring.
fn explore(capacity: usize, pushes: u32, pops: usize) {
    #[derive(Clone, Copy)]
    enum Side {
        Producer,
        Consumer,
    }
    fn interleavings(p_left: usize, c_left: usize, prefix: &mut Vec<Side>, out: &mut Vec<Vec<Side>>) {
        if p_left == 0 && c_left == 0 {
            out.push(prefix.clone());
            return;
        }
        if p_left > 0 {
            prefix.push(Side::Producer);
            interleavings(p_left - 1, c_left, prefix, out);
            prefix.pop();
        }
        if c_left > 0 {
            prefix.push(Side::Consumer);
            interleavings(p_left, c_left - 1, prefix, out);
            prefix.pop();
        }
    }

    let mut all = Vec::new();
    // Producer script: push 0..pushes then close.
    interleavings(pushes as usize + 1, pops, &mut Vec::new(), &mut all);
    for schedule in &all {
        let (tx, rx) = spsc_channel::<u32>(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut closed = false;
        let mut next_push = 0u32;
        for side in schedule {
            match side {
                Side::Producer => {
                    if next_push < pushes {
                        let ok = tx.push(next_push).is_ok();
                        assert_eq!(ok, model.len() < capacity, "push acceptance");
                        if ok {
                            model.push_back(next_push);
                        }
                        // A rejected push is retried by real producers;
                        // the model retries it at the next slot too.
                        if ok {
                            next_push += 1;
                        }
                    } else {
                        tx.close();
                        closed = true;
                    }
                }
                Side::Consumer => match rx.pop() {
                    Popped::Value(v) => assert_eq!(Some(v), model.pop_front(), "FIFO"),
                    Popped::Empty => assert!(model.is_empty() && !closed, "spurious Empty"),
                    Popped::Closed => assert!(model.is_empty() && closed, "spurious Closed"),
                },
            }
        }
        while let Popped::Value(v) = rx.pop() {
            assert_eq!(Some(v), model.pop_front(), "drain");
        }
        assert!(model.is_empty(), "value stranded");
    }
}

#[test]
fn exhaustive_small_interleavings() {
    // Ring pressure (capacity 1/2), wraparound (pushes > capacity), and
    // close-vs-pop races are all inside these bounds.
    for capacity in 1..=3 {
        for pushes in 0..=4 {
            for pops in 0..=4 {
                explore(capacity, pushes, pops);
            }
        }
    }
}

#[test]
fn two_thread_stress_no_drop_no_dup() {
    for trial in 0..8 {
        let n: u64 = 20_000 + trial * 1_000;
        let (tx, rx) = spsc_channel::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            // Sender drop closes the queue.
        });
        let mut got = 0u64;
        loop {
            match rx.pop() {
                Popped::Value(v) => {
                    assert_eq!(v, got, "FIFO across threads");
                    got += 1;
                }
                Popped::Empty => std::thread::yield_now(),
                Popped::Closed => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(got, n, "every session handed off exactly once");
    }
}
