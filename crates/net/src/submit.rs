//! The wake-aware submission ring the client I/O pool drains.
//!
//! A bounded multi-producer/single-consumer command queue with the same
//! readiness contract as [`crate::pipe::PipeWatch`]: the consumer
//! registers a [`Readiness`] handle and every push (and the final close)
//! notifies it, so a pipeline's command stream and its upstream socket
//! can both wake the same event-loop token.
//!
//! Unlike an mpsc channel, the ring's storage is a fixed-capacity
//! `VecDeque` allocated once at construction: steady-state submission
//! pushes and pops never allocate. Producers block while the ring is
//! full (callers are application threads with nothing better to do than
//! exert backpressure); the consumer never blocks — `pop` returns
//! [`Popped::Empty`] and the event loop goes back to sleep until the
//! watcher fires.
//!
//! Close semantics mirror the pipe: dropping the last sender closes the
//! ring (consumer sees [`Popped::Closed`] once drained, watcher fires);
//! dropping the receiver fails all further pushes with the value handed
//! back, so producers can surface "pipeline terminated" errors.

use crate::poll::Readiness;
use crate::spsc::Popped;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

struct RingState<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    rx_alive: bool,
}

struct RingShared<T> {
    state: Mutex<RingState<T>>,
    /// Producers blocked on a full ring wait here.
    space: Condvar,
    /// Notified (outside the state lock) on every push and on close.
    watcher: Mutex<Option<Readiness>>,
}

impl<T> RingShared<T> {
    fn notify_watcher(&self) {
        if let Some(r) = self.watcher.lock().as_ref() {
            r.notify();
        }
    }
}

/// Create a submission ring holding at most `capacity` queued items.
pub fn submit_ring<T>(capacity: usize) -> (SubmitSender<T>, SubmitReceiver<T>) {
    assert!(capacity > 0, "submission ring needs capacity >= 1");
    let shared = Arc::new(RingShared {
        state: Mutex::new(RingState {
            queue: VecDeque::with_capacity(capacity),
            cap: capacity,
            senders: 1,
            rx_alive: true,
        }),
        space: Condvar::new(),
        watcher: Mutex::new(None),
    });
    (SubmitSender { shared: shared.clone() }, SubmitReceiver { shared })
}

/// The producer half; clone freely — the ring closes when the last
/// clone drops.
pub struct SubmitSender<T> {
    shared: Arc<RingShared<T>>,
}

impl<T> SubmitSender<T> {
    /// Enqueue `value`, blocking while the ring is full. Returns the
    /// value back if the receiver is gone.
    pub fn push(&self, value: T) -> Result<(), T> {
        {
            let mut st = self.shared.state.lock();
            loop {
                if !st.rx_alive {
                    return Err(value);
                }
                if st.queue.len() < st.cap {
                    break;
                }
                self.shared.space.wait(&mut st);
            }
            st.queue.push_back(value);
        }
        self.shared.notify_watcher();
        Ok(())
    }
}

impl<T> Clone for SubmitSender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Self { shared: self.shared.clone() }
    }
}

impl<T> Drop for SubmitSender<T> {
    fn drop(&mut self) {
        let last = {
            let mut st = self.shared.state.lock();
            st.senders -= 1;
            st.senders == 0
        };
        if last {
            self.shared.notify_watcher();
        }
    }
}

/// The consumer half (the event loop). Never blocks.
pub struct SubmitReceiver<T> {
    shared: Arc<RingShared<T>>,
}

impl<T> SubmitReceiver<T> {
    /// Dequeue the next submission without blocking. `Closed` is
    /// returned only once the ring is both empty and sender-less, so no
    /// submission is ever lost to a racing close.
    pub fn pop(&self) -> Popped<T> {
        let popped = {
            let mut st = self.shared.state.lock();
            match st.queue.pop_front() {
                Some(v) => Popped::Value(v),
                None if st.senders == 0 => return Popped::Closed,
                None => return Popped::Empty,
            }
        };
        // A producer may be blocked on the slot we just freed.
        self.shared.space.notify_one();
        popped
    }

    /// Queued submissions awaiting `pop`.
    pub fn has_input(&self) -> bool {
        !self.shared.state.lock().queue.is_empty()
    }

    /// True once every sender has dropped (queued items may remain).
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().senders == 0
    }

    /// Install `readiness` as the ring's watcher (replacing any prior
    /// one). Fires immediately if submissions are already queued or the
    /// ring is already closed, so registration cannot race a push.
    pub fn register(&self, readiness: Readiness) {
        let fire = {
            let st = self.shared.state.lock();
            !st.queue.is_empty() || st.senders == 0
        };
        *self.shared.watcher.lock() = Some(readiness);
        if fire {
            self.shared.notify_watcher();
        }
    }
}

impl<T> Drop for SubmitReceiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock();
        st.rx_alive = false;
        st.queue.clear();
        self.shared.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::Poller;
    use std::time::Duration;

    #[test]
    fn push_pop_fifo() {
        let (tx, rx) = submit_ring(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert!(matches!(rx.pop(), Popped::Value(1)));
        assert!(matches!(rx.pop(), Popped::Value(2)));
        assert!(matches!(rx.pop(), Popped::Empty));
    }

    #[test]
    fn full_ring_blocks_until_pop() {
        let (tx, rx) = submit_ring(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.push(3).unwrap(); // blocks until the main thread pops
            tx
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(rx.pop(), Popped::Value(1)));
        let tx = t.join().unwrap();
        assert!(matches!(rx.pop(), Popped::Value(2)));
        assert!(matches!(rx.pop(), Popped::Value(3)));
        drop(tx);
        assert!(matches!(rx.pop(), Popped::Closed));
    }

    #[test]
    fn close_drains_before_reporting_closed() {
        let (tx, rx) = submit_ring(4);
        tx.push(7).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert!(matches!(rx.pop(), Popped::Value(7)));
        assert!(matches!(rx.pop(), Popped::Closed));
    }

    #[test]
    fn receiver_drop_fails_push_with_value() {
        let (tx, rx) = submit_ring(4);
        drop(rx);
        assert_eq!(tx.push(42), Err(42));
    }

    #[test]
    fn receiver_drop_unblocks_full_producer() {
        let (tx, rx) = submit_ring(1);
        tx.push(1).unwrap();
        let t = std::thread::spawn(move || tx.push(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(2));
    }

    #[test]
    fn watcher_fires_on_push_and_close() {
        let (tx, rx) = submit_ring(4);
        let p = Poller::new();
        rx.register(p.readiness(5));
        let mut out = Vec::new();
        assert_eq!(p.wait(Some(Duration::from_millis(5)), &mut out), 0, "idle ring is quiet");
        tx.push(1).unwrap();
        assert_eq!(p.wait(Some(Duration::from_millis(100)), &mut out), 1);
        assert_eq!(out, [5]);
        drop(tx);
        assert_eq!(p.wait(Some(Duration::from_millis(100)), &mut out), 1, "close wakes watcher");
    }

    #[test]
    fn register_fires_immediately_when_data_pending() {
        let (tx, rx) = submit_ring(4);
        tx.push(1).unwrap();
        let p = Poller::new();
        rx.register(p.readiness(3));
        let mut out = Vec::new();
        assert_eq!(p.wait(Some(Duration::from_millis(100)), &mut out), 1);
        assert_eq!(out, [3]);
    }

    #[test]
    fn register_fires_immediately_when_already_closed() {
        let (tx, rx) = submit_ring::<u32>(4);
        drop(tx);
        let p = Poller::new();
        rx.register(p.readiness(8));
        let mut out = Vec::new();
        assert_eq!(p.wait(Some(Duration::from_millis(100)), &mut out), 1);
    }

    #[test]
    fn steady_state_capacity_is_stable() {
        let (tx, rx) = submit_ring(8);
        for round in 0..1000 {
            for i in 0..8 {
                tx.push(round * 8 + i).unwrap();
            }
            for i in 0..8 {
                match rx.pop() {
                    Popped::Value(v) => assert_eq!(v, round * 8 + i),
                    _ => panic!("ring should hold the full batch"),
                }
            }
        }
    }
}
