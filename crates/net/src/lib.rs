//! Transports and network emulation for the SGFS stack.
//!
//! The paper's testbed is two VMware hosts joined by a NIST Net router that
//! injects wide-area latencies. This crate reproduces that setup in-process:
//!
//! * [`SimClock`] — a hybrid clock: real elapsed time plus a virtual offset.
//!   CPU work (crypto, XDR, caching) runs and is measured for real; the
//!   emulated WAN link adds its latency to the virtual offset instead of
//!   sleeping, so an 80 ms-RTT PostMark run completes in seconds while
//!   reporting faithful wide-area timings. A real-sleep mode exists for
//!   integration tests that want actual delays.
//! * [`pipe::pipe_pair`] — an in-memory duplex byte stream standing in for
//!   a TCP connection between the client and server hosts.
//! * [`link::Link`] — the NIST Net analog: per-direction latency and
//!   bandwidth, applied by stamping each message with its arrival time and
//!   gating the receiver on the shared clock.
//! * [`Stream`] — the object-safe byte-stream trait every layer above
//!   (record marking, GTLS, tunnels) is written against, so real
//!   `TcpStream`s can be substituted for the in-memory pipes.
//! * [`poll::Poller`] — readiness notification over the pipe transports:
//!   the sharded server's event loops sleep here instead of in one
//!   blocking read per connection.
//! * [`spsc::SpscQueue`] — the lock-free single-producer/single-consumer
//!   ring the acceptor uses to hand accepted sessions to their shard.

pub mod clock;
pub mod crash;
pub mod fault;
pub mod link;
pub mod pipe;
pub mod poll;
pub mod spsc;
pub mod submit;

pub use clock::{ClockMode, LogicalClock, SimClock};
pub use crash::{CrashInjector, CrashPoint, ALL_CRASH_POINTS};
pub use fault::{FaultInjector, FaultPlan, FaultStream};
pub use link::{Link, LinkSpec};
pub use pipe::{pipe_pair, pipe_pair_over_link, PipeEnd, PipeReader, PipeWatch, PipeWriter};
pub use poll::{Poller, Readiness, Token};
pub use spsc::{spsc_channel, Popped, SpscReceiver, SpscSender};
pub use submit::{submit_ring, SubmitReceiver, SubmitSender};

use std::io::{Read, Write};

/// A blocking, bidirectional byte stream.
///
/// Implemented by [`PipeEnd`] and by `std::net::TcpStream`; all protocol
/// layers are generic over this, mirroring how the paper's TI-RPC library
/// is transport independent.
pub trait Stream: Read + Write + Send {}

impl<T: Read + Write + Send + ?Sized> Stream for T {}

/// A boxed stream, used where layers are stacked dynamically
/// (plain pipe vs GTLS vs SSH-tunnel analog).
pub type BoxStream = Box<dyn Stream>;
