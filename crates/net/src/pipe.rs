//! In-memory duplex byte streams, optionally routed over an emulated link.

use crate::clock::SimClock;
use crate::link::Link;
use crate::poll::Readiness;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// A chunk in flight, stamped with its emulated arrival time.
struct Msg {
    arrive_at: Duration,
    data: Vec<u8>,
}

/// One direction of the pipe: a bounded-by-courtesy queue plus EOF flag.
struct Channel {
    state: Mutex<ChannelState>,
    cond: Condvar,
    /// Readiness handle of a registered poller, notified on every push
    /// and close (the shard event loops watch receive channels this way).
    watcher: Mutex<Option<Readiness>>,
}

#[derive(Default)]
struct ChannelState {
    queue: VecDeque<Msg>,
    /// Payload bytes currently queued (maintained on push/pop so the
    /// admission layer can sample a session's wire backlog in O(1)).
    queued_bytes: usize,
    closed: bool,
}

impl Channel {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(ChannelState::default()),
            cond: Condvar::new(),
            watcher: Mutex::new(None),
        })
    }

    fn push(&self, msg: Msg) -> io::Result<()> {
        {
            let mut st = self.state.lock();
            if st.closed {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
            }
            st.queued_bytes += msg.data.len();
            st.queue.push_back(msg);
            self.cond.notify_one();
        }
        self.notify_watcher();
        Ok(())
    }

    /// Blocking pop; `None` at EOF.
    fn pop(&self) -> Option<Msg> {
        let mut st = self.state.lock();
        loop {
            if let Some(m) = st.queue.pop_front() {
                st.queued_bytes -= m.data.len();
                return Some(m);
            }
            if st.closed {
                return None;
            }
            self.cond.wait(&mut st);
        }
    }

    fn close(&self) {
        {
            let mut st = self.state.lock();
            st.closed = true;
            self.cond.notify_all();
        }
        self.notify_watcher();
    }

    /// Wake a registered poller, outside the state lock (the poller has
    /// its own lock; never hold both).
    fn notify_watcher(&self) {
        if let Some(w) = self.watcher.lock().as_ref() {
            w.notify();
        }
    }
}

/// A poll-side view of one pipe endpoint's *receive* channel.
///
/// Taken from the raw [`PipeEnd`] **before** the endpoint is wrapped in
/// higher layers (fault injectors, GTLS), so readiness always reflects
/// the wire itself: arrivals and EOF fire regardless of what the wrapping
/// stack does with the bytes. Writers always emit whole records in single
/// pipe messages, so "the wire has input" is exactly "a record (or EOF)
/// is ready to pump".
#[derive(Clone)]
pub struct PipeWatch {
    channel: Arc<Channel>,
}

impl PipeWatch {
    /// Install `readiness` as this channel's watcher. If the channel
    /// already holds data or is already closed, the token fires
    /// immediately — registration cannot race an earlier arrival.
    pub fn register(&self, readiness: Readiness) {
        *self.channel.watcher.lock() = Some(readiness.clone());
        let fire = {
            let st = self.channel.state.lock();
            !st.queue.is_empty() || st.closed
        };
        if fire {
            readiness.notify();
        }
    }

    /// Is at least one unconsumed message queued?
    pub fn has_input(&self) -> bool {
        !self.channel.state.lock().queue.is_empty()
    }

    /// Has the sending side closed (EOF pending once drained)?
    pub fn is_closed(&self) -> bool {
        self.channel.state.lock().closed
    }

    /// Payload bytes currently queued and unconsumed on this channel.
    ///
    /// This is the receiver-side backlog the admission layer samples: a
    /// session that keeps submitting while its records sit unread shows
    /// up here, byte-accurate, without walking the queue.
    pub fn queued_bytes(&self) -> usize {
        self.channel.state.lock().queued_bytes
    }

    /// Unconsumed whole messages (records) queued on this channel.
    pub fn queued_msgs(&self) -> usize {
        self.channel.state.lock().queue.len()
    }
}

/// One endpoint of an in-memory duplex pipe.
///
/// Implements `Read`/`Write`; reads block until data or EOF. When built
/// over a [`Link`], each written chunk is stamped with its arrival time and
/// the reader fast-forwards (or sleeps, in real-sleep mode) the shared
/// clock to that time before consuming it.
pub struct PipeEnd {
    incoming: Arc<Channel>,
    outgoing: Arc<Channel>,
    /// Link this endpoint transmits over, with its direction index.
    link: Option<(Arc<Link>, usize)>,
    clock: Option<Arc<SimClock>>,
    /// Partially consumed incoming message.
    readbuf: Vec<u8>,
    readpos: usize,
}

/// Create a connected pair of pipe endpoints with no link emulation
/// (an ideal local transport, e.g. proxy ↔ kernel server on one host).
pub fn pipe_pair() -> (PipeEnd, PipeEnd) {
    build_pair(None)
}

/// Create a connected pair routed across an emulated WAN link.
///
/// The first endpoint is the "client host" side (transmits in direction 0),
/// the second the "server host" side (direction 1).
pub fn pipe_pair_over_link(link: Arc<Link>) -> (PipeEnd, PipeEnd) {
    build_pair(Some(link))
}

fn build_pair(link: Option<Arc<Link>>) -> (PipeEnd, PipeEnd) {
    let a_to_b = Channel::new();
    let b_to_a = Channel::new();
    let clock = link.as_ref().map(|l| l.clock().clone());
    let a = PipeEnd {
        incoming: b_to_a.clone(),
        outgoing: a_to_b.clone(),
        link: link.as_ref().map(|l| (l.clone(), 0)),
        clock: clock.clone(),
        readbuf: Vec::new(),
        readpos: 0,
    };
    let b = PipeEnd {
        incoming: a_to_b,
        outgoing: b_to_a,
        link: link.map(|l| (l, 1)),
        clock,
        readbuf: Vec::new(),
        readpos: 0,
    };
    (a, b)
}

/// The read half of a split [`PipeEnd`].
pub struct PipeReader {
    incoming: Arc<Channel>,
    clock: Option<Arc<SimClock>>,
    readbuf: Vec<u8>,
    readpos: usize,
}

/// The write half of a split [`PipeEnd`].
pub struct PipeWriter {
    outgoing: Arc<Channel>,
    link: Option<(Arc<Link>, usize)>,
}

impl PipeEnd {
    /// A poll-side watch on this endpoint's receive channel. Take it
    /// before boxing/wrapping the endpoint; it stays valid (and keeps
    /// firing) through any wrapping stack.
    pub fn watch(&self) -> PipeWatch {
        PipeWatch { channel: self.incoming.clone() }
    }

    /// Split into independently owned read and write halves, so one
    /// thread can block reading while another writes (the tunnel
    /// forwarders need this).
    pub fn split(self) -> (PipeReader, PipeWriter) {
        let this = std::mem::ManuallyDrop::new(self);
        // Safety: `this` is never dropped; each field is moved out
        // exactly once.
        unsafe {
            let incoming = std::ptr::read(&this.incoming);
            let outgoing = std::ptr::read(&this.outgoing);
            let link = std::ptr::read(&this.link);
            let clock = std::ptr::read(&this.clock);
            let readbuf = std::ptr::read(&this.readbuf);
            let readpos = this.readpos;
            (
                PipeReader { incoming, clock, readbuf, readpos },
                PipeWriter { outgoing, link },
            )
        }
    }
}

impl PipeReader {
    /// A poll-side watch on this half's receive channel.
    pub fn watch(&self) -> PipeWatch {
        PipeWatch { channel: self.incoming.clone() }
    }
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.readpos == self.readbuf.len() {
            match self.incoming.pop() {
                Some(msg) => {
                    if let Some(clock) = &self.clock {
                        clock.wait_until(msg.arrive_at);
                    }
                    self.readbuf = msg.data;
                    self.readpos = 0;
                }
                None => return Ok(0),
            }
        }
        let n = buf.len().min(self.readbuf.len() - self.readpos);
        buf[..n].copy_from_slice(&self.readbuf[self.readpos..self.readpos + n]);
        self.readpos += n;
        Ok(n)
    }
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let arrive_at = match &self.link {
            Some((link, dir)) => link.stamp_send(*dir, buf.len()),
            None => Duration::ZERO,
        };
        self.outgoing.push(Msg { arrive_at, data: buf.to_vec() })?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        self.incoming.close();
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.outgoing.close();
    }
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.readpos == self.readbuf.len() {
            match self.incoming.pop() {
                Some(msg) => {
                    if let Some(clock) = &self.clock {
                        clock.wait_until(msg.arrive_at);
                    }
                    self.readbuf = msg.data;
                    self.readpos = 0;
                }
                None => return Ok(0), // EOF
            }
        }
        let n = buf.len().min(self.readbuf.len() - self.readpos);
        buf[..n].copy_from_slice(&self.readbuf[self.readpos..self.readpos + n]);
        self.readpos += n;
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let arrive_at = match &self.link {
            Some((link, dir)) => link.stamp_send(*dir, buf.len()),
            None => Duration::ZERO,
        };
        self.outgoing.push(Msg { arrive_at, data: buf.to_vec() })?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        self.outgoing.close();
        // Also wake any reader blocked on our incoming side so a dropped
        // peer is observed promptly.
        self.incoming.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use std::io::{Read, Write};

    #[test]
    fn write_then_read_roundtrip() {
        let (mut a, mut b) = pipe_pair();
        a.write_all(b"hello world").unwrap();
        let mut buf = [0u8; 11];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn reads_can_split_messages() {
        let (mut a, mut b) = pipe_pair();
        a.write_all(&[1, 2, 3, 4, 5, 6]).unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        let mut buf2 = [0u8; 2];
        b.read_exact(&mut buf2).unwrap();
        assert_eq!(buf2, [5, 6]);
    }

    #[test]
    fn reads_can_join_messages() {
        let (mut a, mut b) = pipe_pair();
        a.write_all(&[1, 2]).unwrap();
        a.write_all(&[3, 4]).unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn eof_on_peer_drop() {
        let (a, mut b) = pipe_pair();
        drop(a);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn write_to_closed_pipe_fails() {
        let (mut a, b) = pipe_pair();
        drop(b);
        assert!(a.write_all(b"x").is_err());
    }

    #[test]
    fn blocking_read_across_threads() {
        let (mut a, mut b) = pipe_pair();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(Duration::from_millis(20));
        a.write_all(b"async").unwrap();
        assert_eq!(&t.join().unwrap(), b"async");
    }

    #[test]
    fn watch_fires_on_push_and_close() {
        use crate::poll::Poller;
        let (mut a, b) = pipe_pair();
        let watch = b.watch();
        let poller = Poller::new();
        watch.register(poller.readiness(4));
        let mut out = Vec::new();
        assert_eq!(poller.wait(Some(Duration::from_millis(5)), &mut out), 0, "idle pipe");
        a.write_all(b"ping").unwrap();
        assert_eq!(poller.wait(None, &mut out), 1);
        assert_eq!(out, [4]);
        assert!(watch.has_input());
        drop(a);
        assert_eq!(poller.wait(None, &mut out), 1, "close wakes the watcher");
        assert!(watch.is_closed());
    }

    #[test]
    fn watch_registered_after_data_fires_immediately() {
        use crate::poll::Poller;
        let (mut a, b) = pipe_pair();
        a.write_all(b"early").unwrap();
        let poller = Poller::new();
        b.watch().register(poller.readiness(0));
        let mut out = Vec::new();
        assert_eq!(poller.wait(Some(Duration::from_millis(50)), &mut out), 1);
    }

    #[test]
    fn link_charges_virtual_latency() {
        let clock = SimClock::new();
        let link = Link::new(LinkSpec::wan_rtt(Duration::from_millis(40)), clock.clone());
        let (mut a, mut b) = pipe_pair_over_link(link);
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        // One-way latency charged to the shared virtual clock.
        assert!(clock.now() >= Duration::from_millis(20));
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert!(clock.now() >= Duration::from_millis(40), "full RTT after reply");
    }

    #[test]
    fn round_trips_accumulate_rtt() {
        let clock = SimClock::new();
        let link = Link::new(LinkSpec::wan_rtt(Duration::from_millis(10)), clock.clone());
        let (mut a, mut b) = pipe_pair_over_link(link);
        let server = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            for _ in 0..50 {
                b.read_exact(&mut buf).unwrap();
                b.write_all(&buf).unwrap();
            }
        });
        let mut buf = [0u8; 1];
        for i in 0..50u8 {
            a.write_all(&[i]).unwrap();
            a.read_exact(&mut buf).unwrap();
            assert_eq!(buf[0], i);
        }
        server.join().unwrap();
        // 50 sequential round trips at 10ms RTT = 500ms of simulated time
        // (real CPU time substitutes for part of the virtual offset).
        assert!(clock.now() >= Duration::from_millis(500));
        assert!(clock.now() < Duration::from_millis(600));
    }
}
