//! Deterministic fault injection under any [`Stream`].
//!
//! The paper's sessions are expected to outlive transient WAN failures,
//! so the recovery paths above this crate (pipeline reconnect, idempotent
//! replay, write-back re-flush) need a transport that fails *on demand*
//! and *reproducibly*. A [`FaultStream`] wraps any byte stream and
//! executes one [`FaultPlan`]: cut the read side mid-record, error the
//! write side after N bytes, flip a byte in flight, cap write sizes, or
//! stall a read — all positions drawn from a seeded generator so a failing
//! schedule replays exactly.
//!
//! Once a terminal fault (cut or write error) fires, the stream is dead:
//! the inner transport is dropped (so the peer observes EOF, like a real
//! TCP reset tearing down both directions) and every later operation
//! fails. Recovery therefore must go through a fresh connection, which is
//! exactly the path the pipeline's `Reconnector` exercises.
//!
//! A shared [`FaultInjector`] hands out plans (and connect refusals)
//! across the successive connections of one session, with a bounded fault
//! budget: once spent, further connections are clean, so a recovering
//! stack is guaranteed to converge.

use crate::{BoxStream, Stream};
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One connection's fault schedule. `None` everywhere = clean stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Inject EOF after this many bytes have been read (mid-record cut).
    pub cut_read_after: Option<u64>,
    /// Fail writes after this many bytes have been written.
    pub cut_write_after: Option<u64>,
    /// XOR `0x55` into the byte at this read offset (corruption).
    pub corrupt_read_at: Option<u64>,
    /// Deliver at most this many bytes per `write` call (partial writes).
    pub partial_write_cap: Option<usize>,
    /// Stall the read that crosses this offset by the given duration
    /// (latency spike).
    pub delay_read_at: Option<(u64, Duration)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Whether this plan injects any fault at all.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// A [`Stream`] executing one [`FaultPlan`] over an inner transport.
pub struct FaultStream {
    /// Dropped (closing the peer's view too) once a terminal fault fires.
    inner: Option<BoxStream>,
    plan: FaultPlan,
    read_pos: u64,
    write_pos: u64,
    delayed: bool,
}

impl FaultStream {
    /// Wrap `inner`, executing `plan`.
    pub fn new(inner: BoxStream, plan: FaultPlan) -> Self {
        Self { inner: Some(inner), plan, read_pos: 0, write_pos: 0, delayed: false }
    }

    /// Terminal fault: drop the transport so both directions die.
    fn die(&mut self) {
        self.inner = None;
    }

    /// Whether a terminal fault has fired.
    pub fn is_dead(&self) -> bool {
        self.inner.is_none()
    }
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(inner) = self.inner.as_mut() else { return Ok(0) };
        if buf.is_empty() {
            return Ok(0);
        }
        let mut limit = buf.len() as u64;
        if let Some(cut) = self.plan.cut_read_after {
            let remaining = cut.saturating_sub(self.read_pos);
            if remaining == 0 {
                self.die();
                return Ok(0);
            }
            limit = limit.min(remaining);
        }
        if let Some((at, dur)) = self.plan.delay_read_at {
            if !self.delayed && at >= self.read_pos && at < self.read_pos + limit {
                self.delayed = true;
                std::thread::sleep(dur);
            }
        }
        let n = inner.read(&mut buf[..limit as usize])?;
        if let Some(at) = self.plan.corrupt_read_at {
            if at >= self.read_pos && at < self.read_pos + n as u64 {
                buf[(at - self.read_pos) as usize] ^= 0x55;
            }
        }
        self.read_pos += n as u64;
        Ok(n)
    }
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(inner) = self.inner.as_mut() else {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected fault killed stream"));
        };
        if buf.is_empty() {
            return Ok(0);
        }
        let mut limit = buf.len();
        if let Some(cut) = self.plan.cut_write_after {
            let remaining = cut.saturating_sub(self.write_pos);
            if remaining == 0 {
                self.die();
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected write fault (connection cut)",
                ));
            }
            limit = limit.min(remaining as usize);
        }
        if let Some(cap) = self.plan.partial_write_cap {
            limit = limit.min(cap.max(1));
        }
        let n = inner.write(&buf[..limit])?;
        self.write_pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.inner.as_mut() {
            Some(inner) => inner.flush(),
            None => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected fault killed stream",
            )),
        }
    }
}

struct InjectorState {
    rng: u64,
    budget: u32,
    injected: u32,
    refusals: u32,
}

/// Hands out fault plans (and connect refusals) across the successive
/// connections of one session, deterministically from a seed, with a
/// bounded total fault budget so recovery always converges.
pub struct FaultInjector {
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// An injector drawing up to `budget` faults from `seed`.
    pub fn new(seed: u64, budget: u32) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(InjectorState { rng: seed, budget, injected: 0, refusals: 0 }),
        })
    }

    /// SplitMix64 step (matches the deterministic generators used by the
    /// test suites, so schedules replay from the seed alone).
    fn next(state: &mut InjectorState) -> u64 {
        state.rng = state.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draw the next connection's plan; clean once the budget is spent.
    pub fn next_plan(&self) -> FaultPlan {
        let mut s = self.state.lock().expect("injector poisoned");
        if s.injected >= s.budget {
            return FaultPlan::clean();
        }
        s.injected += 1;
        let kind = Self::next(&mut s) % 4;
        let pos = 1 + Self::next(&mut s) % 2048;
        match kind {
            0 => FaultPlan { cut_read_after: Some(pos), ..FaultPlan::clean() },
            1 => FaultPlan {
                cut_write_after: Some(pos),
                partial_write_cap: Some(1 + (pos % 16) as usize),
                ..FaultPlan::clean()
            },
            2 => FaultPlan { corrupt_read_at: Some(pos), ..FaultPlan::clean() },
            _ => FaultPlan {
                delay_read_at: Some((pos, Duration::from_millis(1 + pos % 5))),
                ..FaultPlan::clean()
            },
        }
    }

    /// Wrap a fresh connection in the next drawn plan.
    pub fn wrap(&self, inner: BoxStream) -> BoxStream {
        Box::new(FaultStream::new(inner, self.next_plan()))
    }

    /// Whether the next dial attempt should be refused outright
    /// (`ConnectionRefused` for N attempts). Consumes budget when it
    /// refuses, so refusal streaks are bounded.
    pub fn refuse_connect(&self) -> bool {
        let mut s = self.state.lock().expect("injector poisoned");
        if s.injected >= s.budget {
            return false;
        }
        let refuse = Self::next(&mut s).is_multiple_of(3);
        if refuse {
            s.injected += 1;
            s.refusals += 1;
        }
        refuse
    }

    /// Faults handed out so far (including refusals).
    pub fn injected(&self) -> u32 {
        self.state.lock().expect("injector poisoned").injected
    }

    /// Connect refusals handed out so far.
    pub fn refusals(&self) -> u32 {
        self.state.lock().expect("injector poisoned").refusals
    }
}

// FaultStream is Read + Write + Send, so the blanket impl makes it a Stream;
// this assertion keeps that true as the trait evolves.
const _: fn() = || {
    fn assert_stream<T: Stream>() {}
    assert_stream::<FaultStream>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe_pair;

    #[test]
    fn clean_plan_passes_bytes_through() {
        let (a, b) = pipe_pair();
        let mut f = FaultStream::new(Box::new(a), FaultPlan::clean());
        let mut peer = b;
        f.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        peer.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn read_cut_injects_eof_and_kills_stream() {
        let (a, mut b) = pipe_pair();
        let plan = FaultPlan { cut_read_after: Some(3), ..FaultPlan::clean() };
        let mut f = FaultStream::new(Box::new(a), plan);
        b.write_all(b"abcdef").unwrap();
        let mut buf = [0u8; 16];
        let n = f.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"abc", "read truncated at the cut");
        assert_eq!(f.read(&mut buf).unwrap(), 0, "EOF after the cut");
        assert!(f.is_dead());
        // The peer sees the teardown too (inner dropped).
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn write_cut_errors_and_kills_stream() {
        let (a, _b) = pipe_pair();
        let plan = FaultPlan { cut_write_after: Some(4), ..FaultPlan::clean() };
        let mut f = FaultStream::new(Box::new(a), plan);
        assert_eq!(f.write(b"abcdef").unwrap(), 4, "write capped at the cut");
        let err = f.write(b"gh").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(f.is_dead());
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let (a, mut b) = pipe_pair();
        let plan = FaultPlan { corrupt_read_at: Some(2), ..FaultPlan::clean() };
        let mut f = FaultStream::new(Box::new(a), plan);
        b.write_all(&[0u8; 6]).unwrap();
        let mut buf = [0u8; 6];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0x55, 0, 0, 0]);
    }

    #[test]
    fn partial_write_cap_still_delivers_everything_via_write_all() {
        let (a, mut b) = pipe_pair();
        let plan = FaultPlan { partial_write_cap: Some(2), ..FaultPlan::clean() };
        let mut f = FaultStream::new(Box::new(a), plan);
        assert_eq!(f.write(b"abcdef").unwrap(), 2, "single write is capped");
        f.write_all(b"cdef").unwrap();
        let mut buf = [0u8; 6];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn injector_is_deterministic_and_budget_bounded() {
        let a = FaultInjector::new(42, 3);
        let b = FaultInjector::new(42, 3);
        let plans_a: Vec<FaultPlan> = (0..5).map(|_| a.next_plan()).collect();
        let plans_b: Vec<FaultPlan> = (0..5).map(|_| b.next_plan()).collect();
        assert_eq!(plans_a, plans_b, "same seed, same schedule");
        assert!(plans_a[..3].iter().all(|p| !p.is_clean()), "budget worth of faults");
        assert!(plans_a[3..].iter().all(|p| p.is_clean()), "clean once spent");
        assert_eq!(a.injected(), 3);
        assert!(!a.refuse_connect(), "no refusals after the budget is spent");
    }
}
