//! The hybrid real+virtual clock used to time all experiments.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How [`SimClock::advance`] realizes delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Add the delay to a virtual offset — experiments finish fast while
    /// reporting wide-area timings. The default for benchmarks.
    Virtual,
    /// Actually sleep — used by integration tests that verify the emulated
    /// link produces real wall-clock delays.
    RealSleep,
}

/// A monotonically increasing clock shared by every component of one
/// emulated testbed (client host, server host, and the WAN link).
///
/// `now()` is real elapsed time since construction *plus* all virtual time
/// added by the link emulation, so a benchmark's `clock.now()` difference
/// is exactly what a wall clock would have read on the paper's physical
/// testbed (CPU costs real, network latency emulated).
pub struct SimClock {
    origin: Instant,
    virtual_ns: AtomicU64,
    mode: ClockMode,
}

impl SimClock {
    /// New clock in [`ClockMode::Virtual`].
    pub fn new() -> Arc<Self> {
        Self::with_mode(ClockMode::Virtual)
    }

    /// New clock with an explicit mode.
    pub fn with_mode(mode: ClockMode) -> Arc<Self> {
        Arc::new(Self { origin: Instant::now(), virtual_ns: AtomicU64::new(0), mode })
    }

    /// Current simulated time since construction.
    pub fn now(&self) -> Duration {
        self.origin.elapsed() + Duration::from_nanos(self.virtual_ns.load(Ordering::Acquire))
    }

    /// Total virtual (network-emulated) time accumulated so far.
    pub fn virtual_time(&self) -> Duration {
        Duration::from_nanos(self.virtual_ns.load(Ordering::Acquire))
    }

    /// Advance the clock by `d` — the link emulation calls this for pure
    /// delays that cannot overlap with anything (e.g. sender-side charging
    /// over real TCP where no arrival stamp can ride the socket).
    pub fn advance(&self, d: Duration) {
        match self.mode {
            ClockMode::Virtual => {
                self.virtual_ns.fetch_add(d.as_nanos() as u64, Ordering::AcqRel);
            }
            ClockMode::RealSleep => std::thread::sleep(d),
        }
    }

    /// Block (or fast-forward) until `now() >= t`.
    ///
    /// This is the receiver-side arrival gate: messages are stamped with an
    /// arrival time at send; the receiver calls this before consuming them.
    /// Stamping-then-gating (rather than charging the sender) means
    /// back-to-back messages overlap their latencies exactly as they would
    /// on a real pipelined link.
    pub fn wait_until(&self, t: Duration) {
        match self.mode {
            ClockMode::Virtual => loop {
                let now = self.now();
                if now >= t {
                    return;
                }
                let need = (t - now).as_nanos() as u64;
                // Racing threads may each add; use CAS so total never
                // overshoots beyond what the latest observation required.
                let cur = self.virtual_ns.load(Ordering::Acquire);
                if self
                    .virtual_ns
                    .compare_exchange(cur, cur + need, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return;
                }
            },
            ClockMode::RealSleep => {
                let now = self.now();
                if t > now {
                    std::thread::sleep(t - now);
                }
            }
        }
    }

    /// The mode this clock was built with.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }
}

/// A deterministic logical clock: a strictly monotonic event counter
/// shared by every component that stamps trace events.
///
/// Unlike [`SimClock`], whose readings depend on real CPU speed, logical
/// ticks are handed out by one atomic increment and therefore totally
/// ordered across threads in a way that is reproducible for any workload
/// whose cross-thread communication is itself deterministic (the golden
/// trace tests rely on this: two runs of the same scripted workload
/// produce the same *relative* event order even if wall-clock timings
/// differ).
#[derive(Debug, Default)]
pub struct LogicalClock {
    next: AtomicU64,
}

impl LogicalClock {
    /// A fresh clock starting at tick 0.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Claim the next tick. Each call returns a unique, monotonically
    /// increasing value; the atomic read-modify-write gives all callers a
    /// single total order.
    pub fn tick(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Ticks handed out so far (the value the next `tick()` would return).
    pub fn current(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SimClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimClock")
            .field("now", &self.now())
            .field("virtual", &self.virtual_time())
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_advance_is_instant() {
        let clock = SimClock::new();
        let wall = Instant::now();
        clock.advance(Duration::from_secs(100));
        assert!(wall.elapsed() < Duration::from_secs(1));
        assert!(clock.now() >= Duration::from_secs(100));
        assert_eq!(clock.virtual_time(), Duration::from_secs(100));
    }

    #[test]
    fn wait_until_fast_forwards() {
        let clock = SimClock::new();
        clock.wait_until(Duration::from_millis(500));
        assert!(clock.now() >= Duration::from_millis(500));
        // Waiting for a past time is a no-op.
        let v = clock.virtual_time();
        clock.wait_until(Duration::from_millis(1));
        assert_eq!(clock.virtual_time(), v);
    }

    #[test]
    fn real_sleep_mode_sleeps() {
        let clock = SimClock::with_mode(ClockMode::RealSleep);
        let wall = Instant::now();
        clock.advance(Duration::from_millis(30));
        assert!(wall.elapsed() >= Duration::from_millis(30));
        assert_eq!(clock.virtual_time(), Duration::ZERO);
    }

    #[test]
    fn logical_clock_ticks_are_unique_and_monotonic() {
        let clock = LogicalClock::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = clock.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            let ticks = h.join().unwrap();
            // Per-thread ticks are strictly increasing.
            assert!(ticks.windows(2).all(|w| w[0] < w[1]));
            all.extend(ticks);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "ticks must be globally unique");
        assert_eq!(clock.current(), 4000);
    }

    #[test]
    fn concurrent_wait_until_converges() {
        let clock = SimClock::new();
        let c2 = clock.clone();
        let t = std::thread::spawn(move || {
            for i in 1..=100 {
                c2.wait_until(Duration::from_millis(i * 10));
            }
        });
        for i in 1..=100 {
            clock.wait_until(Duration::from_millis(i * 10));
        }
        t.join().unwrap();
        // Both threads waited for the same targets; virtual time should be
        // close to the max target (1s), not the sum (2s+).
        assert!(clock.virtual_time() <= Duration::from_millis(1100));
        assert!(clock.now() >= Duration::from_secs(1));
    }
}
