//! Deterministic kill-point injection for crash-consistency testing.
//!
//! The fault plane ([`FaultInjector`](crate::FaultInjector)) breaks the
//! *wire*; this module breaks the *process*. A [`CrashInjector`] arms one
//! [`CrashPoint`] — a named instant in the write-back cache's durability
//! protocol (spool write, journal append, fsync, compaction rename,
//! flush commit) — and when execution reaches that point for the N-th
//! time, every subsequent durability operation fails with a sentinel
//! error, freezing the on-disk state exactly as a killed process would
//! leave it. The driver observes the error, abandons the cache, and
//! "restarts" by recovering a fresh store from the same spool directory.
//!
//! Like the fault injector, schedules are drawn from a SplitMix64 seed so
//! a failing kill-point × schedule combination replays exactly.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Message prefix of every injected-crash error (see [`is_crash`]).
pub const CRASH_SENTINEL: &str = "injected crash";

/// Named instants in the durability protocol where a kill can be armed.
///
/// The points cover every ordering edge the recovery invariant depends
/// on: before/after the spool write, before/within/after the journal
/// append, around fsync and compaction, and around the flush COMMIT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before the block payload reaches the spool file.
    BeforeSpoolWrite,
    /// After the spool write, before the journal records it.
    AfterSpoolWrite,
    /// Before a journal record is appended.
    BeforeJournalAppend,
    /// Mid-append: only a seeded prefix of the record reaches the file
    /// (the torn-write case recovery must detect).
    TornJournalAppend,
    /// After the record is fully in the file, before any fsync.
    AfterJournalAppend,
    /// Before the journal fsync that would make appends durable.
    BeforeJournalFsync,
    /// While the compacted journal is being rewritten (tmp file partial).
    DuringCompaction,
    /// After the compacted file is written, before the rename commits it.
    BeforeCompactionRename,
    /// Mid-flush: blocks marked clean locally, COMMIT never sent.
    FlushBeforeCommit,
    /// After the server's COMMIT reply, before the journal learns of it.
    FlushAfterCommit,
}

/// Every kill point, for matrix iteration.
pub const ALL_CRASH_POINTS: [CrashPoint; 10] = [
    CrashPoint::BeforeSpoolWrite,
    CrashPoint::AfterSpoolWrite,
    CrashPoint::BeforeJournalAppend,
    CrashPoint::TornJournalAppend,
    CrashPoint::AfterJournalAppend,
    CrashPoint::BeforeJournalFsync,
    CrashPoint::DuringCompaction,
    CrashPoint::BeforeCompactionRename,
    CrashPoint::FlushBeforeCommit,
    CrashPoint::FlushAfterCommit,
];

/// Arms one kill point and trips every durability operation once hit.
pub struct CrashInjector {
    point: CrashPoint,
    /// Countdown of armed-point visits remaining before the trip.
    remaining: AtomicU32,
    tripped: AtomicBool,
    /// Seed material for torn-append prefix lengths.
    rng: AtomicU32,
}

impl CrashInjector {
    /// Arm `point` to fire on its `nth` visit (1 = first).
    pub fn at(point: CrashPoint, nth: u32) -> Arc<Self> {
        Arc::new(Self {
            point,
            remaining: AtomicU32::new(nth.max(1)),
            tripped: AtomicBool::new(false),
            rng: AtomicU32::new(0x9E37_79B9),
        })
    }

    /// Arm `point` with the visit count and tear positions drawn from
    /// `seed` (SplitMix64, like `FaultInjector`), so one seed defines one
    /// reproducible schedule.
    pub fn seeded(point: CrashPoint, seed: u64) -> Arc<Self> {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Arc::new(Self {
            point,
            remaining: AtomicU32::new(1 + (z % 4) as u32),
            tripped: AtomicBool::new(false),
            rng: AtomicU32::new((z >> 32) as u32 | 1),
        })
    }

    /// The armed kill point.
    pub fn point(&self) -> CrashPoint {
        self.point
    }

    fn crash_error(&self) -> io::Error {
        io::Error::other(format!("{CRASH_SENTINEL} at {:?}", self.point))
    }

    /// Execution reached `point`. Returns the sentinel error when this
    /// visit trips the kill (or the injector already tripped — a dead
    /// process performs no further I/O).
    pub fn hit(&self, point: CrashPoint) -> io::Result<()> {
        if self.tripped.load(Ordering::Acquire) {
            return Err(self.crash_error());
        }
        if point != self.point {
            return Ok(());
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.tripped.store(true, Ordering::Release);
            return Err(self.crash_error());
        }
        Ok(())
    }

    /// Torn-append variant of [`hit`](Self::hit): when the
    /// `TornJournalAppend` kill fires against a record of `len` bytes, the
    /// caller must write only the returned prefix length and then fail.
    /// `Ok(())` means write the whole record and continue.
    pub fn hit_torn(&self, len: usize) -> Result<(), (usize, io::Error)> {
        match self.hit(CrashPoint::TornJournalAppend) {
            Ok(()) => Ok(()),
            Err(e) => {
                // xorshift32 keeps successive tears (already-tripped
                // appends) deterministic too.
                let mut x = self.rng.load(Ordering::Relaxed);
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                self.rng.store(x, Ordering::Relaxed);
                Err(((x as usize) % len.max(1), e))
            }
        }
    }

    /// Whether the kill has fired (the "process" is dead).
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }
}

/// Whether `e` is an injected crash (as opposed to a genuine I/O error a
/// degraded cache should absorb).
pub fn is_crash(e: &io::Error) -> bool {
    e.to_string().contains(CRASH_SENTINEL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_nth_visit_then_stays_dead() {
        let inj = CrashInjector::at(CrashPoint::AfterJournalAppend, 3);
        assert!(inj.hit(CrashPoint::AfterJournalAppend).is_ok());
        assert!(inj.hit(CrashPoint::BeforeSpoolWrite).is_ok(), "other points pass");
        assert!(inj.hit(CrashPoint::AfterJournalAppend).is_ok());
        let err = inj.hit(CrashPoint::AfterJournalAppend).unwrap_err();
        assert!(is_crash(&err));
        assert!(inj.tripped());
        // Dead process: every later operation fails, any point.
        assert!(inj.hit(CrashPoint::BeforeSpoolWrite).is_err());
        assert!(inj.hit(CrashPoint::FlushAfterCommit).is_err());
    }

    #[test]
    fn seeded_schedules_replay() {
        let a = CrashInjector::seeded(CrashPoint::TornJournalAppend, 7);
        let b = CrashInjector::seeded(CrashPoint::TornJournalAppend, 7);
        let fire = |inj: &CrashInjector| loop {
            if let Err((prefix, _)) = inj.hit_torn(100) {
                return prefix;
            }
        };
        assert_eq!(fire(&a), fire(&b), "same seed, same tear position");
        assert!(fire(&a) < 100);
    }

    #[test]
    fn torn_prefix_is_shorter_than_record() {
        let inj = CrashInjector::at(CrashPoint::TornJournalAppend, 1);
        let (prefix, e) = inj.hit_torn(16).unwrap_err();
        assert!(prefix < 16);
        assert!(is_crash(&e));
    }
}
