//! Lock-free single-producer/single-consumer handoff queue.
//!
//! The sharded server pins every accepted session to one shard thread;
//! the acceptor pushes the established connection into that shard's
//! inbox and never touches it again. This queue is that inbox: a bounded
//! ring with one atomic word per side, wait-free on both ends, carrying
//! owned values (connection state machines) across exactly one
//! producer → consumer edge.
//!
//! Ordering contract (proven by `tests/spsc_prop.rs`): values pop in
//! push order, every pushed value pops exactly once, and closing the
//! queue lets the consumer drain what was already in flight.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A slot-granular SPSC ring of owned values.
///
/// Capacity is fixed at construction; `push` fails (returning the value)
/// when the ring is full or the queue is closed, so the producer can
/// apply backpressure or drop the session explicitly rather than block.
pub struct SpscQueue<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the producer fills. Only the producer writes this.
    head: AtomicUsize,
    /// Next slot the consumer drains. Only the consumer writes this.
    tail: AtomicUsize,
    closed: AtomicBool,
}

// Safety: `head`/`tail` partition the slots between the two sides — the
// producer only writes slots in `[head, tail + capacity)` and publishes
// them with a release store of `head`; the consumer only reads slots in
// `[tail, head)` after an acquire load of `head`. A slot is therefore
// never accessed by both sides at once, so `T: Send` suffices.
unsafe impl<T: Send> Sync for SpscQueue<T> {}
unsafe impl<T: Send> Send for SpscQueue<T> {}

/// Producer handle: the only side allowed to push.
pub struct SpscSender<T> {
    queue: Arc<SpscQueue<T>>,
}

/// Consumer handle: the only side allowed to pop.
pub struct SpscReceiver<T> {
    queue: Arc<SpscQueue<T>>,
}

/// Build a connected sender/receiver pair over a ring of `capacity` slots.
pub fn spsc_channel<T>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    assert!(capacity > 0, "SPSC ring needs at least one slot");
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let queue = Arc::new(SpscQueue {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (SpscSender { queue: queue.clone() }, SpscReceiver { queue })
}

impl<T> SpscSender<T> {
    /// Push `value`, or hand it back if the ring is full or closed.
    pub fn push(&self, value: T) -> Result<(), T> {
        let q = &self.queue;
        if q.closed.load(Ordering::Acquire) {
            return Err(value);
        }
        let head = q.head.load(Ordering::Relaxed);
        let tail = q.tail.load(Ordering::Acquire);
        if head - tail == q.slots.len() {
            return Err(value);
        }
        let slot = &q.slots[head % q.slots.len()];
        // Safety: this slot is outside [tail, head), so the consumer
        // cannot be reading it; we are the only producer.
        unsafe { (*slot.get()).write(value) };
        q.head.store(head + 1, Ordering::Release);
        Ok(())
    }

    /// Mark the queue closed; queued values stay poppable.
    pub fn close(&self) {
        self.queue.closed.store(true, Ordering::Release);
    }

    /// Has the other side (or this one) closed the queue?
    pub fn is_closed(&self) -> bool {
        self.queue.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.close();
    }
}

/// What a pop observed.
pub enum Popped<T> {
    /// The oldest queued value.
    Value(T),
    /// Nothing queued right now; the producer is still live.
    Empty,
    /// Nothing queued and the queue is closed: no value will ever arrive.
    Closed,
}

impl<T> SpscReceiver<T> {
    /// Pop the oldest value, without blocking.
    pub fn pop(&self) -> Popped<T> {
        let q = &self.queue;
        let tail = q.tail.load(Ordering::Relaxed);
        let mut head = q.head.load(Ordering::Acquire);
        if tail == head {
            if !q.closed.load(Ordering::Acquire) {
                return Popped::Empty;
            }
            // Closed, apparently empty — but a push may have landed
            // between the head load and the closed load; re-check so no
            // value is stranded behind a `Closed` verdict.
            head = q.head.load(Ordering::Acquire);
            if tail == head {
                return Popped::Closed;
            }
        }
        let slot = &q.slots[tail % q.slots.len()];
        // Safety: slot is inside [tail, head): fully written and
        // published by the producer's release store; we are the only
        // consumer.
        let value = unsafe { (*slot.get()).assume_init_read() };
        q.tail.store(tail + 1, Ordering::Release);
        Popped::Value(value)
    }

    /// Close from the consumer side (refuse further pushes).
    pub fn close(&self) {
        self.queue.closed.store(true, Ordering::Release);
    }

    /// Has either side closed the queue?
    pub fn is_closed(&self) -> bool {
        self.queue.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.close();
        // Drain anything still queued so owned values are not leaked.
        while let Popped::Value(v) = self.pop() {
            drop(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = spsc_channel::<u32>(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        for i in 0..8 {
            match rx.pop() {
                Popped::Value(v) => assert_eq!(v, i),
                _ => panic!("expected value {i}"),
            }
        }
        assert!(matches!(rx.pop(), Popped::Empty));
    }

    #[test]
    fn full_ring_rejects_push() {
        let (tx, rx) = spsc_channel::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(3));
        assert!(matches!(rx.pop(), Popped::Value(1)));
        tx.push(3).unwrap();
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let (tx, rx) = spsc_channel::<u32>(4);
        tx.push(7).unwrap();
        tx.close();
        assert_eq!(tx.push(8), Err(8));
        assert!(matches!(rx.pop(), Popped::Value(7)));
        assert!(matches!(rx.pop(), Popped::Closed));
    }

    #[test]
    fn receiver_drop_releases_queued_values() {
        let value = Arc::new(());
        let (tx, rx) = spsc_channel::<Arc<()>>(4);
        tx.push(value.clone()).unwrap();
        tx.push(value.clone()).unwrap();
        drop(rx);
        assert_eq!(Arc::strong_count(&value), 1);
    }

    #[test]
    fn cross_thread_stream_preserves_order() {
        const N: u64 = 200_000;
        let (tx, rx) = spsc_channel::<u64>(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        loop {
            match rx.pop() {
                Popped::Value(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                Popped::Empty => std::hint::spin_loop(),
                Popped::Closed => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(expect, N, "every pushed value popped exactly once");
    }
}
