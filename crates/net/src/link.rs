//! The NIST Net analog: a WAN link model with latency and bandwidth.

use crate::clock::SimClock;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Static parameters of an emulated link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay (RTT / 2).
    pub latency: Duration,
    /// Serialization bandwidth in bytes/second; `None` = infinite
    /// (the paper's Gigabit LAN is effectively infinite next to its RTTs).
    pub bandwidth: Option<u64>,
}

impl LinkSpec {
    /// A LAN link: the paper measures ~0.3 ms RTT between client and server.
    pub fn lan() -> Self {
        Self { latency: Duration::from_micros(150), bandwidth: None }
    }

    /// A WAN link with the given round-trip time.
    pub fn wan_rtt(rtt: Duration) -> Self {
        Self { latency: rtt / 2, bandwidth: None }
    }

    /// Zero-delay link (for unit tests of the layers above).
    pub fn ideal() -> Self {
        Self { latency: Duration::ZERO, bandwidth: None }
    }
}

/// A bidirectional emulated link between the client and server hosts.
///
/// Each direction serializes messages (bandwidth) and delays them
/// (latency); the arrival stamp is computed at send time and enforced by
/// the receiver against the shared [`SimClock`]. Byte counters feed the
/// evaluation harness.
pub struct Link {
    spec: LinkSpec,
    clock: Arc<SimClock>,
    /// Per-direction time at which the last queued byte clears the NIC,
    /// for bandwidth serialization. Index 0: a→b, 1: b→a.
    next_free: [Mutex<Duration>; 2],
    bytes: [AtomicU64; 2],
    messages: [AtomicU64; 2],
}

impl Link {
    /// Create a link over `clock` with the given spec.
    pub fn new(spec: LinkSpec, clock: Arc<SimClock>) -> Arc<Self> {
        Arc::new(Self {
            spec,
            clock,
            next_free: [Mutex::new(Duration::ZERO), Mutex::new(Duration::ZERO)],
            bytes: [AtomicU64::new(0), AtomicU64::new(0)],
            messages: [AtomicU64::new(0), AtomicU64::new(0)],
        })
    }

    /// The clock this link charges time to.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The link's parameters.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Compute the arrival time of a `len`-byte message sent now in
    /// direction `dir` (0 or 1), updating counters and the serialization
    /// horizon. The receiver gates on the returned deadline.
    pub fn stamp_send(&self, dir: usize, len: usize) -> Duration {
        self.bytes[dir].fetch_add(len as u64, Ordering::Relaxed);
        self.messages[dir].fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now();
        let serialization = match self.spec.bandwidth {
            Some(bw) if bw > 0 => Duration::from_nanos((len as u64).saturating_mul(1_000_000_000) / bw),
            _ => Duration::ZERO,
        };
        let mut horizon = self.next_free[dir].lock();
        let start = (*horizon).max(now);
        let done_sending = start + serialization;
        *horizon = done_sending;
        done_sending + self.spec.latency
    }

    /// Total bytes sent in direction `dir` so far.
    pub fn bytes_sent(&self, dir: usize) -> u64 {
        self.bytes[dir].load(Ordering::Relaxed)
    }

    /// Total messages sent in direction `dir` so far.
    pub fn messages_sent(&self, dir: usize) -> u64 {
        self.messages[dir].load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("spec", &self.spec)
            .field("bytes_a_to_b", &self.bytes_sent(0))
            .field("bytes_b_to_a", &self.bytes_sent(1))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_only_stamp() {
        let clock = SimClock::new();
        let link = Link::new(LinkSpec::wan_rtt(Duration::from_millis(40)), clock.clone());
        let arrive = link.stamp_send(0, 100);
        // One-way = 20ms from "now" (which is ~0).
        assert!(arrive >= Duration::from_millis(20));
        assert!(arrive < Duration::from_millis(25));
        assert_eq!(link.bytes_sent(0), 100);
        assert_eq!(link.messages_sent(0), 1);
        assert_eq!(link.bytes_sent(1), 0);
    }

    #[test]
    fn bandwidth_serializes_back_to_back_messages() {
        let clock = SimClock::new();
        // 1 MB/s, zero latency: each 100 KB message takes 100 ms to serialize.
        let link = Link::new(
            LinkSpec { latency: Duration::ZERO, bandwidth: Some(1_000_000) },
            clock.clone(),
        );
        let a1 = link.stamp_send(0, 100_000);
        let a2 = link.stamp_send(0, 100_000);
        assert!(a2 >= a1 + Duration::from_millis(99), "second message queues behind first");
    }

    #[test]
    fn directions_are_independent() {
        let clock = SimClock::new();
        let link = Link::new(
            LinkSpec { latency: Duration::ZERO, bandwidth: Some(1_000) },
            clock.clone(),
        );
        let a = link.stamp_send(0, 1_000); // 1s serialization in dir 0
        let b = link.stamp_send(1, 0); // dir 1 unaffected
        assert!(a >= Duration::from_millis(990));
        assert!(b < Duration::from_millis(100));
    }

    #[test]
    fn pipelined_sends_overlap_latency() {
        let clock = SimClock::new();
        let link = Link::new(LinkSpec::wan_rtt(Duration::from_millis(80)), clock.clone());
        // Ten messages sent back-to-back share the 40ms one-way latency.
        let last = (0..10).fold(Duration::ZERO, |_, _| link.stamp_send(0, 32 * 1024));
        clock.wait_until(last);
        assert!(clock.now() < Duration::from_millis(80), "not 10 x 40ms");
    }
}
