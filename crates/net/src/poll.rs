//! Readiness notification for the in-memory transports.
//!
//! The sharded server replaces thread-per-connection blocking reads with
//! one event loop per shard: every session's receive channel registers a
//! [`Readiness`] handle, the channel marks its token ready whenever a
//! message (or EOF) arrives, and the shard thread sleeps in
//! [`Poller::wait`] until any of its sessions has input.
//!
//! The design is deliberately edge-on-arrival / level-on-registration:
//!
//! * every `push`/`close` on a watched channel enqueues the token (deduped
//!   while still pending), so no arrival is ever missed;
//! * registering against a channel that already holds data (or is already
//!   closed) fires immediately, so there is no registration race;
//! * consumers drain everything available per wakeup, so a token's single
//!   pending slot cannot lose information.
//!
//! This models epoll over our condvar pipes without changing any blocking
//! caller: the same [`crate::pipe::PipeEnd`] serves both worlds.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Identifies one registered event source within its poller.
pub type Token = usize;

struct PollState {
    /// FIFO of tokens with undelivered readiness.
    ready: VecDeque<Token>,
    /// `pending[token]` = token is already queued in `ready`.
    pending: Vec<bool>,
}

struct PollShared {
    state: Mutex<PollState>,
    cond: Condvar,
}

impl PollShared {
    fn mark_ready(&self, token: Token) {
        let mut st = self.state.lock();
        if st.pending.len() <= token {
            st.pending.resize(token + 1, false);
        }
        if !st.pending[token] {
            st.pending[token] = true;
            st.ready.push_back(token);
            self.cond.notify_one();
        }
    }
}

/// One shard's readiness multiplexer.
pub struct Poller {
    shared: Arc<PollShared>,
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller {
    /// A poller with no registered sources.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(PollShared {
                state: Mutex::new(PollState { ready: VecDeque::new(), pending: Vec::new() }),
                cond: Condvar::new(),
            }),
        }
    }

    /// A handle that marks `token` ready when notified; install it into
    /// an event source (e.g. [`crate::pipe::PipeWatch::register`]).
    pub fn readiness(&self, token: Token) -> Readiness {
        Readiness { shared: self.shared.clone(), token }
    }

    /// Mark `token` ready directly (cross-thread wakeup, e.g. "your inbox
    /// has a new session").
    pub fn wake(&self, token: Token) {
        self.shared.mark_ready(token);
    }

    /// Drain every ready token into `out` (cleared first), blocking up to
    /// `timeout` (forever when `None`) for the first one. Returns the
    /// number of tokens delivered; 0 means the wait timed out.
    pub fn wait(&self, timeout: Option<Duration>, out: &mut Vec<Token>) -> usize {
        out.clear();
        let mut st = self.shared.state.lock();
        while st.ready.is_empty() {
            match timeout {
                Some(t) => {
                    if self.shared.cond.wait_for(&mut st, t).timed_out() && st.ready.is_empty() {
                        return 0;
                    }
                }
                None => self.shared.cond.wait(&mut st),
            }
        }
        while let Some(token) = st.ready.pop_front() {
            st.pending[token] = false;
            out.push(token);
        }
        out.len()
    }
}

/// The notification side of one (poller, token) registration.
///
/// Cloned freely; every clone wakes the same token.
#[derive(Clone)]
pub struct Readiness {
    shared: Arc<PollShared>,
    token: Token,
}

impl Readiness {
    /// Mark the token ready (idempotent while undelivered).
    pub fn notify(&self) {
        self.shared.mark_ready(self.token);
    }

    /// The token this handle wakes.
    pub fn token(&self) -> Token {
        self.token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_delivers_token_once() {
        let p = Poller::new();
        p.wake(3);
        p.wake(3); // deduped while pending
        p.wake(5);
        let mut out = Vec::new();
        assert_eq!(p.wait(Some(Duration::from_millis(10)), &mut out), 2);
        assert_eq!(out, [3, 5]);
        assert_eq!(p.wait(Some(Duration::from_millis(5)), &mut out), 0);
    }

    #[test]
    fn rearm_after_delivery() {
        let p = Poller::new();
        let r = p.readiness(1);
        r.notify();
        let mut out = Vec::new();
        p.wait(None, &mut out);
        assert_eq!(out, [1]);
        r.notify();
        p.wait(None, &mut out);
        assert_eq!(out, [1], "token re-arms after being drained");
    }

    #[test]
    fn cross_thread_wakeup() {
        let p = Poller::new();
        let r = p.readiness(9);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            r.notify();
        });
        let mut out = Vec::new();
        assert_eq!(p.wait(None, &mut out), 1);
        assert_eq!(out, [9]);
        t.join().unwrap();
    }

    #[test]
    fn timeout_expires_empty() {
        let p = Poller::new();
        let mut out = Vec::new();
        let start = std::time::Instant::now();
        assert_eq!(p.wait(Some(Duration::from_millis(15)), &mut out), 0);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }
}
