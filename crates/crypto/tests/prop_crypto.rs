//! Property tests for the crypto primitives: inverses, algebraic laws,
//! and no-panic guarantees on arbitrary input.

use proptest::prelude::*;
use sgfs_crypto::bignum::BigUint;
use sgfs_crypto::cbc::{cbc_decrypt, cbc_encrypt};
use sgfs_crypto::{Aes, Rc4};

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_bytes_be(bytes)
}

proptest! {
    #[test]
    fn bignum_add_sub_inverse(a in proptest::collection::vec(any::<u8>(), 0..40),
                              b in proptest::collection::vec(any::<u8>(), 0..40)) {
        let (a, b) = (big(&a), big(&b));
        let sum = a.add(&b);
        prop_assert_eq!(sum.sub(&b), a.clone());
        prop_assert_eq!(sum.sub(&a), b);
    }

    #[test]
    fn bignum_mul_commutative(a in proptest::collection::vec(any::<u8>(), 0..32),
                              b in proptest::collection::vec(any::<u8>(), 0..32)) {
        let (a, b) = (big(&a), big(&b));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn bignum_div_rem_identity(a in proptest::collection::vec(any::<u8>(), 0..48),
                               b in proptest::collection::vec(any::<u8>(), 1..32)) {
        let (a, b) = (big(&a), big(&b));
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b, "remainder below divisor");
        prop_assert_eq!(q.mul(&b).add(&r), a, "a = q*b + r");
    }

    #[test]
    fn bignum_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = big(&bytes);
        prop_assert_eq!(big(&v.to_bytes_be()), v);
    }

    #[test]
    fn bignum_shift_inverse(bytes in proptest::collection::vec(any::<u8>(), 0..32),
                            shift in 0usize..100) {
        let v = big(&bytes);
        prop_assert_eq!(v.shl(shift).shr(shift), v);
    }

    #[test]
    fn cbc_roundtrip(key in proptest::collection::vec(any::<u8>(), 32..=32),
                     iv in proptest::collection::vec(any::<u8>(), 16..=16),
                     pt in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let aes = Aes::new(&key);
        let mut ivb = [0u8; 16];
        ivb.copy_from_slice(&iv);
        let ct = cbc_encrypt(&aes, &ivb, &pt);
        prop_assert_eq!(cbc_decrypt(&aes, &ivb, &ct).unwrap(), pt);
    }

    #[test]
    fn cbc_decrypt_garbage_never_panics(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        ct in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let aes = Aes::new(&key);
        let _ = cbc_decrypt(&aes, &[0u8; 16], &ct);
    }

    #[test]
    fn rc4_roundtrip(key in proptest::collection::vec(any::<u8>(), 1..64),
                     pt in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let mut enc = Rc4::new(&key);
        let mut dec = Rc4::new(&key);
        let mut data = pt.clone();
        enc.process(&mut data);
        dec.process(&mut data);
        prop_assert_eq!(data, pt);
    }

    #[test]
    fn modpow_fermat_on_prime(base in 2u64..1_000_000) {
        // 1009 is prime: base^1008 ≡ 1 (mod 1009) when gcd(base,1009)=1.
        let p = BigUint::from_u64(1009);
        let b = BigUint::from_u64(base);
        prop_assume!(base % 1009 != 0);
        prop_assert_eq!(b.modpow(&BigUint::from_u64(1008), &p), BigUint::one());
    }
}
