//! Property tests for the crypto primitives: inverses, algebraic laws,
//! and no-panic guarantees on arbitrary input.

use proptest::prelude::*;
use sgfs_crypto::bignum::BigUint;
use sgfs_crypto::cbc::{cbc_decrypt, cbc_decrypt_in_place_ct, cbc_encrypt};
use sgfs_crypto::ghash::{ghash, GhashKey};
use sgfs_crypto::{Aes, AesGcm, ChaCha20Poly1305, Rc4};

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_bytes_be(bytes)
}

proptest! {
    #[test]
    fn bignum_add_sub_inverse(a in proptest::collection::vec(any::<u8>(), 0..40),
                              b in proptest::collection::vec(any::<u8>(), 0..40)) {
        let (a, b) = (big(&a), big(&b));
        let sum = a.add(&b);
        prop_assert_eq!(sum.sub(&b), a.clone());
        prop_assert_eq!(sum.sub(&a), b);
    }

    #[test]
    fn bignum_mul_commutative(a in proptest::collection::vec(any::<u8>(), 0..32),
                              b in proptest::collection::vec(any::<u8>(), 0..32)) {
        let (a, b) = (big(&a), big(&b));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn bignum_div_rem_identity(a in proptest::collection::vec(any::<u8>(), 0..48),
                               b in proptest::collection::vec(any::<u8>(), 1..32)) {
        let (a, b) = (big(&a), big(&b));
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b, "remainder below divisor");
        prop_assert_eq!(q.mul(&b).add(&r), a, "a = q*b + r");
    }

    #[test]
    fn bignum_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = big(&bytes);
        prop_assert_eq!(big(&v.to_bytes_be()), v);
    }

    #[test]
    fn bignum_shift_inverse(bytes in proptest::collection::vec(any::<u8>(), 0..32),
                            shift in 0usize..100) {
        let v = big(&bytes);
        prop_assert_eq!(v.shl(shift).shr(shift), v);
    }

    #[test]
    fn cbc_roundtrip(key in proptest::collection::vec(any::<u8>(), 32..=32),
                     iv in proptest::collection::vec(any::<u8>(), 16..=16),
                     pt in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let aes = Aes::new(&key);
        let mut ivb = [0u8; 16];
        ivb.copy_from_slice(&iv);
        let ct = cbc_encrypt(&aes, &ivb, &pt);
        prop_assert_eq!(cbc_decrypt(&aes, &ivb, &ct).unwrap(), pt);
    }

    #[test]
    fn cbc_decrypt_garbage_never_panics(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        ct in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let aes = Aes::new(&key);
        let _ = cbc_decrypt(&aes, &[0u8; 16], &ct);
    }

    #[test]
    fn rc4_roundtrip(key in proptest::collection::vec(any::<u8>(), 1..64),
                     pt in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let mut enc = Rc4::new(&key);
        let mut dec = Rc4::new(&key);
        let mut data = pt.clone();
        enc.process(&mut data);
        dec.process(&mut data);
        prop_assert_eq!(data, pt);
    }

    #[test]
    fn ghash_pclmul_matches_scalar_oracle(
        h in proptest::collection::vec(any::<u8>(), 16..=16),
        aad in proptest::collection::vec(any::<u8>(), 0..96),
        ct in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut hb = [0u8; 16];
        hb.copy_from_slice(&h);
        // `new` dispatches to PCLMUL when the CPU has it; `new_portable`
        // pins the scalar oracle. Off x86-64 both run scalar, which still
        // covers the runtime-detection fallback path.
        let fast = ghash(&GhashKey::new(&hb), &aad, &ct);
        let slow = ghash(&GhashKey::new_portable(&hb), &aad, &ct);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn gcm_roundtrip_both_ghash_backends(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        nonce in proptest::collection::vec(any::<u8>(), 12..=12),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut n = [0u8; 12];
        n.copy_from_slice(&nonce);
        let fast = AesGcm::new(&key);
        let slow = AesGcm::new_portable_ghash(&key);
        let wire = fast.seal(&n, &aad, &pt);
        prop_assert_eq!(&slow.seal(&n, &aad, &pt), &wire, "backends produce same wire");
        prop_assert_eq!(fast.open(&n, &aad, &wire).unwrap(), pt.clone());
        prop_assert_eq!(slow.open(&n, &aad, &wire).unwrap(), pt);
    }

    #[test]
    fn chachapoly_roundtrip_and_tamper(
        key in proptest::collection::vec(any::<u8>(), 32..=32),
        nonce in proptest::collection::vec(any::<u8>(), 12..=12),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..2048),
        flip in any::<usize>(),
    ) {
        let mut k = [0u8; 32];
        k.copy_from_slice(&key);
        let mut n = [0u8; 12];
        n.copy_from_slice(&nonce);
        let aead = ChaCha20Poly1305::new(&k);
        let wire = aead.seal(&n, &aad, &pt);
        prop_assert_eq!(aead.open(&n, &aad, &wire).unwrap(), pt);
        let mut bad = wire.clone();
        let i = flip % bad.len();
        bad[i] ^= 1;
        prop_assert!(aead.open(&n, &aad, &bad).is_err());
    }

    #[test]
    fn cbc_ct_decrypt_agrees_with_plain(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        ct in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Arbitrary (mostly invalid) ciphertext: the constant-time path
        // must agree with the branching path on both the verdict and, when
        // valid, the recovered plaintext. Lengths are clamped to block
        // multiples by both, so compare full Result shapes.
        let aes = Aes::new(&key);
        let iv = [0u8; 16];
        let mut a = ct.clone();
        let plain = {
            let mut buf = ct.clone();
            sgfs_crypto::cbc::cbc_decrypt_in_place(&aes, &iv, &mut buf).map(|n| buf[..n].to_vec())
        };
        match cbc_decrypt_in_place_ct(&aes, &iv, &mut a) {
            Ok((n, true)) => prop_assert_eq!(plain.unwrap(), a[..n].to_vec()),
            Ok((_, false)) => prop_assert!(plain.is_err(), "ct says bad pad, plain must too"),
            Err(_) => prop_assert!(plain.is_err(), "length errors agree"),
        }
    }

    #[test]
    fn modpow_fermat_on_prime(base in 2u64..1_000_000) {
        // 1009 is prime: base^1008 ≡ 1 (mod 1009) when gcd(base,1009)=1.
        let p = BigUint::from_u64(1009);
        let b = BigUint::from_u64(base);
        prop_assume!(base % 1009 != 0);
        prop_assert_eq!(b.modpow(&BigUint::from_u64(1008), &p), BigUint::one());
    }
}
