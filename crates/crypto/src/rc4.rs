//! RC4 ("ARCFOUR") stream cipher.
//!
//! The paper's medium-strength configuration (`sgfs-rc`) encrypts RPC
//! traffic with 128-bit RC4; the SFS baseline uses a customized RC4 as
//! well. RC4 is long obsolete for new designs, but it is exactly what the
//! paper measures, and its much lower per-byte cost relative to AES-CBC is
//! one of the performance trade-offs the evaluation demonstrates.

/// RC4 keystream generator / cipher state.
///
/// Encryption and decryption are the same operation (XOR with keystream),
/// so a single [`process`](Rc4::process) method serves both directions —
/// but each direction of a connection must use its own independent state.
#[derive(Clone)]
pub struct Rc4 {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl Rc4 {
    /// Initialize from a key of 1–256 bytes (the KSA).
    pub fn new(key: &[u8]) -> Self {
        assert!(!key.is_empty() && key.len() <= 256, "RC4 key must be 1-256 bytes");
        let mut s = [0u8; 256];
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as u8;
        }
        let mut j = 0u8;
        for i in 0..256 {
            j = j
                .wrapping_add(s[i])
                .wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Self { s, i: 0, j: 0 }
    }

    /// XOR the keystream into `data` in place (encrypts or decrypts).
    pub fn process(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            self.i = self.i.wrapping_add(1);
            self.j = self.j.wrapping_add(self.s[self.i as usize]);
            self.s.swap(self.i as usize, self.j as usize);
            let k = self.s
                [(self.s[self.i as usize].wrapping_add(self.s[self.j as usize])) as usize];
            *b ^= k;
        }
    }

    /// Generate `n` raw keystream bytes (used by tests against RFC 6229).
    pub fn keystream(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.process(&mut out);
        out
    }

    /// Drop the first `n` keystream bytes (RC4-drop\[n\] strengthening, used
    /// by the SFS-analog configuration).
    pub fn drop_n(&mut self, n: usize) {
        let mut sink = vec![0u8; n];
        self.process(&mut sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 6229 test vectors: keystream for key lengths 40 and 128 bits.
    #[test]
    fn rfc6229_40bit() {
        let mut rc4 = Rc4::new(&from_hex("0102030405"));
        let ks = rc4.keystream(16);
        assert_eq!(ks, from_hex("b2396305f03dc027ccc3524a0a1118a8"));
    }

    #[test]
    fn rfc6229_128bit() {
        let mut rc4 = Rc4::new(&from_hex("0102030405060708090a0b0c0d0e0f10"));
        let ks = rc4.keystream(16);
        assert_eq!(ks, from_hex("9ac7cc9a609d1ef7b2932899cde41b97"));
    }

    #[test]
    fn drop_n_equals_discarding_keystream() {
        let key = from_hex("0102030405060708090a0b0c0d0e0f10");
        let mut a = Rc4::new(&key);
        a.drop_n(240);
        let mut b = Rc4::new(&key);
        let _ = b.keystream(240);
        assert_eq!(a.keystream(32), b.keystream(32));
    }

    #[test]
    fn encrypt_decrypt_inverse() {
        let key = b"session-key-0123";
        let mut enc = Rc4::new(key);
        let mut dec = Rc4::new(key);
        let plain: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let mut data = plain.clone();
        enc.process(&mut data);
        assert_ne!(data, plain);
        dec.process(&mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn stream_position_matters() {
        let key = b"k";
        let mut a = Rc4::new(key);
        let mut b = Rc4::new(key);
        let _ = a.keystream(10);
        assert_ne!(a.keystream(10), b.keystream(10));
    }

    #[test]
    #[should_panic(expected = "RC4 key must be 1-256 bytes")]
    fn empty_key_panics() {
        let _ = Rc4::new(&[]);
    }
}
