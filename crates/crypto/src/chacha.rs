//! ChaCha20 stream cipher (RFC 8439 §2.3–2.4), portable scalar code.
//!
//! No SIMD backend: the scalar double-round compiles to straight-line
//! add/rotate/xor that already outruns the legacy CBC+HMAC record path
//! by a wide margin, and the portable code is the constant-time
//! reference the AEAD suite is gated on.

/// The RFC 8439 nonce length (96 bits).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 key length (256 bits only).
pub const KEY_LEN: usize = 32;
/// One keystream block.
pub const BLOCK_LEN: usize = 64;

/// "expand 32-byte k" — the four constant state words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// A ChaCha20 key (the expanded initial-state template minus counter/nonce).
#[derive(Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
}

impl ChaCha20 {
    /// Load a 32-byte key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut key_words = [0u32; 8];
        for (w, c) in key_words.iter_mut().zip(key.chunks_exact(4)) {
            *w = u32::from_le_bytes(c.try_into().unwrap());
        }
        Self { key_words }
    }

    /// Write the keystream block for (`counter`, `nonce`) into `out`.
    pub fn block(&self, counter: u32, nonce: &[u8; NONCE_LEN], out: &mut [u8; BLOCK_LEN]) {
        let mut init = [0u32; 16];
        init[..4].copy_from_slice(&SIGMA);
        init[4..12].copy_from_slice(&self.key_words);
        init[12] = counter;
        for (w, c) in init[13..16].iter_mut().zip(nonce.chunks_exact(4)) {
            *w = u32::from_le_bytes(c.try_into().unwrap());
        }

        let mut s = init;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i * 4..i * 4 + 4].copy_from_slice(&s[i].wrapping_add(init[i]).to_le_bytes());
        }
    }

    /// XOR the keystream starting at block `counter` into `data`
    /// (encrypt == decrypt). Counter increments per 64-byte block.
    pub fn xor_stream(&self, mut counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
        let mut ks = [0u8; BLOCK_LEN];
        for chunk in data.chunks_mut(BLOCK_LEN) {
            self.block(counter, nonce, &mut ks);
            counter = counter.wrapping_add(1);
            for (d, k) in chunk.iter_mut().zip(&ks) {
                *d ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2.
        let key: [u8; 32] = (0..32u8).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] =
            from_hex("000000090000004a00000000").try_into().unwrap();
        let mut out = [0u8; 64];
        ChaCha20::new(&key).block(1, &nonce, &mut out);
        let expect = from_hex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(&out[..], &expect[..]);
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2: "Ladies and Gentlemen..." under counter 1.
        let key: [u8; 32] = (0..32u8).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] =
            from_hex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it."
            .to_vec();
        let plain = data.clone();
        ChaCha20::new(&key).xor_stream(1, &nonce, &mut data);
        let expect = from_hex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expect);
        // And back.
        ChaCha20::new(&key).xor_stream(1, &nonce, &mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn block_boundaries_consistent() {
        let key = [0x42u8; 32];
        let nonce = [7u8; 12];
        let ch = ChaCha20::new(&key);
        let mut whole = vec![0u8; 200];
        ch.xor_stream(5, &nonce, &mut whole);
        // Same stream generated block-by-block.
        let mut pieces = vec![0u8; 200];
        for (i, chunk) in pieces.chunks_mut(64).enumerate() {
            let mut ks = [0u8; 64];
            ch.block(5 + i as u32, &nonce, &mut ks);
            for (d, k) in chunk.iter_mut().zip(&ks) {
                *d ^= k;
            }
        }
        assert_eq!(whole, pieces);
    }
}
