//! RSA key generation, PKCS#1-v1.5-style signatures and encryption.
//!
//! This powers the certificate layer (`sgfs-pki`), the GTLS handshake
//! (RSA key transport of the pre-master secret, client CertificateVerify)
//! and the WS-Security-analog message signatures in `sgfs-services` —
//! the same three roles OpenSSL's RSA plays in the paper's prototype.

use crate::prime::generate_prime;
use crate::{BigUint, Digest, Sha256};
use rand::Rng;

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message too long for the modulus after padding.
    MessageTooLong,
    /// Ciphertext or signature does not decode to valid padding.
    BadPadding,
    /// Signature digest mismatch.
    BadSignature,
    /// Input is numerically out of range for the modulus.
    OutOfRange,
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::MessageTooLong => write!(f, "RSA message too long for modulus"),
            RsaError::BadPadding => write!(f, "RSA padding invalid"),
            RsaError::BadSignature => write!(f, "RSA signature verification failed"),
            RsaError::OutOfRange => write!(f, "RSA input out of range"),
        }
    }
}

impl std::error::Error for RsaError {}

/// The public half of an RSA key: `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent (65537 for generated keys).
    pub e: BigUint,
}

/// A full RSA key pair.
#[derive(Clone)]
pub struct RsaKeyPair {
    /// Public half.
    pub public: RsaPublicKey,
    /// Private exponent.
    d: BigUint,
}

impl std::fmt::Debug for RsaKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the private exponent.
        f.debug_struct("RsaKeyPair").field("public", &self.public).finish_non_exhaustive()
    }
}

impl RsaPublicKey {
    /// Modulus size in bytes, rounded up.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Raw RSA public operation `m^e mod n`.
    fn raw(&self, m: &BigUint) -> Result<BigUint, RsaError> {
        if m >= &self.n {
            return Err(RsaError::OutOfRange);
        }
        Ok(m.modpow(&self.e, &self.n))
    }

    /// Encrypt a short message with PKCS#1-v1.5 type-2 (random) padding.
    ///
    /// Used by the GTLS handshake to wrap the 48-byte pre-master secret.
    pub fn encrypt<R: Rng>(&self, msg: &[u8], rng: &mut R) -> Result<Vec<u8>, RsaError> {
        let k = self.modulus_len();
        if msg.len() + 11 > k {
            return Err(RsaError::MessageTooLong);
        }
        // 0x00 0x02 <nonzero random PS> 0x00 <msg>
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x02);
        for _ in 0..k - msg.len() - 3 {
            loop {
                let b: u8 = rng.gen();
                if b != 0 {
                    em.push(b);
                    break;
                }
            }
        }
        em.push(0x00);
        em.extend_from_slice(msg);
        let c = self.raw(&BigUint::from_bytes_be(&em))?;
        Ok(left_pad(&c.to_bytes_be(), k))
    }

    /// Verify a PKCS#1-v1.5-style RSA-SHA256 signature over `msg`.
    pub fn verify(&self, msg: &[u8], signature: &[u8]) -> Result<(), RsaError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(RsaError::BadSignature);
        }
        let s = BigUint::from_bytes_be(signature);
        let em = left_pad(&self.raw(&s)?.to_bytes_be(), k);
        // 0x00 0x01 <0xff PS> 0x00 <sha256 digest>
        let digest = Sha256::digest(msg);
        if em.len() < digest.len() + 11 || em[0] != 0x00 || em[1] != 0x01 {
            return Err(RsaError::BadSignature);
        }
        let ps_end = em.len() - digest.len() - 1;
        if em[2..ps_end].iter().any(|&b| b != 0xff) || em[ps_end] != 0x00 {
            return Err(RsaError::BadSignature);
        }
        if !crate::ct_eq(&em[ps_end + 1..], &digest) {
            return Err(RsaError::BadSignature);
        }
        Ok(())
    }
}

impl RsaKeyPair {
    /// Generate a fresh key pair with a modulus of about `bits` bits.
    ///
    /// 512-bit keys keep handshakes and the test suite fast while
    /// exercising identical code paths to larger keys; the PKI layer
    /// defaults to 768 for CA keys.
    pub fn generate<R: Rng>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 256, "RSA modulus below 256 bits cannot pad a SHA-256 digest");
        let e = BigUint::from_u64(65537);
        loop {
            let p = generate_prime(bits / 2, rng);
            let q = generate_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            if let Some(d) = e.modinv(&phi) {
                return Self { public: RsaPublicKey { n, e }, d };
            }
        }
    }

    /// Export the full key pair (n, e, d) for credential transfer.
    ///
    /// Grid middleware moves delegated proxy *private* keys between
    /// services (MyProxy-style); this is the serialization it uses. The
    /// output must only travel over authenticated, encrypted channels.
    pub fn export(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for part in [&self.public.n, &self.public.e, &self.d] {
            let bytes = part.to_bytes_be();
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Reconstruct a key pair exported with [`export`](Self::export).
    pub fn import(bytes: &[u8]) -> Option<Self> {
        let mut parts = Vec::with_capacity(3);
        let mut pos = 0;
        for _ in 0..3 {
            if bytes.len() < pos + 4 {
                return None;
            }
            let len =
                u32::from_be_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            pos += 4;
            if bytes.len() < pos + len {
                return None;
            }
            parts.push(BigUint::from_bytes_be(&bytes[pos..pos + len]));
            pos += len;
        }
        if pos != bytes.len() {
            return None;
        }
        let d = parts.pop()?;
        let e = parts.pop()?;
        let n = parts.pop()?;
        Some(Self { public: RsaPublicKey { n, e }, d })
    }

    /// Raw RSA private operation `c^d mod n`.
    fn raw(&self, c: &BigUint) -> Result<BigUint, RsaError> {
        if c >= &self.public.n {
            return Err(RsaError::OutOfRange);
        }
        Ok(c.modpow(&self.d, &self.public.n))
    }

    /// Decrypt a PKCS#1-v1.5 type-2 ciphertext.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.public.modulus_len();
        if ciphertext.len() != k {
            return Err(RsaError::BadPadding);
        }
        let m = self.raw(&BigUint::from_bytes_be(ciphertext))?;
        let em = left_pad(&m.to_bytes_be(), k);
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(RsaError::BadPadding);
        }
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(RsaError::BadPadding)?;
        if sep < 8 {
            return Err(RsaError::BadPadding); // PS must be at least 8 bytes
        }
        Ok(em[2 + sep + 1..].to_vec())
    }

    /// Produce a PKCS#1-v1.5-style RSA-SHA256 signature over `msg`.
    pub fn sign(&self, msg: &[u8]) -> Vec<u8> {
        let k = self.public.modulus_len();
        let digest = Sha256::digest(msg);
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x01);
        em.extend(std::iter::repeat_n(0xffu8, k - digest.len() - 3));
        em.push(0x00);
        em.extend_from_slice(&digest);
        let s = self.raw(&BigUint::from_bytes_be(&em)).expect("padded value < n");
        left_pad(&s.to_bytes_be(), k)
    }
}

/// Left-pad with zeros to exactly `len` bytes.
fn left_pad(bytes: &[u8], len: usize) -> Vec<u8> {
    assert!(bytes.len() <= len, "value longer than target width");
    let mut out = vec![0u8; len - bytes.len()];
    out.extend_from_slice(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key() -> RsaKeyPair {
        RsaKeyPair::generate(512, &mut rand::thread_rng())
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key();
        let msg = b"the grid user DN=/O=Grid/CN=alice";
        let sig = key.sign(msg);
        assert_eq!(sig.len(), key.public.modulus_len());
        key.public.verify(msg, &sig).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = test_key();
        let sig = key.sign(b"message one");
        assert_eq!(key.public.verify(b"message two", &sig), Err(RsaError::BadSignature));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key();
        let mut sig = key.sign(b"msg");
        sig[10] ^= 1;
        assert_eq!(key.public.verify(b"msg", &sig), Err(RsaError::BadSignature));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key1 = test_key();
        let key2 = test_key();
        let sig = key1.sign(b"msg");
        assert!(key2.public.verify(b"msg", &sig).is_err());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key();
        let mut rng = rand::thread_rng();
        let secret = b"48-byte premaster secret 0123456789abcdef012345";
        let ct = key.public.encrypt(secret, &mut rng).unwrap();
        assert_eq!(ct.len(), key.public.modulus_len());
        assert_eq!(key.decrypt(&ct).unwrap(), secret);
    }

    #[test]
    fn encrypt_is_randomized() {
        let key = test_key();
        let mut rng = rand::thread_rng();
        let c1 = key.public.encrypt(b"same", &mut rng).unwrap();
        let c2 = key.public.encrypt(b"same", &mut rng).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn message_too_long_rejected() {
        let key = test_key();
        let big = vec![1u8; key.public.modulus_len()];
        assert_eq!(
            key.public.encrypt(&big, &mut rand::thread_rng()),
            Err(RsaError::MessageTooLong)
        );
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = test_key();
        let mut ct = key.public.encrypt(b"secret", &mut rand::thread_rng()).unwrap();
        ct[0] ^= 0x80;
        // Either padding fails or the plaintext differs; both are failures
        // to recover the secret.
        match key.decrypt(&ct) {
            Err(_) => {}
            Ok(pt) => assert_ne!(pt, b"secret"),
        }
    }

    #[test]
    fn debug_does_not_leak_private_exponent() {
        let key = test_key();
        let dbg = format!("{key:?}");
        assert!(!dbg.contains(&key.d.to_hex()));
    }
}
