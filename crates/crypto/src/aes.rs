//! AES (Rijndael, FIPS 197) block cipher with 128- and 256-bit keys.
//!
//! The paper's strongest configuration (`sgfs-aes`) encrypts RPC traffic
//! with AES-256 in CBC mode; CBC chaining lives in [`crate::cbc`], this
//! module implements the raw block transform and key schedule.

/// Forward S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box (computed at startup from [`SBOX`]).
fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// Multiply in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplication tables for the inverse MixColumns coefficients,
/// computed once per key schedule — table lookups instead of per-bit
/// GF(2^8) multiplication make decryption as fast as encryption.
#[derive(Clone)]
struct InvTables {
    m9: [u8; 256],
    m11: [u8; 256],
    m13: [u8; 256],
    m14: [u8; 256],
}

impl InvTables {
    fn new() -> Self {
        let mut t = Self { m9: [0; 256], m11: [0; 256], m13: [0; 256], m14: [0; 256] };
        for i in 0..256 {
            t.m9[i] = gmul(i as u8, 9);
            t.m11[i] = gmul(i as u8, 11);
            t.m13[i] = gmul(i as u8, 13);
            t.m14[i] = gmul(i as u8, 14);
        }
        t
    }
}

/// An expanded AES key supporting block encryption and decryption.
///
/// Supports 16-byte (AES-128) and 32-byte (AES-256) keys — the two sizes
/// the paper's cipher suites use.
#[derive(Clone)]
pub struct Aes {
    /// Round keys, one 16-byte block per round (Nr+1 of them).
    round_keys: Vec<[u8; 16]>,
    inv_sbox: [u8; 256],
    inv_tables: InvTables,
}

impl Aes {
    /// Expand `key` (16 or 32 bytes). Panics on other lengths: key sizes
    /// are fixed by the negotiated cipher suite, never attacker data.
    pub fn new(key: &[u8]) -> Self {
        let nk = match key.len() {
            16 => 4,
            32 => 8,
            n => panic!("unsupported AES key length {n}"),
        };
        let nr = nk + 6; // 10 rounds for AES-128, 14 for AES-256
        let nwords = 4 * (nr + 1);
        let mut w = vec![[0u8; 4]; nwords];
        for i in 0..nk {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon = 1u8;
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= rcon;
                rcon = gmul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (j, word) in c.iter().enumerate() {
                    rk[4 * j..4 * j + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Self { round_keys, inv_sbox: inv_sbox(), inv_tables: InvTables::new() }
    }

    /// Number of rounds (10 or 14).
    fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let nr = self.rounds();
        xor_block(block, &self.round_keys[0]);
        for round in 1..nr {
            sub_bytes(block, &SBOX);
            shift_rows(block);
            mix_columns(block);
            xor_block(block, &self.round_keys[round]);
        }
        sub_bytes(block, &SBOX);
        shift_rows(block);
        xor_block(block, &self.round_keys[nr]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let nr = self.rounds();
        xor_block(block, &self.round_keys[nr]);
        inv_shift_rows(block);
        sub_bytes(block, &self.inv_sbox);
        for round in (1..nr).rev() {
            xor_block(block, &self.round_keys[round]);
            inv_mix_columns(block, &self.inv_tables);
            inv_shift_rows(block);
            sub_bytes(block, &self.inv_sbox);
        }
        xor_block(block, &self.round_keys[0]);
    }
}

#[inline]
fn xor_block(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

/// State is column-major: byte `r + 4c` is row r, column c.
#[inline]
fn shift_rows(s: &mut [u8; 16]) {
    // row 1: left rotate by 1
    let t = s[1];
    s[1] = s[5];
    s[5] = s[9];
    s[9] = s[13];
    s[13] = t;
    // row 2: left rotate by 2
    s.swap(2, 10);
    s.swap(6, 14);
    // row 3: left rotate by 3 (= right rotate by 1)
    let t = s[15];
    s[15] = s[11];
    s[11] = s[7];
    s[7] = s[3];
    s[3] = t;
}

#[inline]
fn inv_shift_rows(s: &mut [u8; 16]) {
    // row 1: right rotate by 1
    let t = s[13];
    s[13] = s[9];
    s[9] = s[5];
    s[5] = s[1];
    s[1] = t;
    // row 2: rotate by 2 (self-inverse)
    s.swap(2, 10);
    s.swap(6, 14);
    // row 3: left rotate by 1
    let t = s[3];
    s[3] = s[7];
    s[7] = s[11];
    s[11] = s[15];
    s[15] = t;
}

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

#[inline]
fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        s[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
        s[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
        s[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
        s[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
    }
}

#[inline]
fn inv_mix_columns(s: &mut [u8; 16], t: &InvTables) {
    for c in 0..4 {
        let col = [s[4 * c] as usize, s[4 * c + 1] as usize, s[4 * c + 2] as usize, s[4 * c + 3] as usize];
        s[4 * c] = t.m14[col[0]] ^ t.m11[col[1]] ^ t.m13[col[2]] ^ t.m9[col[3]];
        s[4 * c + 1] = t.m9[col[0]] ^ t.m14[col[1]] ^ t.m11[col[2]] ^ t.m13[col[3]];
        s[4 * c + 2] = t.m13[col[0]] ^ t.m9[col[1]] ^ t.m14[col[2]] ^ t.m11[col[3]];
        s[4 * c + 3] = t.m11[col[0]] ^ t.m13[col[1]] ^ t.m9[col[2]] ^ t.m14[col[3]];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // FIPS-197 Appendix C.1: AES-128.
    #[test]
    fn fips197_aes128() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(&key);
        let mut block = [0u8; 16];
        block.copy_from_slice(&from_hex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    // FIPS-197 Appendix C.3: AES-256.
    #[test]
    fn fips197_aes256() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(&key);
        let mut block = [0u8; 16];
        block.copy_from_slice(&from_hex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn encrypt_decrypt_inverse_many() {
        let aes = Aes::new(&[7u8; 32]);
        for seed in 0..64u8 {
            let mut block = [0u8; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = seed.wrapping_mul(31).wrapping_add(i as u8);
            }
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig, "encryption must change the block");
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported AES key length")]
    fn bad_key_length_panics() {
        let _ = Aes::new(&[0u8; 24 - 1]);
    }

    #[test]
    fn gmul_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }
}
