//! AES (Rijndael, FIPS 197) block cipher with 128- and 256-bit keys.
//!
//! The paper's strongest configuration (`sgfs-aes`) encrypts RPC traffic
//! with AES-256 in CBC mode; CBC chaining lives in [`crate::cbc`], this
//! module implements the raw block transform and key schedule.
//!
//! Two hot-path backends, picked once per key schedule:
//!
//! - **AES-NI** (x86-64 with the `aes` feature, detected at runtime):
//!   one `AESENC`/`AESDEC` per round, four blocks interleaved in the
//!   bulk entry points.
//! - **T-tables** (portable fallback): SubBytes, ShiftRows and
//!   MixColumns collapse into four 1 KiB lookup tables per direction,
//!   built once at compile time. The state is held as four big-endian
//!   `u32` column words, so a full round is 16 table loads, 12 XORs and
//!   the round-key XOR.
//!
//! The straightforward scalar implementation the repository started with
//! is preserved under [`reference`] as the differential-testing oracle
//! and the baseline for throughput comparisons.

/// Forward S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Multiply in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.
const fn gmul(a: u8, b: u8) -> u8 {
    let (mut a, mut b, mut p) = (a, b, 0u8);
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn build_inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// Inverse S-box, fixed at compile time.
const INV_SBOX: [u8; 256] = build_inv_sbox();

/// Encrypt tables: `TE[r][x]` is the MixColumns coefficient column
/// (2,1,1,3) applied to `S(x)`, rotated right `r` bytes — one table per
/// state row, packed big-endian.
const fn build_te() -> [[u32; 256]; 4] {
    let mut te = [[0u32; 256]; 4];
    let mut x = 0;
    while x < 256 {
        let s = SBOX[x];
        let base = ((gmul(s, 2) as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | (gmul(s, 3) as u32);
        te[0][x] = base;
        te[1][x] = base.rotate_right(8);
        te[2][x] = base.rotate_right(16);
        te[3][x] = base.rotate_right(24);
        x += 1;
    }
    te
}

/// Decrypt tables: `TD[r][x]` is the inverse MixColumns coefficient
/// column (14,9,13,11) applied to `InvS(x)`, rotated right `r` bytes.
const fn build_td() -> [[u32; 256]; 4] {
    let mut td = [[0u32; 256]; 4];
    let mut x = 0;
    while x < 256 {
        let s = INV_SBOX[x];
        let base = ((gmul(s, 14) as u32) << 24)
            | ((gmul(s, 9) as u32) << 16)
            | ((gmul(s, 13) as u32) << 8)
            | (gmul(s, 11) as u32);
        td[0][x] = base;
        td[1][x] = base.rotate_right(8);
        td[2][x] = base.rotate_right(16);
        td[3][x] = base.rotate_right(24);
        x += 1;
    }
    td
}

// `static`, not `const`: 8 KiB of tables referenced by address instead of
// inlined at each use site. Built entirely at compile time — nothing is
// recomputed per key schedule (or even per process).
static TE: [[u32; 256]; 4] = build_te();
static TD: [[u32; 256]; 4] = build_td();

/// An expanded AES key supporting block encryption and decryption.
///
/// Supports 16-byte (AES-128) and 32-byte (AES-256) keys — the two sizes
/// the paper's cipher suites use.
#[derive(Clone)]
pub struct Aes {
    /// Encryption round keys as big-endian column words, rounds 0..=Nr.
    enc_keys: Vec<[u32; 4]>,
    /// Decryption round keys for the equivalent inverse cipher: the
    /// encryption schedule reversed, inner rounds passed through
    /// InvMixColumns.
    dec_keys: Vec<[u32; 4]>,
    /// The same schedules in wire byte order, the layout the AES-NI
    /// `AESENC`/`AESDEC` instructions consume directly.
    enc_keys_bytes: Vec<[u8; 16]>,
    dec_keys_bytes: Vec<[u8; 16]>,
    /// Whether this CPU exposes the AES instruction set (detected once
    /// per schedule; `false` off x86-64).
    use_ni: bool,
}

impl Aes {
    /// Expand `key` (16 or 32 bytes). Panics on other lengths: key sizes
    /// are fixed by the negotiated cipher suite, never attacker data.
    pub fn new(key: &[u8]) -> Self {
        let nk = match key.len() {
            16 => 4,
            32 => 8,
            n => panic!("unsupported AES key length {n}"),
        };
        let nr = nk + 6; // 10 rounds for AES-128, 14 for AES-256
        let nwords = 4 * (nr + 1);
        let mut w = vec![0u32; nwords];
        for i in 0..nk {
            w[i] = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut rcon = 1u8;
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ ((rcon as u32) << 24);
                rcon = gmul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            w[i] = w[i - nk] ^ temp;
        }
        let enc_keys: Vec<[u32; 4]> =
            w.chunks_exact(4).map(|c| [c[0], c[1], c[2], c[3]]).collect();
        let mut dec_keys = vec![[0u32; 4]; nr + 1];
        dec_keys[0] = enc_keys[nr];
        dec_keys[nr] = enc_keys[0];
        for round in 1..nr {
            let src = enc_keys[nr - round];
            for c in 0..4 {
                dec_keys[round][c] = inv_mix_word(src[c]);
            }
        }
        let to_bytes = |keys: &[[u32; 4]]| {
            keys.iter()
                .map(|rk| {
                    let mut b = [0u8; 16];
                    for (c, w) in rk.iter().enumerate() {
                        b[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
                    }
                    b
                })
                .collect()
        };
        let enc_keys_bytes = to_bytes(&enc_keys);
        let dec_keys_bytes = to_bytes(&dec_keys);
        #[cfg(target_arch = "x86_64")]
        let use_ni = std::arch::is_x86_feature_detected!("aes");
        #[cfg(not(target_arch = "x86_64"))]
        let use_ni = false;
        Self { enc_keys, dec_keys, enc_keys_bytes, dec_keys_bytes, use_ni }
    }

    /// Number of rounds (10 or 14).
    fn rounds(&self) -> usize {
        self.enc_keys.len() - 1
    }

    /// The block-transform backend this schedule dispatches to.
    pub fn backend(&self) -> &'static str {
        if self.use_ni {
            "aes-ni"
        } else {
            "t-table"
        }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: `use_ni` is only set when the CPU reports AES support.
            unsafe { ni::encrypt_block(&self.enc_keys_bytes, block) };
            return;
        }
        self.encrypt_block_table(block);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: `use_ni` is only set when the CPU reports AES support.
            unsafe { ni::decrypt_block(&self.dec_keys_bytes, block) };
            return;
        }
        self.decrypt_block_table(block);
    }

    /// Encrypt a run of *independent* 16-byte blocks in place
    /// (`data.len()` must be a multiple of 16).
    ///
    /// Callers with chained blocks (CBC encryption) cannot use this; CBC
    /// *decryption* and any ECB/CTR-style bulk work can.
    pub fn encrypt_blocks(&self, data: &mut [u8]) {
        assert_eq!(data.len() % 16, 0, "partial AES block");
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: `use_ni` is only set when the CPU reports AES support.
            unsafe { ni::encrypt_blocks(&self.enc_keys_bytes, data) };
            return;
        }
        self.encrypt_blocks_table(data);
    }

    /// Decrypt a run of independent 16-byte blocks in place — the bulk
    /// half of CBC decryption (the chaining XOR happens afterwards).
    pub fn decrypt_blocks(&self, data: &mut [u8]) {
        assert_eq!(data.len() % 16, 0, "partial AES block");
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: `use_ni` is only set when the CPU reports AES support.
            unsafe { ni::decrypt_blocks(&self.dec_keys_bytes, data) };
            return;
        }
        self.decrypt_blocks_table(data);
    }

    /// T-table single-block encryption (portable path).
    fn encrypt_block_table(&self, block: &mut [u8; 16]) {
        let nr = self.rounds();
        let mut w = load_state(block);
        xor_words(&mut w, &self.enc_keys[0]);
        for round in 1..nr {
            let rk = &self.enc_keys[round];
            w = [
                te_col(&w, 0) ^ rk[0],
                te_col(&w, 1) ^ rk[1],
                te_col(&w, 2) ^ rk[2],
                te_col(&w, 3) ^ rk[3],
            ];
        }
        let rk = &self.enc_keys[nr];
        let out = [
            sbox_col(&w, 0) ^ rk[0],
            sbox_col(&w, 1) ^ rk[1],
            sbox_col(&w, 2) ^ rk[2],
            sbox_col(&w, 3) ^ rk[3],
        ];
        store_state(&out, block);
    }

    /// T-table single-block decryption (portable path).
    fn decrypt_block_table(&self, block: &mut [u8; 16]) {
        let nr = self.rounds();
        let mut w = load_state(block);
        xor_words(&mut w, &self.dec_keys[0]);
        for round in 1..nr {
            let rk = &self.dec_keys[round];
            w = [
                td_col(&w, 0) ^ rk[0],
                td_col(&w, 1) ^ rk[1],
                td_col(&w, 2) ^ rk[2],
                td_col(&w, 3) ^ rk[3],
            ];
        }
        let rk = &self.dec_keys[nr];
        let out = [
            inv_sbox_col(&w, 0) ^ rk[0],
            inv_sbox_col(&w, 1) ^ rk[1],
            inv_sbox_col(&w, 2) ^ rk[2],
            inv_sbox_col(&w, 3) ^ rk[3],
        ];
        store_state(&out, block);
    }

    /// T-table bulk encryption: four blocks interleaved per iteration —
    /// a single block's rounds form one long dependency chain of table
    /// loads, so the core sits idle between them; four independent
    /// chains keep its load ports busy.
    fn encrypt_blocks_table(&self, data: &mut [u8]) {
        let mut quads = data.chunks_exact_mut(64);
        for quad in &mut quads {
            let (b0, rest) = quad.split_at_mut(16);
            let (b1, rest) = rest.split_at_mut(16);
            let (b2, b3) = rest.split_at_mut(16);
            let mut w = [
                load_state((&*b0).try_into().unwrap()),
                load_state((&*b1).try_into().unwrap()),
                load_state((&*b2).try_into().unwrap()),
                load_state((&*b3).try_into().unwrap()),
            ];
            let (first, rest) = self.enc_keys.split_first().unwrap();
            let (rk, mids) = rest.split_last().unwrap();
            for lane in w.iter_mut() {
                xor_words(lane, first);
            }
            for rk in mids {
                for lane in w.iter_mut() {
                    *lane = [
                        te_col(lane, 0) ^ rk[0],
                        te_col(lane, 1) ^ rk[1],
                        te_col(lane, 2) ^ rk[2],
                        te_col(lane, 3) ^ rk[3],
                    ];
                }
            }
            for lane in w.iter_mut() {
                *lane = [
                    sbox_col(lane, 0) ^ rk[0],
                    sbox_col(lane, 1) ^ rk[1],
                    sbox_col(lane, 2) ^ rk[2],
                    sbox_col(lane, 3) ^ rk[3],
                ];
            }
            store_state(&w[0], b0.try_into().unwrap());
            store_state(&w[1], b1.try_into().unwrap());
            store_state(&w[2], b2.try_into().unwrap());
            store_state(&w[3], b3.try_into().unwrap());
        }
        for block in quads.into_remainder().chunks_exact_mut(16) {
            self.encrypt_block_table(block.try_into().unwrap());
        }
    }

    /// T-table bulk decryption, same four-lane interleaving as
    /// [`encrypt_blocks_table`](Self::encrypt_blocks_table).
    fn decrypt_blocks_table(&self, data: &mut [u8]) {
        let mut quads = data.chunks_exact_mut(64);
        for quad in &mut quads {
            let (b0, rest) = quad.split_at_mut(16);
            let (b1, rest) = rest.split_at_mut(16);
            let (b2, b3) = rest.split_at_mut(16);
            let mut w = [
                load_state((&*b0).try_into().unwrap()),
                load_state((&*b1).try_into().unwrap()),
                load_state((&*b2).try_into().unwrap()),
                load_state((&*b3).try_into().unwrap()),
            ];
            let nr = self.rounds();
            for lane in w.iter_mut() {
                xor_words(lane, &self.dec_keys[0]);
            }
            for round in 1..nr {
                let rk = &self.dec_keys[round];
                for lane in w.iter_mut() {
                    *lane = [
                        td_col(lane, 0) ^ rk[0],
                        td_col(lane, 1) ^ rk[1],
                        td_col(lane, 2) ^ rk[2],
                        td_col(lane, 3) ^ rk[3],
                    ];
                }
            }
            let rk = &self.dec_keys[nr];
            for lane in w.iter_mut() {
                *lane = [
                    inv_sbox_col(lane, 0) ^ rk[0],
                    inv_sbox_col(lane, 1) ^ rk[1],
                    inv_sbox_col(lane, 2) ^ rk[2],
                    inv_sbox_col(lane, 3) ^ rk[3],
                ];
            }
            store_state(&w[0], b0.try_into().unwrap());
            store_state(&w[1], b1.try_into().unwrap());
            store_state(&w[2], b2.try_into().unwrap());
            store_state(&w[3], b3.try_into().unwrap());
        }
        for block in quads.into_remainder().chunks_exact_mut(16) {
            self.decrypt_block_table(block.try_into().unwrap());
        }
    }
}

/// Hardware AES (AES-NI) backend: one `AESENC`/`AESDEC` per round, four
/// blocks interleaved in bulk so the ~4-cycle instruction latency
/// overlaps. Round keys arrive in wire byte order ([`Aes`] keeps a
/// byte-form copy of both schedules); the decryption schedule is the
/// same equivalent-inverse-cipher form `AESDEC` expects, so no extra
/// `AESIMC` pass is needed.
#[cfg(target_arch = "x86_64")]
mod ni {
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn key(keys: &[[u8; 16]], r: usize) -> __m128i {
        _mm_loadu_si128(keys[r].as_ptr().cast())
    }

    /// # Safety
    /// Requires a CPU with the `aes` feature.
    #[target_feature(enable = "aes,sse2")]
    pub unsafe fn encrypt_block(keys: &[[u8; 16]], block: &mut [u8; 16]) {
        let nr = keys.len() - 1;
        let p = block.as_mut_ptr().cast::<__m128i>();
        let mut s = _mm_xor_si128(_mm_loadu_si128(p), key(keys, 0));
        for r in 1..nr {
            s = _mm_aesenc_si128(s, key(keys, r));
        }
        s = _mm_aesenclast_si128(s, key(keys, nr));
        _mm_storeu_si128(p, s);
    }

    /// # Safety
    /// Requires a CPU with the `aes` feature.
    #[target_feature(enable = "aes,sse2")]
    pub unsafe fn decrypt_block(keys: &[[u8; 16]], block: &mut [u8; 16]) {
        let nr = keys.len() - 1;
        let p = block.as_mut_ptr().cast::<__m128i>();
        let mut s = _mm_xor_si128(_mm_loadu_si128(p), key(keys, 0));
        for r in 1..nr {
            s = _mm_aesdec_si128(s, key(keys, r));
        }
        s = _mm_aesdeclast_si128(s, key(keys, nr));
        _mm_storeu_si128(p, s);
    }

    /// # Safety
    /// Requires a CPU with the `aes` feature; `data.len() % 16 == 0`.
    #[target_feature(enable = "aes,sse2")]
    pub unsafe fn encrypt_blocks(keys: &[[u8; 16]], data: &mut [u8]) {
        let nr = keys.len() - 1;
        let mut quads = data.chunks_exact_mut(64);
        for quad in &mut quads {
            let p = quad.as_mut_ptr().cast::<__m128i>();
            let k0 = key(keys, 0);
            let mut s0 = _mm_xor_si128(_mm_loadu_si128(p), k0);
            let mut s1 = _mm_xor_si128(_mm_loadu_si128(p.add(1)), k0);
            let mut s2 = _mm_xor_si128(_mm_loadu_si128(p.add(2)), k0);
            let mut s3 = _mm_xor_si128(_mm_loadu_si128(p.add(3)), k0);
            for r in 1..nr {
                let k = key(keys, r);
                s0 = _mm_aesenc_si128(s0, k);
                s1 = _mm_aesenc_si128(s1, k);
                s2 = _mm_aesenc_si128(s2, k);
                s3 = _mm_aesenc_si128(s3, k);
            }
            let k = key(keys, nr);
            _mm_storeu_si128(p, _mm_aesenclast_si128(s0, k));
            _mm_storeu_si128(p.add(1), _mm_aesenclast_si128(s1, k));
            _mm_storeu_si128(p.add(2), _mm_aesenclast_si128(s2, k));
            _mm_storeu_si128(p.add(3), _mm_aesenclast_si128(s3, k));
        }
        for block in quads.into_remainder().chunks_exact_mut(16) {
            encrypt_block(keys, block.try_into().unwrap());
        }
    }

    /// # Safety
    /// Requires a CPU with the `aes` feature; `data.len() % 16 == 0`.
    #[target_feature(enable = "aes,sse2")]
    pub unsafe fn decrypt_blocks(keys: &[[u8; 16]], data: &mut [u8]) {
        let nr = keys.len() - 1;
        let mut quads = data.chunks_exact_mut(64);
        for quad in &mut quads {
            let p = quad.as_mut_ptr().cast::<__m128i>();
            let k0 = key(keys, 0);
            let mut s0 = _mm_xor_si128(_mm_loadu_si128(p), k0);
            let mut s1 = _mm_xor_si128(_mm_loadu_si128(p.add(1)), k0);
            let mut s2 = _mm_xor_si128(_mm_loadu_si128(p.add(2)), k0);
            let mut s3 = _mm_xor_si128(_mm_loadu_si128(p.add(3)), k0);
            for r in 1..nr {
                let k = key(keys, r);
                s0 = _mm_aesdec_si128(s0, k);
                s1 = _mm_aesdec_si128(s1, k);
                s2 = _mm_aesdec_si128(s2, k);
                s3 = _mm_aesdec_si128(s3, k);
            }
            let k = key(keys, nr);
            _mm_storeu_si128(p, _mm_aesdeclast_si128(s0, k));
            _mm_storeu_si128(p.add(1), _mm_aesdeclast_si128(s1, k));
            _mm_storeu_si128(p.add(2), _mm_aesdeclast_si128(s2, k));
            _mm_storeu_si128(p.add(3), _mm_aesdeclast_si128(s3, k));
        }
        for block in quads.into_remainder().chunks_exact_mut(16) {
            decrypt_block(keys, block.try_into().unwrap());
        }
    }
}

#[inline(always)]
fn load_state(block: &[u8; 16]) -> [u32; 4] {
    [
        u32::from_be_bytes(block[0..4].try_into().unwrap()),
        u32::from_be_bytes(block[4..8].try_into().unwrap()),
        u32::from_be_bytes(block[8..12].try_into().unwrap()),
        u32::from_be_bytes(block[12..16].try_into().unwrap()),
    ]
}

#[inline(always)]
fn store_state(w: &[u32; 4], block: &mut [u8; 16]) {
    block[0..4].copy_from_slice(&w[0].to_be_bytes());
    block[4..8].copy_from_slice(&w[1].to_be_bytes());
    block[8..12].copy_from_slice(&w[2].to_be_bytes());
    block[12..16].copy_from_slice(&w[3].to_be_bytes());
}

#[inline(always)]
fn xor_words(w: &mut [u32; 4], rk: &[u32; 4]) {
    for (a, b) in w.iter_mut().zip(rk) {
        *a ^= b;
    }
}

/// One encrypt-direction column: ShiftRows sources row r of output
/// column c from column (c+r) mod 4.
#[inline(always)]
fn te_col(w: &[u32; 4], c: usize) -> u32 {
    TE[0][(w[c] >> 24) as usize]
        ^ TE[1][((w[(c + 1) & 3] >> 16) & 0xff) as usize]
        ^ TE[2][((w[(c + 2) & 3] >> 8) & 0xff) as usize]
        ^ TE[3][(w[(c + 3) & 3] & 0xff) as usize]
}

/// One decrypt-direction column: InvShiftRows sources row r of output
/// column c from column (c-r) mod 4.
#[inline(always)]
fn td_col(w: &[u32; 4], c: usize) -> u32 {
    TD[0][(w[c] >> 24) as usize]
        ^ TD[1][((w[(c + 3) & 3] >> 16) & 0xff) as usize]
        ^ TD[2][((w[(c + 2) & 3] >> 8) & 0xff) as usize]
        ^ TD[3][(w[(c + 1) & 3] & 0xff) as usize]
}

/// Final encrypt round: SubBytes + ShiftRows only.
#[inline(always)]
fn sbox_col(w: &[u32; 4], c: usize) -> u32 {
    ((SBOX[(w[c] >> 24) as usize] as u32) << 24)
        | ((SBOX[((w[(c + 1) & 3] >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((w[(c + 2) & 3] >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(w[(c + 3) & 3] & 0xff) as usize] as u32)
}

/// Final decrypt round: InvSubBytes + InvShiftRows only.
#[inline(always)]
fn inv_sbox_col(w: &[u32; 4], c: usize) -> u32 {
    ((INV_SBOX[(w[c] >> 24) as usize] as u32) << 24)
        | ((INV_SBOX[((w[(c + 3) & 3] >> 16) & 0xff) as usize] as u32) << 16)
        | ((INV_SBOX[((w[(c + 2) & 3] >> 8) & 0xff) as usize] as u32) << 8)
        | (INV_SBOX[(w[(c + 1) & 3] & 0xff) as usize] as u32)
}

#[inline]
fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        SBOX[b[0] as usize],
        SBOX[b[1] as usize],
        SBOX[b[2] as usize],
        SBOX[b[3] as usize],
    ])
}

/// InvMixColumns over one column word (key-schedule transform for the
/// equivalent inverse cipher).
fn inv_mix_word(w: u32) -> u32 {
    let [a, b, c, d] = w.to_be_bytes();
    u32::from_be_bytes([
        gmul(a, 14) ^ gmul(b, 11) ^ gmul(c, 13) ^ gmul(d, 9),
        gmul(a, 9) ^ gmul(b, 14) ^ gmul(c, 11) ^ gmul(d, 13),
        gmul(a, 13) ^ gmul(b, 9) ^ gmul(c, 14) ^ gmul(d, 11),
        gmul(a, 11) ^ gmul(b, 13) ^ gmul(c, 9) ^ gmul(d, 14),
    ])
}

/// The original scalar implementation (xtime MixColumns, per-bit GF(2^8)
/// decrypt multiplies): retained as a differential-test oracle and as the
/// baseline the T-table path is benchmarked against.
pub mod reference {
    use super::{gmul, INV_SBOX, SBOX};

    /// Scalar AES oracle with the same API as [`super::Aes`].
    #[derive(Clone)]
    pub struct Aes {
        round_keys: Vec<[u8; 16]>,
    }

    impl Aes {
        /// Expand `key` (16 or 32 bytes).
        pub fn new(key: &[u8]) -> Self {
            let nk = match key.len() {
                16 => 4,
                32 => 8,
                n => panic!("unsupported AES key length {n}"),
            };
            let nr = nk + 6;
            let nwords = 4 * (nr + 1);
            let mut w = vec![[0u8; 4]; nwords];
            for i in 0..nk {
                w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
            }
            let mut rcon = 1u8;
            for i in nk..nwords {
                let mut temp = w[i - 1];
                if i % nk == 0 {
                    temp.rotate_left(1);
                    for t in temp.iter_mut() {
                        *t = SBOX[*t as usize];
                    }
                    temp[0] ^= rcon;
                    rcon = gmul(rcon, 2);
                } else if nk > 6 && i % nk == 4 {
                    for t in temp.iter_mut() {
                        *t = SBOX[*t as usize];
                    }
                }
                for j in 0..4 {
                    w[i][j] = w[i - nk][j] ^ temp[j];
                }
            }
            let round_keys = w
                .chunks_exact(4)
                .map(|c| {
                    let mut rk = [0u8; 16];
                    for (j, word) in c.iter().enumerate() {
                        rk[4 * j..4 * j + 4].copy_from_slice(word);
                    }
                    rk
                })
                .collect();
            Self { round_keys }
        }

        fn rounds(&self) -> usize {
            self.round_keys.len() - 1
        }

        /// Encrypt one 16-byte block in place.
        pub fn encrypt_block(&self, block: &mut [u8; 16]) {
            let nr = self.rounds();
            xor_block(block, &self.round_keys[0]);
            for round in 1..nr {
                sub_bytes(block, &SBOX);
                shift_rows(block);
                mix_columns(block);
                xor_block(block, &self.round_keys[round]);
            }
            sub_bytes(block, &SBOX);
            shift_rows(block);
            xor_block(block, &self.round_keys[nr]);
        }

        /// Decrypt one 16-byte block in place.
        pub fn decrypt_block(&self, block: &mut [u8; 16]) {
            let nr = self.rounds();
            xor_block(block, &self.round_keys[nr]);
            inv_shift_rows(block);
            sub_bytes(block, &INV_SBOX);
            for round in (1..nr).rev() {
                xor_block(block, &self.round_keys[round]);
                inv_mix_columns(block);
                inv_shift_rows(block);
                sub_bytes(block, &INV_SBOX);
            }
            xor_block(block, &self.round_keys[0]);
        }
    }

    #[inline]
    fn xor_block(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    #[inline]
    fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
        for b in state.iter_mut() {
            *b = sbox[*b as usize];
        }
    }

    /// State is column-major: byte `r + 4c` is row r, column c.
    #[inline]
    fn shift_rows(s: &mut [u8; 16]) {
        // row 1: left rotate by 1
        let t = s[1];
        s[1] = s[5];
        s[5] = s[9];
        s[9] = s[13];
        s[13] = t;
        // row 2: left rotate by 2
        s.swap(2, 10);
        s.swap(6, 14);
        // row 3: left rotate by 3 (= right rotate by 1)
        let t = s[15];
        s[15] = s[11];
        s[11] = s[7];
        s[7] = s[3];
        s[3] = t;
    }

    #[inline]
    fn inv_shift_rows(s: &mut [u8; 16]) {
        // row 1: right rotate by 1
        let t = s[13];
        s[13] = s[9];
        s[9] = s[5];
        s[5] = s[1];
        s[1] = t;
        // row 2: rotate by 2 (self-inverse)
        s.swap(2, 10);
        s.swap(6, 14);
        // row 3: left rotate by 1
        let t = s[3];
        s[3] = s[7];
        s[7] = s[11];
        s[11] = s[15];
        s[15] = t;
    }

    #[inline]
    fn xtime(b: u8) -> u8 {
        (b << 1) ^ (((b >> 7) & 1) * 0x1b)
    }

    #[inline]
    fn mix_columns(s: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
            let t = col[0] ^ col[1] ^ col[2] ^ col[3];
            s[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
            s[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
            s[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
            s[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
        }
    }

    #[inline]
    fn inv_mix_columns(s: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
            s[4 * c] =
                gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            s[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            s[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            s[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // FIPS-197 Appendix C.1: AES-128.
    #[test]
    fn fips197_aes128() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(&key);
        let mut block = [0u8; 16];
        block.copy_from_slice(&from_hex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    // FIPS-197 Appendix C.3: AES-256.
    #[test]
    fn fips197_aes256() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(&key);
        let mut block = [0u8; 16];
        block.copy_from_slice(&from_hex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn encrypt_decrypt_inverse_many() {
        let aes = Aes::new(&[7u8; 32]);
        for seed in 0..64u8 {
            let mut block = [0u8; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = seed.wrapping_mul(31).wrapping_add(i as u8);
            }
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig, "encryption must change the block");
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    /// The T-table path must agree with the scalar oracle bit-for-bit,
    /// both directions, both key sizes.
    #[test]
    fn ttable_matches_reference() {
        for key_len in [16usize, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 37 + 11) as u8).collect();
            let fast = Aes::new(&key);
            let oracle = reference::Aes::new(&key);
            for seed in 0..128u32 {
                let mut block = [0u8; 16];
                for (i, b) in block.iter_mut().enumerate() {
                    *b = (seed.wrapping_mul(2654435761).wrapping_add(i as u32 * 97) >> 13) as u8;
                }
                let mut expect = block;
                oracle.encrypt_block(&mut expect);
                let mut got = block;
                fast.encrypt_block(&mut got);
                assert_eq!(got, expect, "encrypt mismatch key_len={key_len} seed={seed}");
                let mut back = got;
                fast.decrypt_block(&mut back);
                assert_eq!(back, block, "decrypt mismatch key_len={key_len} seed={seed}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported AES key length")]
    fn bad_key_length_panics() {
        let _ = Aes::new(&[0u8; 24 - 1]);
    }

    #[test]
    #[should_panic(expected = "unsupported AES key length")]
    fn reference_bad_key_length_panics() {
        let _ = reference::Aes::new(&[0u8; 24 - 1]);
    }

    #[test]
    fn gmul_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for x in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[x as usize] as usize], x);
        }
    }

    /// Both backends' bulk routines must agree with per-block ECB for
    /// every block count, including the < 4-block remainder path.
    #[test]
    fn bulk_blocks_match_per_block() {
        for key_len in [16usize, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 31 + 5) as u8).collect();
            for force_table in [false, true] {
                let mut aes = Aes::new(&key);
                aes.use_ni &= !force_table;
                let oracle = reference::Aes::new(&key);
                for blocks in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
                    let pt: Vec<u8> =
                        (0..blocks * 16).map(|i| (i as u32).wrapping_mul(167) as u8).collect();

                    let mut expect = pt.clone();
                    for b in expect.chunks_exact_mut(16) {
                        oracle.encrypt_block(b.try_into().unwrap());
                    }
                    let mut got = pt.clone();
                    aes.encrypt_blocks(&mut got);
                    assert_eq!(
                        got, expect,
                        "encrypt_blocks key_len={key_len} blocks={blocks} table={force_table}"
                    );

                    aes.decrypt_blocks(&mut got);
                    assert_eq!(
                        got, pt,
                        "decrypt_blocks key_len={key_len} blocks={blocks} table={force_table}"
                    );
                }
            }
        }
    }

    /// FIPS-197 single-block vectors through both backends.
    #[test]
    fn backends_agree_on_single_blocks() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        for force_table in [false, true] {
            let mut aes = Aes::new(&key);
            aes.use_ni &= !force_table;
            let mut block = [0u8; 16];
            block.copy_from_slice(&from_hex("00112233445566778899aabbccddeeff"));
            aes.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), from_hex("8ea2b7ca516745bfeafc49904b496089"));
            aes.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
        }
    }

    #[test]
    #[should_panic(expected = "partial AES block")]
    fn bulk_rejects_partial_blocks() {
        Aes::new(&[0u8; 16]).encrypt_blocks(&mut [0u8; 17]);
    }
}
