//! SHA-1 (FIPS 180-1).
//!
//! Used by the GTLS record layer for SHA1-HMAC integrity, matching the
//! paper's `sgfs-sha` / `sgfs-rc` / `sgfs-aes` configurations which all
//! carry SHA1-HMAC.

use crate::Digest;

/// Streaming SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Partial input block not yet compressed.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total: u64,
}

impl Sha1 {
    /// Finish and return the 20-byte digest as a fixed array.
    pub fn finalize_fixed(mut self) -> [u8; 20] {
        let bit_len = self.total * 8;
        // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length.
        self.update_inner(&[0x80]);
        while self.buf_len != 56 {
            self.update_inner(&[0]);
        }
        self.update_inner(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, w) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn update_inner(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const BLOCK_LEN: usize = 64;
    const OUTPUT_LEN: usize = 20;

    fn new() -> Self {
        Self {
            h: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0],
            buf: [0; 64],
            buf_len: 0,
            total: 0,
        }
    }

    fn update(&mut self, data: &[u8]) {
        self.total += data.len() as u64;
        self.update_inner(data);
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-1 / RFC 3174 known-answer vectors.
    #[test]
    fn empty() {
        assert_eq!(hex(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(hex(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&Sha1::digest(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha1::digest(&data);
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }
}
