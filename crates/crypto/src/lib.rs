//! Cryptographic primitives for SGFS, implemented from scratch.
//!
//! The paper's prototype links against OpenSSL; no such dependency is
//! available here, so this crate provides the exact primitives the paper's
//! evaluation exercises:
//!
//! * **Hashes** — SHA-1 (FIPS 180-1) and SHA-256 (FIPS 180-2), used for
//!   HMAC record integrity and certificate signatures respectively.
//! * **HMAC** (FIPS 198) — generic over the hash, giving the paper's
//!   SHA1-HMAC record integrity.
//! * **Symmetric ciphers** — AES-128/256 in CBC mode (the paper's
//!   "strong" suite, Rijndael) and RC4/ARCFOUR (the "medium" suite).
//! * **Public-key machinery** — arbitrary-precision unsigned integers,
//!   Miller–Rabin primality, and RSA key generation / PKCS#1-style
//!   signing and encryption used by the certificate and handshake layers.
//! * **Key derivation** — a TLS-1.2-style PRF for turning the handshake
//!   pre-master secret into record-layer keys.
//! * **AEAD suites** — AES-128/256-GCM (GHASH over PCLMUL with a scalar
//!   oracle, CTR over the AES-NI/T-table backends) and scalar
//!   ChaCha20-Poly1305, the single-pass record-protection modes that
//!   replace the two-pass CBC+HMAC path on the hot data plane.
//!
//! None of this is intended to be side-channel hardened production crypto;
//! it is a faithful, tested reimplementation sufficient to reproduce the
//! performance/security trade-offs the paper measures.

pub mod aes;
pub mod bignum;
pub mod cbc;
pub mod chacha;
pub mod chachapoly;
pub mod gcm;
pub mod ghash;
pub mod hmac;
pub mod poly1305;
pub mod prf;
pub mod prime;
pub mod rc4;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use aes::Aes;
pub use bignum::BigUint;
pub use chacha::ChaCha20;
pub use chachapoly::ChaCha20Poly1305;
pub use gcm::{AeadError, AesGcm, NONCE_LEN as AEAD_NONCE_LEN, TAG_LEN as AEAD_TAG_LEN};
pub use hmac::{hmac_sha1, hmac_sha256, Hmac, HmacSha1, HmacSha1Key};
pub use rc4::Rc4;
pub use rsa::{RsaKeyPair, RsaPublicKey};
pub use sha1::Sha1;
pub use sha256::Sha256;

/// A streaming cryptographic hash.
///
/// Implemented by [`Sha1`] and [`Sha256`]; [`Hmac`] is generic over it.
pub trait Digest: Clone {
    /// Internal block length in bytes (64 for both SHA-1 and SHA-256).
    const BLOCK_LEN: usize;
    /// Output length in bytes.
    const OUTPUT_LEN: usize;

    /// Fresh hash state.
    fn new() -> Self;
    /// Absorb more input.
    fn update(&mut self, data: &[u8]);
    /// Finish and return the digest.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

/// Constant-time byte-slice equality.
///
/// Used wherever MACs or verifier values are compared, so an attacker
/// cannot learn a prefix match from timing.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
