//! Prime generation: trial division plus Miller–Rabin, for RSA keygen.

use crate::BigUint;
use rand::Rng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// With 32 rounds the error probability is below 2^-64, far beyond what a
/// test/benchmark PKI needs.
pub fn is_probably_prime<R: Rng>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n < &BigUint::from_u64(2) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p as u64);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    let two = BigUint::from_u64(2);
    let n_minus_3 = n.sub(&BigUint::from_u64(3));
    'witness: for _ in 0..rounds {
        // a in [2, n-2]
        let a = BigUint::random_below(rng, &n_minus_3).add(&two);
        let mut x = a.modpow(&d, n);
        if x == one || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mul(&x).rem(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random prime with exactly `bits` bits.
pub fn generate_prime<R: Rng>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 16, "prime size too small to be useful");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        if is_probably_prime(&candidate, 24, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_primes_accepted() {
        let mut rng = rand::thread_rng();
        for p in [2u64, 3, 5, 104729, 32416190071] {
            assert!(
                is_probably_prime(&BigUint::from_u64(p), 16, &mut rng),
                "{p} should be prime"
            );
        }
        // 2^127 - 1, a Mersenne prime.
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probably_prime(&m127, 16, &mut rng));
    }

    #[test]
    fn known_composites_rejected() {
        let mut rng = rand::thread_rng();
        for c in [0u64, 1, 4, 100, 104730, 561, 41041, 825265] {
            // 561, 41041, 825265 are Carmichael numbers — MR must catch them.
            assert!(
                !is_probably_prime(&BigUint::from_u64(c), 16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = rand::thread_rng();
        let p = generate_prime(128, &mut rng);
        assert_eq!(p.bit_len(), 128);
        assert!(!p.is_even());
        assert!(is_probably_prime(&p, 16, &mut rng));
    }

    #[test]
    fn generate_256_bit_prime() {
        let mut rng = rand::thread_rng();
        let p = generate_prime(256, &mut rng);
        assert_eq!(p.bit_len(), 256);
    }
}
