//! CBC block-chaining mode with PKCS#7 padding, over [`crate::Aes`].
//!
//! GTLS records in the AES suites are `CBC(plaintext || padding)` with an
//! explicit per-record IV, mirroring TLS 1.1+ and the paper's
//! `AES-CBC` configurations.

use crate::Aes;

/// Errors from CBC decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbcError {
    /// Ciphertext length is zero or not a multiple of the block size.
    BadLength(usize),
    /// PKCS#7 padding was malformed after decryption.
    BadPadding,
}

impl std::fmt::Display for CbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbcError::BadLength(n) => write!(f, "CBC ciphertext length {n} invalid"),
            CbcError::BadPadding => write!(f, "CBC padding invalid"),
        }
    }
}

impl std::error::Error for CbcError {}

/// Encrypt `plaintext` with AES-CBC under `iv`, applying PKCS#7 padding.
///
/// Output length is `plaintext.len()` rounded up to the next multiple of 16
/// (a full padding block is added when already aligned).
pub fn cbc_encrypt(aes: &Aes, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    let pad = 16 - plaintext.len() % 16;
    let mut data = Vec::with_capacity(plaintext.len() + pad);
    data.extend_from_slice(plaintext);
    data.extend(std::iter::repeat(pad as u8).take(pad));

    let mut prev = *iv;
    for chunk in data.chunks_exact_mut(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        aes.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
    data
}

/// Decrypt AES-CBC ciphertext under `iv` and strip PKCS#7 padding.
pub fn cbc_decrypt(aes: &Aes, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, CbcError> {
    if ciphertext.is_empty() || ciphertext.len() % 16 != 0 {
        return Err(CbcError::BadLength(ciphertext.len()));
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = *iv;
    for chunk in ciphertext.chunks_exact(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        let saved = block;
        aes.decrypt_block(&mut block);
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        out.extend_from_slice(&block);
        prev = saved;
    }
    let pad = *out.last().unwrap() as usize;
    if pad == 0 || pad > 16 || pad > out.len() {
        return Err(CbcError::BadPadding);
    }
    if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CbcError::BadPadding);
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // NIST SP 800-38A F.2.1 CBC-AES128 (first block; our API adds padding,
    // so check the first 16 output bytes only).
    #[test]
    fn nist_cbc_aes128_first_block() {
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv_bytes = from_hex("000102030405060708090a0b0c0d0e0f");
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&iv_bytes);
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
        let ct = cbc_encrypt(&Aes::new(&key), &iv, &pt);
        assert_eq!(&ct[..16], &from_hex("7649abac8119b246cee98e9b12e9197d")[..]);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let aes = Aes::new(&[3u8; 32]);
        let iv = [9u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 1000, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &pt);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len(), "padding always adds bytes");
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tampered_ciphertext_fails_or_differs() {
        let aes = Aes::new(&[5u8; 16]);
        let iv = [0u8; 16];
        let pt = b"attack at dawn, attack at dawn!".to_vec();
        let mut ct = cbc_encrypt(&aes, &iv, &pt);
        ct[0] ^= 0xff;
        match cbc_decrypt(&aes, &iv, &ct) {
            Err(CbcError::BadPadding) => {}
            Ok(mangled) => assert_ne!(mangled, pt),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn bad_length_rejected() {
        let aes = Aes::new(&[5u8; 16]);
        let iv = [0u8; 16];
        assert_eq!(cbc_decrypt(&aes, &iv, &[0u8; 15]), Err(CbcError::BadLength(15)));
        assert_eq!(cbc_decrypt(&aes, &iv, &[]), Err(CbcError::BadLength(0)));
    }

    #[test]
    fn wrong_iv_garbles_first_block_only() {
        let aes = Aes::new(&[1u8; 16]);
        let pt = vec![0x42u8; 48];
        let ct = cbc_encrypt(&aes, &[0u8; 16], &pt);
        // Decrypting with a wrong IV garbles block 0 but blocks 1.. decrypt fine.
        let out = cbc_decrypt(&aes, &[1u8; 16], &ct).unwrap();
        assert_ne!(&out[..16], &pt[..16]);
        assert_eq!(&out[16..48], &pt[16..48]);
    }
}
