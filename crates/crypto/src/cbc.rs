//! CBC block-chaining mode with PKCS#7 padding, over [`crate::Aes`].
//!
//! GTLS records in the AES suites are `CBC(plaintext || padding)` with an
//! explicit per-record IV, mirroring TLS 1.1+ and the paper's
//! `AES-CBC` configurations.

use crate::Aes;

/// Errors from CBC decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbcError {
    /// Ciphertext length is zero or not a multiple of the block size.
    BadLength(usize),
    /// PKCS#7 padding was malformed after decryption.
    BadPadding,
}

impl std::fmt::Display for CbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbcError::BadLength(n) => write!(f, "CBC ciphertext length {n} invalid"),
            CbcError::BadPadding => write!(f, "CBC padding invalid"),
        }
    }
}

impl std::error::Error for CbcError {}

/// Encrypt `plaintext` with AES-CBC under `iv`, applying PKCS#7 padding.
///
/// Output length is `plaintext.len()` rounded up to the next multiple of 16
/// (a full padding block is added when already aligned).
pub fn cbc_encrypt(aes: &Aes, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    let mut data = Vec::with_capacity(plaintext.len() + 16);
    data.extend_from_slice(plaintext);
    cbc_encrypt_in_place(aes, iv, &mut data);
    data
}

/// Encrypt `buf`'s contents with AES-CBC under `iv` in place, appending
/// PKCS#7 padding. At steady state — a buffer whose capacity has grown to
/// its working-set high-water mark — this performs no heap allocation.
pub fn cbc_encrypt_in_place(aes: &Aes, iv: &[u8; 16], buf: &mut Vec<u8>) {
    cbc_encrypt_in_place_from(aes, iv, buf, 0);
}

/// Like [`cbc_encrypt_in_place`] but only `buf[from..]` is plaintext to
/// encrypt; `buf[..from]` (e.g. a frame header or explicit IV already in
/// the buffer) is left untouched.
pub fn cbc_encrypt_in_place_from(aes: &Aes, iv: &[u8; 16], buf: &mut Vec<u8>, from: usize) {
    debug_assert!(from <= buf.len());
    let pad = 16 - (buf.len() - from) % 16;
    buf.resize(buf.len() + pad, pad as u8);

    let mut prev = *iv;
    for chunk in buf[from..].chunks_exact_mut(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        aes.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
}

/// Decrypt AES-CBC ciphertext under `iv` and strip PKCS#7 padding.
pub fn cbc_decrypt(aes: &Aes, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, CbcError> {
    let mut out = ciphertext.to_vec();
    let len = cbc_decrypt_in_place(aes, iv, &mut out)?;
    out.truncate(len);
    Ok(out)
}

/// Decrypt AES-CBC ciphertext under `iv` in place, validating PKCS#7
/// padding. Returns the plaintext length; `buf[..len]` holds the
/// plaintext. Performs no heap allocation.
pub fn cbc_decrypt_in_place(aes: &Aes, iv: &[u8; 16], buf: &mut [u8]) -> Result<usize, CbcError> {
    if buf.is_empty() || !buf.len().is_multiple_of(16) {
        return Err(CbcError::BadLength(buf.len()));
    }
    // Unlike encryption, CBC decryption has no cross-block dependency in
    // the cipher itself — every block decrypts independently and only the
    // chaining XOR consumes the *ciphertext* of its predecessor. Decrypt
    // up to 64 blocks at a time through the interleaved bulk routine,
    // keeping the ciphertext the XOR needs in a fixed stack scratch.
    const CHUNK: usize = 64 * 16;
    let mut prev = *iv;
    let mut saved = [0u8; CHUNK];
    let mut off = 0;
    while off < buf.len() {
        let n = CHUNK.min(buf.len() - off);
        let chunk = &mut buf[off..off + n];
        saved[..n].copy_from_slice(chunk);
        aes.decrypt_blocks(chunk);
        for (i, block) in chunk.chunks_exact_mut(16).enumerate() {
            let x: &[u8] = if i == 0 { &prev } else { &saved[(i - 1) * 16..i * 16] };
            for (b, p) in block.iter_mut().zip(x) {
                *b ^= p;
            }
        }
        prev.copy_from_slice(&saved[n - 16..n]);
        off += n;
    }
    let pad = buf[buf.len() - 1] as usize;
    if pad == 0 || pad > 16 || pad > buf.len() {
        return Err(CbcError::BadPadding);
    }
    if buf[buf.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CbcError::BadPadding);
    }
    Ok(buf.len() - pad)
}

/// Like [`cbc_decrypt_in_place`], but padding validation is constant-time
/// and failure is *not* an early return: the record layer combines the
/// returned `pad_ok` flag with its MAC check so a forger cannot
/// distinguish "bad padding" from "bad MAC" by timing or by error kind
/// (the classic CBC padding-oracle shape).
///
/// Returns `(plaintext_len, pad_ok)`. When `pad_ok` is false the length
/// is computed from a clamped pad value and must not be trusted — the
/// caller still runs its MAC pass over it and rejects. Length errors
/// (empty / unaligned input) still return `Err` since the record framing
/// exposes lengths on the wire anyway.
pub fn cbc_decrypt_in_place_ct(
    aes: &Aes,
    iv: &[u8; 16],
    buf: &mut [u8],
) -> Result<(usize, bool), CbcError> {
    if buf.is_empty() || !buf.len().is_multiple_of(16) {
        return Err(CbcError::BadLength(buf.len()));
    }
    const CHUNK: usize = 64 * 16;
    let mut prev = *iv;
    let mut saved = [0u8; CHUNK];
    let mut off = 0;
    while off < buf.len() {
        let n = CHUNK.min(buf.len() - off);
        let chunk = &mut buf[off..off + n];
        saved[..n].copy_from_slice(chunk);
        aes.decrypt_blocks(chunk);
        for (i, block) in chunk.chunks_exact_mut(16).enumerate() {
            let x: &[u8] = if i == 0 { &prev } else { &saved[(i - 1) * 16..i * 16] };
            for (b, p) in block.iter_mut().zip(x) {
                *b ^= p;
            }
        }
        prev.copy_from_slice(&saved[n - 16..n]);
        off += n;
    }

    // Constant-time PKCS#7 validation: scan a fixed window of the last
    // 16 bytes regardless of the claimed pad value, accumulating a
    // difference mask instead of branching per byte.
    let len = buf.len();
    let pad = buf[len - 1] as usize;
    // valid_pad = 0xff if 1 <= pad <= 16 (buf.len() >= 16 always holds here).
    let valid_range = ((pad.wrapping_sub(1) < 16) as u8).wrapping_neg();
    // Clamp so the arithmetic below stays in range even when pad is junk.
    let clamped = if pad.wrapping_sub(1) < 16 { pad } else { 1 };
    let mut diff = 0u8;
    for (i, &b) in buf[len - 16..].iter().enumerate() {
        // in_pad = 0xff for the last `clamped` bytes of the window.
        let in_pad = ((i >= 16 - clamped) as u8).wrapping_neg();
        diff |= (b ^ clamped as u8) & in_pad;
    }
    let pad_ok = valid_range != 0 && diff == 0;
    Ok((len - clamped, pad_ok))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // NIST SP 800-38A F.2.1 CBC-AES128 (first block; our API adds padding,
    // so check the first 16 output bytes only).
    #[test]
    fn nist_cbc_aes128_first_block() {
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv_bytes = from_hex("000102030405060708090a0b0c0d0e0f");
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&iv_bytes);
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
        let ct = cbc_encrypt(&Aes::new(&key), &iv, &pt);
        assert_eq!(&ct[..16], &from_hex("7649abac8119b246cee98e9b12e9197d")[..]);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let aes = Aes::new(&[3u8; 32]);
        let iv = [9u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 1000, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &pt);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len(), "padding always adds bytes");
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tampered_ciphertext_fails_or_differs() {
        let aes = Aes::new(&[5u8; 16]);
        let iv = [0u8; 16];
        let pt = b"attack at dawn, attack at dawn!".to_vec();
        let mut ct = cbc_encrypt(&aes, &iv, &pt);
        ct[0] ^= 0xff;
        match cbc_decrypt(&aes, &iv, &ct) {
            Err(CbcError::BadPadding) => {}
            Ok(mangled) => assert_ne!(mangled, pt),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn bad_length_rejected() {
        let aes = Aes::new(&[5u8; 16]);
        let iv = [0u8; 16];
        assert_eq!(cbc_decrypt(&aes, &iv, &[0u8; 15]), Err(CbcError::BadLength(15)));
        assert_eq!(cbc_decrypt(&aes, &iv, &[]), Err(CbcError::BadLength(0)));
    }

    #[test]
    fn in_place_matches_allocating_api() {
        let aes = Aes::new(&[8u8; 32]);
        let iv = [4u8; 16];
        let mut scratch = Vec::new();
        for len in [0usize, 1, 15, 16, 17, 255, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
            scratch.clear();
            scratch.extend_from_slice(&pt);
            cbc_encrypt_in_place(&aes, &iv, &mut scratch);
            assert_eq!(scratch, cbc_encrypt(&aes, &iv, &pt), "len {len}");
            let n = cbc_decrypt_in_place(&aes, &iv, &mut scratch).unwrap();
            assert_eq!(&scratch[..n], &pt[..], "len {len}");
        }
    }

    #[test]
    fn in_place_decrypt_rejects_bad_padding() {
        let aes = Aes::new(&[8u8; 16]);
        let iv = [0u8; 16];
        let mut buf = cbc_encrypt(&aes, &iv, b"hello world");
        let last = buf.len() - 1;
        buf[last] ^= 0x55;
        assert_eq!(cbc_decrypt_in_place(&aes, &iv, &mut buf), Err(CbcError::BadPadding));
        assert_eq!(cbc_decrypt_in_place(&aes, &iv, &mut [0u8; 9]), Err(CbcError::BadLength(9)));
    }

    #[test]
    fn ct_decrypt_matches_plain_decrypt() {
        let aes = Aes::new(&[6u8; 32]);
        let iv = [2u8; 16];
        for len in [0usize, 1, 15, 16, 17, 255, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 3 % 256) as u8).collect();
            let mut a = cbc_encrypt(&aes, &iv, &pt);
            let mut b = a.clone();
            let n1 = cbc_decrypt_in_place(&aes, &iv, &mut a).unwrap();
            let (n2, ok) = cbc_decrypt_in_place_ct(&aes, &iv, &mut b).unwrap();
            assert!(ok, "len {len}");
            assert_eq!(n1, n2, "len {len}");
            assert_eq!(a, b, "len {len}");
        }
    }

    #[test]
    fn ct_decrypt_flags_bad_padding_without_erroring() {
        let aes = Aes::new(&[6u8; 16]);
        let iv = [0u8; 16];
        let mut buf = cbc_encrypt(&aes, &iv, b"payload bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0x11;
        let (_, ok) = cbc_decrypt_in_place_ct(&aes, &iv, &mut buf).unwrap();
        assert!(!ok);
        // Length errors still surface (frame length is public anyway).
        assert_eq!(
            cbc_decrypt_in_place_ct(&aes, &iv, &mut [0u8; 9]),
            Err(CbcError::BadLength(9))
        );
    }

    #[test]
    fn wrong_iv_garbles_first_block_only() {
        let aes = Aes::new(&[1u8; 16]);
        let pt = vec![0x42u8; 48];
        let ct = cbc_encrypt(&aes, &[0u8; 16], &pt);
        // Decrypting with a wrong IV garbles block 0 but blocks 1.. decrypt fine.
        let out = cbc_decrypt(&aes, &[1u8; 16], &ct).unwrap();
        assert_ne!(&out[..16], &pt[..16]);
        assert_eq!(&out[16..48], &pt[16..48]);
    }
}
