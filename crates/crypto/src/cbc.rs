//! CBC block-chaining mode with PKCS#7 padding, over [`crate::Aes`].
//!
//! GTLS records in the AES suites are `CBC(plaintext || padding)` with an
//! explicit per-record IV, mirroring TLS 1.1+ and the paper's
//! `AES-CBC` configurations.

use crate::Aes;

/// Errors from CBC decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbcError {
    /// Ciphertext length is zero or not a multiple of the block size.
    BadLength(usize),
    /// PKCS#7 padding was malformed after decryption.
    BadPadding,
}

impl std::fmt::Display for CbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbcError::BadLength(n) => write!(f, "CBC ciphertext length {n} invalid"),
            CbcError::BadPadding => write!(f, "CBC padding invalid"),
        }
    }
}

impl std::error::Error for CbcError {}

/// Encrypt `plaintext` with AES-CBC under `iv`, applying PKCS#7 padding.
///
/// Output length is `plaintext.len()` rounded up to the next multiple of 16
/// (a full padding block is added when already aligned).
pub fn cbc_encrypt(aes: &Aes, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    let mut data = Vec::with_capacity(plaintext.len() + 16);
    data.extend_from_slice(plaintext);
    cbc_encrypt_in_place(aes, iv, &mut data);
    data
}

/// Encrypt `buf`'s contents with AES-CBC under `iv` in place, appending
/// PKCS#7 padding. At steady state — a buffer whose capacity has grown to
/// its working-set high-water mark — this performs no heap allocation.
pub fn cbc_encrypt_in_place(aes: &Aes, iv: &[u8; 16], buf: &mut Vec<u8>) {
    cbc_encrypt_in_place_from(aes, iv, buf, 0);
}

/// Like [`cbc_encrypt_in_place`] but only `buf[from..]` is plaintext to
/// encrypt; `buf[..from]` (e.g. a frame header or explicit IV already in
/// the buffer) is left untouched.
pub fn cbc_encrypt_in_place_from(aes: &Aes, iv: &[u8; 16], buf: &mut Vec<u8>, from: usize) {
    debug_assert!(from <= buf.len());
    let pad = 16 - (buf.len() - from) % 16;
    buf.resize(buf.len() + pad, pad as u8);

    let mut prev = *iv;
    for chunk in buf[from..].chunks_exact_mut(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        aes.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
}

/// Decrypt AES-CBC ciphertext under `iv` and strip PKCS#7 padding.
pub fn cbc_decrypt(aes: &Aes, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, CbcError> {
    let mut out = ciphertext.to_vec();
    let len = cbc_decrypt_in_place(aes, iv, &mut out)?;
    out.truncate(len);
    Ok(out)
}

/// Decrypt AES-CBC ciphertext under `iv` in place, validating PKCS#7
/// padding. Returns the plaintext length; `buf[..len]` holds the
/// plaintext. Performs no heap allocation.
pub fn cbc_decrypt_in_place(aes: &Aes, iv: &[u8; 16], buf: &mut [u8]) -> Result<usize, CbcError> {
    if buf.is_empty() || !buf.len().is_multiple_of(16) {
        return Err(CbcError::BadLength(buf.len()));
    }
    // Unlike encryption, CBC decryption has no cross-block dependency in
    // the cipher itself — every block decrypts independently and only the
    // chaining XOR consumes the *ciphertext* of its predecessor. Decrypt
    // up to 64 blocks at a time through the interleaved bulk routine,
    // keeping the ciphertext the XOR needs in a fixed stack scratch.
    const CHUNK: usize = 64 * 16;
    let mut prev = *iv;
    let mut saved = [0u8; CHUNK];
    let mut off = 0;
    while off < buf.len() {
        let n = CHUNK.min(buf.len() - off);
        let chunk = &mut buf[off..off + n];
        saved[..n].copy_from_slice(chunk);
        aes.decrypt_blocks(chunk);
        for (i, block) in chunk.chunks_exact_mut(16).enumerate() {
            let x: &[u8] = if i == 0 { &prev } else { &saved[(i - 1) * 16..i * 16] };
            for (b, p) in block.iter_mut().zip(x) {
                *b ^= p;
            }
        }
        prev.copy_from_slice(&saved[n - 16..n]);
        off += n;
    }
    let pad = buf[buf.len() - 1] as usize;
    if pad == 0 || pad > 16 || pad > buf.len() {
        return Err(CbcError::BadPadding);
    }
    if buf[buf.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CbcError::BadPadding);
    }
    Ok(buf.len() - pad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // NIST SP 800-38A F.2.1 CBC-AES128 (first block; our API adds padding,
    // so check the first 16 output bytes only).
    #[test]
    fn nist_cbc_aes128_first_block() {
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv_bytes = from_hex("000102030405060708090a0b0c0d0e0f");
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&iv_bytes);
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
        let ct = cbc_encrypt(&Aes::new(&key), &iv, &pt);
        assert_eq!(&ct[..16], &from_hex("7649abac8119b246cee98e9b12e9197d")[..]);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let aes = Aes::new(&[3u8; 32]);
        let iv = [9u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 1000, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &pt);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len(), "padding always adds bytes");
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tampered_ciphertext_fails_or_differs() {
        let aes = Aes::new(&[5u8; 16]);
        let iv = [0u8; 16];
        let pt = b"attack at dawn, attack at dawn!".to_vec();
        let mut ct = cbc_encrypt(&aes, &iv, &pt);
        ct[0] ^= 0xff;
        match cbc_decrypt(&aes, &iv, &ct) {
            Err(CbcError::BadPadding) => {}
            Ok(mangled) => assert_ne!(mangled, pt),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn bad_length_rejected() {
        let aes = Aes::new(&[5u8; 16]);
        let iv = [0u8; 16];
        assert_eq!(cbc_decrypt(&aes, &iv, &[0u8; 15]), Err(CbcError::BadLength(15)));
        assert_eq!(cbc_decrypt(&aes, &iv, &[]), Err(CbcError::BadLength(0)));
    }

    #[test]
    fn in_place_matches_allocating_api() {
        let aes = Aes::new(&[8u8; 32]);
        let iv = [4u8; 16];
        let mut scratch = Vec::new();
        for len in [0usize, 1, 15, 16, 17, 255, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
            scratch.clear();
            scratch.extend_from_slice(&pt);
            cbc_encrypt_in_place(&aes, &iv, &mut scratch);
            assert_eq!(scratch, cbc_encrypt(&aes, &iv, &pt), "len {len}");
            let n = cbc_decrypt_in_place(&aes, &iv, &mut scratch).unwrap();
            assert_eq!(&scratch[..n], &pt[..], "len {len}");
        }
    }

    #[test]
    fn in_place_decrypt_rejects_bad_padding() {
        let aes = Aes::new(&[8u8; 16]);
        let iv = [0u8; 16];
        let mut buf = cbc_encrypt(&aes, &iv, b"hello world");
        let last = buf.len() - 1;
        buf[last] ^= 0x55;
        assert_eq!(cbc_decrypt_in_place(&aes, &iv, &mut buf), Err(CbcError::BadPadding));
        assert_eq!(cbc_decrypt_in_place(&aes, &iv, &mut [0u8; 9]), Err(CbcError::BadLength(9)));
    }

    #[test]
    fn wrong_iv_garbles_first_block_only() {
        let aes = Aes::new(&[1u8; 16]);
        let pt = vec![0x42u8; 48];
        let ct = cbc_encrypt(&aes, &[0u8; 16], &pt);
        // Decrypting with a wrong IV garbles block 0 but blocks 1.. decrypt fine.
        let out = cbc_decrypt(&aes, &[1u8; 16], &ct).unwrap();
        assert_ne!(&out[..16], &pt[..16]);
        assert_eq!(&out[16..48], &pt[16..48]);
    }
}
