//! GHASH — the GF(2^128) universal hash authenticating AES-GCM records.
//!
//! Two backends, picked once per hash key (mirroring the AES-NI pattern
//! in [`crate::aes`]):
//!
//! - **PCLMUL** (x86-64 with the `pclmulqdq` feature, detected at
//!   runtime): one carry-less 128×128 multiply per block via the
//!   Karatsuba split, with the bit-reflection of the GCM polynomial
//!   absorbed by a byte-swap on load plus a one-bit shift of the 256-bit
//!   product before reduction.
//! - **Scalar** (portable fallback and differential-testing oracle): the
//!   SP 800-38D shift-and-conditionally-reduce multiplication, one bit of
//!   the multiplier per step.
//!
//! Both backends share the same element representation — a `u128` holding
//! the block's bytes big-endian, so bit 127 of the integer is the GHASH
//! coefficient of x^0 — which keeps the accumulator handoff between
//! backends (and the equivalence proptests) trivial.

/// The GHASH reduction constant: x^128 + x^7 + x^2 + x + 1 in the
/// bit-reflected big-endian-`u128` representation.
const R: u128 = 0xe1 << 120;

/// Multiply two field elements with GHASH's bit order (SP 800-38D
/// Algorithm 1). Runs in time independent of the operand values.
fn gf_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    let mut i = 0;
    while i < 128 {
        // Constant-time select: mask is all-ones when bit i of y is set.
        let mask = (((y >> (127 - i)) & 1) as i128).wrapping_neg() as u128;
        z ^= v & mask;
        let lsb = ((v & 1) as i128).wrapping_neg() as u128;
        v >>= 1;
        v ^= R & lsb;
        i += 1;
    }
    z
}

/// A GHASH key: the hash subkey `H = E_K(0^128)` plus the backend choice.
#[derive(Clone)]
pub struct GhashKey {
    h: u128,
    use_clmul: bool,
}

impl GhashKey {
    /// Key from the 16-byte hash subkey, dispatching to PCLMUL when the
    /// CPU has it.
    pub fn new(h: &[u8; 16]) -> Self {
        #[cfg(target_arch = "x86_64")]
        let use_clmul = std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("ssse3");
        #[cfg(not(target_arch = "x86_64"))]
        let use_clmul = false;
        Self { h: u128::from_be_bytes(*h), use_clmul }
    }

    /// Key pinned to the scalar backend — the reference oracle for the
    /// PCLMUL-vs-scalar equivalence tests, and the only path off x86-64.
    pub fn new_portable(h: &[u8; 16]) -> Self {
        Self { h: u128::from_be_bytes(*h), use_clmul: false }
    }

    /// The multiplication backend this key dispatches to.
    pub fn backend(&self) -> &'static str {
        if self.use_clmul {
            "pclmul"
        } else {
            "scalar"
        }
    }

    /// Fresh streaming state under this key.
    pub fn begin(&self) -> Ghash<'_> {
        Ghash { key: self, y: 0, buf: [0u8; 16], buf_len: 0 }
    }

    /// Fold a run of whole blocks into accumulator `y`.
    fn blocks(&self, mut y: u128, data: &[u8]) -> u128 {
        debug_assert_eq!(data.len() % 16, 0);
        #[cfg(target_arch = "x86_64")]
        if self.use_clmul {
            // SAFETY: `use_clmul` is only set when the CPU reports
            // pclmulqdq + ssse3 support.
            return unsafe { clmul::ghash_blocks(self.h, y, data) };
        }
        for block in data.chunks_exact(16) {
            y = gf_mul(y ^ u128::from_be_bytes(block.try_into().unwrap()), self.h);
        }
        y
    }
}

/// Streaming GHASH over arbitrary-length byte runs.
///
/// Partial blocks are buffered; [`Ghash::pad`] flushes the buffer
/// zero-padded to a block boundary, which is how GCM separates the AAD
/// and ciphertext segments.
pub struct Ghash<'a> {
    key: &'a GhashKey,
    y: u128,
    buf: [u8; 16],
    buf_len: usize,
}

impl Ghash<'_> {
    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = data.len().min(16 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                self.y = self.key.blocks(self.y, &{ self.buf });
                self.buf_len = 0;
            } else {
                // Buffer still partial ⇒ `take` consumed all of `data`.
                return;
            }
        }
        let whole = data.len() - data.len() % 16;
        if whole > 0 {
            self.y = self.key.blocks(self.y, &data[..whole]);
        }
        let rest = &data[whole..];
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Zero-pad to the next block boundary (no-op when already aligned).
    pub fn pad(&mut self) {
        if self.buf_len > 0 {
            self.buf[self.buf_len..].fill(0);
            self.y = self.key.blocks(self.y, &{ self.buf });
            self.buf_len = 0;
        }
    }

    /// Finish (padding any tail) and return the 16-byte hash.
    pub fn finalize(mut self) -> [u8; 16] {
        self.pad();
        self.y.to_be_bytes()
    }
}

/// One-shot GHASH of `aad` and `ct` with the GCM length block — the full
/// `GHASH(H, A, C)` of SP 800-38D §6.4.
pub fn ghash(key: &GhashKey, aad: &[u8], ct: &[u8]) -> [u8; 16] {
    let mut g = key.begin();
    g.update(aad);
    g.pad();
    g.update(ct);
    g.pad();
    let mut lens = [0u8; 16];
    lens[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
    lens[8..].copy_from_slice(&((ct.len() as u64) * 8).to_be_bytes());
    g.update(&lens);
    g.finalize()
}

/// Carry-less-multiply backend. Operands live byte-swapped in XMM
/// registers (so the register integer equals the big-endian-`u128`
/// representation); the missing bit-reflection becomes a one-bit left
/// shift of the 256-bit product, then reduction modulo the reversed
/// polynomial — the classic Intel PCLMULQDQ white-paper formulation.
#[cfg(target_arch = "x86_64")]
mod clmul {
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn to_xmm(v: u128) -> __m128i {
        _mm_set_epi64x((v >> 64) as i64, v as i64)
    }

    #[inline]
    unsafe fn from_xmm(v: __m128i) -> u128 {
        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr().cast(), v);
        u128::from_le_bytes(out)
    }

    /// GF(2^128) multiply of byte-swapped operands.
    ///
    /// # Safety
    /// Requires a CPU with `pclmulqdq` + `sse2`.
    #[target_feature(enable = "pclmulqdq,sse2")]
    unsafe fn gfmul(a: __m128i, b: __m128i) -> __m128i {
        // 128×128 → 256 carry-less multiply (schoolbook on 64-bit halves).
        let t3 = _mm_clmulepi64_si128(a, b, 0x00);
        let t4 = _mm_clmulepi64_si128(a, b, 0x10);
        let t5 = _mm_clmulepi64_si128(a, b, 0x01);
        let t6 = _mm_clmulepi64_si128(a, b, 0x11);
        let t4 = _mm_xor_si128(t4, t5);
        let t5 = _mm_slli_si128(t4, 8);
        let t4 = _mm_srli_si128(t4, 8);
        let mut lo = _mm_xor_si128(t3, t5);
        let mut hi = _mm_xor_si128(t6, t4);
        // Shift the 256-bit product left by one bit: rev(A)·rev(B) is
        // rev(A·B) shifted right by one, so this realigns the product to
        // the byte-swapped representation.
        let c_lo = _mm_srli_epi32(lo, 31);
        let c_hi = _mm_srli_epi32(hi, 31);
        lo = _mm_slli_epi32(lo, 1);
        hi = _mm_slli_epi32(hi, 1);
        let c_cross = _mm_srli_si128(c_lo, 12);
        let c_hi = _mm_slli_si128(c_hi, 4);
        let c_lo = _mm_slli_si128(c_lo, 4);
        lo = _mm_or_si128(lo, c_lo);
        hi = _mm_or_si128(hi, c_hi);
        hi = _mm_or_si128(hi, c_cross);
        // Reduce modulo x^128 + x^7 + x^2 + x + 1 (reflected form):
        // first fold x^(31,30,25) contributions of the low half...
        let t7 = _mm_slli_epi32(lo, 31);
        let t8 = _mm_slli_epi32(lo, 30);
        let t9 = _mm_slli_epi32(lo, 25);
        let t7 = _mm_xor_si128(t7, t8);
        let t7 = _mm_xor_si128(t7, t9);
        let t8 = _mm_srli_si128(t7, 4);
        let t7 = _mm_slli_si128(t7, 12);
        lo = _mm_xor_si128(lo, t7);
        // ...then the right-shift terms, and fold into the high half.
        let u1 = _mm_srli_epi32(lo, 1);
        let u2 = _mm_srli_epi32(lo, 2);
        let u3 = _mm_srli_epi32(lo, 7);
        let u = _mm_xor_si128(_mm_xor_si128(u1, u2), _mm_xor_si128(u3, t8));
        _mm_xor_si128(hi, _mm_xor_si128(lo, u))
    }

    /// Fold whole 16-byte blocks of `data` into accumulator `y`.
    ///
    /// # Safety
    /// Requires a CPU with `pclmulqdq` + `ssse3`; `data.len() % 16 == 0`.
    #[target_feature(enable = "pclmulqdq,ssse3,sse2")]
    pub unsafe fn ghash_blocks(h: u128, y: u128, data: &[u8]) -> u128 {
        let bswap = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
        let h = to_xmm(h);
        let mut acc = to_xmm(y);
        for block in data.chunks_exact(16) {
            let x = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), bswap);
            acc = gfmul(_mm_xor_si128(acc, x), h);
        }
        from_xmm(acc)
    }
}

/// The scalar formulation as a standalone oracle, for differential tests
/// against whichever backend [`GhashKey::new`] picked.
pub mod reference {
    use super::GhashKey;

    /// One-shot scalar `GHASH(H, A, C)` including the length block.
    pub fn ghash(h: &[u8; 16], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        super::ghash(&GhashKey::new_portable(h), aad, ct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// x^0 is the multiplicative identity; in the big-endian-`u128`
    /// representation its bit pattern is the top bit.
    #[test]
    fn gf_mul_identity_and_commutativity() {
        let one = 1u128 << 127;
        for v in [1u128, 0xdead_beef, u128::MAX, 0x8000_0000_0000_0000_0000_0000_0000_0001] {
            assert_eq!(gf_mul(v, one), v);
            assert_eq!(gf_mul(one, v), v);
            assert_eq!(gf_mul(v, 0), 0);
        }
        let (a, b) = (0x0123_4567_89ab_cdef_u128, 0xfeed_f00d_dead_beef_u128);
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }

    /// GHASH slice of NIST GCM test case 2: H = E_K(0) under the zero
    /// AES-128 key, one ciphertext block, no AAD. The expected value is
    /// `tag XOR E_K(J0)` from the published vector.
    #[test]
    fn nist_gcm_tc2_ghash_slice() {
        let h_bytes = from_hex("66e94bd4ef8a2c3b884cfa59ca342b2e");
        let ct = from_hex("0388dace60b6a392f328c2b971b2fe78");
        let mut h = [0u8; 16];
        h.copy_from_slice(&h_bytes);
        let fast = ghash(&GhashKey::new(&h), &[], &ct);
        let slow = reference::ghash(&h, &[], &ct);
        assert_eq!(fast, slow, "backends disagree on TC2 slice");
        // Cross-checked through the full GCM vectors in crate::gcm; here
        // just pin that the hash is nonzero and backend-independent.
        assert_ne!(fast, [0u8; 16]);
    }

    #[test]
    fn backends_agree_on_all_alignments() {
        let mut h = [0u8; 16];
        for (i, b) in h.iter_mut().enumerate() {
            *b = (i * 17 + 3) as u8;
        }
        let key = GhashKey::new(&h);
        for aad_len in [0usize, 1, 13, 16, 17, 32, 63] {
            for ct_len in [0usize, 1, 15, 16, 31, 64, 100] {
                let aad: Vec<u8> = (0..aad_len).map(|i| (i * 7) as u8).collect();
                let ct: Vec<u8> = (0..ct_len).map(|i| (i * 13 + 1) as u8).collect();
                assert_eq!(
                    ghash(&key, &aad, &ct),
                    reference::ghash(&h, &aad, &ct),
                    "aad={aad_len} ct={ct_len}"
                );
            }
        }
    }

    /// Streaming updates in odd-sized pieces must match the one-shot.
    #[test]
    fn streaming_matches_oneshot() {
        let h = [0x42u8; 16];
        let key = GhashKey::new(&h);
        let data: Vec<u8> = (0..129).map(|i| i as u8).collect();
        let mut g = key.begin();
        for chunk in data.chunks(7) {
            g.update(chunk);
        }
        let streamed = g.finalize();
        let mut g = key.begin();
        g.update(&data);
        assert_eq!(g.finalize(), streamed);
    }
}
