//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8): the one-time Poly1305 key
//! comes from ChaCha20 block 0, data is encrypted from counter 1, and
//! the MAC covers `aad || pad16 || ct || pad16 || le64(lens)`. Same
//! seal/open surface and opaque error as [`crate::AesGcm`], so the
//! record layer dispatches over both uniformly.

use crate::chacha::{ChaCha20, NONCE_LEN};
use crate::gcm::{AeadError, TAG_LEN};
use crate::poly1305::Poly1305;
use crate::ct_eq;

/// A ChaCha20-Poly1305 key.
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    chacha: ChaCha20,
}

impl ChaCha20Poly1305 {
    /// Load a 32-byte key.
    pub fn new(key: &[u8; 32]) -> Self {
        Self { chacha: ChaCha20::new(key) }
    }

    /// The per-nonce one-time Poly1305 key: first 32 keystream bytes of
    /// block 0.
    fn one_time_key(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
        let mut block = [0u8; 64];
        self.chacha.block(0, nonce, &mut block);
        block[..32].try_into().unwrap()
    }

    /// The RFC 8439 tag over `aad` and ciphertext.
    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ct: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = Poly1305::new(&self.one_time_key(nonce));
        let zeros = [0u8; 16];
        mac.update(aad);
        mac.update(&zeros[..(16 - aad.len() % 16) % 16]);
        mac.update(ct);
        mac.update(&zeros[..(16 - ct.len() % 16) % 16]);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ct.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypt `buf[from..]` in place and append the 16-byte tag;
    /// `buf[..from]` is left untouched.
    pub fn seal_in_place(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], buf: &mut Vec<u8>, from: usize) {
        debug_assert!(from <= buf.len());
        self.chacha.xor_stream(1, nonce, &mut buf[from..]);
        let tag = self.tag(nonce, aad, &buf[from..]);
        buf.extend_from_slice(&tag);
    }

    /// Verify and decrypt `buf` (`ciphertext || tag`) in place, returning
    /// the plaintext length. Tag checked (constant-time) before decrypting;
    /// every failure is the same opaque [`AeadError`].
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> Result<usize, AeadError> {
        if buf.len() < TAG_LEN {
            return Err(AeadError);
        }
        let ct_len = buf.len() - TAG_LEN;
        let expected = self.tag(nonce, aad, &buf[..ct_len]);
        if !ct_eq(&expected, &buf[ct_len..]) {
            return Err(AeadError);
        }
        self.chacha.xor_stream(1, nonce, &mut buf[..ct_len]);
        Ok(ct_len)
    }

    /// Allocating convenience: seal `plain` into `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plain: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plain.len() + TAG_LEN);
        out.extend_from_slice(plain);
        self.seal_in_place(nonce, aad, &mut out, 0);
        out
    }

    /// Allocating convenience: open `ciphertext || tag` back to plaintext.
    pub fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], wire: &[u8]) -> Result<Vec<u8>, AeadError> {
        let mut buf = wire.to_vec();
        let len = self.open_in_place(nonce, aad, &mut buf)?;
        buf.truncate(len);
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2.
        let key: [u8; 32] = (0x80..0xa0u8).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = from_hex("070000004041424344454647").try_into().unwrap();
        let aad = from_hex("50515253c0c1c2c3c4c5c6c7");
        let plain = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it."
            .to_vec();
        let aead = ChaCha20Poly1305::new(&key);
        let wire = aead.seal(&nonce, &aad, &plain);
        let mut expect = from_hex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        expect.extend_from_slice(&from_hex("1ae10b594f09e26a7e902ecbd0600691"));
        assert_eq!(wire, expect);
        assert_eq!(aead.open(&nonce, &aad, &wire).unwrap(), plain);
    }

    #[test]
    fn tampered_anything_fails_opaquely() {
        let aead = ChaCha20Poly1305::new(&[5u8; 32]);
        let nonce = [9u8; 12];
        let wire = aead.seal(&nonce, b"hdr", b"some record payload");
        for i in 0..wire.len() {
            let mut w = wire.clone();
            w[i] ^= 0x80;
            assert_eq!(aead.open(&nonce, b"hdr", &w).unwrap_err(), AeadError, "byte {i}");
        }
        assert_eq!(aead.open(&nonce, b"HDR", &wire).unwrap_err(), AeadError);
        assert_eq!(aead.open(&[1u8; 12], b"hdr", &wire).unwrap_err(), AeadError);
        assert_eq!(aead.open(&nonce, b"hdr", &wire[..10]).unwrap_err(), AeadError);
    }

    #[test]
    fn in_place_matches_allocating_and_preserves_prefix() {
        let aead = ChaCha20Poly1305::new(&[3u8; 32]);
        let nonce = [1u8; 12];
        for len in [0usize, 1, 15, 16, 63, 64, 65, 8192] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
            let mut buf = vec![0xAB; 7];
            buf.extend_from_slice(&pt);
            aead.seal_in_place(&nonce, b"aad", &mut buf, 7);
            assert_eq!(&buf[..7], &[0xAB; 7][..], "prefix untouched len={len}");
            assert_eq!(&buf[7..], &aead.seal(&nonce, b"aad", &pt)[..], "len={len}");
            let n = aead.open_in_place(&nonce, b"aad", &mut buf[7..]).unwrap();
            assert_eq!(&buf[7..7 + n], &pt[..], "roundtrip len={len}");
        }
    }
}
