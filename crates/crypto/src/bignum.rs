//! Arbitrary-precision unsigned integers for the public-key layer.
//!
//! Little-endian `u32` limbs with `u64` intermediate arithmetic; division
//! is Knuth's Algorithm D. Sized and tuned for 512–2048-bit RSA — the only
//! consumer — rather than general-purpose bignum work.

use rand::Rng;
use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing zero limbs; zero is the empty vector.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// Build from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = Self { limbs: vec![v as u32, (v >> 32) as u32] };
        n.normalize();
        n
    }

    /// Build from big-endian bytes (the wire format used by certificates).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut iter = bytes.rchunks(4);
        for chunk in &mut iter {
            let mut v = 0u32;
            for &b in chunk {
                v = (v << 8) | b as u32;
            }
            limbs.push(v);
        }
        let mut n = Self { limbs };
        n.normalize();
        n
    }

    /// Serialize to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Hex string (lowercase, no leading zeros; "0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        s
    }

    /// Parse a hex string (no prefix).
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = if s.len() % 2 == 1 { format!("0{s}") } else { s.to_string() };
        for i in (0..s.len()).step_by(2) {
            bytes.push(u8::from_str_radix(&s[i..i + 2], 16).ok()?);
        }
        Some(Self::from_bytes_be(&bytes))
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True when the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 32, i % 32);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Interpret the low 64 bits as a `u64` (truncating).
    pub fn low_u64(&self) -> u64 {
        let lo = *self.limbs.first().unwrap_or(&0) as u64;
        let hi = *self.limbs.get(1).unwrap_or(&0) as u64;
        (hi << 32) | lo
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let s = a + b + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`. Panics if `other > self` (callers compare first).
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// Schoolbook multiplication — quadratic, fine at RSA sizes.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u64 * b as u64 + out[i + j] as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Self {
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let mut out: Vec<u32> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..out.len() {
                let hi = if i + 1 < out.len() { out[i + 1] } else { 0 };
                out[i] = (out[i] >> bit_shift) | (hi << (32 - bit_shift));
            }
        }
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder: `(self / divisor, self % divisor)`.
    ///
    /// Knuth TAOCP vol. 2 Algorithm D, with a single-limb fast path.
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut q = vec![0u32; self.limbs.len()];
            let mut rem = 0u64;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut qn = Self { limbs: q };
            qn.normalize();
            return (qn, Self::from_u64(rem));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let mut q = vec![0u32; m + 1];

        for j in (0..=m).rev() {
            // Estimate the quotient digit from the top two limbs.
            let top = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut qhat = top / vn[n - 1] as u64;
            let mut rhat = top % vn[n - 1] as u64;
            while qhat >= 1 << 32
                || qhat * vn[n - 2] as u64 > ((rhat << 32) | un[j + n - 2] as u64)
            {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat >= 1 << 32 {
                    break;
                }
            }
            // Multiply-subtract qhat * v from u[j..j+n+1].
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[i + j] as i64 - (p as u32) as i64 - borrow;
                un[i + j] = t as u32;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i64 - carry as i64 - borrow;
            un[j + n] = t as u32;

            if t < 0 {
                // qhat was one too large: add v back.
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let s = un[i + j] as u64 + vn[i] as u64 + carry;
                    un[i + j] = s as u32;
                    carry = s >> 32;
                }
                un[j + n] = (un[j + n] as u64).wrapping_add(carry) as u32;
            }
            q[j] = qhat as u32;
        }

        let mut quotient = Self { limbs: q };
        quotient.normalize();
        let mut rem = Self { limbs: un[..n].to_vec() };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self % modulus`.
    pub fn rem(&self, modulus: &Self) -> Self {
        self.div_rem(modulus).1
    }

    /// Modular exponentiation `self^exp mod modulus` (square-and-multiply).
    pub fn modpow(&self, exp: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "modpow modulus is zero");
        if modulus == &Self::one() {
            return Self::zero();
        }
        let mut base = self.rem(modulus);
        let mut result = Self::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul(&base).rem(modulus);
            }
            if i + 1 < exp.bit_len() {
                base = base.mul(&base).rem(modulus);
            }
        }
        result
    }

    /// Greatest common divisor (binary-free Euclid; division is fast here).
    pub fn gcd(&self, other: &Self) -> Self {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse `self^-1 mod modulus`, or `None` when not coprime.
    ///
    /// Iterative extended Euclid tracking signed Bézout coefficients.
    pub fn modinv(&self, modulus: &Self) -> Option<Self> {
        if modulus.is_zero() {
            return None;
        }
        // (old_r, r) and signed (old_t, t) with explicit sign flags.
        let mut old_r = self.rem(modulus);
        let mut r = modulus.clone();
        let mut old_t = (Self::one(), false); // (magnitude, negative?)
        let mut t = (Self::zero(), false);
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_t = old_t - q * t  (signed arithmetic)
            let qt = q.mul(&t.0);
            let new_t = signed_sub(&old_t, &(qt, t.1));
            old_t = std::mem::replace(&mut t, new_t);
        }
        if old_r != Self::one() {
            return None;
        }
        let (mag, neg) = old_t;
        Some(if neg { modulus.sub(&mag.rem(modulus)).rem(modulus) } else { mag.rem(modulus) })
    }

    /// Uniformly random integer with exactly `bits` bits (top bit set).
    pub fn random_bits<R: Rng>(rng: &mut R, bits: usize) -> Self {
        assert!(bits > 0);
        let limbs_needed = bits.div_ceil(32);
        let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs_needed - 1) * 32;
        let top = &mut limbs[limbs_needed - 1];
        if top_bits < 32 {
            *top &= (1u32 << top_bits) - 1;
        }
        *top |= 1 << (top_bits - 1); // force exact bit length
        let mut n = Self { limbs };
        n.normalize();
        n
    }

    /// Uniformly random integer in `[0, bound)` by rejection sampling.
    pub fn random_below<R: Rng>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero());
        let bits = bound.bit_len();
        loop {
            let limbs_needed = bits.div_ceil(32);
            let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.gen()).collect();
            let top_bits = bits - (limbs_needed - 1) * 32;
            if top_bits < 32 {
                limbs[limbs_needed - 1] &= (1u32 << top_bits) - 1;
            }
            let mut n = Self { limbs };
            n.normalize();
            if &n < bound {
                return n;
            }
        }
    }
}

/// Signed subtraction on (magnitude, negative?) pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        (false, true) => (a.0.add(&b.0), false),  // a - (-b) = a + b
        (true, false) => (a.0.add(&b.0), true),   // -a - b = -(a + b)
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        (true, true) => {
            // -a - (-b) = b - a
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(n(2).add(&n(3)), n(5));
        assert_eq!(n(1 << 40).sub(&n(1)), n((1 << 40) - 1));
        assert_eq!(n(123456789).mul(&n(987654321)), BigUint::from_u64(123456789 * 987654321));
        let (q, r) = n(1000).div_rem(&n(7));
        assert_eq!((q, r), (n(142), n(6)));
    }

    #[test]
    fn carry_propagation() {
        let max = BigUint::from_u64(u64::MAX);
        let sum = max.add(&BigUint::one());
        assert_eq!(sum.bit_len(), 65);
        assert_eq!(sum.sub(&BigUint::one()), max);
    }

    #[test]
    fn multi_limb_mul_div_roundtrip() {
        let a = BigUint::from_hex("fedcba9876543210fedcba9876543210").unwrap();
        let b = BigUint::from_hex("123456789abcdef0fedcba").unwrap();
        let prod = a.mul(&b);
        let (q, r) = prod.div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
        // with remainder
        let prod1 = prod.add(&n(12345));
        let (q2, r2) = prod1.div_rem(&b);
        assert_eq!(q2, a);
        assert_eq!(r2, n(12345));
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_hex("1f").unwrap();
        assert_eq!(a.shl(100).shr(100), a);
        assert_eq!(a.shl(4), BigUint::from_hex("1f0").unwrap());
        assert_eq!(a.shr(5), BigUint::zero());
        assert_eq!(a.shr(4), BigUint::one());
    }

    #[test]
    fn bytes_roundtrip() {
        let a = BigUint::from_hex("0102030405060708090a0b0c0d0e0f").unwrap();
        assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
        assert_eq!(a.to_bytes_be().len(), 15);
        assert!(BigUint::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn modpow_small_cases() {
        // 4^13 mod 497 = 445 (classic textbook example)
        assert_eq!(n(4).modpow(&n(13), &n(497)), n(445));
        // Fermat: a^(p-1) mod p == 1
        assert_eq!(n(7).modpow(&n(1008), &n(1009)), n(1));
        assert_eq!(n(5).modpow(&BigUint::zero(), &n(11)), n(1));
    }

    #[test]
    fn modpow_multi_limb() {
        let p = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap(); // 128-bit prime
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef").unwrap();
        // Fermat's little theorem
        assert_eq!(a.modpow(&p.sub(&BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn modinv_cases() {
        assert_eq!(n(3).modinv(&n(11)), Some(n(4)));
        assert_eq!(n(10).modinv(&n(17)), Some(n(12)));
        assert_eq!(n(6).modinv(&n(9)), None); // not coprime
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap();
        let a = BigUint::from_hex("abcdef0123456789").unwrap();
        let inv = a.modinv(&m).unwrap();
        assert_eq!(a.mul(&inv).rem(&m), BigUint::one());
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(n(48).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(13)), n(1));
        assert_eq!(n(0).gcd(&n(5)), n(5));
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = rand::thread_rng();
        for bits in [1usize, 31, 32, 33, 512] {
            let r = BigUint::random_bits(&mut rng, bits);
            assert_eq!(r.bit_len(), bits);
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rand::thread_rng();
        let bound = BigUint::from_hex("10000000000000001").unwrap();
        for _ in 0..50 {
            assert!(BigUint::random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn hex_roundtrip() {
        for h in ["0", "1", "ff", "deadbeef", "123456789abcdef0123456789abcdef01"] {
            let v = BigUint::from_hex(h).unwrap();
            assert_eq!(v.to_hex(), h, "hex roundtrip for {h}");
        }
        // Leading zeros are normalized away.
        assert_eq!(BigUint::from_hex("000ff").unwrap().to_hex(), "ff");
    }
}
