//! Poly1305 one-time authenticator (RFC 8439 §2.5), 26-bit-limb scalar
//! implementation (the widely used "donna" radix-2^26 shape: five limbs
//! keep carries inside u64 multiplies, no 128-bit arithmetic needed in
//! the hot loop beyond u64×u64→u128 products).

/// Poly1305 key length: `r || s`, 16 bytes each.
pub const KEY_LEN: usize = 32;
/// Tag length.
pub const TAG_LEN: usize = 16;

/// A streaming Poly1305 computation over one (r, s) one-time key.
#[derive(Clone)]
pub struct Poly1305 {
    r: [u64; 5],
    s: [u64; 4],
    h: [u64; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Initialize from the 32-byte one-time key; `r` is clamped per RFC.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let t0 = u32::from_le_bytes(key[0..4].try_into().unwrap()) as u64;
        let t1 = u32::from_le_bytes(key[4..8].try_into().unwrap()) as u64;
        let t2 = u32::from_le_bytes(key[8..12].try_into().unwrap()) as u64;
        let t3 = u32::from_le_bytes(key[12..16].try_into().unwrap()) as u64;
        // Clamp and split into 26-bit limbs in one pass.
        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];
        let s = [
            u32::from_le_bytes(key[16..20].try_into().unwrap()) as u64,
            u32::from_le_bytes(key[20..24].try_into().unwrap()) as u64,
            u32::from_le_bytes(key[24..28].try_into().unwrap()) as u64,
            u32::from_le_bytes(key[28..32].try_into().unwrap()) as u64,
        ];
        Self { r, s, h: [0; 5], buf: [0; 16], buf_len: 0 }
    }

    /// Absorb one 16-byte block (or a short final block) into `h`.
    /// `hibit` is 1 for full blocks, matching the 2^128 pad bit.
    fn block(&mut self, m: &[u8; 16], hibit: u64) {
        let t0 = u32::from_le_bytes(m[0..4].try_into().unwrap()) as u64;
        let t1 = u32::from_le_bytes(m[4..8].try_into().unwrap()) as u64;
        let t2 = u32::from_le_bytes(m[8..12].try_into().unwrap()) as u64;
        let t3 = u32::from_le_bytes(m[12..16].try_into().unwrap()) as u64;

        let h0 = self.h[0] + (t0 & 0x03ff_ffff);
        let h1 = self.h[1] + (((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff);
        let h2 = self.h[2] + (((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff);
        let h3 = self.h[3] + (((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff);
        let h4 = self.h[4] + ((t3 >> 8) | (hibit << 24));

        let [r0, r1, r2, r3, r4] = self.r;
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);

        // h *= r (mod 2^130 - 5): schoolbook with the 5·r wraparound.
        let d0 = h0 as u128 * r0 as u128
            + h1 as u128 * s4 as u128
            + h2 as u128 * s3 as u128
            + h3 as u128 * s2 as u128
            + h4 as u128 * s1 as u128;
        let d1 = h0 as u128 * r1 as u128
            + h1 as u128 * r0 as u128
            + h2 as u128 * s4 as u128
            + h3 as u128 * s3 as u128
            + h4 as u128 * s2 as u128;
        let d2 = h0 as u128 * r2 as u128
            + h1 as u128 * r1 as u128
            + h2 as u128 * r0 as u128
            + h3 as u128 * s4 as u128
            + h4 as u128 * s3 as u128;
        let d3 = h0 as u128 * r3 as u128
            + h1 as u128 * r2 as u128
            + h2 as u128 * r1 as u128
            + h3 as u128 * r0 as u128
            + h4 as u128 * s4 as u128;
        let d4 = h0 as u128 * r4 as u128
            + h1 as u128 * r3 as u128
            + h2 as u128 * r2 as u128
            + h3 as u128 * r1 as u128
            + h4 as u128 * r0 as u128;

        // Carry chain back to 26-bit limbs.
        let mut c;
        let mut h0 = (d0 as u64) & 0x03ff_ffff;
        c = (d0 >> 26) as u64;
        let d1 = d1 + c as u128;
        let mut h1 = (d1 as u64) & 0x03ff_ffff;
        c = (d1 >> 26) as u64;
        let d2 = d2 + c as u128;
        let h2 = (d2 as u64) & 0x03ff_ffff;
        c = (d2 >> 26) as u64;
        let d3 = d3 + c as u128;
        let h3 = (d3 as u64) & 0x03ff_ffff;
        c = (d3 >> 26) as u64;
        let d4 = d4 + c as u128;
        let h4 = (d4 as u64) & 0x03ff_ffff;
        c = (d4 >> 26) as u64;
        h0 += c * 5;
        let c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        self.h = [h0, h1, h2, h3, h4];
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = data.len().min(16 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let m = self.buf;
                self.block(&m, 1);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let m: [u8; 16] = data[..16].try_into().unwrap();
            self.block(&m, 1);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish: final partial block gets `0x01` then zero padding (the
    /// hibit rides in the explicit byte, not the 2^128 position).
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            let mut m = [0u8; 16];
            m[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            m[self.buf_len] = 1;
            self.block(&m, 0);
        }

        // Fully reduce h mod 2^130 - 5 (constant-time select of h vs h+5-2^130).
        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;
        let mut c = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // mask = all-ones if h >= p (g4 did not borrow), else zero.
        let mask = (g4 >> 63).wrapping_sub(1);
        h0 = (h0 & !mask) | (g0 & mask);
        h1 = (h1 & !mask) | (g1 & mask);
        h2 = (h2 & !mask) | (g2 & mask);
        h3 = (h3 & !mask) | (g3 & mask);
        h4 = (h4 & !mask) | (g4 & mask & 0x03ff_ffff);

        // Repack to four 32-bit words and add s (mod 2^128).
        let f0 = (h0 | (h1 << 26)) & 0xffff_ffff;
        let f1 = ((h1 >> 6) | (h2 << 20)) & 0xffff_ffff;
        let f2 = ((h2 >> 12) | (h3 << 14)) & 0xffff_ffff;
        let f3 = ((h3 >> 18) | (h4 << 8)) & 0xffff_ffff;

        let mut tag = [0u8; TAG_LEN];
        let mut acc = f0 + self.s[0];
        tag[0..4].copy_from_slice(&(acc as u32).to_le_bytes());
        acc = f1 + self.s[1] + (acc >> 32);
        tag[4..8].copy_from_slice(&(acc as u32).to_le_bytes());
        acc = f2 + self.s[2] + (acc >> 32);
        tag[8..12].copy_from_slice(&(acc as u32).to_le_bytes());
        acc = f3 + self.s[3] + (acc >> 32);
        tag[12..16].copy_from_slice(&(acc as u32).to_le_bytes());
        tag
    }
}

/// One-shot MAC over `data`.
pub fn poly1305(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(data);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_mac_vector() {
        // RFC 8439 §2.5.2.
        let key: [u8; 32] = from_hex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b",
        )
        .try_into()
        .unwrap();
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(tag.to_vec(), from_hex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key: [u8; 32] = (0..32u8).map(|i| i.wrapping_mul(7)).collect::<Vec<_>>()
            .try_into()
            .unwrap();
        let data: Vec<u8> = (0..517u32).map(|i| (i % 251) as u8).collect();
        let oneshot = poly1305(&key, &data);
        for split in [0usize, 1, 15, 16, 17, 100, 516, 517] {
            let mut p = Poly1305::new(&key);
            p.update(&data[..split]);
            p.update(&data[split..]);
            assert_eq!(p.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn full_reduction_edge_case() {
        // h near 2^130 - 5 exercises the g-select path: an all-ones
        // message with an r that drives h high. Cross-check against a
        // second evaluation order, not a fixed vector — the point is
        // self-consistency of the reduction.
        let key: [u8; 32] = [0xff; 32];
        let data = [0xffu8; 64];
        let a = poly1305(&key, &data);
        let mut p = Poly1305::new(&key);
        for chunk in data.chunks(7) {
            p.update(chunk);
        }
        assert_eq!(p.finalize(), a);
    }
}
