//! TLS-1.2-style pseudo-random function (P_SHA256) for key derivation.
//!
//! The GTLS handshake feeds the RSA-transported pre-master secret plus both
//! hello randoms through this PRF to derive the record-layer key block —
//! the same key-expansion economics as the paper's SSL sessions.

use crate::{hmac_sha256, Sha256, Digest};

/// TLS 1.2 `P_SHA256(secret, label || seed)` expanded to `out_len` bytes.
///
/// `A(0) = seed; A(i) = HMAC(secret, A(i-1));
///  output = HMAC(secret, A(1) || seed) || HMAC(secret, A(2) || seed) ...`
pub fn prf_sha256(secret: &[u8], label: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut label_seed = Vec::with_capacity(label.len() + seed.len());
    label_seed.extend_from_slice(label);
    label_seed.extend_from_slice(seed);

    let mut out = Vec::with_capacity(out_len + Sha256::OUTPUT_LEN);
    let mut a = hmac_sha256(secret, &label_seed);
    while out.len() < out_len {
        let mut block_input = a.clone();
        block_input.extend_from_slice(&label_seed);
        out.extend_from_slice(&hmac_sha256(secret, &block_input));
        a = hmac_sha256(secret, &a);
    }
    out.truncate(out_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Published TLS 1.2 PRF (SHA-256) test vector (IETF TLS WG / Mavrogiannopoulos).
    #[test]
    fn tls12_prf_vector() {
        let secret = [
            0x9b, 0xbe, 0x43, 0x6b, 0xa9, 0x40, 0xf0, 0x17, 0xb1, 0x76, 0x52, 0x84, 0x9a, 0x71,
            0xdb, 0x35,
        ];
        let seed = [
            0xa0, 0xba, 0x9f, 0x93, 0x6c, 0xda, 0x31, 0x18, 0x27, 0xa6, 0xf7, 0x96, 0xff, 0xd5,
            0x19, 0x8c,
        ];
        let label = b"test label";
        let out = prf_sha256(&secret, label, &seed, 100);
        assert_eq!(
            hex(&out[..32]),
            "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a"
        );
    }

    #[test]
    fn deterministic_and_length_exact() {
        let a = prf_sha256(b"secret", b"lbl", b"seed", 77);
        let b = prf_sha256(b"secret", b"lbl", b"seed", 77);
        assert_eq!(a, b);
        assert_eq!(a.len(), 77);
    }

    #[test]
    fn different_inputs_diverge() {
        let base = prf_sha256(b"secret", b"lbl", b"seed", 32);
        assert_ne!(prf_sha256(b"secret2", b"lbl", b"seed", 32), base);
        assert_ne!(prf_sha256(b"secret", b"lbl2", b"seed", 32), base);
        assert_ne!(prf_sha256(b"secret", b"lbl", b"seed2", 32), base);
    }

    #[test]
    fn prefix_property() {
        // Shorter output is a prefix of longer output with same inputs.
        let long = prf_sha256(b"s", b"l", b"x", 96);
        let short = prf_sha256(b"s", b"l", b"x", 40);
        assert_eq!(&long[..40], &short[..]);
    }
}
