//! HMAC (FIPS 198 / RFC 2104), generic over the underlying [`Digest`].

use crate::Digest;

/// Streaming HMAC computation.
///
/// ```
/// use sgfs_crypto::{Hmac, Sha1};
/// let mac = Hmac::<Sha1>::mac(b"key", b"message");
/// assert_eq!(mac.len(), 20);
/// ```
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    /// Outer-pad key block, retained until finalize.
    opad: Vec<u8>,
}

impl<D: Digest> Hmac<D> {
    /// Start a new HMAC with the given key (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let hashed = D::digest(key);
            key_block[..hashed.len()].copy_from_slice(&hashed);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
        let mut inner = D::new();
        inner.update(&ipad);
        Self { inner, opad }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the MAC.
    pub fn finalize(self) -> Vec<u8> {
        let inner_hash = self.inner.finalize();
        let mut outer = D::new();
        outer.update(&self.opad);
        outer.update(&inner_hash);
        outer.finalize()
    }

    /// One-shot convenience.
    pub fn mac(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }
}

/// One-shot HMAC-SHA1 (the record-layer integrity algorithm in the paper).
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> Vec<u8> {
    Hmac::<crate::Sha1>::mac(key, data)
}

/// HMAC-SHA1 with a precomputed key block.
///
/// [`Hmac::new`] allocates and absorbs the padded key block on every MAC;
/// on a record layer that is once per record. This form does that work
/// once per key: `new` absorbs the inner and outer pads, and each
/// [`begin`](Self::begin) clones ~100 bytes of digest state. Combined
/// with [`HmacSha1::finalize_fixed`], a full MAC computation performs no
/// heap allocation.
#[derive(Clone)]
pub struct HmacSha1Key {
    inner: crate::Sha1,
    outer: crate::Sha1,
}

impl HmacSha1Key {
    /// Precompute the pad states for `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        const BLOCK: usize = <crate::Sha1 as Digest>::BLOCK_LEN;
        let mut key_block = [0u8; BLOCK];
        if key.len() > BLOCK {
            let hashed = crate::Sha1::digest(key);
            key_block[..hashed.len()].copy_from_slice(&hashed);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner = crate::Sha1::new();
        let mut outer = crate::Sha1::new();
        let mut pad = [0u8; BLOCK];
        for (p, k) in pad.iter_mut().zip(&key_block) {
            *p = k ^ 0x36;
        }
        inner.update(&pad);
        for (p, k) in pad.iter_mut().zip(&key_block) {
            *p = k ^ 0x5c;
        }
        outer.update(&pad);
        Self { inner, outer }
    }

    /// Start a MAC computation under this key.
    pub fn begin(&self) -> HmacSha1 {
        HmacSha1 { inner: self.inner.clone(), outer: self.outer.clone() }
    }
}

/// An in-flight HMAC-SHA1 computation started from an [`HmacSha1Key`].
pub struct HmacSha1 {
    inner: crate::Sha1,
    outer: crate::Sha1,
}

impl HmacSha1 {
    /// Absorb more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish, returning the MAC as a fixed array (no allocation).
    pub fn finalize_fixed(mut self) -> [u8; 20] {
        let inner_hash = self.inner.finalize_fixed();
        self.outer.update(&inner_hash);
        self.outer.finalize_fixed()
    }
}

/// One-shot HMAC-SHA256 (used by the PRF and service-message signatures).
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Vec<u8> {
    Hmac::<crate::Sha256>::mac(key, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sha1, Sha256};

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 HMAC-SHA1 test vectors.
    #[test]
    fn rfc2202_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_case2() {
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_long_key() {
        // Case 6: 80-byte key, longer than the block size path is not hit,
        // but exercises the zero-padded path; case with >64 key exercises
        // the hashed-key path.
        let key = [0xaa; 80];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    // RFC 4231 HMAC-SHA256 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn precomputed_key_matches_oneshot() {
        for key_len in [0usize, 1, 20, 64, 80] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 3 + 1) as u8).collect();
            let pk = HmacSha1Key::new(&key);
            for msg_len in [0usize, 1, 55, 64, 200] {
                let msg: Vec<u8> = (0..msg_len).map(|i| (i * 7) as u8).collect();
                let mut h = pk.begin();
                for chunk in msg.chunks(13) {
                    h.update(chunk);
                }
                assert_eq!(
                    h.finalize_fixed().to_vec(),
                    hmac_sha1(&key, &msg),
                    "key_len {key_len} msg_len {msg_len}"
                );
            }
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let key = b"0123456789abcdef";
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let oneshot = Hmac::<Sha256>::mac(key, &data);
        let mut h = Hmac::<Sha256>::new(key);
        h.update(&data[..100]);
        h.update(&data[100..]);
        assert_eq!(h.finalize(), oneshot);
        let s1 = Hmac::<Sha1>::mac(key, &data);
        let mut h = Hmac::<Sha1>::new(key);
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), s1);
    }
}
