//! AES-GCM (SP 800-38D) — single-pass authenticated encryption over the
//! dispatched AES backend ([`crate::Aes`], AES-NI where available) and
//! GHASH ([`crate::ghash`], PCLMUL where available).
//!
//! CTR keystream blocks are generated into a fixed stack scratch and
//! encrypted through the interleaved bulk AES entry points, so sealing
//! and opening are allocation-free and run at the block cipher's bulk
//! rate; the GHASH pass over AAD and ciphertext is the only other
//! per-byte work. Open verifies the tag (constant-time) *before*
//! decrypting, and reports every failure as the same opaque
//! [`AeadError`].

use crate::ghash::{ghash, GhashKey};
use crate::{ct_eq, Aes};

/// Opaque authenticated-decryption failure. Deliberately carries no
/// detail: distinguishing tag, padding, or length failures is exactly
/// the oracle AEAD removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "authenticated decryption failed")
    }
}

impl std::error::Error for AeadError {}

/// AEAD authentication tag length (GCM and ChaCha20-Poly1305 alike).
pub const TAG_LEN: usize = 16;
/// AEAD nonce length (96-bit, the GCM fast path and the RFC 8439 size).
pub const NONCE_LEN: usize = 12;

/// CTR scratch: 64 keystream blocks per refill, matching the CBC bulk
/// decrypt chunk so the four-lane AES backends stay saturated.
const CTR_CHUNK: usize = 64 * 16;

/// An AES-128/256-GCM key: the AES schedule plus the GHASH subkey.
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes,
    ghash: GhashKey,
}

impl AesGcm {
    /// Expand `key` (16 or 32 bytes) and derive `H = E_K(0^128)`.
    pub fn new(key: &[u8]) -> Self {
        let aes = Aes::new(key);
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        Self { ghash: GhashKey::new(&h), aes }
    }

    /// Like [`AesGcm::new`] but with GHASH pinned to the scalar backend
    /// (differential testing of the PCLMUL path).
    pub fn new_portable_ghash(key: &[u8]) -> Self {
        let aes = Aes::new(key);
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        Self { ghash: GhashKey::new_portable(&h), aes }
    }

    /// The GHASH backend in use (`"pclmul"` or `"scalar"`).
    pub fn ghash_backend(&self) -> &'static str {
        self.ghash.backend()
    }

    /// The pre-counter block `J0` for a 96-bit nonce.
    fn j0(nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// XOR the CTR keystream starting at counter value `ctr` into `data`.
    fn ctr_xor(&self, j0: &[u8; 16], mut ctr: u32, data: &mut [u8]) {
        let mut ks = [0u8; CTR_CHUNK];
        let mut off = 0;
        while off < data.len() {
            let n = (data.len() - off).min(CTR_CHUNK);
            let blocks = n.div_ceil(16);
            for b in 0..blocks {
                ks[b * 16..b * 16 + 12].copy_from_slice(&j0[..12]);
                ks[b * 16 + 12..b * 16 + 16].copy_from_slice(&ctr.to_be_bytes());
                ctr = ctr.wrapping_add(1);
            }
            self.aes.encrypt_blocks(&mut ks[..blocks * 16]);
            for (d, k) in data[off..off + n].iter_mut().zip(&ks[..n]) {
                *d ^= k;
            }
            off += n;
        }
    }

    /// The tag: `GHASH(H, aad, ct) XOR E_K(J0)`.
    fn tag(&self, j0: &[u8; 16], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let mut tag = ghash(&self.ghash, aad, ct);
        let mut ekj0 = *j0;
        self.aes.encrypt_block(&mut ekj0);
        for (t, e) in tag.iter_mut().zip(&ekj0) {
            *t ^= e;
        }
        tag
    }

    /// Encrypt `buf[from..]` in place and append the 16-byte tag.
    /// `buf[..from]` (e.g. a frame header already in the buffer) is left
    /// untouched. No heap allocation beyond `buf` growing by the tag.
    pub fn seal_in_place(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], buf: &mut Vec<u8>, from: usize) {
        debug_assert!(from <= buf.len());
        let j0 = Self::j0(nonce);
        self.ctr_xor(&j0, 2, &mut buf[from..]);
        let tag = self.tag(&j0, aad, &buf[from..]);
        buf.extend_from_slice(&tag);
    }

    /// Verify and decrypt `buf` (`ciphertext || tag`) in place, returning
    /// the plaintext length; `buf[..len]` holds the plaintext. The tag is
    /// checked in constant time before any byte is decrypted.
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> Result<usize, AeadError> {
        if buf.len() < TAG_LEN {
            return Err(AeadError);
        }
        let ct_len = buf.len() - TAG_LEN;
        let j0 = Self::j0(nonce);
        let expected = self.tag(&j0, aad, &buf[..ct_len]);
        if !ct_eq(&expected, &buf[ct_len..]) {
            return Err(AeadError);
        }
        self.ctr_xor(&j0, 2, &mut buf[..ct_len]);
        Ok(ct_len)
    }

    /// Allocating convenience: seal `plain` into `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plain: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plain.len() + TAG_LEN);
        out.extend_from_slice(plain);
        self.seal_in_place(nonce, aad, &mut out, 0);
        out
    }

    /// Allocating convenience: open `ciphertext || tag` back to plaintext.
    pub fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], wire: &[u8]) -> Result<Vec<u8>, AeadError> {
        let mut buf = wire.to_vec();
        let len = self.open_in_place(nonce, aad, &mut buf)?;
        buf.truncate(len);
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn nonce(hex: &str) -> [u8; 12] {
        from_hex(hex).try_into().unwrap()
    }

    struct Kat {
        key: &'static str,
        iv: &'static str,
        pt: &'static str,
        aad: &'static str,
        ct: &'static str,
        tag: &'static str,
    }

    /// NIST GCM spec test cases 1–4 (AES-128) and 13–16 (AES-256 subset).
    const KATS: &[Kat] = &[
        // TC1: empty everything.
        Kat {
            key: "00000000000000000000000000000000",
            iv: "000000000000000000000000",
            pt: "",
            aad: "",
            ct: "",
            tag: "58e2fccefa7e3061367f1d57a4e7455a",
        },
        // TC2: one zero block.
        Kat {
            key: "00000000000000000000000000000000",
            iv: "000000000000000000000000",
            pt: "00000000000000000000000000000000",
            aad: "",
            ct: "0388dace60b6a392f328c2b971b2fe78",
            tag: "ab6e47d42cec13bdf53a67b21257bddf",
        },
        // TC3: four full blocks, no AAD.
        Kat {
            key: "feffe9928665731c6d6a8f9467308308",
            iv: "cafebabefacedbaddecaf888",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            aad: "",
            ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
            tag: "4d5c2af327cd64a62cf35abd2ba6fab4",
        },
        // TC4: 60-byte plaintext + 20-byte AAD (partial blocks both).
        Kat {
            key: "feffe9928665731c6d6a8f9467308308",
            iv: "cafebabefacedbaddecaf888",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
            tag: "5bc94fbc3221a5db94fae95ae7121a47",
        },
        // TC13: AES-256, empty everything.
        Kat {
            key: "0000000000000000000000000000000000000000000000000000000000000000",
            iv: "000000000000000000000000",
            pt: "",
            aad: "",
            ct: "",
            tag: "530f8afbc74536b9a963b4f1c4cb738b",
        },
        // TC14: AES-256, one zero block.
        Kat {
            key: "0000000000000000000000000000000000000000000000000000000000000000",
            iv: "000000000000000000000000",
            pt: "00000000000000000000000000000000",
            aad: "",
            ct: "cea7403d4d606b6e074ec5d3baf39d18",
            tag: "d0d1c8a799996bf0265b98b5d48ab919",
        },
        // TC16: AES-256, 60-byte plaintext + 20-byte AAD.
        Kat {
            key: "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
            iv: "cafebabefacedbaddecaf888",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            ct: "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
                 8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662",
            tag: "76fc6ece0f4e1768cddf8853bb2d551b",
        },
    ];

    #[test]
    fn nist_gcm_known_answers() {
        for (i, kat) in KATS.iter().enumerate() {
            for portable in [false, true] {
                let gcm = if portable {
                    AesGcm::new_portable_ghash(&from_hex(kat.key))
                } else {
                    AesGcm::new(&from_hex(kat.key))
                };
                let iv = nonce(kat.iv);
                let aad = from_hex(kat.aad);
                let pt = from_hex(kat.pt);
                let wire = gcm.seal(&iv, &aad, &pt);
                let mut expect = from_hex(kat.ct);
                expect.extend_from_slice(&from_hex(kat.tag));
                assert_eq!(wire, expect, "KAT {i} seal (portable={portable})");
                assert_eq!(gcm.open(&iv, &aad, &wire).unwrap(), pt, "KAT {i} open");
            }
        }
    }

    #[test]
    fn tampered_anything_fails_opaquely() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let iv = [1u8; 12];
        let aad = b"header".to_vec();
        let wire = gcm.seal(&iv, &aad, b"payload bytes here");
        // Flip each byte in turn: ciphertext, tag — same opaque error.
        for i in 0..wire.len() {
            let mut w = wire.clone();
            w[i] ^= 0x40;
            assert_eq!(gcm.open(&iv, &aad, &w).unwrap_err(), AeadError, "byte {i}");
        }
        // Wrong AAD, wrong nonce, truncated wire.
        assert_eq!(gcm.open(&iv, b"Header", &wire).unwrap_err(), AeadError);
        assert_eq!(gcm.open(&[2u8; 12], &aad, &wire).unwrap_err(), AeadError);
        assert_eq!(gcm.open(&iv, &aad, &wire[..15]).unwrap_err(), AeadError);
    }

    #[test]
    fn in_place_matches_allocating_and_preserves_prefix() {
        let gcm = AesGcm::new(&[9u8; 32]);
        let iv = [3u8; 12];
        for len in [0usize, 1, 15, 16, 17, 1000, 8192] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 11) as u8).collect();
            let mut buf = vec![0xEE; 5];
            buf.extend_from_slice(&pt);
            gcm.seal_in_place(&iv, b"aad", &mut buf, 5);
            assert_eq!(&buf[..5], &[0xEE; 5][..], "prefix untouched len={len}");
            assert_eq!(&buf[5..], &gcm.seal(&iv, b"aad", &pt)[..], "len={len}");
            let n = gcm.open_in_place(&iv, b"aad", &mut buf[5..]).unwrap();
            assert_eq!(&buf[5..5 + n], &pt[..], "roundtrip len={len}");
        }
    }
}
