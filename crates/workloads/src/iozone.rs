//! IOzone read/reread (§6.2.1).
//!
//! The paper executes IOzone in read/reread mode: a 512 MB file —
//! deliberately 2× the client's 256 MB memory — is read sequentially
//! twice. LRU replacement means the buffer cache never helps, so the
//! client transfers the full 1 GB, exposing the worst-case per-byte cost
//! of the user-level and crypto layers. The file is preloaded into the
//! server's memory so no server disk I/O pollutes the measurement.

use crate::Prng;
use sgfs_net::SimClock;
use sgfs_nfsclient::{FsResult, NfsMount, OpenFlags};
use sgfs_vfs::{UserContext, Vfs};
use std::sync::Arc;
use std::time::Duration;

/// IOzone parameters.
#[derive(Debug, Clone)]
pub struct IozoneConfig {
    /// File size in bytes (paper: 512 MB; scaled runs keep the 2×-cache
    /// ratio).
    pub file_size: usize,
    /// Read call size (the paper's 32 KB block size).
    pub block: usize,
    /// Seed for the file contents.
    pub seed: u64,
}

impl IozoneConfig {
    /// A configuration sized relative to a client memory cache.
    pub fn for_cache(mem_cache_bytes: usize) -> Self {
        Self { file_size: mem_cache_bytes * 2, block: 32 * 1024, seed: 0x10_20_30 }
    }
}

/// Per-phase results.
#[derive(Debug, Clone)]
pub struct IozoneResult {
    /// First sequential read of the whole file.
    pub read: Duration,
    /// Second sequential read (reread).
    pub reread: Duration,
    /// Total runtime.
    pub total: Duration,
    /// Bytes transferred by the two passes together.
    pub bytes_read: u64,
}

/// The benchmark file's path inside the export.
pub const IOZONE_FILE: &str = "/iozone.tmp";

/// Preload the benchmark file directly into the server's (in-memory)
/// filesystem — the paper's "file is preloaded to the memory before each
/// run" step, bypassing the network entirely.
pub fn preload(server_vfs: &Vfs, cfg: &IozoneConfig) {
    let root = UserContext::root();
    let attr = server_vfs
        .resolve("/GFS", &root)
        .expect("export exists");
    let f = server_vfs
        .create(attr.ino, "iozone.tmp", 0o644, false, &root)
        .expect("create benchmark file");
    let mut rng = Prng::new(cfg.seed);
    let chunk = 1 << 20;
    let mut off = 0u64;
    while (off as usize) < cfg.file_size {
        let n = chunk.min(cfg.file_size - off as usize);
        server_vfs.write(f.ino, off, &rng.bytes(n), &root).expect("preload write");
        off += n as u64;
    }
}

/// Run read/reread against the mounted filesystem.
pub fn run(mount: &mut NfsMount, clock: &Arc<SimClock>, cfg: &IozoneConfig) -> FsResult<IozoneResult> {
    let mut bytes_read = 0u64;
    let pass = |mount: &mut NfsMount| -> FsResult<(Duration, u64)> {
        let t0 = clock.now();
        let fd = mount.open(IOZONE_FILE, OpenFlags::rdonly(), 0)?;
        let mut total = 0u64;
        loop {
            let data = mount.read(fd, cfg.block)?;
            if data.is_empty() {
                break;
            }
            total += data.len() as u64;
        }
        mount.close(fd)?;
        Ok((clock.now() - t0, total))
    };
    let (read, n1) = pass(mount)?;
    bytes_read += n1;
    let (reread, n2) = pass(mount)?;
    bytes_read += n2;
    assert_eq!(n1, cfg.file_size as u64, "first pass must read the whole file");
    assert_eq!(n2, cfg.file_size as u64, "second pass must read the whole file");
    Ok(IozoneResult { read, reread, total: read + reread, bytes_read })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgfs::session::{GridWorld, Session, SessionParams, SetupKind};

    #[test]
    fn iozone_reads_exactly_twice_the_file() {
        let world = GridWorld::new();
        let mut params = SessionParams::lan(SetupKind::NfsV3);
        params.mem_cache_bytes = 256 * 1024; // tiny cache
        let mut session = Session::build(&world, &params).unwrap();
        let cfg = IozoneConfig { file_size: 512 * 1024, block: 32 * 1024, seed: 1 };
        preload(session.server().vfs(), &cfg);
        let clock = session.clock().clone();
        let res = run(&mut session.mount, &clock, &cfg).unwrap();
        assert_eq!(res.bytes_read, 2 * cfg.file_size as u64);
        assert!(res.total > Duration::ZERO);
        // 2x-cache file: the reread cannot be served from memory, so both
        // passes issue roughly the same number of READ RPCs.
        let stats = session.mount.stats().clone();
        assert!(stats.read >= 2 * (cfg.file_size / cfg.block) as u64 - 2,
            "reread must miss: {} reads", stats.read);
        session.finish().unwrap();
    }
}
