//! PostMark (§6.2.2): the small-file mail/news/web-commerce workload.
//!
//! Three phases, exactly as Katcher's benchmark and the paper configure
//! them: create an initial pool (100 directories, 500 files of 512 B–16 KB),
//! run 1000 transactions (create/delete and read/append, 50/50 each), then
//! delete everything. Mostly metadata operations and small writes.

use crate::Prng;
use sgfs_net::SimClock;
use sgfs_nfsclient::{FsResult, NfsMount, OpenFlags};
use std::sync::Arc;
use std::time::Duration;

/// PostMark parameters (defaults = the paper's).
#[derive(Debug, Clone)]
pub struct PostmarkConfig {
    /// Initial directory count.
    pub dirs: usize,
    /// Initial file count.
    pub files: usize,
    /// Number of transactions.
    pub transactions: usize,
    /// Minimum file size.
    pub min_size: usize,
    /// Maximum file size.
    pub max_size: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for PostmarkConfig {
    fn default() -> Self {
        Self {
            dirs: 100,
            files: 500,
            transactions: 1000,
            min_size: 512,
            max_size: 16 * 1024,
            seed: 0xBEEF,
        }
    }
}

/// Per-phase runtimes.
#[derive(Debug, Clone)]
pub struct PostmarkResult {
    /// Pool creation.
    pub creation: Duration,
    /// Transaction phase.
    pub transaction: Duration,
    /// Pool deletion.
    pub deletion: Duration,
    /// Total.
    pub total: Duration,
}

fn dir_of(i: usize, dirs: usize) -> String {
    format!("/pm{:03}", i % dirs)
}

fn path_of(i: usize, dirs: usize) -> String {
    format!("{}/f{:05}", dir_of(i, dirs), i)
}

/// Run PostMark on the mounted filesystem.
pub fn run(
    mount: &mut NfsMount,
    clock: &Arc<SimClock>,
    cfg: &PostmarkConfig,
) -> FsResult<PostmarkResult> {
    let mut rng = Prng::new(cfg.seed);

    // --- creation phase ---
    let t0 = clock.now();
    for d in 0..cfg.dirs {
        mount.mkdir(&format!("/pm{d:03}"), 0o755)?;
    }
    // `live[i]` tracks whether file i currently exists.
    let mut live = vec![false; cfg.files + cfg.transactions];
    let mut next_new = cfg.files;
    for (i, alive) in live.iter_mut().enumerate().take(cfg.files) {
        let size = rng.range(cfg.min_size, cfg.max_size);
        mount.write_file(&path_of(i, cfg.dirs), &rng.bytes(size))?;
        *alive = true;
    }
    let creation = clock.now() - t0;

    // --- transaction phase ---
    let t0 = clock.now();
    let mut alive: Vec<usize> = (0..cfg.files).collect();
    for _ in 0..cfg.transactions {
        // Pair 1: create or delete (equal probability).
        if rng.below(2) == 0 || alive.is_empty() {
            let id = next_new;
            next_new += 1;
            let size = rng.range(cfg.min_size, cfg.max_size);
            mount.write_file(&path_of(id, cfg.dirs), &rng.bytes(size))?;
            alive.push(id);
        } else {
            let pick = rng.below(alive.len());
            let id = alive.swap_remove(pick);
            mount.unlink(&path_of(id, cfg.dirs))?;
        }
        // Pair 2: read or append (equal probability).
        if alive.is_empty() {
            continue;
        }
        let id = alive[rng.below(alive.len())];
        let path = path_of(id, cfg.dirs);
        if rng.below(2) == 0 {
            let _ = mount.read_file(&path)?;
        } else {
            let fd = mount.open(
                &path,
                OpenFlags { read: true, write: true, ..Default::default() },
                0,
            )?;
            let size = mount.stat(&path)?.size;
            let extra = rng.range(cfg.min_size / 2, cfg.min_size.max(2048));
            mount.pwrite(fd, size, &rng.bytes(extra))?;
            mount.close(fd)?;
        }
    }
    let transaction = clock.now() - t0;

    // --- deletion phase ---
    let t0 = clock.now();
    for id in alive {
        mount.unlink(&path_of(id, cfg.dirs))?;
    }
    for d in 0..cfg.dirs {
        mount.rmdir(&format!("/pm{d:03}"))?;
    }
    let deletion = clock.now() - t0;

    Ok(PostmarkResult {
        creation,
        transaction,
        deletion,
        total: creation + transaction + deletion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgfs::session::{GridWorld, Session, SessionParams, SetupKind};

    #[test]
    fn postmark_leaves_filesystem_empty() {
        let world = GridWorld::new();
        let mut session =
            Session::build(&world, &SessionParams::lan(SetupKind::NfsV3)).unwrap();
        let cfg = PostmarkConfig {
            dirs: 5,
            files: 30,
            transactions: 60,
            ..Default::default()
        };
        let clock = session.clock().clone();
        let res = run(&mut session.mount, &clock, &cfg).unwrap();
        assert!(res.total >= res.creation + res.transaction);
        assert!(session.mount.readdir("/").unwrap().is_empty(), "all dirs deleted");
        session.finish().unwrap();
    }

    #[test]
    fn postmark_runs_on_sgfs_stack() {
        use sgfs::config::SecurityLevel;
        let world = GridWorld::new();
        let mut session = Session::build(
            &world,
            &SessionParams::lan(SetupKind::Sgfs(SecurityLevel::StrongCipher)),
        )
        .unwrap();
        let cfg = PostmarkConfig { dirs: 3, files: 15, transactions: 30, ..Default::default() };
        let clock = session.clock().clone();
        run(&mut session.mount, &clock, &cfg).unwrap();
        session.finish().unwrap();
    }
}
