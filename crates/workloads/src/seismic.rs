//! The Seismic pipeline (§6.3.2) — SPEC HPC96's oil-prospecting code,
//! modeled as the paper describes its I/O structure.
//!
//! Four phases run in sequence; each reads its predecessor's output file
//! and writes its own:
//!
//! 1. **data generation** — compute and write the large initial data file;
//! 2. **data stacking** — read phase 1's file, light CPU, write stacked
//!    output of similar size;
//! 3. **time migration** — CPU-dominated; read phase 2, write a much
//!    smaller result;
//! 4. **depth migration** — read phase 3's result, moderate CPU, write the
//!    final output.
//!
//! At the end the intermediates are removed and only the last two phases'
//! results remain — the structure that lets SGFS's write-back cache skip
//! shipping temporary data across the WAN entirely.

use crate::{cpu_burn, Prng};
use sgfs_net::SimClock;
use sgfs_nfsclient::{FsResult, NfsMount, OpenFlags};
use std::sync::Arc;
use std::time::Duration;

/// Seismic parameters.
#[derive(Debug, Clone)]
pub struct SeismicConfig {
    /// Size of the phase-1 data file (paper-scale is hundreds of MB; the
    /// default is scaled for bench runs).
    pub data_size: usize,
    /// I/O chunk size.
    pub chunk: usize,
    /// CPU units per MB for phase 1 (generation).
    pub gen_cpu_per_mb: u64,
    /// CPU units per MB for phase 3 (time migration — dominant).
    pub tmig_cpu_per_mb: u64,
    /// CPU units per MB for phase 4 (depth migration).
    pub dmig_cpu_per_mb: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for SeismicConfig {
    fn default() -> Self {
        Self {
            data_size: 16 * 1024 * 1024,
            chunk: 32 * 1024,
            gen_cpu_per_mb: 10_000,
            tmig_cpu_per_mb: 400_000,
            dmig_cpu_per_mb: 30_000,
            seed: 0x5E15,
        }
    }
}

/// Per-phase runtimes.
#[derive(Debug, Clone)]
pub struct SeismicResult {
    /// Phase 1: data generation.
    pub phase1: Duration,
    /// Phase 2: data stacking.
    pub phase2: Duration,
    /// Phase 3: time migration.
    pub phase3: Duration,
    /// Phase 4: depth migration.
    pub phase4: Duration,
    /// Total (including intermediate cleanup).
    pub total: Duration,
}

/// Stream-copy `from` → `to` applying `f` per chunk; returns bytes moved.
fn transform(
    mount: &mut NfsMount,
    from: &str,
    to: &str,
    chunk: usize,
    mut per_chunk: impl FnMut(&[u8]) -> Vec<u8>,
) -> FsResult<u64> {
    let src = mount.open(from, OpenFlags::rdonly(), 0)?;
    let dst = mount.open(to, OpenFlags::create_truncate(), 0o644)?;
    let mut moved = 0u64;
    loop {
        let data = mount.read(src, chunk)?;
        if data.is_empty() {
            break;
        }
        moved += data.len() as u64;
        let out = per_chunk(&data);
        mount.write(dst, &out)?;
    }
    mount.close(src)?;
    mount.close(dst)?;
    Ok(moved)
}

/// Run the four-phase pipeline.
pub fn run(
    mount: &mut NfsMount,
    clock: &Arc<SimClock>,
    cfg: &SeismicConfig,
) -> FsResult<SeismicResult> {
    let mb = (cfg.data_size as u64 / (1024 * 1024)).max(1);

    // Phase 1: generate the initial data file.
    let t0 = clock.now();
    let mut rng = Prng::new(cfg.seed);
    let fd = mount.open("/seismic.gen", OpenFlags::create_truncate(), 0o644)?;
    let mut written = 0usize;
    while written < cfg.data_size {
        let n = cfg.chunk.min(cfg.data_size - written);
        std::hint::black_box(cpu_burn(cfg.gen_cpu_per_mb * n as u64 / (1024 * 1024)));
        mount.write(fd, &rng.bytes(n))?;
        written += n;
    }
    mount.close(fd)?;
    let phase1 = clock.now() - t0;

    // Phase 2: stacking — read everything, write a similar-sized file.
    let t0 = clock.now();
    transform(mount, "/seismic.gen", "/seismic.stack", cfg.chunk, |data| {
        // Light per-chunk computation: fold adjacent samples.
        let mut out = data.to_vec();
        for i in 1..out.len() {
            out[i] = out[i].wrapping_add(out[i - 1] >> 1);
        }
        out
    })?;
    let phase2 = clock.now() - t0;

    // Phase 3: time migration — CPU dominated, output 1/8 the size.
    let t0 = clock.now();
    std::hint::black_box(cpu_burn(cfg.tmig_cpu_per_mb * mb));
    transform(mount, "/seismic.stack", "/seismic.tmig", cfg.chunk, |data| {
        data.chunks(8).map(|c| c.iter().fold(0u8, |a, b| a ^ b)).collect()
    })?;
    let phase3 = clock.now() - t0;

    // Phase 4: depth migration over the (small) tmig output.
    let t0 = clock.now();
    std::hint::black_box(cpu_burn(cfg.dmig_cpu_per_mb * mb));
    transform(mount, "/seismic.tmig", "/seismic.dmig", cfg.chunk, |data| data.to_vec())?;
    let phase4 = clock.now() - t0;

    // Cleanup: remove the intermediates; keep the last two results.
    let t0 = clock.now();
    mount.unlink("/seismic.gen")?;
    mount.unlink("/seismic.stack")?;
    let cleanup = clock.now() - t0;

    Ok(SeismicResult {
        phase1,
        phase2,
        phase3,
        phase4,
        total: phase1 + phase2 + phase3 + phase4 + cleanup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgfs::session::{GridWorld, Session, SessionParams, SetupKind};

    fn tiny() -> SeismicConfig {
        SeismicConfig {
            data_size: 256 * 1024,
            chunk: 32 * 1024,
            gen_cpu_per_mb: 100,
            tmig_cpu_per_mb: 5_000,
            dmig_cpu_per_mb: 500,
            seed: 5,
        }
    }

    #[test]
    fn seismic_pipeline_structure() {
        let world = GridWorld::new();
        let mut session =
            Session::build(&world, &SessionParams::lan(SetupKind::NfsV3)).unwrap();
        let clock = session.clock().clone();
        let cfg = tiny();
        let res = run(&mut session.mount, &clock, &cfg).unwrap();
        // Intermediates removed, results kept.
        assert!(session.mount.stat("/seismic.gen").is_err());
        assert!(session.mount.stat("/seismic.stack").is_err());
        let tmig = session.mount.stat("/seismic.tmig").unwrap();
        let dmig = session.mount.stat("/seismic.dmig").unwrap();
        assert!(tmig.size > 0 && tmig.size < cfg.data_size as u64 / 4);
        assert_eq!(dmig.size, tmig.size);
        // Phase 3 is the CPU-dominated one.
        assert!(res.phase3 > res.phase4, "{res:?}");
        session.finish().unwrap();
    }
}
