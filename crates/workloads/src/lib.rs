//! The paper's benchmark workloads, §6.2–6.3.
//!
//! Four workloads drive the evaluation, each implemented here against the
//! kernel-client API ([`sgfs_nfsclient::NfsMount`]) and timed on the
//! testbed's [`sgfs_net::SimClock`]:
//!
//! * [`iozone`] — sequential read/reread of a file sized at 2× the client
//!   memory cache (the worst-case user-level-overhead probe of §6.2.1);
//! * [`postmark`] — the mail/news/web-commerce small-file workload
//!   (creation / transactions / deletion phases, §6.2.2);
//! * [`mab`] — the Modified Andrew Benchmark over an openssh-4.6p1-like
//!   source tree (copy / stat / search / compile, §6.3.1);
//! * [`seismic`] — the four-phase SPEC HPC96 Seismic pipeline
//!   (generation / stacking / time migration / depth migration, §6.3.2).
//!
//! [`traffic`] is the odd one out: not a paper workload but the
//! open-loop, heavy-tailed arrival generator the overload-control
//! experiments use for offered load that does not bend to the server's
//! service rate.
//!
//! All workloads are deterministic under a seed, and return per-phase
//! durations in *simulated* time.

pub mod iozone;
pub mod mab;
pub mod postmark;
pub mod seismic;
pub mod traffic;

use std::time::Duration;

/// A tiny deterministic generator (xorshift64*) for workload data and
/// decisions — deterministic across runs and platforms.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Seeded generator (seed must be non-zero; 0 is mapped).
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform in `[lo, hi]`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// A pseudorandom buffer of `len` bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            out.extend_from_slice(&self.next_u64().to_le_bytes());
        }
        out.truncate(len);
        out
    }
}

/// Burn a deterministic amount of CPU (the "computation" of compile and
/// migration phases): `units` rounds of SHA-256 over a scratch block.
pub fn cpu_burn(units: u64) -> u64 {
    use sgfs_crypto::{Digest, Sha256};
    let mut block = [0u8; 256];
    let mut acc = 0u64;
    for i in 0..units {
        block[0] = i as u8;
        let d = Sha256::digest(&block);
        acc = acc.wrapping_add(u64::from_le_bytes(d[..8].try_into().expect("8 bytes")));
        block[1] = d[0];
    }
    acc
}

/// Pretty-print a duration as seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn prng_range_bounds() {
        let mut p = Prng::new(7);
        for _ in 0..1000 {
            let v = p.range(512, 16384);
            assert!((512..=16384).contains(&v));
        }
    }

    #[test]
    fn prng_bytes_len_and_determinism() {
        let mut a = Prng::new(9);
        let mut b = Prng::new(9);
        assert_eq!(a.bytes(1000), b.bytes(1000));
        assert_eq!(a.bytes(0).len(), 0);
        assert_eq!(a.bytes(7).len(), 7);
    }

    #[test]
    fn cpu_burn_deterministic_value() {
        assert_eq!(cpu_burn(100), cpu_burn(100));
        assert_ne!(cpu_burn(100), cpu_burn(101));
    }
}
